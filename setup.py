"""Thin setup.py shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 517 editable installs (which need ``bdist_wheel``) fail.  Keeping a
legacy ``setup.py`` lets ``pip install -e .`` fall back to the classic
``setup.py develop`` code path, which works offline.
"""

from setuptools import setup

setup()
