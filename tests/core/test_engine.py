"""Tests for the SQL-level approximate query engine (§4.2 end to end)."""

import pytest

from repro import LawsDatabase
from repro.errors import ApproximationError


class TestRouting:
    def test_point_route_for_paper_query_one(self, lofar_db):
        answer = lofar_db.approximate_sql(
            "SELECT intensity FROM measurements WHERE source = 42 AND frequency = 0.15"
        )
        assert answer.route == "point"
        assert not answer.is_exact
        assert answer.io["pages_read"] == 0
        assert answer.column_errors["intensity"] > 0
        assert answer.table.num_rows == 1

    def test_virtual_table_route_for_paper_query_two(self, lofar_db):
        answer = lofar_db.approximate_sql(
            "SELECT source, intensity FROM measurements WHERE frequency = 0.15 AND intensity > 0.3"
        )
        assert answer.route == "virtual-table"
        assert answer.io["pages_read"] == 0
        assert answer.virtual_rows_generated > 0
        assert set(answer.table.schema.names) == {"source", "intensity"}

    def test_analytic_route_for_linear_model(self, tpcds_db):
        answer = tpcds_db.approximate_sql("SELECT avg(sales_price) AS m FROM store_sales")
        assert answer.route == "analytic-aggregate"
        assert answer.io["pages_read"] == 0
        exact = tpcds_db.sql("SELECT avg(sales_price) FROM store_sales").scalar()
        assert answer.scalar() == pytest.approx(exact, rel=0.05)

    def test_fallback_when_no_model(self, lofar_db):
        answer = lofar_db.approximate_sql("SELECT frequency FROM measurements WHERE source = 1")
        # frequency is an input, not a modelled output -> exact fallback.
        assert answer.route == "exact-fallback"
        assert answer.is_exact
        assert answer.reason

    def test_fallback_disallowed_raises(self, lofar_db):
        from repro.errors import ModelNotFoundError

        with pytest.raises((ApproximationError, ModelNotFoundError)):
            lofar_db.approximate_sql("SELECT frequency FROM measurements", allow_fallback=False)

    def test_join_query_falls_back(self, tpcds_db):
        answer = tpcds_db.approximate_sql(
            "SELECT avg(s.sales_price) AS m FROM store_sales s JOIN item i ON s.item_id = i.item_id"
        )
        assert answer.route == "exact-fallback"

    def test_uncovered_column_falls_back(self, lofar_db):
        # net column 'frequency' is covered, but query also needs a column no model covers
        answer = lofar_db.approximate_sql(
            "SELECT intensity FROM measurements WHERE source = 1 AND frequency = 0.15 AND intensity > 0"
        )
        # intensity appears in WHERE too, still covered -> not a fallback
        assert answer.route in ("virtual-table", "point")

    def test_exact_answer_helper(self, lofar_db):
        answer = lofar_db.approx.answer_exact("SELECT count(*) AS n FROM measurements")
        assert answer.is_exact
        assert answer.io["pages_read"] > 0


class TestAccuracy:
    def test_group_by_aggregate_close_to_exact(self, lofar_db):
        comparison = lofar_db.compare_sql(
            "SELECT source, avg(intensity) AS mean_intensity FROM measurements "
            "WHERE source IN (1, 2, 3, 4, 5) GROUP BY source ORDER BY source"
        )
        # Since the grouped route landed, GROUP BY aggregates are evaluated
        # per group instead of via virtual-table enumeration.
        assert comparison["approximate"].route == "grouped-model"
        assert comparison["route"] == "grouped-model"
        assert comparison["max_relative_error"] < 0.10
        assert comparison["approx_pages_read"] == 0
        assert comparison["exact_pages_read"] > 0
        # Every served group carries its own error estimate and provenance.
        approx = comparison["approximate"]
        assert set(approx.group_routes) == {(s,) for s in (1, 2, 3, 4, 5)}
        for source in (1, 2, 3, 4, 5):
            estimate = approx.group_error_estimate(source, "mean_intensity")
            assert estimate is not None and estimate.standard_error > 0

    def test_global_average_close(self, lofar_db):
        comparison = lofar_db.compare_sql(
            "SELECT avg(intensity) AS m FROM measurements WHERE frequency = 0.15"
        )
        assert comparison["max_relative_error"] < 0.10

    def test_point_query_close_to_observed_mean(self, lofar_db, lofar_dataset):
        answer = lofar_db.approximate_sql(
            "SELECT intensity FROM measurements WHERE source = 5 AND frequency = 0.18"
        )
        exact = lofar_db.sql(
            "SELECT avg(intensity) FROM measurements WHERE source = 5 AND frequency = 0.18"
        ).scalar()
        assert answer.scalar() == pytest.approx(exact, rel=0.15)

    def test_count_query_over_model(self, lofar_db):
        comparison = lofar_db.compare_sql(
            "SELECT count(intensity) AS n FROM measurements WHERE source IN (1, 2, 3) AND frequency = 0.15"
        )
        approx_count = comparison["approximate"].scalar()
        # The model generates exactly one tuple per (source, frequency) combination,
        # while the raw data holds several observations: the shapes differ by design.
        assert approx_count == 3

    def test_selection_recall_of_bright_sources(self, lofar_db, lofar_dataset):
        """Sources the model says are bright at 0.12 GHz should mostly be truly bright."""
        answer = lofar_db.approximate_sql(
            "SELECT source, intensity FROM measurements WHERE frequency = 0.12 AND intensity > 0.4"
        )
        flagged = set(answer.table.column("source").to_pylist())
        exact = lofar_db.sql(
            "SELECT source, avg(intensity) AS m FROM measurements WHERE frequency = 0.12 "
            "GROUP BY source HAVING avg(intensity) > 0.4"
        ).table
        truly_bright = set(exact.column("source").to_pylist())
        if truly_bright:
            overlap = len(flagged & truly_bright) / len(truly_bright)
            assert overlap > 0.8

    def test_error_estimates_attached_to_aggregates(self, lofar_db):
        answer = lofar_db.approximate_sql(
            "SELECT avg(intensity) AS m FROM measurements WHERE frequency = 0.15"
        )
        assert "m" in answer.column_errors
        assert answer.column_errors["m"] > 0
        estimate = answer.error_estimate("m")
        assert estimate.lower < estimate.value < estimate.upper


class TestLegalFilterIntegration:
    def test_legal_filter_prunes_unobserved_combinations(self, lofar_dataset):
        db = LawsDatabase(use_legal_filter=True)
        table = lofar_dataset.to_table("measurements")
        # Remove every observation of source 1 at 0.12 GHz so that combination is illegal.
        import numpy as np

        sources = np.array(table.column("source").to_pylist())
        freqs = np.array(table.column("frequency").to_pylist())
        keep = ~((sources == 1) & (np.isclose(freqs, 0.12)))
        db.register_table(table.filter(keep))
        db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")

        answer = db.approximate_sql(
            "SELECT source, frequency, intensity FROM measurements WHERE source = 1"
        )
        combos = set(zip(answer.table.column("source").to_pylist(), answer.table.column("frequency").to_pylist()))
        assert (1, 0.12) not in combos
        assert len(combos) == 3
