"""Tests for the model harvester and the strawman interception path."""

import numpy as np
import pytest

from repro import LawsDatabase
from repro.core.quality import QualityPolicy
from repro.datasets import lofar
from repro.db.udf import FitInvocation
from repro.errors import HarvestError


@pytest.fixture()
def fresh_db(lofar_dataset):
    db = LawsDatabase()
    db.register_table(lofar_dataset.to_table("measurements"))
    return db


class TestHarvester:
    def test_fit_and_capture_grouped(self, fresh_db):
        report = fresh_db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
        assert report.accepted
        assert report.model.is_grouped
        assert report.model.group_columns == ("source",)
        assert len(fresh_db.captured_models("measurements")) == 1

    def test_rejected_model_still_stored(self, fresh_db):
        # A constant model of the intensity explains almost nothing.
        report = fresh_db.fit("measurements", "intensity ~ constant(frequency)")
        assert not report.accepted
        stored = fresh_db.captured_models("measurements")
        assert any(not m.accepted for m in stored)

    def test_quality_gate_configurable(self, lofar_dataset):
        lenient = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.0))
        lenient.register_table(lofar_dataset.to_table("measurements"))
        report = lenient.fit("measurements", "intensity ~ constant(frequency)")
        assert report.accepted

    def test_unknown_column_raises(self, fresh_db):
        with pytest.raises(HarvestError):
            fresh_db.fit("measurements", "intensity ~ powerlaw(wavelength)")

    def test_partial_fit_records_predicate(self, fresh_db):
        report = fresh_db.fit(
            "measurements",
            "intensity ~ powerlaw(frequency)",
            group_by="source",
            predicate_sql="frequency > 0.13",
        )
        assert report.model.coverage.predicate_sql == "frequency > 0.13"
        assert not report.model.coverage.covers_whole_table

    def test_report_exposes_parameter_table(self, fresh_db):
        report = fresh_db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
        table = report.parameter_table()
        assert {"p", "alpha", "residual_se"} <= set(table.schema.names)
        assert report.summary()

    def test_fitted_row_count_recorded(self, fresh_db):
        report = fresh_db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
        assert report.model.fitted_row_count == fresh_db.table("measurements").num_rows

    def test_udf_fit_listener_captures(self, fresh_db):
        invocation = FitInvocation(
            table_name="measurements",
            input_columns=["frequency"],
            output_column="intensity",
            model_name="powerlaw",
            group_by=["source"],
        )
        fresh_db.database.udfs.record_fit(invocation)
        assert len(fresh_db.captured_models("measurements")) == 1

    def test_capture_invocation_explicit(self, fresh_db):
        invocation = FitInvocation(
            table_name="measurements",
            input_columns=["frequency"],
            output_column="intensity",
            model_name="powerlaw",
            group_by=["source"],
        )
        report = fresh_db.harvester.capture_invocation(invocation)
        assert report.model.formula == "intensity ~ powerlaw(frequency)"

    def test_robust_fit_option(self, fresh_db):
        report = fresh_db.fit("measurements", "intensity ~ linear(frequency)", robust=True)
        assert report.model.metadata["robust"] is True


class TestStrawman:
    def test_columns_and_len(self, lofar_db, lofar_dataset):
        frame = lofar_db.strawman("measurements")
        assert frame.columns == ["source", "frequency", "intensity"]
        assert len(frame) == lofar_dataset.num_rows

    def test_column_access_returns_numpy(self, lofar_db):
        frame = lofar_db.strawman("measurements")
        values = frame["intensity"]
        assert isinstance(values, np.ndarray)

    def test_missing_column_keyerror(self, lofar_db):
        with pytest.raises(KeyError):
            lofar_db.strawman("measurements")["nope"]

    def test_unknown_table_fails_fast(self, lofar_db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            lofar_db.strawman("missing_table")

    def test_summary_statistics(self, lofar_db):
        summary = lofar_db.strawman("measurements").summary()
        assert summary["frequency"]["distinct"] == 4
        assert summary["intensity"]["mean"] > 0

    def test_fit_through_strawman_captures(self, lofar_dataset):
        db = LawsDatabase()
        db.register_table(lofar_dataset.to_table("measurements"))
        frame = db.strawman("measurements")
        report = frame.fit("intensity ~ powerlaw(frequency)", group_by="source")
        assert report.accepted
        assert db.models.has_model_for("measurements", "intensity")

    def test_filtered_strawman_fits_partial_model(self, lofar_dataset):
        db = LawsDatabase()
        db.register_table(lofar_dataset.to_table("measurements"))
        subset = db.strawman("measurements").filter("source <= 20")
        report = subset.fit("intensity ~ powerlaw(frequency)", group_by="source")
        assert report.model.coverage.predicate_sql == "source <= 20"
        assert len(report.model.fit.records) <= 20

    def test_filter_composes_predicates(self, lofar_db):
        frame = lofar_db.strawman("measurements").filter("source <= 10").filter("frequency > 0.13")
        assert "AND" in frame.predicate
        assert len(frame) < len(lofar_db.strawman("measurements"))

    def test_bad_predicate_raises_harvest_error(self, lofar_db):
        frame = lofar_db.strawman("measurements", predicate_sql="nonsense >")
        with pytest.raises(HarvestError):
            frame.to_table()

    def test_head(self, lofar_db):
        assert lofar_db.strawman("measurements").head(5).num_rows == 5
