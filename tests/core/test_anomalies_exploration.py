"""Tests for anomaly detection and model exploration (§4.2)."""

import pytest

from repro import LawsDatabase
from repro.core.approx.anomalies import detect_anomalies, rank_groups_by_misfit
from repro.core.approx.exploration import explore_gradients, extreme_parameter_groups
from repro.datasets import lofar
from repro.errors import ApproximationError


@pytest.fixture(scope="module")
def anomalous_setup():
    """A LOFAR dataset with a healthy share of anomalous sources and its model."""
    dataset = lofar.generate(
        num_sources=80, observations_per_source=30, seed=77, anomaly_fraction=0.1
    )
    # 10% anomalous sources drag the observation-weighted R² slightly below the
    # default 0.8 gate; a mildly relaxed gate is the realistic setting when the
    # whole point is to go hunting for the anomalies.
    from repro.core.quality import QualityPolicy

    db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.7))
    db.register_table(dataset.to_table("measurements"))
    db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
    model = db.best_model("measurements", "intensity")
    return dataset, db, model


class TestAnomalies:
    def test_ranking_sorted_by_score(self, anomalous_setup):
        _, _, model = anomalous_setup
        ranked = rank_groups_by_misfit(model)
        scores = [anomaly.score for anomaly in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_true_anomalies_rank_high(self, anomalous_setup):
        dataset, _, model = anomalous_setup
        ranked = rank_groups_by_misfit(model)
        true_anomalies = dataset.anomalous_sources()
        top_k = {key[0] for key, in zip((a.key for a in ranked[: len(true_anomalies)]),)}
        # At least half of the top-|anomalies| ranked sources are truly anomalous.
        assert len(top_k & true_anomalies) >= len(true_anomalies) // 2

    def test_detection_recall(self, anomalous_setup):
        dataset, _, model = anomalous_setup
        report = detect_anomalies(model, mad_multiplier=3.0)
        flagged = {key[0] for key in report.anomalous_keys}
        true_anomalies = dataset.anomalous_sources()
        recall = len(flagged & true_anomalies) / len(true_anomalies)
        assert recall >= 0.6

    def test_detection_flags_minority(self, anomalous_setup):
        dataset, _, model = anomalous_setup
        report = detect_anomalies(model, mad_multiplier=3.0)
        assert len(report.anomalies) < 0.5 * dataset.num_sources

    def test_min_anomalies_floor(self, anomalous_setup):
        _, _, model = anomalous_setup
        report = detect_anomalies(model, mad_multiplier=1e9, min_anomalies=5)
        assert len(report.anomalies) == 5

    def test_metric_variants(self, anomalous_setup):
        _, _, model = anomalous_setup
        for metric in ("rse", "relative_rse", "r_squared"):
            assert rank_groups_by_misfit(model, metric=metric)
        with pytest.raises(ApproximationError):
            rank_groups_by_misfit(model, metric="nonsense")

    def test_requires_grouped_model(self, tpcds_db):
        model = tpcds_db.best_model("store_sales", "sales_price")
        with pytest.raises(ApproximationError):
            rank_groups_by_misfit(model)

    def test_system_facade_anomalies(self, anomalous_setup):
        _, db, _ = anomalous_setup
        report = db.anomalies("measurements", mad_multiplier=3.0)
        assert report.ranked
        assert report.top(3) == report.ranked[:3]


class TestExploration:
    def test_gradient_regions_steepest_at_low_frequency(self, anomalous_setup):
        _, _, model = anomalous_setup
        key = next(record.key for record in model.fit.records if record.result is not None)
        regions = explore_gradients(model, {"frequency": (0.10, 0.20)}, group_key=key)
        frequency_regions = regions["frequency"]
        assert frequency_regions
        # For a decaying power law |dI/dnu| is largest at the lowest frequencies.
        steepest = frequency_regions[0]
        assert steepest.lower == pytest.approx(0.10, abs=0.02)
        assert "frequency" in str(steepest)

    def test_gradient_needs_ranges(self, anomalous_setup):
        _, _, model = anomalous_setup
        with pytest.raises(ApproximationError):
            explore_gradients(model, {})

    def test_extreme_parameter_groups(self, anomalous_setup):
        dataset, _, model = anomalous_setup
        steepest = extreme_parameter_groups(model, "alpha", k=5, largest=False)
        assert len(steepest) == 5
        values = [value for _, value in steepest]
        assert values == sorted(values)
        # They really are the most negative fitted alphas.
        all_alphas = [record.result.param_dict["alpha"] for record in model.fit.records if record.result]
        assert values[0] == pytest.approx(min(all_alphas))

    def test_extreme_parameter_unknown_name(self, anomalous_setup):
        _, _, model = anomalous_setup
        with pytest.raises(ApproximationError):
            extreme_parameter_groups(model, "gamma")

    def test_ungrouped_model_exploration(self, tpcds_db):
        model = tpcds_db.best_model("store_sales", "sales_price")
        regions = explore_gradients(model, {"list_price": (0.0, 200.0)})
        assert regions["list_price"]
