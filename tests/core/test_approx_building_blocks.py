"""Tests for the approximate-query building blocks: enumeration, legality,
point answers, selections, analytic aggregates, error bounds."""

import numpy as np
import pytest

from repro.core.approx.aggregates import analytic_aggregate, supports_analytic
from repro.core.approx.enumeration import build_enumeration_plan, generate_virtual_table
from repro.core.approx.error_bounds import ErrorEstimate, aggregate_error, combine_independent
from repro.core.approx.legal import BloomFilter, LegalCombinationFilter
from repro.core.approx.point import answer_point_query
from repro.core.approx.range_query import answer_selection
from repro.db.expressions import col, lit
from repro.errors import ApproximationError, EnumerationError


class TestEnumeration:
    def test_plan_uses_group_keys_and_enumerable_domain(self, lofar_db, lofar_model):
        stats = lofar_db.database.stats("measurements")
        plan = build_enumeration_plan(lofar_model, stats)
        assert len(plan.group_keys) > 0
        assert plan.input_domains["frequency"] == [0.12, 0.15, 0.16, 0.18]
        assert plan.num_rows == len(plan.group_keys) * 4

    def test_pinned_values_override_domain(self, lofar_db, lofar_model):
        stats = lofar_db.database.stats("measurements")
        plan = build_enumeration_plan(lofar_model, stats, pinned_values={"frequency": [0.15]})
        assert plan.input_domains["frequency"] == [0.15]

    def test_pinned_group_key_restricts_groups(self, lofar_db, lofar_model):
        stats = lofar_db.database.stats("measurements")
        plan = build_enumeration_plan(lofar_model, stats, pinned_values={"source": [1, 2]})
        assert len(plan.group_keys) == 2

    def test_non_enumerable_input_raises(self):
        # A continuous input with more distinct values than the enumerability
        # limit cannot be regenerated without reading the data (§4.2).
        from repro import LawsDatabase

        rng = np.random.default_rng(0)
        n = 5000
        x = rng.uniform(0.0, 1.0, n)
        db = LawsDatabase()
        db.load_dict("wide", {"x": x, "y": 2.0 * x + 1.0})
        report = db.fit("wide", "y ~ linear(x)")
        assert report.accepted
        stats = db.database.stats("wide")
        with pytest.raises(EnumerationError):
            build_enumeration_plan(report.model, stats)

    def test_max_rows_guard(self, lofar_db, lofar_model):
        stats = lofar_db.database.stats("measurements")
        with pytest.raises(EnumerationError):
            build_enumeration_plan(lofar_model, stats, max_rows=10)

    def test_virtual_table_shape_and_values(self, lofar_db, lofar_model, lofar_dataset):
        stats = lofar_db.database.stats("measurements")
        plan = build_enumeration_plan(lofar_model, stats, pinned_values={"source": [1]})
        virtual = generate_virtual_table(lofar_model, plan, include_error_column=True)
        assert virtual.schema.names == ["source", "frequency", "intensity", "intensity_error"]
        assert virtual.num_rows == 4
        truth = lofar_dataset.truth_for(1)
        predicted = dict(zip(virtual.column("frequency").to_pylist(), virtual.column("intensity").to_pylist()))
        assert predicted[0.15] == pytest.approx(truth.p * 0.15**truth.alpha, rel=0.2)


class TestBloomAndLegality:
    def test_bloom_no_false_negatives(self):
        bloom = BloomFilter(expected_items=500, false_positive_rate=0.01)
        items = [(i, i * 0.5) for i in range(500)]
        bloom.add_many(items)
        assert all(item in bloom for item in items)

    def test_bloom_false_positive_rate_reasonable(self):
        bloom = BloomFilter(expected_items=1000, false_positive_rate=0.01)
        bloom.add_many(range(1000))
        false_positives = sum(1 for i in range(10_000, 20_000) if i in bloom)
        assert false_positives / 10_000 < 0.05

    def test_bloom_byte_size_much_smaller_than_items(self):
        bloom = BloomFilter(expected_items=10_000, false_positive_rate=0.01)
        assert bloom.byte_size() < 10_000 * 8

    def test_bloom_invalid_rate(self):
        with pytest.raises(ValueError):
            BloomFilter(10, false_positive_rate=1.5)

    def test_legal_filter_keeps_observed_combinations(self, lofar_db, lofar_model):
        table = lofar_db.table("measurements")
        legal = LegalCombinationFilter.from_table(table, ("source", "frequency"), round_decimals=3)
        stats = lofar_db.database.stats("measurements")
        plan = build_enumeration_plan(lofar_model, stats, pinned_values={"source": [1]})
        virtual = generate_virtual_table(lofar_model, plan)
        filtered = legal.filter_table(virtual)
        # Source 1 was observed at least once, so some rows survive; none are invented groups.
        assert 0 < filtered.num_rows <= virtual.num_rows

    def test_legal_filter_removes_unobserved_combination(self):
        from repro.db.table import Table

        observed = Table.from_dict("t", {"g": [1, 1, 2], "x": [0.1, 0.2, 0.1]})
        legal = LegalCombinationFilter.from_table(observed, ("g", "x"))
        generated = Table.from_dict("t", {"g": [1, 1, 2, 2], "x": [0.1, 0.2, 0.1, 0.2]})
        filtered = legal.filter_table(generated)
        assert filtered.num_rows == 3
        assert not legal.is_legal((2, 0.2))

    def test_legal_filter_requires_key_columns(self):
        with pytest.raises(ValueError):
            LegalCombinationFilter([])


class TestPointAnswers:
    def test_point_answer_matches_truth(self, lofar_model, lofar_dataset):
        truth = lofar_dataset.truth_for(7)
        answer = answer_point_query(lofar_model, {"frequency": 0.16}, {"source": 7})
        assert answer.value == pytest.approx(truth.p * 0.16**truth.alpha, rel=0.2)
        assert answer.error.standard_error > 0
        assert answer.interval.lower < answer.value < answer.interval.upper

    def test_missing_input_raises(self, lofar_model):
        with pytest.raises(ApproximationError):
            answer_point_query(lofar_model, {}, {"source": 7})

    def test_missing_group_key_raises(self, lofar_model):
        with pytest.raises(ApproximationError):
            answer_point_query(lofar_model, {"frequency": 0.15})

    def test_ungrouped_model_point(self, tpcds_db):
        model = tpcds_db.best_model("store_sales", "sales_price")
        answer = answer_point_query(model, {"list_price": 100.0})
        assert answer.group_key is None
        assert answer.value > 0


class TestSelectionAnswers:
    def test_paper_second_query_shape(self, lofar_db, lofar_model):
        stats = lofar_db.database.stats("measurements")
        threshold = 0.3
        answer = answer_selection(
            lofar_model,
            stats,
            predicate=col("intensity") > lit(threshold),
            pinned_values={"frequency": [0.15]},
            output_columns=["source", "intensity"],
        )
        assert answer.table.schema.names == ["source", "intensity"]
        assert all(value > threshold for value in answer.table.column("intensity").to_pylist())
        assert answer.virtual_rows_generated >= answer.rows_after_filter

    def test_selection_with_error_column(self, lofar_db, lofar_model):
        stats = lofar_db.database.stats("measurements")
        answer = answer_selection(
            lofar_model, stats, pinned_values={"frequency": [0.15]}, include_error_column=True
        )
        assert "intensity_error" in answer.table.schema.names


class TestAnalyticAggregates:
    def test_supports_analytic_for_linear(self, tpcds_db):
        assert supports_analytic(tpcds_db.best_model("store_sales", "sales_price"))

    def test_min_max_at_endpoints(self, tpcds_db, tpcds_dataset):
        model = tpcds_db.best_model("store_sales", "sales_price")
        stats = tpcds_db.database.stats("store_sales")
        ranges = {"list_price": (stats.columns["list_price"].min_value, stats.columns["list_price"].max_value)}
        low = analytic_aggregate(model, "min", ranges, stats.row_count)
        high = analytic_aggregate(model, "max", ranges, stats.row_count)
        exact = tpcds_db.sql("SELECT min(sales_price), max(sales_price) FROM store_sales").table.row(0)
        assert low.value == pytest.approx(exact[0], rel=0.25)
        assert high.value == pytest.approx(exact[1], rel=0.25)
        assert low.method == "endpoint"

    def test_avg_uses_linearity_with_means(self, tpcds_db):
        model = tpcds_db.best_model("store_sales", "sales_price")
        stats = tpcds_db.database.stats("store_sales")
        column = stats.columns["list_price"]
        ranges = {"list_price": (column.min_value, column.max_value)}
        result = analytic_aggregate(model, "avg", ranges, stats.row_count, input_means={"list_price": column.mean})
        exact = tpcds_db.sql("SELECT avg(sales_price) FROM store_sales").scalar()
        assert result.value == pytest.approx(exact, rel=0.02)
        assert result.method == "linearity"

    def test_sum_scales_average(self, tpcds_db):
        model = tpcds_db.best_model("store_sales", "sales_price")
        stats = tpcds_db.database.stats("store_sales")
        column = stats.columns["list_price"]
        ranges = {"list_price": (column.min_value, column.max_value)}
        result = analytic_aggregate(model, "sum", ranges, stats.row_count, input_means={"list_price": column.mean})
        exact = tpcds_db.sql("SELECT sum(sales_price) FROM store_sales").scalar()
        assert result.value == pytest.approx(exact, rel=0.02)

    def test_unsupported_function_rejected(self, tpcds_db):
        model = tpcds_db.best_model("store_sales", "sales_price")
        with pytest.raises(ApproximationError):
            analytic_aggregate(model, "median", {"list_price": (0, 1)}, 10)

    def test_missing_range_rejected(self, tpcds_db):
        model = tpcds_db.best_model("store_sales", "sales_price")
        with pytest.raises(ApproximationError):
            analytic_aggregate(model, "avg", {}, 10)


class TestErrorBounds:
    def test_aggregate_error_shapes(self):
        assert aggregate_error("avg", 1.0, 100) == pytest.approx(0.1)
        assert aggregate_error("sum", 1.0, 100) == pytest.approx(10.0)
        assert aggregate_error("min", 1.0, 100) == 1.0
        assert aggregate_error("count", 1.0, 100) == 0.0
        assert aggregate_error("avg", 1.0, 0) == 0.0

    def test_combine_independent(self):
        assert combine_independent([3.0, 4.0]) == pytest.approx(5.0)

    def test_error_estimate_interval(self):
        estimate = ErrorEstimate(value=10.0, standard_error=1.0)
        assert estimate.lower == pytest.approx(10.0 - 1.96)
        assert estimate.upper == pytest.approx(10.0 + 1.96)
        assert estimate.relative_error == pytest.approx(0.1)
        assert "±" in str(estimate)

    def test_zero_value_relative_error(self):
        assert ErrorEstimate(0.0, 1.0).relative_error == float("inf")
        assert ErrorEstimate(0.0, 0.0).relative_error == 0.0
