"""Tests for model quality judgement and the model store."""

import numpy as np
import pytest

from repro.core.captured_model import CapturedModel, ModelCoverage
from repro.core.model_store import ModelStore
from repro.core.quality import ModelQuality, QualityPolicy, judge_fit, judge_grouped
from repro.errors import HarvestError, ModelNotFoundError
from repro.fitting import LinearModel, fit_model


def _make_fit(noise: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 10, 200)
    y = 1.0 + 2.0 * x + rng.normal(0, noise, 200)
    fit = fit_model(LinearModel(("x",)), {"x": x}, y, output_name="y")
    return fit, {"x": x}, y


def _make_captured(noise: float, accepted: bool = True, table: str = "t", output: str = "y", model_id_seed: int = 0):
    fit, inputs, y = _make_fit(noise, seed=model_id_seed)
    quality = judge_fit(fit, y=y, inputs=inputs)
    return CapturedModel(
        coverage=ModelCoverage(table_name=table, input_columns=("x",), output_column=output),
        formula=f"{output} ~ linear(x)",
        fit=fit,
        quality=quality,
        accepted=accepted,
        fitted_row_count=200,
    )


class TestQuality:
    def test_judge_fit_includes_f_test(self):
        fit, inputs, y = _make_fit(0.1)
        quality = judge_fit(fit, y=y, inputs=inputs)
        assert quality.f_test is not None
        assert quality.f_test.significant()
        assert quality.relative_rse is not None and quality.relative_rse < 0.05

    def test_policy_accepts_good_fit(self):
        fit, inputs, y = _make_fit(0.1)
        assert QualityPolicy().accepts(judge_fit(fit, y=y, inputs=inputs))

    def test_policy_rejects_poor_fit(self):
        fit, inputs, y = _make_fit(50.0)
        assert not QualityPolicy(min_r_squared=0.8).accepts(judge_fit(fit, y=y, inputs=inputs))

    def test_policy_rejects_too_few_observations(self):
        quality = ModelQuality(r_squared=0.99, adjusted_r_squared=0.99, residual_standard_error=0.1, n_observations=3)
        assert not QualityPolicy(min_observations=5).accepts(quality)

    def test_policy_f_test_requirement(self):
        quality = ModelQuality(r_squared=0.95, adjusted_r_squared=0.95, residual_standard_error=0.1, n_observations=100)
        assert not QualityPolicy(require_f_test=True).accepts(quality)

    def test_with_threshold_builds_variant(self):
        policy = QualityPolicy().with_threshold(0.5)
        assert policy.min_r_squared == 0.5

    def test_judge_grouped_empty(self):
        quality, fraction = judge_grouped([])
        assert fraction == 0.0
        assert quality.n_observations == 0

    def test_quality_summary_renders(self):
        fit, inputs, y = _make_fit(0.1)
        assert "R2=" in judge_fit(fit, y=y, inputs=inputs).summary()


class TestModelStore:
    def test_add_and_get(self):
        store = ModelStore()
        model = store.add(_make_captured(0.1))
        assert store.get(model.model_id) is model
        assert len(store) == 1

    def test_get_missing_raises(self):
        with pytest.raises(ModelNotFoundError):
            ModelStore().get(999)

    def test_candidates_filter_unusable(self):
        store = ModelStore()
        good = store.add(_make_captured(0.1, accepted=True))
        store.add(_make_captured(0.1, accepted=False))
        candidates = store.candidates("t", "y")
        assert [m.model_id for m in candidates] == [good.model_id]

    def test_candidates_respect_required_inputs(self):
        store = ModelStore()
        store.add(_make_captured(0.1))
        assert store.candidates("t", "y", required_inputs=["x", "y"])
        assert not store.candidates("t", "y", required_inputs=["other"])

    def test_best_model_prefers_higher_adjusted_r2(self):
        store = ModelStore()
        worse = store.add(_make_captured(5.0, model_id_seed=1))
        better = store.add(_make_captured(0.05, model_id_seed=2))
        assert store.best_model("t", "y").model_id == better.model_id
        assert worse.model_id != better.model_id

    def test_best_model_missing_raises(self):
        with pytest.raises(ModelNotFoundError):
            ModelStore().best_model("t", "y")

    def test_partial_models_excluded_by_default(self):
        store = ModelStore()
        fit, inputs, y = _make_fit(0.1)
        partial = CapturedModel(
            coverage=ModelCoverage("t", ("x",), "y", predicate_sql="x > 5"),
            formula="y ~ linear(x)",
            fit=fit,
            quality=judge_fit(fit, y=y, inputs=inputs),
            accepted=True,
        )
        store.add(partial)
        assert not store.candidates("t", "y")
        assert store.candidates("t", "y", require_whole_table=False)

    def test_mark_table_stale(self):
        store = ModelStore()
        model = store.add(_make_captured(0.1))
        stale = store.mark_table_stale("t")
        assert model in stale
        assert model.status == "stale"
        assert not store.candidates("t", "y")
        store.reactivate(model.model_id)
        assert store.candidates("t", "y")

    def test_retire_and_remove(self):
        store = ModelStore()
        model = store.add(_make_captured(0.1))
        store.retire_model(model.model_id)
        assert not model.is_usable
        store.remove(model.model_id)
        assert len(store) == 0

    def test_total_stored_bytes_positive(self):
        store = ModelStore()
        store.add(_make_captured(0.1))
        assert store.total_stored_bytes() > 0

    def test_describe_lists_models(self):
        store = ModelStore()
        store.add(_make_captured(0.1))
        assert "model#" in store.describe()


class TestStaleDeprioritizationAndSupersede:
    """The streaming maintenance loop's store APIs (stale serving, supersede)."""

    def test_include_stale_admits_stale_models(self):
        store = ModelStore()
        model = store.add(_make_captured(0.1))
        store.mark_table_stale("t")
        assert not store.candidates("t", "y")
        assert [m.model_id for m in store.candidates("t", "y", include_stale=True)] == [model.model_id]
        assert store.has_model_for("t", "y", include_stale=True)
        assert not store.has_model_for("t", "y")

    def test_stale_deprioritized_behind_active(self):
        store = ModelStore()
        # The stale model fits better, but active wins the default ranking.
        stale_better = store.add(_make_captured(0.05, model_id_seed=1))
        stale_better.mark_stale()
        active_worse = store.add(_make_captured(5.0, model_id_seed=2))
        best = store.best_model("t", "y", include_stale=True)
        assert best.model_id == active_worse.model_id

    def test_stale_only_population_still_serves(self):
        store = ModelStore()
        model = store.add(_make_captured(0.1))
        model.mark_stale()
        assert store.best_model("t", "y", include_stale=True).model_id == model.model_id
        with pytest.raises(ModelNotFoundError):
            store.best_model("t", "y")

    def test_supersede_links_lineage(self):
        store = ModelStore()
        old = store.add(_make_captured(0.1, model_id_seed=1))
        new = store.add(_make_captured(0.1, model_id_seed=2))
        returned = store.supersede(old.model_id, new.model_id)
        assert returned is old
        assert old.status == "superseded"
        assert not old.is_servable  # unlike stale, superseded is out for good
        assert old.metadata["superseded_by"] == new.model_id
        assert new.metadata["supersedes"] == [old.model_id]
        assert [m.model_id for m in store.candidates("t", "y", include_stale=True)] == [new.model_id]

    def test_supersede_self_rejected(self):
        store = ModelStore()
        model = store.add(_make_captured(0.1))
        with pytest.raises(HarvestError):
            store.supersede(model.model_id, model.model_id)
        with pytest.raises(ModelNotFoundError):
            store.supersede(model.model_id, 999)

    def test_best_model_for_table_prefers_whole_table_coverage(self):
        store = ModelStore()
        fit, inputs, y = _make_fit(0.01, seed=3)
        partial = CapturedModel(
            coverage=ModelCoverage("t", ("x",), "y", predicate_sql="x >= 5"),
            formula="y ~ linear(x)",
            fit=fit,
            quality=judge_fit(fit, y=y, inputs=inputs),
            accepted=True,
        )
        store.add(partial)
        whole = store.add(_make_captured(5.0, model_id_seed=4))  # worse fit, full coverage
        # Table-level consumers (compression, zero-IO scans) need all rows:
        # the whole-table model wins even against a better-fitting segment.
        assert store.best_model_for_table("t").model_id == whole.model_id
        store.remove(whole.model_id)
        assert store.best_model_for_table("t").model_id == partial.model_id

    def test_servable_property_matrix(self):
        model = _make_captured(0.1)
        assert model.is_servable and model.is_usable
        model.mark_stale()
        assert model.is_servable and not model.is_usable
        model.retire()
        assert not model.is_servable


class TestCapturedModel:
    def test_parameter_table_single_model(self):
        model = _make_captured(0.1)
        table = model.parameter_table()
        assert table.num_rows == 1
        assert "residual_se" in table.schema.names

    def test_predict_ungrouped(self):
        model = _make_captured(0.01)
        value = model.predict({"x": 2.0})[0]
        assert value == pytest.approx(5.0, rel=0.05)

    def test_grouped_model_requires_key(self, lofar_model):
        with pytest.raises(ModelNotFoundError):
            lofar_model.predict({"frequency": 0.15})

    def test_grouped_model_predicts_per_group(self, lofar_model, lofar_dataset):
        truth = lofar_dataset.truth_for(1)
        predicted = lofar_model.predict({"frequency": 0.15}, group_key=(1,))[0]
        assert predicted == pytest.approx(truth.p * 0.15**truth.alpha, rel=0.2)

    def test_unknown_group_raises(self, lofar_model):
        with pytest.raises(ModelNotFoundError):
            lofar_model.result_for_group((10_000_000,))

    def test_describe_mentions_family(self, lofar_model):
        assert "powerlaw" in lofar_model.describe()

    def test_stored_bytes_scale_with_groups(self, lofar_model):
        single = _make_captured(0.1)
        assert lofar_model.stored_byte_size() > single.stored_byte_size()
