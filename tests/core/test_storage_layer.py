"""Tests for semantic compression, zero-IO scans and model lifecycle."""

import numpy as np
import pytest

from repro import LawsDatabase
from repro.core.storage.semantic_compression import ModelCompressor
from repro.datasets import lofar
from repro.errors import CompressionError


class TestSemanticCompression:
    def test_lossless_roundtrip(self, lofar_db, lofar_model):
        table = lofar_db.table("measurements")
        compressor = ModelCompressor(quantisation_step=0.0)
        compressed = compressor.compress(table, lofar_model)
        assert compressor.verify_roundtrip(table, compressed)
        rebuilt = compressed.decompress()
        original = table.column("intensity").to_numpy()
        restored = rebuilt.column("intensity").to_numpy()
        valid = compressed.output_validity
        assert np.allclose(original[valid], restored[valid])

    def test_nulls_survive_roundtrip(self, lofar_db, lofar_model):
        table = lofar_db.table("measurements")
        compressed = ModelCompressor().compress(table, lofar_model)
        rebuilt = compressed.decompress()
        assert rebuilt.column("intensity").null_count == table.column("intensity").null_count

    def test_model_only_ratio_matches_paper_ballpark(self, lofar_db, lofar_model):
        """Table 1: parameters are ~5% of the raw data (ours: #sources/#rows driven)."""
        table = lofar_db.table("measurements")
        compressed = ModelCompressor().compress(table, lofar_model)
        assert compressed.stats.model_only_ratio < 0.15
        assert compressed.stats.parameter_bytes > 0

    def test_quantised_compression_smaller_and_bounded_error(self, lofar_db, lofar_model):
        table = lofar_db.table("measurements")
        step = 0.01
        lossless = ModelCompressor(0.0).compress(table, lofar_model)
        lossy = ModelCompressor(step).compress(table, lofar_model)
        assert lossy.stats.lossless_bytes < lossless.stats.lossless_bytes
        rebuilt = lossy.decompress().column("intensity").to_numpy()
        original = table.column("intensity").to_numpy()
        valid = lossy.output_validity
        assert np.max(np.abs(rebuilt[valid] - original[valid])) <= step / 2 + 1e-9

    def test_lossy_reconstruction_uses_model_only(self, lofar_db, lofar_model, lofar_dataset):
        table = lofar_db.table("measurements")
        compressed = ModelCompressor().compress(table, lofar_model)
        lossy = compressed.reconstruct_lossy()
        assert lossy.num_rows == table.num_rows
        # Lossy values follow the model, so per-source they are constant per frequency.
        truth = lofar_dataset.truth_for(1)
        sources = np.array(lossy.column("source").to_pylist())
        freqs = np.array(lossy.column("frequency").to_pylist())
        values = np.array(lossy.column("intensity").to_pylist(), dtype=float)
        mask = (sources == 1) & np.isclose(freqs, 0.15)
        if mask.any():
            assert np.allclose(values[mask], values[mask][0])
            assert values[mask][0] == pytest.approx(truth.p * 0.15**truth.alpha, rel=0.25)

    def test_wrong_table_rejected(self, lofar_db, lofar_model):
        other = lofar_db.table("measurements").rename("other")
        with pytest.raises(CompressionError):
            ModelCompressor().compress(other, lofar_model)

    def test_negative_step_rejected(self):
        with pytest.raises(CompressionError):
            ModelCompressor(quantisation_step=-1.0)

    def test_system_facade_compress(self, lofar_db):
        compressed = lofar_db.compress_table("measurements")
        assert compressed.stats.raw_bytes == lofar_db.table("measurements").byte_size()
        assert "model-only" in compressed.stats.summary()


class TestZeroIO:
    def test_model_scan_reads_no_pages(self, lofar_db):
        comparison = lofar_db.compare_scan("measurements", "intensity")
        assert comparison.model_pages_read == 0
        assert comparison.raw_pages_read > 0
        assert comparison.pages_saved == comparison.raw_pages_read
        assert comparison.io_time_saved > 0
        assert "raw scan" in comparison.summary()

    def test_model_scan_rows_are_parameter_grid(self, lofar_db, lofar_model):
        virtual = lofar_db.zero_io.model_scan(lofar_model)
        fitted_groups = len([r for r in lofar_model.fit.records if r.result is not None])
        assert virtual.num_rows == fitted_groups * 4

    def test_raw_scan_charges_only_projected_columns(self, lofar_db):
        lofar_db.database.reset_io()
        lofar_db.zero_io.raw_scan("measurements", ["intensity"])
        narrow = lofar_db.database.io_snapshot()["bytes_read"]
        lofar_db.database.reset_io()
        lofar_db.zero_io.raw_scan("measurements")
        wide = lofar_db.database.io_snapshot()["bytes_read"]
        assert narrow < wide


class TestModelLifecycle:
    @pytest.fixture()
    def db(self):
        dataset = lofar.generate(num_sources=40, observations_per_source=24, seed=33, anomaly_fraction=0.0)
        db = LawsDatabase()
        db.register_table(dataset.to_table("measurements"))
        db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
        return db

    def test_insert_marks_models_stale(self, db):
        model = db.captured_models("measurements")[0]
        db.insert_rows("measurements", [(1, 0.15, 0.5)])
        assert model.status == "stale"
        assert not db.models.candidates("measurements", "intensity")

    def test_revalidate_reactivates_good_model(self, db):
        db.insert_rows("measurements", [(1, 0.15, None)])  # harmless append
        results = db.lifecycle.revalidate("measurements")
        assert any(r.still_acceptable for r in results)
        assert db.models.candidates("measurements", "intensity")

    def test_revalidate_keeps_degraded_model_stale(self, db):
        # Append garbage observations for every source: the old fit no longer explains the data.
        rng = np.random.default_rng(0)
        rows = []
        for source in range(1, 41):
            for _ in range(40):
                rows.append((source, 0.15, float(rng.uniform(0, 50.0))))
        db.insert_rows("measurements", rows)
        results = db.lifecycle.revalidate("measurements")
        assert all(not r.still_acceptable for r in results)
        assert not db.models.candidates("measurements", "intensity")

    def test_refit_if_needed_refits_after_change(self, db):
        rng = np.random.default_rng(1)
        rows = []
        for source in range(1, 41):
            for _ in range(60):
                rows.append((source, 0.15, float(rng.uniform(0, 50.0))))
        db.insert_rows("measurements", rows)
        db.lifecycle.revalidate("measurements")
        old_model = db.captured_models("measurements")[0]
        # Reactivate so refit_if_needed can find it as the current best.
        db.models.reactivate(old_model.model_id)
        new_model = db.lifecycle.refit_if_needed("measurements", "intensity")
        assert new_model.model_id != old_model.model_id
        assert old_model.status == "retired"

    def test_refit_not_needed_keeps_model(self, db):
        model = db.captured_models("measurements")[0]
        db.insert_rows("measurements", [(1, 0.15, None)])
        kept = db.lifecycle.refit_if_needed("measurements", "intensity")
        assert kept.model_id == model.model_id
        assert kept.status == "active"

    def test_best_model_by_criterion_prefers_powerlaw_over_constant(self, db):
        db.fit("measurements", "intensity ~ constant(frequency)", group_by="source")
        best = db.lifecycle.best_model_by_criterion("measurements", "intensity")
        assert best.family_name == "powerlaw"
