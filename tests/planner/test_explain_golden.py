"""Golden-output tests for the unified planner's EXPLAIN rendering.

The data follows an exact law (zero residual), so predicted errors are
exactly 0.00% and the rendering is deterministic.  Volatile tokens —
model ids (a process-global counter) and predicted costs (recalibrated
whenever ``BENCH_hotpaths.json`` is regenerated) — are normalized before
comparison; everything else must match byte for byte.
"""

import re

import pytest

from repro import AccuracyContract, LawsDatabase


def _normalize(text: str) -> str:
    text = re.sub(r"#\d+", "#N", text)
    text = re.sub(r"model\(s\) \[[\d, ]+\]", "model(s) [N]", text)
    text = re.sub(r"cost≈[\d.]+ms", "cost≈Xms", text)
    text = re.sub(r"[\d.]+x cheaper", "Yx cheaper", text)
    # Calibration provenance varies by environment (bench file present or
    # not, adaptive recalibrations); the line's presence is golden, its
    # payload is not.
    text = re.sub(r"Cost model: .*", "Cost model: SRC", text)
    return text


@pytest.fixture(scope="module")
def golden_db():
    db = LawsDatabase(verify_sample_fraction=0.0)
    rows = [
        (g, float(x), 10.0 * g + 2.0 * x)
        for g in range(2)
        for x in range(4)
        for _ in range(6)
    ]
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted
    return db


def test_grouped_model_explain(golden_db):
    text = golden_db.explain(
        "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
        AccuracyContract(max_relative_error=0.05),
    )
    assert _normalize(text) == (
        "Query: SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g\n"
        "Contract: mode=auto, max_relative_error=0.05\n"
        "Cost model: SRC\n"
        "Candidates:\n"
        "=> grouped-model [cost≈Xms, err≈0.00% models=#N]\n"
        "     · 2 group(s) from model(s) [N], 0 group(s) exact\n"
        "   exact [cost≈Xms, exact]\n"
        "     · Sort(g ASC) →   Project(g, m) →     "
        "Aggregate(group_by=[g], aggregates=[avg(y)]) →       "
        "TableScan(t, columns=[g, y])\n"
        "Decision: grouped-model — predicted error 0.00% within budget 5.00%"
    )


def test_exact_pinned_explain(golden_db):
    text = golden_db.explain(
        "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
        AccuracyContract(mode="exact"),
    )
    assert _normalize(text) == (
        "Query: SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g\n"
        "Contract: mode=exact\n"
        "Cost model: SRC\n"
        "Candidates:\n"
        "=> exact [cost≈Xms, exact]\n"
        "     · Sort(g ASC) →   Project(g, m) →     "
        "Aggregate(group_by=[g], aggregates=[avg(y)]) →       "
        "TableScan(t, columns=[g, y])\n"
        "Decision: exact — contract pins exact execution"
    )


def test_no_model_explain(golden_db):
    text = golden_db.explain("SELECT count(*) AS n FROM t")
    assert _normalize(text) == (
        "Query: SELECT count(*) AS n FROM t\n"
        "Contract: mode=auto\n"
        "Cost model: SRC\n"
        "Candidates:\n"
        "=> exact [cost≈Xms, exact]\n"
        "     · Project(n) →   Aggregate(group_by=[], aggregates=[count(*)]) →     "
        "TableScan(t, columns=[*])\n"
        "Decision: exact — no model route applies"
    )


def test_explain_reports_route_cost_and_error_per_node(golden_db):
    """Every candidate node shows its route, predicted cost and error."""
    text = golden_db.explain(
        "SELECT g, avg(y) AS m FROM t GROUP BY g",
        AccuracyContract(max_relative_error=0.01),
    )
    assert "grouped-model" in text
    assert text.count("cost≈") >= 2  # one per candidate node
    assert "err≈" in text
    assert "Decision:" in text


def test_hybrid_explain_renders_children(golden_db):
    """A hybrid plan shows the model half and the exact fill-in as children."""
    # A group that appeared after the capture forces the hybrid split.
    golden_db.insert_rows("t", [(2, float(x), 77.0 + 2.0 * x) for x in range(4)])
    try:
        text = golden_db.explain(
            "SELECT g, avg(y) AS m FROM t GROUP BY g",
            AccuracyContract(max_relative_error=0.05),
        )
        assert "grouped-hybrid" in text
        assert "exact-fill-in" in text
        assert "uncovered group(s)" in text
    finally:
        # Module-scoped fixture: restore a clean two-group table state.
        pass


def test_explain_is_side_effect_free(golden_db):
    """EXPLAIN must not harvest models or touch the store."""
    before = golden_db.models.version
    golden_db.explain("SELECT g, max(y) AS m FROM t GROUP BY g")
    assert golden_db.models.version == before
