"""Routing decisions of the unified accuracy-aware planner.

Covers: auto mode picking the model path when the contract's error budget
admits it and falling back to exact otherwise; pinned exact/approx modes;
the deadline tiebreak; every query class the two old entry points handled
flowing through ``query()``; the planner plan cache; and the deprecation
shims delegating faithfully.
"""

import numpy as np
import pytest

from repro import AccuracyContract, LawsDatabase
from repro.core.planner import CostModel, OperatorCosts
from repro.errors import ApproximationError, ReproError


def _make_db(rows, **kwargs):
    db = LawsDatabase(**kwargs)
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    return db


def _linear_rows(rng, groups=5, xs=4, reps=8, sigma=0.2):
    rows = []
    for g in range(groups):
        for x in range(xs):
            for _ in range(reps):
                rows.append((g, float(x), 1.0 + g + 0.6 * x + rng.normal(0, sigma)))
    return rows


@pytest.fixture(scope="module")
def planned_db():
    rng = np.random.default_rng(7)
    db = _make_db(_linear_rows(rng), verify_sample_fraction=0.0)
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted
    return db


class TestContract:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ReproError):
            AccuracyContract(mode="fast")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ReproError):
            AccuracyContract(max_relative_error=-0.1)
        with pytest.raises(ReproError):
            AccuracyContract(deadline_ms=0)
        with pytest.raises(ReproError):
            AccuracyContract(verify_fraction=1.5)

    def test_describe_mentions_budget(self):
        text = AccuracyContract(max_relative_error=0.05, deadline_ms=10).describe()
        assert "max_relative_error=0.05" in text
        assert "deadline_ms=10" in text


class TestAutoRouting:
    def test_budget_admits_model_path(self, planned_db):
        answer = planned_db.query(
            "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
            AccuracyContract(max_relative_error=0.5),
        )
        assert answer.plan.is_model_route
        assert answer.route_taken in ("grouped-model", "grouped-hybrid")
        assert not answer.is_exact
        assert answer.approx is not None and answer.approx.used_model_ids

    def test_tight_budget_falls_back_to_exact(self, planned_db):
        answer = planned_db.query(
            "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
            AccuracyContract(max_relative_error=1e-12),
        )
        assert not answer.plan.is_model_route
        assert answer.route_taken == "exact"
        assert answer.is_exact
        assert "exceeds budget" in answer.plan.reason

    def test_no_budget_routes_by_cost(self, planned_db):
        # Without an error budget the decision is purely cost-based: on a
        # 160-row table the fixed model-evaluation cost loses to the scan...
        sql = "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g"
        answer = planned_db.query(sql)
        assert not answer.plan.is_model_route
        assert "cheaper" in answer.plan.reason
        # ...but when scanning is expensive (big table / slow device), the
        # same query cost-routes to the model path.
        slow = CostModel(OperatorCosts(scan_seconds_per_row=1.0))
        original = planned_db.planner.cost_model
        planned_db.planner.cost_model = slow
        planned_db.planner._plan_cache.clear()
        try:
            answer = planned_db.query(sql)
            assert answer.plan.is_model_route
        finally:
            planned_db.planner.cost_model = original
            planned_db.planner._plan_cache.clear()

    def test_no_model_no_route(self, planned_db):
        # The z column has no captured model; auto mode must go exact.
        answer = planned_db.query("SELECT count(*) AS n FROM t WHERE g = 1")
        assert answer.route_taken == "exact"
        assert answer.plan.reason == "no model route applies"

    def test_exact_result_matches_database(self, planned_db):
        via_planner = planned_db.query(
            "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
            AccuracyContract(mode="exact"),
        )
        direct = planned_db.database.sql("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g")
        assert via_planner.rows() == direct.rows()

    def test_deadline_prefers_model_route(self, planned_db):
        # A cost model in which exact execution is predictably slow makes
        # the deadline decide even without an error budget.
        slow = CostModel(OperatorCosts(scan_seconds_per_row=1.0))
        original = planned_db.planner.cost_model
        planned_db.planner.cost_model = slow
        try:
            answer = planned_db.query(
                "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
                AccuracyContract(deadline_ms=5.0),
            )
            assert answer.plan.is_model_route
            assert "deadline" in answer.plan.reason
        finally:
            planned_db.planner.cost_model = original


class TestPinnedModes:
    def test_exact_mode_pins_exact(self, planned_db):
        answer = planned_db.query(
            "SELECT g, avg(y) AS m FROM t GROUP BY g",
            AccuracyContract(mode="exact"),
        )
        assert answer.is_exact and answer.route_taken == "exact"
        assert answer.query_result is not None

    def test_approx_mode_pins_model(self, planned_db):
        answer = planned_db.query(
            "SELECT g, avg(y) AS m FROM t GROUP BY g",
            AccuracyContract(mode="approx"),
        )
        assert not answer.is_exact
        assert answer.route_taken in ("grouped-model", "grouped-hybrid")

    def test_approx_mode_without_fallback_raises(self, planned_db):
        with pytest.raises(ApproximationError):
            planned_db.query(
                "SELECT t.y FROM t JOIN t ON g = g",
                AccuracyContract(mode="approx", allow_exact_fallback=False),
            )


class TestQueryClasses:
    """query() answers every class the two old entry points handled."""

    def test_point(self, planned_db):
        answer = planned_db.query(
            "SELECT y FROM t WHERE g = 2 AND x = 1",
            AccuracyContract(mode="approx"),
        )
        assert answer.route_taken == "point"
        assert answer.error_estimate("y") is not None

    def test_range_aggregate(self, planned_db):
        answer = planned_db.query(
            "SELECT avg(y) AS m FROM t WHERE x BETWEEN 1 AND 2",
            AccuracyContract(mode="approx"),
        )
        assert answer.route_taken == "range-aggregate"

    def test_virtual_table(self, planned_db):
        answer = planned_db.query(
            "SELECT y FROM t WHERE g = 1 ORDER BY y",
            AccuracyContract(mode="approx"),
        )
        assert answer.route_taken == "virtual-table"

    def test_grouped(self, planned_db):
        answer = planned_db.query(
            "SELECT g, sum(y) AS s FROM t GROUP BY g",
            AccuracyContract(mode="approx"),
        )
        assert answer.route_taken in ("grouped-model", "grouped-hybrid")

    def test_exact_fallback(self, planned_db):
        answer = planned_db.query("SELECT * FROM t", AccuracyContract(mode="approx"))
        assert answer.route_taken == "exact-fallback"
        assert answer.is_exact

    def test_analytic_aggregate(self):
        rng = np.random.default_rng(11)
        db = LawsDatabase(verify_sample_fraction=0.0)
        x = rng.uniform(0, 10, 400)
        db.load_dict("u", {"x": x.tolist(), "y": (2.0 * x + 5.0 + rng.normal(0, 0.1, 400)).tolist()})
        assert db.fit("u", "y ~ linear(x)").accepted
        answer = db.query("SELECT avg(y) AS m FROM u", AccuracyContract(mode="approx"))
        assert answer.route_taken == "analytic-aggregate"

    def test_ddl_and_dml(self, planned_db):
        create = planned_db.query("CREATE TABLE scratch (a INT64, b FLOAT64)")
        assert create.route_taken == "create" and create.is_exact
        insert = planned_db.query("INSERT INTO scratch VALUES (1, 2.0)")
        assert insert.route_taken == "insert"
        assert planned_db.query("SELECT count(*) AS n FROM scratch").scalar() == 1


class TestPlanCache:
    def test_repeated_plans_hit_the_cache(self, planned_db):
        sql = "SELECT g, avg(y) AS m FROM t GROUP BY g"
        planned_db.planner.plan(sql)
        before = planned_db.planner.plan_cache_info()
        planned_db.planner.plan(sql)
        after = planned_db.planner.plan_cache_info()
        assert after["hits"] == before["hits"] + 1

    def test_data_change_invalidates(self, planned_db):
        sql = "SELECT g, avg(y) AS m FROM t GROUP BY g"
        planned_db.planner.plan(sql)
        misses_before = planned_db.planner.plan_cache_info()["misses"]
        planned_db.insert_rows("t", [(0, 1.0, 2.6)])
        planned_db.planner.plan(sql)
        assert planned_db.planner.plan_cache_info()["misses"] == misses_before + 1


class TestDeprecatedShims:
    def test_sql_shim(self, planned_db):
        with pytest.deprecated_call():
            result = planned_db.sql("SELECT count(*) AS n FROM t")
        assert result.scalar() == planned_db.query("SELECT count(*) AS n FROM t").scalar()

    def test_approximate_sql_shim(self, planned_db):
        with pytest.deprecated_call():
            answer = planned_db.approximate_sql("SELECT g, avg(y) AS m FROM t GROUP BY g")
        assert answer.route in ("grouped-model", "grouped-hybrid")

    def test_approximate_sql_strict_shim(self, planned_db):
        with pytest.deprecated_call():
            with pytest.raises(ApproximationError):
                planned_db.approximate_sql(
                    "SELECT t.y FROM t JOIN t ON g = g", allow_fallback=False
                )

    def test_compare_sql_shim(self, planned_db):
        with pytest.deprecated_call():
            comparison = planned_db.compare_sql("SELECT g, avg(y) AS m FROM t GROUP BY g")
        assert comparison["route"] in ("grouped-model", "grouped-hybrid")
        assert comparison["max_relative_error"] < 0.10
        assert comparison["exact"].rows()
