"""Differential tests for hybrid plans against the exact oracle.

Hybrid plans serve healthy groups from models and compute uncovered
groups exactly; the merged result must match exact execution group for
group — near-exactly for the exactly-computed groups, within the model's
error band for the model-served ones.  Mirrors the PR-2/PR-3 oracle
discipline at the unified-planner level.
"""

import numpy as np
import pytest

from repro import AccuracyContract, LawsDatabase


def _rows(rng, groups, xs=4, reps=6, sigma=0.1):
    rows = []
    for g in groups:
        for x in range(xs):
            for _ in range(reps):
                rows.append((g, float(x), 2.0 + 3.0 * g + 1.5 * x + rng.normal(0, sigma)))
    return rows


@pytest.fixture()
def hybrid_db():
    rng = np.random.default_rng(21)
    db = LawsDatabase(verify_sample_fraction=0.0)
    rows = _rows(rng, groups=range(4))
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
    # Two groups appear only after the capture: no per-group fit covers
    # them, so any GROUP BY over all groups must go hybrid.
    rng2 = np.random.default_rng(22)
    late = _rows(rng2, groups=[4, 5])
    db.database.insert_rows("t", late)  # append without touching model staleness
    return db


HYBRID_QUERIES = [
    "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
    "SELECT g, sum(y) AS s FROM t GROUP BY g ORDER BY g",
    "SELECT g, count(y) AS n FROM t GROUP BY g ORDER BY g",
    "SELECT g, min(y) AS lo, max(y) AS hi FROM t GROUP BY g ORDER BY g",
    "SELECT g, avg(y) AS m FROM t WHERE x >= 1 GROUP BY g ORDER BY g",
]


@pytest.mark.parametrize("sql", HYBRID_QUERIES)
def test_hybrid_matches_exact_oracle(hybrid_db, sql):
    answer = hybrid_db.query(sql, AccuracyContract(max_relative_error=0.5))
    assert answer.route_taken == "grouped-hybrid", answer.plan.reason
    assert answer.approx is not None

    oracle = hybrid_db.database.sql(sql)
    approx_rows = answer.rows()
    exact_rows = oracle.rows()
    assert len(approx_rows) == len(exact_rows)
    for approx_row, exact_row in zip(approx_rows, exact_rows):
        assert approx_row[0] == exact_row[0]  # same groups in the same order
        key = (approx_row[0],)
        served_exactly = answer.approx.group_routes.get(key) == "exact"
        for a, e in zip(approx_row[1:], exact_row[1:]):
            if served_exactly:
                assert a == pytest.approx(e, rel=1e-9, abs=1e-9)
            else:
                assert a == pytest.approx(e, rel=0.15, abs=0.5)


def test_hybrid_split_attributes_every_group(hybrid_db):
    answer = hybrid_db.query(
        "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
        AccuracyContract(max_relative_error=0.5),
    )
    routes = answer.approx.group_routes
    assert {key[0] for key in routes} == {0, 1, 2, 3, 4, 5}
    exact_groups = {key[0] for key, route in routes.items() if route == "exact"}
    model_groups = {key[0] for key, route in routes.items() if route.startswith("model#")}
    assert exact_groups == {4, 5}
    assert model_groups == {0, 1, 2, 3}


def test_hybrid_plan_node_predicts_the_split(hybrid_db):
    plan = hybrid_db.plan(
        "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
        AccuracyContract(max_relative_error=0.5),
    )
    assert plan.chosen.route == "grouped-hybrid"
    assert len(plan.chosen.children) == 2
    model_half, exact_half = plan.chosen.children
    assert model_half.route == "grouped-model"
    assert exact_half.route == "exact-fill-in"
    assert "4 group(s)" in model_half.detail
    assert "2 uncovered group(s)" in exact_half.detail


def test_model_served_groups_carry_error_bands(hybrid_db):
    answer = hybrid_db.query(
        "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
        AccuracyContract(max_relative_error=0.5),
    )
    for g in (0, 1, 2, 3):
        estimate = answer.approx.group_error_estimate(g, "m")
        assert estimate is not None
        assert np.isfinite(estimate.standard_error)
