"""The closed feedback loop: observed errors demote models, maintenance refits.

The acceptance scenario of the unified planner: a model that was healthy
at capture time starts lying after the data shifts underneath it.  The
planner — sampling executed plans against exact execution — records the
observed relative errors into the store, the quality policy flags the
evidence, the model is demoted, and the next maintenance tick refits it
instead of quietly re-validating.
"""

import numpy as np
import pytest

from repro import AccuracyContract, LawsDatabase
from repro.core.quality import QualityPolicy


class TestQualityPolicyObservedErrors:
    def test_too_few_samples_never_flag(self):
        policy = QualityPolicy()
        assert not policy.flags_observed_errors([9.9])
        assert not policy.flags_observed_errors([9.9, 9.9])

    def test_median_gates_the_decision(self):
        policy = QualityPolicy(max_observed_relative_error=0.2)
        # One adversarial outlier among good samples must not demote.
        assert not policy.flags_observed_errors([0.01, 5.0, 0.02])
        # A consistently lying model does.
        assert policy.flags_observed_errors([0.5, 0.6, 0.7])

    def test_non_finite_samples_are_ignored(self):
        policy = QualityPolicy()
        assert not policy.flags_observed_errors([float("inf"), float("nan"), 0.5])


@pytest.fixture()
def shifting_db():
    """A database whose captured law stops holding after an append."""
    rng = np.random.default_rng(3)
    db = LawsDatabase(verify_sample_fraction=0.0)
    x = rng.uniform(0, 10, 200)
    db.load_dict(
        "t", {"x": x.tolist(), "y": (3.0 * x + rng.normal(0, 0.05, 200)).tolist()}
    )
    report = db.fit("t", "y ~ linear(x)")
    assert report.accepted
    db.watch("t", "y")
    return db, report.model


def test_observed_error_sample_demotes_and_maintenance_refits(shifting_db):
    db, model = shifting_db
    # The data shifts: ten times as many rows now follow y = 7x.  The
    # captured y = 3x model is stale-but-servable and still predicted
    # healthy from its capture-time quality.
    rng = np.random.default_rng(4)
    x_new = rng.uniform(0, 10, 2000)
    db.insert_rows(
        "t", list(zip(x_new.tolist(), (7.0 * x_new + rng.normal(0, 0.05, 2000)).tolist()))
    )

    # Three audited executions: the planner serves from the model (the
    # predicted error still fits the generous budget) and verifies each
    # answer against exact execution.
    contract = AccuracyContract(max_relative_error=0.5, verify_fraction=1.0)
    observed = []
    for _ in range(3):
        answer = db.query("SELECT avg(y) AS m FROM t", contract)
        assert not answer.is_exact, answer.plan.reason
        assert answer.feedback is not None
        observed.append(answer.observed_relative_error)
    assert all(err is not None and err > 0.2 for err in observed)

    # The third sample crossed the quality policy's evidence bar: the
    # model is demoted (stale + flagged for refit).
    assert model.observed_errors == pytest.approx(observed)
    assert model.metadata.get("planner_demoted")
    assert model.status == "stale"

    # The maintenance tick refits the demoted model — a quiet drift
    # detector must not talk it out of it — and supersedes it.
    report = db.maintain()
    refits = report.actions_of_kind("refit")
    assert len(refits) == 1
    action = refits[0]
    assert "planner demotion" in action.details
    assert action.old_model_ids == (model.model_id,)
    assert action.new_model_ids, action.details
    assert model.status == "superseded"
    assert "planner_demoted" not in model.metadata

    # The refitted model serves the post-shift law: a fresh audited query
    # now observes a small error.
    answer = db.query("SELECT avg(y) AS m FROM t", contract)
    assert not answer.is_exact
    assert answer.observed_relative_error is not None
    assert answer.observed_relative_error < 0.05


def test_healthy_model_is_not_demoted(shifting_db):
    db, model = shifting_db
    contract = AccuracyContract(max_relative_error=0.5, verify_fraction=1.0)
    for _ in range(4):
        answer = db.query("SELECT avg(y) AS m FROM t", contract)
        assert not answer.is_exact
        assert answer.feedback is not None
        assert not answer.feedback.demoted_model_ids
    assert model.status == "active"
    assert "planner_demoted" not in model.metadata


def test_row_order_differences_are_not_model_error():
    """Grouped verification aligns by group key, not row position.

    Without ORDER BY the grouped route emits groups in sorted order while
    exact execution emits first-seen order; a pure ordering difference must
    not read as observed error (and must never demote a healthy model).
    """
    rng = np.random.default_rng(9)
    db = LawsDatabase(verify_sample_fraction=0.0)
    rows = []
    for g in (5, 4, 3, 2, 1, 0):  # first-seen order is descending
        for x in range(4):
            for _ in range(8):
                rows.append((g, float(x), 1.0 + 10.0 * g + 0.5 * x + rng.normal(0, 0.05)))
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted
    contract = AccuracyContract(max_relative_error=0.5, verify_fraction=1.0)
    for _ in range(3):
        answer = db.query("SELECT g, avg(y) AS m FROM t GROUP BY g", contract)
        assert not answer.is_exact
        assert answer.feedback is not None
        assert answer.observed_relative_error is not None
        assert answer.observed_relative_error < 0.05
        assert not answer.feedback.demoted_model_ids
    assert report.model.status == "active"


def test_per_model_error_attribution():
    """Errors are attributed to the model that served the group, so one
    lying model cannot demote a healthy co-serving model."""
    rng = np.random.default_rng(13)
    db = LawsDatabase(verify_sample_fraction=0.0)
    rows = []
    for g in range(4):
        for x in range(4):
            for _ in range(8):
                rows.append((g, float(x), 5.0 + 2.0 * g + 1.0 * x + rng.normal(0, 0.05)))
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted
    contract = AccuracyContract(max_relative_error=0.5, verify_fraction=1.0)
    answer = db.query("SELECT g, avg(y) AS m FROM t GROUP BY g", contract)
    assert not answer.is_exact
    # Healthy data: the model's recorded evidence matches its own groups'
    # observed error, well under the demotion bar.
    assert report.model.observed_errors
    assert all(err < 0.05 for err in report.model.observed_errors)


def test_verification_is_sampled_not_constant(shifting_db):
    db, _ = shifting_db
    # verify_fraction=0 never audits; the answer carries no feedback.
    answer = db.query(
        "SELECT avg(y) AS m FROM t",
        AccuracyContract(max_relative_error=0.5, verify_fraction=0.0),
    )
    assert answer.feedback is None
