"""Tests for expression evaluation (including SQL NULL semantics)."""

import pytest

from repro.db.expressions import (
    Between,
    BinaryOp,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
    col,
    lit,
    truthy_mask,
)
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ExecutionError


@pytest.fixture()
def table():
    return Table.from_dict(
        "t",
        {
            "a": [1, 2, 3, None],
            "b": [10.0, 20.0, 30.0, 40.0],
            "s": ["x", "y", "x", "z"],
            "flag": [True, False, True, True],
        },
    )


class TestArithmetic:
    def test_addition(self, table):
        result = (col("a") + col("b")).evaluate(table)
        assert result.to_pylist() == [11.0, 22.0, 33.0, None]

    def test_int_plus_int_stays_int(self, table):
        result = (col("a") + lit(1)).evaluate(table)
        assert result.dtype is DataType.INT64
        assert result.to_pylist() == [2, 3, 4, None]

    def test_division_produces_float(self, table):
        result = (col("b") / lit(4)).evaluate(table)
        assert result.dtype is DataType.FLOAT64
        assert result.to_pylist()[0] == 2.5

    def test_division_by_zero_is_null(self, table):
        result = (col("b") / lit(0)).evaluate(table)
        assert result.to_pylist() == [None, None, None, None]

    def test_modulo(self, table):
        result = (col("a") % lit(2)).evaluate(table)
        assert result.to_pylist() == [1, 0, 1, None]

    def test_unary_negation(self, table):
        result = UnaryOp("-", col("b")).evaluate(table)
        assert result.to_pylist()[0] == -10.0

    def test_arithmetic_on_strings_fails(self, table):
        with pytest.raises(ExecutionError):
            (col("s") + lit(1)).evaluate(table)


class TestComparisons:
    def test_greater_than(self, table):
        result = (col("b") > lit(15)).evaluate(table)
        assert result.to_pylist() == [False, True, True, True]

    def test_null_comparison_is_null(self, table):
        result = (col("a") > lit(1)).evaluate(table)
        # row with NULL a evaluates to NULL (validity False)
        assert result.validity.tolist() == [True, True, True, False]

    def test_string_equality(self, table):
        result = col("s").eq(lit("x")).evaluate(table)
        assert result.to_pylist() == [True, False, True, False]

    def test_string_vs_number_comparison_fails(self, table):
        with pytest.raises(ExecutionError):
            col("s").eq(lit(1)).evaluate(table)

    def test_truthy_mask_treats_null_as_false(self, table):
        mask = truthy_mask((col("a") > lit(1)).evaluate(table))
        assert mask.tolist() == [False, True, True, False]

    def test_truthy_mask_requires_bool(self, table):
        with pytest.raises(ExecutionError):
            truthy_mask(col("b").evaluate(table))


class TestBooleanLogic:
    def test_and(self, table):
        expr = (col("b") > lit(15)).and_(col("s").eq(lit("x")))
        assert expr.evaluate(table).to_pylist() == [False, False, True, False]

    def test_or(self, table):
        expr = (col("b") > lit(35)).or_(col("s").eq(lit("y")))
        assert expr.evaluate(table).to_pylist() == [False, True, False, True]

    def test_not(self, table):
        expr = UnaryOp("not", col("flag"))
        assert expr.evaluate(table).to_pylist() == [False, True, False, False]

    def test_null_and_false_is_false(self, table):
        # a > 1 is NULL on the last row; AND with FALSE must yield FALSE (valid).
        expr = BinaryOp("and", col("a") > lit(1), col("b") < lit(0))
        result = expr.evaluate(table)
        assert bool(result.validity[3])
        assert result.to_pylist()[3] is False

    def test_null_or_true_is_true(self, table):
        expr = BinaryOp("or", col("a") > lit(1), col("b") > lit(0))
        result = expr.evaluate(table)
        assert result.to_pylist()[3] is True

    def test_and_requires_booleans(self, table):
        with pytest.raises(ExecutionError):
            BinaryOp("and", col("a"), col("b")).evaluate(table)


class TestOtherOperators:
    def test_between_inclusive(self, table):
        expr = Between(col("b"), lit(20.0), lit(30.0))
        assert expr.evaluate(table).to_pylist() == [False, True, True, False]

    def test_in_list(self, table):
        expr = InList(col("s"), [lit("x"), lit("z")])
        assert expr.evaluate(table).to_pylist() == [True, False, True, True]

    def test_empty_in_list(self, table):
        expr = InList(col("s"), [])
        assert expr.evaluate(table).to_pylist() == [False, False, False, False]

    def test_is_null(self, table):
        assert IsNull(col("a")).evaluate(table).to_pylist() == [False, False, False, True]

    def test_is_not_null(self, table):
        assert IsNull(col("a"), negated=True).evaluate(table).to_pylist() == [True, True, True, False]

    def test_function_call_sqrt(self, table):
        result = FunctionCall("sqrt", (col("b"),)).evaluate(table)
        assert result.to_pylist()[0] == pytest.approx(10.0**0.5)

    def test_function_call_power_two_args(self, table):
        result = FunctionCall("power", (col("b"), lit(2))).evaluate(table)
        assert result.to_pylist()[1] == pytest.approx(400.0)

    def test_log_of_negative_is_null(self):
        table = Table.from_dict("t", {"x": [-1.0, 1.0]})
        result = FunctionCall("ln", (col("x"),)).evaluate(table)
        assert result.to_pylist() == [None, 0.0]

    def test_unknown_function_raises(self, table):
        with pytest.raises(ExecutionError):
            FunctionCall("nope", (col("b"),)).evaluate(table)

    def test_literal_none(self, table):
        result = Literal(None).evaluate(table)
        assert result.null_count == table.num_rows

    def test_referenced_columns(self):
        expr = Between(col("a"), col("lo"), lit(2)).and_(col("b").eq(lit(1)))
        assert expr.referenced_columns() == {"a", "lo", "b"}

    def test_evaluate_scalar(self):
        expr = (col("x") * lit(2)) + lit(1)
        assert expr.evaluate_scalar({"x": 5}) == 11
