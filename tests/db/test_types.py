"""Tests for the column type system."""

import numpy as np
import pytest

from repro.db.types import DataType, is_null, null_value, python_value
from repro.errors import TypeMismatchError


class TestInference:
    def test_infer_int(self):
        assert DataType.infer(3) is DataType.INT64

    def test_infer_float(self):
        assert DataType.infer(3.5) is DataType.FLOAT64

    def test_infer_bool_not_int(self):
        assert DataType.infer(True) is DataType.BOOL

    def test_infer_string(self):
        assert DataType.infer("x") is DataType.STRING

    def test_infer_numpy_scalars(self):
        assert DataType.infer(np.int64(4)) is DataType.INT64
        assert DataType.infer(np.float64(4.5)) is DataType.FLOAT64
        assert DataType.infer(np.bool_(True)) is DataType.BOOL

    def test_infer_unsupported(self):
        with pytest.raises(TypeMismatchError):
            DataType.infer(object())

    def test_infer_common_promotes_int_to_float(self):
        assert DataType.infer_common([1, 2.5, None]) is DataType.FLOAT64

    def test_infer_common_all_int(self):
        assert DataType.infer_common([1, 2, 3]) is DataType.INT64

    def test_infer_common_empty_defaults_to_float(self):
        assert DataType.infer_common([None, None]) is DataType.FLOAT64

    def test_infer_common_mixed_raises(self):
        with pytest.raises(TypeMismatchError):
            DataType.infer_common([1, "a"])


class TestCoercion:
    def test_int_accepts_integral_float(self):
        assert DataType.INT64.coerce(3.0) == 3

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            DataType.INT64.coerce(3.5)

    def test_int_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            DataType.INT64.coerce(True)

    def test_float_accepts_int(self):
        assert DataType.FLOAT64.coerce(3) == 3.0

    def test_string_rejects_number(self):
        with pytest.raises(TypeMismatchError):
            DataType.STRING.coerce(3)

    def test_bool_rejects_int(self):
        with pytest.raises(TypeMismatchError):
            DataType.BOOL.coerce(1)

    def test_none_passes_through(self):
        assert DataType.INT64.coerce(None) is None


class TestNullHandling:
    @pytest.mark.parametrize("dtype", list(DataType))
    def test_null_value_is_null(self, dtype):
        sentinel = null_value(dtype)
        if dtype is DataType.BOOL:
            # BOOL relies on the validity mask only.
            assert python_value(dtype, sentinel, valid=False) is None
        else:
            assert is_null(dtype, sentinel)

    def test_python_value_roundtrip(self):
        assert python_value(DataType.INT64, np.int64(7)) == 7
        assert python_value(DataType.FLOAT64, np.float64(7.5)) == 7.5
        assert python_value(DataType.BOOL, np.bool_(True)) is True
        assert python_value(DataType.STRING, "s") == "s"

    def test_float_nan_is_null(self):
        assert is_null(DataType.FLOAT64, float("nan"))

    def test_regular_values_not_null(self):
        assert not is_null(DataType.INT64, np.int64(0))
        assert not is_null(DataType.FLOAT64, 0.0)


class TestByteWidths:
    def test_numeric_widths(self):
        assert DataType.INT64.byte_width == 8
        assert DataType.FLOAT64.byte_width == 8

    def test_string_width_is_nominal(self):
        assert DataType.STRING.byte_width == 16

    def test_is_numeric(self):
        assert DataType.INT64.is_numeric
        assert DataType.FLOAT64.is_numeric
        assert not DataType.STRING.is_numeric
        assert not DataType.BOOL.is_numeric
