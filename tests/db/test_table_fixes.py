"""Regression tests for Table.with_column ordering and vectorized sort_by."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.column import Column
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType


@pytest.fixture
def table():
    return Table.from_dict(
        "t",
        {
            "a": [3, 1, None, 2],
            "b": ["x", "y", "z", "w"],
            "c": [1.0, 2.0, 3.0, 4.0],
        },
    )


class TestWithColumn:
    def test_replacing_keeps_schema_position(self, table):
        replaced = table.with_column("b", Column.from_values(DataType.STRING, list("pqrs")))
        assert replaced.schema.names == ["a", "b", "c"]
        assert replaced.to_pydict()["b"] == ["p", "q", "r", "s"]

    def test_replacing_first_column_keeps_row_shape(self, table):
        replaced = table.with_column("a", Column.from_values(DataType.INT64, [9, 8, 7, 6]))
        assert replaced.schema.names == ["a", "b", "c"]
        assert replaced.to_rows()[0] == (9, "x", 1.0)

    def test_replacement_may_change_dtype_in_place(self, table):
        replaced = table.with_column("a", Column.from_values(DataType.FLOAT64, [0.5] * 4))
        assert replaced.schema.names == ["a", "b", "c"]
        assert replaced.schema.dtype_of("a") is DataType.FLOAT64

    def test_new_column_appends_at_end(self, table):
        extended = table.with_column("d", Column.from_values(DataType.BOOL, [True] * 4))
        assert extended.schema.names == ["a", "b", "c", "d"]


class TestSortBy:
    def test_multi_key_golden_order(self):
        t = Table.from_dict(
            "t",
            {
                "k": ["b", "a", "b", "a", "c"],
                "v": [2, 9, 1, 3, 5],
            },
        )
        result = t.sort_by([("k", True), ("v", False)])
        assert result.to_rows() == [
            ("a", 9),
            ("a", 3),
            ("b", 2),
            ("b", 1),
            ("c", 5),
        ]

    def test_descending_with_nulls_last(self):
        t = Table.from_dict("t", {"a": [2, None, 5, 1, None, 3]})
        result = t.sort_by([("a", False)])
        assert result.to_pydict()["a"] == [5, 3, 2, 1, None, None]

    def test_ascending_with_nulls_last(self):
        t = Table.from_dict("t", {"a": [2, None, 5, 1, None, 3]})
        result = t.sort_by([("a", True)])
        assert result.to_pydict()["a"] == [1, 2, 3, 5, None, None]

    def test_all_null_key_preserves_order_via_secondary(self):
        t = Table.from_dict("t", {"a": [None, None, None], "b": [3, 1, 2]})
        result = t.sort_by([("a", True), ("b", True)])
        assert result.to_pydict()["b"] == [1, 2, 3]

    def test_stability_on_ties(self):
        t = Table.from_dict("t", {"k": [1, 1, 1, 0], "v": [10, 20, 30, 40]})
        result = t.sort_by([("k", True)])
        # Equal keys keep their original row order (stable), both directions.
        assert result.to_pydict()["v"] == [40, 10, 20, 30]
        result_desc = t.sort_by([("k", False)])
        assert result_desc.to_pydict()["v"] == [10, 20, 30, 40]

    def test_string_descending_nulls_last(self):
        t = Table.from_dict("t", {"s": ["m", None, "z", "a"]})
        result = t.sort_by([("s", False)])
        assert result.to_pydict()["s"] == ["z", "m", "a", None]

    def test_mixed_direction_multi_key_with_nulls(self):
        t = Table.from_dict(
            "t",
            {
                "g": ["x", "x", "y", "y", None, "x"],
                "v": [1.5, None, 2.5, 0.5, 9.0, 3.5],
            },
        )
        result = t.sort_by([("g", True), ("v", False)])
        assert result.to_rows() == [
            ("x", 3.5),
            ("x", 1.5),
            ("x", None),
            ("y", 2.5),
            ("y", 0.5),
            (None, 9.0),
        ]

    def test_matches_python_oracle_randomized(self):
        rng = np.random.default_rng(7)
        n = 200
        ks = [None if rng.random() < 0.15 else int(rng.integers(0, 5)) for _ in range(n)]
        vs = [None if rng.random() < 0.15 else float(rng.integers(0, 8)) for _ in range(n)]
        t = Table.from_dict("t", {"k": ks, "v": vs, "i": list(range(n))})
        for asc_k in (True, False):
            for asc_v in (True, False):
                got = t.sort_by([("k", asc_k), ("v", asc_v)]).to_rows()

                def oracle_key(row):
                    k, v, _ = row
                    k_rank = (1, 0) if k is None else (0, k if asc_k else -k)
                    v_rank = (1, 0.0) if v is None else (0.0, v if asc_v else -v)
                    return (k_rank, v_rank)

                expected = sorted(t.to_rows(), key=oracle_key)
                assert got == expected, (asc_k, asc_v)
