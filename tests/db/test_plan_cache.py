"""SQL plan cache: hits on repeated text, invalidation on catalog changes."""

import pytest

from repro.db.database import Database


@pytest.fixture()
def db():
    database = Database()
    database.load_dict("m", {"g": [1, 1, 2], "v": [1.0, 2.0, 3.0]})
    return database


QUERY = "SELECT g, sum(v) AS s FROM m GROUP BY g ORDER BY g"


class TestHits:
    def test_repeated_query_hits_cache(self, db):
        first = db.query(QUERY).to_rows()
        info0 = db.plan_cache_info()
        second = db.query(QUERY).to_rows()
        info1 = db.plan_cache_info()
        assert first == second == [(1, 3.0), (2, 3.0)]
        assert info1["hits"] == info0["hits"] + 1
        assert info1["misses"] == info0["misses"]

    def test_different_text_misses(self, db):
        db.query(QUERY)
        misses = db.plan_cache_info()["misses"]
        db.query("SELECT count(*) AS n FROM m")
        assert db.plan_cache_info()["misses"] == misses + 1

    def test_explain_shares_the_cache(self, db):
        db.explain(QUERY)
        hits = db.plan_cache_info()["hits"]
        db.query(QUERY)
        assert db.plan_cache_info()["hits"] == hits + 1


class TestInvalidation:
    def test_insert_invalidates_and_results_stay_fresh(self, db):
        assert db.sql("SELECT count(*) AS n FROM m").scalar() == 3
        db.sql("INSERT INTO m VALUES (2, 4.0)")
        assert db.sql("SELECT count(*) AS n FROM m").scalar() == 4
        assert db.plan_cache_info()["invalidations"] >= 1

    def test_programmatic_append_invalidates(self, db):
        assert db.sql(QUERY).rows() == [(1, 3.0), (2, 3.0)]
        db.insert_rows("m", [(1, 10.0)])
        assert db.sql(QUERY).rows() == [(1, 13.0), (2, 3.0)]

    def test_cached_plan_rereads_current_data_without_any_change(self, db):
        """A cache hit re-executes the plan; results are never memoised."""
        rows0 = db.query(QUERY).to_rows()
        rows1 = db.query(QUERY).to_rows()
        assert rows0 == rows1
        assert rows0 is not rows1

    def test_drop_and_recreate_invalidates(self, db):
        db.query(QUERY)
        db.drop_table("m")
        db.load_dict("m", {"g": [5], "v": [7.0]})
        assert db.query(QUERY).to_rows() == [(5, 7.0)]

    def test_catalog_version_bumps_on_changes(self, db):
        version = db.catalog.version
        db.insert_rows("m", [(3, 1.0)])
        assert db.catalog.version > version


class TestEviction:
    def test_lru_eviction_bounds_the_cache(self):
        database = Database()
        database.load_dict("t", {"x": [1.0, 2.0]})
        database._executor.plan_cache_size = 4
        for i in range(10):
            database.query(f"SELECT x FROM t WHERE x > {i}")
        assert database.plan_cache_info()["size"] <= 4

    def test_clear_plan_cache(self, db):
        db.query(QUERY)
        db.clear_plan_cache()
        assert db.plan_cache_info()["size"] == 0
        assert db.query(QUERY).to_rows() == [(1, 3.0), (2, 3.0)]
