"""Tests for column statistics and the simulated IO model."""

import pytest

from repro.db.io_model import IOModel, IOParameters
from repro.db.stats import ENUMERABLE_DISTINCT_LIMIT, compute_column_stats, compute_table_stats
from repro.db.table import Table
from repro.db.column import Column
from repro.db.types import DataType


class TestColumnStats:
    def test_basic_numeric_stats(self):
        column = Column.from_values(DataType.FLOAT64, [1.0, 2.0, 3.0, None])
        stats = compute_column_stats("x", column)
        assert stats.row_count == 4
        assert stats.null_count == 1
        assert stats.distinct_count == 3
        assert stats.min_value == 1.0
        assert stats.max_value == 3.0
        assert stats.mean == pytest.approx(2.0)

    def test_enumerable_domain(self):
        column = Column.from_values(DataType.FLOAT64, [0.12, 0.15, 0.16, 0.18, 0.12])
        stats = compute_column_stats("frequency", column)
        assert stats.is_enumerable
        assert stats.domain == [0.12, 0.15, 0.16, 0.18]

    def test_high_cardinality_not_enumerable(self):
        values = [float(i) for i in range(ENUMERABLE_DISTINCT_LIMIT + 10)]
        stats = compute_column_stats("x", Column.from_values(DataType.FLOAT64, values))
        assert not stats.is_enumerable

    def test_string_stats(self):
        column = Column.from_values(DataType.STRING, ["b", "a", "b", None])
        stats = compute_column_stats("s", column)
        assert stats.distinct_count == 2
        assert stats.domain == ["a", "b"]
        assert stats.min_value == "a"

    def test_empty_column(self):
        stats = compute_column_stats("x", Column.empty(DataType.FLOAT64))
        assert stats.row_count == 0
        assert stats.distinct_count == 0

    def test_selectivity_equals(self):
        column = Column.from_values(DataType.INT64, [1, 2, 3, 4])
        stats = compute_column_stats("x", column)
        assert stats.selectivity_equals(2) == pytest.approx(0.25)
        assert stats.selectivity_equals(99) == 0.0

    def test_selectivity_range(self):
        column = Column.from_values(DataType.FLOAT64, [0.0, 10.0])
        stats = compute_column_stats("x", column)
        assert stats.selectivity_range(0.0, 5.0) == pytest.approx(0.5)
        assert stats.selectivity_range(None, None) == pytest.approx(1.0)

    def test_table_stats(self):
        table = Table.from_dict("t", {"a": [1, 2], "b": ["x", "y"]})
        stats = compute_table_stats(table)
        assert stats.row_count == 2
        assert set(stats.columns) == {"a", "b"}
        assert stats.byte_size == table.byte_size()

    def test_null_fraction(self):
        column = Column.from_values(DataType.FLOAT64, [1.0, None])
        assert compute_column_stats("x", column).null_fraction == pytest.approx(0.5)


class TestIOModel:
    def test_pages_for_bytes(self):
        params = IOParameters(page_size_bytes=1000)
        assert params.pages_for_bytes(0) == 0
        assert params.pages_for_bytes(1) == 1
        assert params.pages_for_bytes(1000) == 1
        assert params.pages_for_bytes(1001) == 2

    def test_charge_scan_accumulates(self):
        io = IOModel(IOParameters(page_size_bytes=100))
        table = Table.from_dict("t", {"a": list(range(100))})  # 800 bytes
        charged = io.charge_scan(table)
        assert charged == 800
        assert io.snapshot()["pages_read"] == 8
        assert io.snapshot()["virtual_io_seconds"] > 0

    def test_projected_scan_charges_less(self):
        io = IOModel()
        table = Table.from_dict("t", {"a": list(range(1000)), "b": [float(i) for i in range(1000)]})
        full = io.column_bytes(table)
        partial = io.column_bytes(table, ["a"])
        assert partial == full / 2

    def test_point_lookup_charges_random_reads(self):
        io = IOModel()
        table = Table.from_dict("t", {"a": [1, 2, 3]})
        io.charge_point_lookup(table, ["a"])
        snap = io.snapshot()
        assert snap["random_reads"] == 1
        assert snap["pages_read"] >= 1

    def test_reset(self):
        io = IOModel()
        table = Table.from_dict("t", {"a": [1, 2, 3]})
        io.charge_scan(table)
        io.reset()
        assert io.snapshot()["pages_read"] == 0

    def test_sequential_faster_than_random_per_page(self):
        params = IOParameters()
        assert params.sequential_read_time(10) < params.random_read_time(10)
