"""Tests for the in-database UDF registry and the benchmark harness utilities."""

import numpy as np
import pytest

from repro.bench import ExperimentResult, format_bytes, ratio, relative_error, repro_scale
from repro.db.table import Table
from repro.db.udf import FitInvocation, UDFRegistry
from repro.errors import ExecutionError


class TestUDFRegistry:
    def test_scalar_udf_roundtrip(self):
        registry = UDFRegistry()
        registry.register_scalar("doubled", lambda x: x * 2, arity=1)
        udf = registry.scalar("DOUBLED")  # lookup is case-insensitive
        assert list(udf(np.array([1.0, 2.0]))) == [2.0, 4.0]
        assert registry.has_scalar("doubled")

    def test_scalar_udf_arity_checked(self):
        registry = UDFRegistry()
        registry.register_scalar("add", lambda a, b: a + b, arity=2)
        with pytest.raises(ExecutionError):
            registry.scalar("add")(np.array([1.0]))

    def test_unknown_scalar_raises(self):
        with pytest.raises(ExecutionError):
            UDFRegistry().scalar("missing")

    def test_table_udf(self):
        registry = UDFRegistry()

        def head(table: Table, n: int = 1) -> Table:
            return table.head(n)

        registry.register_table("head", head)
        table = Table.from_dict("t", {"a": [1, 2, 3]})
        assert registry.table_function("head")(table, n=2).num_rows == 2
        with pytest.raises(ExecutionError):
            registry.table_function("missing")

    def test_fit_log_and_listeners(self):
        registry = UDFRegistry()
        seen = []
        registry.add_fit_listener(seen.append)
        invocation = FitInvocation(
            table_name="m", input_columns=["x"], output_column="y", model_name="linear"
        )
        registry.record_fit(invocation)
        assert registry.fit_log == [invocation]
        assert seen == [invocation]
        registry.clear_fit_log()
        assert registry.fit_log == []


class TestExperimentResult:
    def test_rows_and_columns(self):
        result = ExperimentResult(name="demo")
        result.add_row(method="a", value=1.0)
        result.add_row(method="b", value=2.0)
        assert result.column("value") == [1.0, 2.0]
        assert result.row_for(method="b")["value"] == 2.0
        with pytest.raises(KeyError):
            result.row_for(method="c")

    def test_to_text_renders_all_columns(self):
        result = ExperimentResult(name="demo", metadata={"scale": 0.02})
        result.add_row(method="a", value=1.2345, note=None)
        text = result.to_text()
        assert "== demo ==" in text
        assert "scale: 0.02" in text
        assert "1.234" in text and "-" in text  # None renders as '-'

    def test_empty_result_renders(self):
        assert "(no rows)" in ExperimentResult(name="empty").to_text()

    def test_ragged_rows_supported(self):
        result = ExperimentResult(name="ragged")
        result.add_row(a=1)
        result.add_row(a=2, b=3)
        text = result.to_text()
        assert "b" in text


class TestReportingHelpers:
    def test_relative_error_basics(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert relative_error(5.0, 0.0) == 5.0
        assert relative_error(float("nan"), 1.0) == float("inf")

    def test_format_bytes_units(self):
        assert format_bytes(512) == "512.0 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert "MiB" in format_bytes(5 * 1024 * 1024)

    def test_ratio_guards_zero(self):
        assert ratio(1, 0) == 0.0
        assert ratio(3, 2) == 1.5

    def test_repro_scale_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "5.0")
        assert repro_scale() == 1.0
        monkeypatch.setenv("REPRO_SCALE", "not-a-number")
        assert repro_scale(0.02) == 0.02
        monkeypatch.delenv("REPRO_SCALE")
        assert repro_scale(0.3) == 0.3
