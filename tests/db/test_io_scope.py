"""Per-execution IO attribution: scopes instead of global snapshot deltas."""

from __future__ import annotations

import threading

from repro.db.database import Database


def _make_db() -> Database:
    db = Database()
    db.load_dict("t", {"a": list(range(1000)), "b": [float(i) for i in range(1000)]})
    return db


def test_query_io_isolated_between_interleaved_threads():
    db = _make_db()
    barrier = threading.Barrier(2)
    results = {}

    def run(name: str, sql: str, repeats: int) -> None:
        barrier.wait()
        pages = []
        for _ in range(repeats):
            pages.append(db.sql(sql).io["pages_read"])
        results[name] = pages

    t1 = threading.Thread(target=run, args=("narrow", "SELECT SUM(a) FROM t", 30))
    t2 = threading.Thread(target=run, args=("wide", "SELECT SUM(a), SUM(b) FROM t", 30))
    t1.start(), t2.start()
    t1.join(), t2.join()

    # Every execution of the same statement reads exactly the same pages —
    # no pages leak across from the query interleaving on the other thread.
    assert len(set(results["narrow"])) == 1
    assert len(set(results["wide"])) == 1
    assert results["wide"][0] > results["narrow"][0] > 0


def test_nested_execution_still_credits_the_outer_scope():
    db = _make_db()
    with db.io_model.scope() as outer:
        inner_io = db.sql("SELECT SUM(a) FROM t").io
    assert inner_io["pages_read"] > 0
    assert outer.pages_read == inner_io["pages_read"]


def test_scope_excludes_charges_before_and_after():
    db = _make_db()
    db.sql("SELECT SUM(a) FROM t")
    with db.io_model.scope() as scope:
        pass
    db.sql("SELECT SUM(a) FROM t")
    assert scope.pages_read == 0
    # The global accountant still saw both queries.
    assert db.io_snapshot()["pages_read"] > 0
