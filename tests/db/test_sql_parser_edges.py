"""Parser edge cases the grouped/range routes depend on.

The new answer routes analyse HAVING, BETWEEN/IN/IS NULL predicates and
qualified group keys straight off the AST; these tests lock down that
surface (plus negative tests for syntax outside the subset) so a parser
change cannot silently re-route queries."""

import pytest

from repro.db.expressions import (
    Between,
    BinaryOp,
    ColumnRef,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    UnaryOp,
)
from repro.db.sql.ast import SelectStatement, Star
from repro.db.sql.parser import parse
from repro.errors import SQLSyntaxError, UnsupportedSQLError


class TestHavingWithAggregates:
    def test_having_aggregate_comparison(self):
        statement = parse(
            "SELECT g, avg(y) AS m FROM t GROUP BY g HAVING avg(y) > 2.5"
        )
        assert isinstance(statement, SelectStatement)
        having = statement.having
        assert isinstance(having, BinaryOp) and having.op == ">"
        assert isinstance(having.left, FunctionCall)
        assert having.left.name.lower() == "avg"
        assert having.right == Literal(2.5)

    def test_having_count_star(self):
        statement = parse("SELECT g FROM t GROUP BY g HAVING count(*) >= 3")
        assert isinstance(statement.having.left, FunctionCall)
        assert statement.having.left.args == ()

    def test_having_boolean_combination(self):
        statement = parse(
            "SELECT g FROM t GROUP BY g HAVING avg(y) > 1 AND max(y) < 10"
        )
        assert isinstance(statement.having, BinaryOp)
        assert statement.having.op == "and"

    def test_having_without_group_by_parses(self):
        statement = parse("SELECT count(*) FROM t HAVING count(*) > 0")
        assert statement.group_by == []
        assert statement.having is not None


class TestPredicatesInsideGroupByQueries:
    def test_between_in_where_of_grouped_query(self):
        statement = parse(
            "SELECT g, sum(y) FROM t WHERE x BETWEEN 1 AND 3 GROUP BY g"
        )
        where = statement.where
        assert isinstance(where, Between)
        assert where.operand == ColumnRef("x")
        assert (where.low, where.high) == (Literal(1), Literal(3))
        assert statement.group_by == [ColumnRef("g")]

    def test_between_binds_tighter_than_and(self):
        statement = parse(
            "SELECT g, sum(y) FROM t WHERE x BETWEEN 1 AND 3 AND g = 2 GROUP BY g"
        )
        where = statement.where
        assert isinstance(where, BinaryOp) and where.op == "and"
        assert isinstance(where.left, Between)
        assert isinstance(where.right, BinaryOp) and where.right.op == "="

    def test_in_list_and_not_in(self):
        statement = parse("SELECT g, avg(y) FROM t WHERE g IN (1, 2, 3) GROUP BY g")
        assert isinstance(statement.where, InList)
        assert [v.value for v in statement.where.values] == [1, 2, 3]

        negated = parse("SELECT g, avg(y) FROM t WHERE g NOT IN (1, 2) GROUP BY g")
        assert isinstance(negated.where, UnaryOp) and negated.where.op == "not"
        assert isinstance(negated.where.operand, InList)

    def test_is_null_and_is_not_null(self):
        statement = parse("SELECT g, count(y) FROM t WHERE y IS NULL GROUP BY g")
        assert statement.where == IsNull(ColumnRef("y"), negated=False)
        statement = parse("SELECT g, count(y) FROM t WHERE y IS NOT NULL GROUP BY g")
        assert statement.where == IsNull(ColumnRef("y"), negated=True)

    def test_multiple_group_keys(self):
        statement = parse("SELECT a, b, sum(y) FROM t GROUP BY a, b")
        assert statement.group_by == [ColumnRef("a"), ColumnRef("b")]


class TestQualifiedGroupKeys:
    def test_qualified_group_by_column(self):
        statement = parse(
            "SELECT t.g, avg(t.y) FROM t GROUP BY t.g ORDER BY t.g"
        )
        assert statement.group_by == [ColumnRef("t.g")]
        assert statement.items[0].expression == ColumnRef("t.g")
        aggregate = statement.items[1].expression
        assert isinstance(aggregate, FunctionCall)
        assert aggregate.args == (ColumnRef("t.y"),)
        assert statement.order_by[0].expression == ColumnRef("t.g")

    def test_aliased_table_qualified_keys(self):
        statement = parse("SELECT m.g, sum(m.y) FROM t m GROUP BY m.g")
        assert statement.table.alias == "m"
        assert statement.group_by == [ColumnRef("m.g")]

    def test_qualified_star(self):
        statement = parse("SELECT t.* FROM t")
        assert isinstance(statement.items[0].expression, Star)
        assert statement.items[0].expression.qualifier == "t"


class TestNegativeSyntax:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT g FROM t GROUP g",  # missing BY
            "SELECT g FROM t WHERE x BETWEEN 1 3",  # missing AND
            "SELECT g FROM t WHERE g IN (1, 2",  # unterminated list
            "SELECT FROM t",  # empty select list
            "SELECT g FROM t ORDER BY",  # missing order key
            "SELECT g FROM t LIMIT abc",  # non-integer limit
            "SELECT g, FROM t",  # dangling comma
        ],
    )
    def test_syntax_errors(self, sql):
        with pytest.raises(SQLSyntaxError):
            parse(sql)

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT g FROM t LEFT JOIN u ON t.g = u.g",  # only inner joins
            "SELECT g FROM t JOIN u ON t.g < u.g",  # non-equality join
            "DELETE FROM t",  # unsupported statement
            "UPDATE t SET g = 1",  # unsupported statement
        ],
    )
    def test_unsupported_features(self, sql):
        with pytest.raises(UnsupportedSQLError):
            parse(sql)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT g FROM t extra, tokens")
