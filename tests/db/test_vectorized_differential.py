"""Differential property test: vectorized operators vs row-at-a-time oracles.

The oracles below are the seed's original dict-and-loop implementations of
grouped aggregation and hash join, kept verbatim.  Every seeded query from
the approx harness's query generator (plus randomized join scenarios with
NULL and duplicate keys, and empty inputs) is executed through both the
vectorized operators and the oracles, and the results must be identical —
up to float summation-order noise well below any stated error bound.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "approx"))

from query_gen import TableProfile, generate_queries  # noqa: E402

import repro.db.sql.planner as planner_module  # noqa: E402
from repro.db.column import Column  # noqa: E402
from repro.db.database import Database  # noqa: E402
from repro.db.expressions import ColumnRef  # noqa: E402
from repro.db.operators.aggregate import Aggregate, compute_aggregate  # noqa: E402
from repro.db.operators.join import HashJoin  # noqa: E402
from repro.db.operators.scan import MaterializedInput  # noqa: E402
from repro.db.schema import ColumnDef, Schema  # noqa: E402
from repro.db.table import Table  # noqa: E402
from repro.db.types import DataType  # noqa: E402

REL_TOL = 1e-9
ABS_TOL = 1e-12


# ---------------------------------------------------------------------------
# Oracles: the seed's row-at-a-time implementations, verbatim
# ---------------------------------------------------------------------------


class OracleAggregate(Aggregate):
    """Grouped aggregation via python-value dict hashing (seed algorithm)."""

    def _grouped_aggregate(self, table, key_columns, agg_inputs):
        groups = {}
        key_lists = [column.to_pylist() for column in key_columns]
        for row_index in range(table.num_rows):
            key = tuple(key_list[row_index] for key_list in key_lists)
            groups.setdefault(key, []).append(row_index)

        key_names = []
        for expr in self.group_by:
            key_names.append(expr.name if isinstance(expr, ColumnRef) else expr.output_name())

        out_values = {name: [] for name in key_names}
        for spec in self.aggregates:
            out_values[spec.name] = []

        for key, indices in groups.items():
            for name, key_value in zip(key_names, key):
                out_values[name].append(key_value)
            row_indices = np.array(indices, dtype=np.int64)
            for spec, column in zip(self.aggregates, agg_inputs):
                subset = column.take(row_indices) if column is not None else None
                out_values[spec.name].append(self._aggregate_one(spec, subset, len(indices)))

        defs = []
        columns = {}
        for name, key_column in zip(key_names, key_columns):
            columns[name] = Column.from_values(key_column.dtype, out_values[name])
            defs.append(ColumnDef(name, key_column.dtype))
        for spec in self.aggregates:
            columns[spec.name] = Column.from_values(spec.output_dtype, out_values[spec.name])
            defs.append(ColumnDef(spec.name, spec.output_dtype))
        return Table("aggregate", Schema(defs), columns)


class OracleHashJoin(HashJoin):
    """Inner equi-join via per-row python loops (seed algorithm)."""

    def _match_indices(self, left_table, right_table):
        build = {}
        right_key_lists = [right_table.column(k).to_pylist() for k in self.right_keys]
        for row_index in range(right_table.num_rows):
            key = tuple(key_list[row_index] for key_list in right_key_lists)
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(row_index)

        left_indices = []
        right_indices = []
        left_key_lists = [left_table.column(k).to_pylist() for k in self.left_keys]
        for row_index in range(left_table.num_rows):
            key = tuple(key_list[row_index] for key_list in left_key_lists)
            if any(part is None for part in key):
                continue
            for match in build.get(key, ()):
                left_indices.append(row_index)
                right_indices.append(match)
        return (
            np.array(left_indices, dtype=np.int64),
            np.array(right_indices, dtype=np.int64),
        )


# ---------------------------------------------------------------------------
# Comparison
# ---------------------------------------------------------------------------


def _cell_equal(a, b):
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, float) or isinstance(b, float):
        return (
            abs(float(a) - float(b)) <= ABS_TOL + REL_TOL * max(abs(float(a)), abs(float(b)))
        )
    return a == b


def _assert_tables_identical(vectorized, oracle, context):
    assert vectorized.schema.names == oracle.schema.names, context
    assert [c.dtype for c in vectorized.schema] == [c.dtype for c in oracle.schema], context
    v_rows = vectorized.to_rows()
    o_rows = oracle.to_rows()
    assert len(v_rows) == len(o_rows), f"{context}: {len(v_rows)} vs {len(o_rows)} rows"
    for i, (vr, orow) in enumerate(zip(v_rows, o_rows)):
        for j, (a, b) in enumerate(zip(vr, orow)):
            assert _cell_equal(a, b), (
                f"{context}: row {i} col {vectorized.schema.names[j]}: {a!r} != {b!r}"
            )


# ---------------------------------------------------------------------------
# SQL-level differential over the seeded query generator
# ---------------------------------------------------------------------------

GROUPS = tuple(range(8))
X_DOMAIN = tuple(float(v) for v in range(5))

PROFILE = TableProfile(
    name="readings",
    group_column="g",
    input_column="x",
    output_column="y",
    group_values=GROUPS,
    input_domain=X_DOMAIN,
    input_low=min(X_DOMAIN),
    input_high=max(X_DOMAIN),
)


def _readings_with_nulls(rng, rows=600):
    """Synthetic rows with NULLs sprinkled into both the key and the value."""
    g = [int(v) if rng.random() > 0.06 else None for v in rng.integers(0, len(GROUPS), rows)]
    x = [float(X_DOMAIN[int(i)]) for i in rng.integers(0, len(X_DOMAIN), rows)]
    y = [float(v) if rng.random() > 0.08 else None for v in rng.normal(10.0, 4.0, rows)]
    return {"g": g, "x": x, "y": y}


def _fresh_db(data):
    db = Database()
    schema = Schema(
        [
            ColumnDef("g", DataType.INT64),
            ColumnDef("x", DataType.FLOAT64),
            ColumnDef("y", DataType.FLOAT64),
        ]
    )
    db.register_table(Table.from_dict("readings", data, schema))
    return db


@pytest.mark.parametrize("seed", [11, 401])
def test_seeded_query_workload_matches_oracle(monkeypatch, seed):
    """Generator queries produce identical results via oracle and vectorized ops."""
    rng = np.random.default_rng(seed)
    data = _readings_with_nulls(rng)
    queries = generate_queries(rng, PROFILE, count=60)

    db = _fresh_db(data)
    vectorized_results = [db.query(q.sql) for q in queries]

    oracle_db = _fresh_db(data)
    monkeypatch.setattr(planner_module, "Aggregate", OracleAggregate)
    oracle_results = [oracle_db.query(q.sql) for q in queries]

    for query, vec, orc in zip(queries, vectorized_results, oracle_results):
        _assert_tables_identical(vec, orc, query.sql)


def test_empty_table_workload_matches_oracle(monkeypatch):
    """Every generated query shape agrees on a completely empty table."""
    rng = np.random.default_rng(7)
    empty = {"g": [], "x": [], "y": []}
    queries = generate_queries(rng, PROFILE, count=20)

    db = _fresh_db(empty)
    vectorized_results = [db.query(q.sql) for q in queries]

    oracle_db = _fresh_db(empty)
    monkeypatch.setattr(planner_module, "Aggregate", OracleAggregate)
    oracle_results = [oracle_db.query(q.sql) for q in queries]

    for query, vec, orc in zip(queries, vectorized_results, oracle_results):
        _assert_tables_identical(vec, orc, query.sql)


def test_all_null_group_keys_match_oracle(monkeypatch):
    data = {"g": [None] * 40, "x": [1.0] * 40, "y": [float(i) for i in range(40)]}
    sql = "SELECT g, sum(y) AS s, count(y) AS n FROM readings GROUP BY g"
    vec = _fresh_db(data).query(sql)
    monkeypatch.setattr(planner_module, "Aggregate", OracleAggregate)
    orc = _fresh_db(data).query(sql)
    _assert_tables_identical(vec, orc, sql)


# ---------------------------------------------------------------------------
# Operator-level differential for joins (the generator is single-table)
# ---------------------------------------------------------------------------


def _random_join_tables(rng, left_rows, right_rows, dtype):
    def keys(n):
        if dtype is DataType.INT64:
            raw = [int(v) for v in rng.integers(0, 12, n)]
        elif dtype is DataType.FLOAT64:
            raw = [float(v) for v in rng.integers(0, 12, n)]
        else:
            raw = [f"k{int(v)}" for v in rng.integers(0, 12, n)]
        return [None if rng.random() < 0.1 else v for v in raw]

    left = Table.from_dict(
        "l",
        {"k": keys(left_rows), "lv": [float(v) for v in rng.normal(size=left_rows)]},
        Schema([ColumnDef("k", dtype), ColumnDef("lv", DataType.FLOAT64)]),
    )
    right = Table.from_dict(
        "r",
        {"k2": keys(right_rows), "rv": [int(v) for v in rng.integers(0, 100, right_rows)]},
        Schema([ColumnDef("k2", dtype), ColumnDef("rv", DataType.INT64)]),
    )
    return left, right


@pytest.mark.parametrize("dtype", [DataType.INT64, DataType.FLOAT64, DataType.STRING])
@pytest.mark.parametrize("seed", [3, 17, 1001])
def test_random_joins_match_oracle(dtype, seed):
    rng = np.random.default_rng(seed)
    for left_rows, right_rows in [(0, 10), (10, 0), (1, 1), (40, 25), (120, 90)]:
        left, right = _random_join_tables(rng, left_rows, right_rows, dtype)
        vec = HashJoin(
            MaterializedInput(left), MaterializedInput(right), ["k"], ["k2"]
        ).execute()
        orc = OracleHashJoin(
            MaterializedInput(left), MaterializedInput(right), ["k"], ["k2"]
        ).execute()
        _assert_tables_identical(
            vec, orc, f"join dtype={dtype.value} seed={seed} rows=({left_rows},{right_rows})"
        )


def test_multi_key_mixed_dtype_joins_match_oracle():
    rng = np.random.default_rng(99)
    left = Table.from_dict(
        "l",
        {
            "a": [None if rng.random() < 0.15 else int(v) for v in rng.integers(0, 4, 60)],
            "b": [float(v) for v in rng.integers(0, 3, 60)],
        },
        Schema([ColumnDef("a", DataType.INT64), ColumnDef("b", DataType.FLOAT64)]),
    )
    right = Table.from_dict(
        "r",
        {
            # Intentionally swapped dtypes: INT64 'a' joins FLOAT64 'a2'.
            "a2": [float(v) for v in rng.integers(0, 4, 45)],
            "b2": [None if rng.random() < 0.15 else int(v) for v in rng.integers(0, 3, 45)],
        },
        Schema([ColumnDef("a2", DataType.FLOAT64), ColumnDef("b2", DataType.INT64)]),
    )
    vec = HashJoin(
        MaterializedInput(left), MaterializedInput(right), ["a", "b"], ["a2", "b2"]
    ).execute()
    orc = OracleHashJoin(
        MaterializedInput(left), MaterializedInput(right), ["a", "b"], ["a2", "b2"]
    ).execute()
    _assert_tables_identical(vec, orc, "multi-key mixed-dtype join")
