"""Join semantics locked in before the vectorized HashJoin rewrite.

These tests pin the externally observable contract of the inner equi-join:
NULL keys never match (on either side), many-to-many matches expand in
left-row-major order with right matches in ascending right-row order, and
key comparison follows python numeric equality (1 == 1.0, True == 1).
"""

import numpy as np
import pytest

from repro.db.column import Column
from repro.db.operators.join import HashJoin
from repro.db.operators.scan import MaterializedInput
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType


def _table(name, spec):
    """Build a table from {column: (dtype, values)} preserving order."""
    schema = Schema(ColumnDef(n, dtype) for n, (dtype, _) in spec.items())
    columns = {n: Column.from_values(dtype, values) for n, (dtype, values) in spec.items()}
    return Table(name, schema, columns)


def _join(left, right, left_keys, right_keys):
    return HashJoin(
        MaterializedInput(left), MaterializedInput(right), left_keys, right_keys
    ).execute()


class TestNullKeys:
    def test_null_probe_keys_are_dropped(self):
        left = _table(
            "l",
            {
                "k": (DataType.INT64, [1, None, 2, None]),
                "lv": (DataType.STRING, ["a", "b", "c", "d"]),
            },
        )
        right = _table(
            "r",
            {"k2": (DataType.INT64, [1, 2]), "rv": (DataType.STRING, ["x", "y"])},
        )
        result = _join(left, right, ["k"], ["k2"])
        assert result.to_rows() == [(1, "a", 1, "x"), (2, "c", 2, "y")]

    def test_null_build_keys_are_dropped(self):
        left = _table(
            "l", {"k": (DataType.INT64, [1, 2]), "lv": (DataType.INT64, [10, 20])}
        )
        right = _table(
            "r",
            {
                "k2": (DataType.INT64, [None, 1, None, 2]),
                "rv": (DataType.INT64, [0, 100, 0, 200]),
            },
        )
        result = _join(left, right, ["k"], ["k2"])
        assert result.to_rows() == [(1, 10, 1, 100), (2, 20, 2, 200)]

    def test_null_never_matches_null(self):
        left = _table("l", {"k": (DataType.FLOAT64, [None, 1.0])})
        right = _table("r", {"k2": (DataType.FLOAT64, [None, None])})
        result = _join(left, right, ["k"], ["k2"])
        assert result.num_rows == 0

    def test_multi_key_any_null_component_drops_the_row(self):
        left = _table(
            "l",
            {
                "a": (DataType.INT64, [1, 1, None]),
                "b": (DataType.STRING, ["x", None, "x"]),
            },
        )
        right = _table(
            "r",
            {
                "a2": (DataType.INT64, [1, 1]),
                "b2": (DataType.STRING, ["x", None]),
            },
        )
        result = _join(left, right, ["a", "b"], ["a2", "b2"])
        assert result.to_rows() == [(1, "x", 1, "x")]


class TestDuplicateKeys:
    def test_many_to_many_expansion_order(self):
        """Output is left-row-major; right matches in ascending right-row order."""
        left = _table(
            "l",
            {
                "k": (DataType.INT64, [7, 5, 7]),
                "lrow": (DataType.INT64, [0, 1, 2]),
            },
        )
        right = _table(
            "r",
            {
                "k2": (DataType.INT64, [5, 7, 5, 7]),
                "rrow": (DataType.INT64, [0, 1, 2, 3]),
            },
        )
        result = _join(left, right, ["k"], ["k2"])
        assert result.to_rows() == [
            (7, 0, 7, 1),
            (7, 0, 7, 3),
            (5, 1, 5, 0),
            (5, 1, 5, 2),
            (7, 2, 7, 1),
            (7, 2, 7, 3),
        ]

    def test_one_to_many_string_keys(self):
        left = _table("l", {"k": (DataType.STRING, ["a", "b"])})
        right = _table(
            "r",
            {
                "k2": (DataType.STRING, ["b", "a", "b"]),
                "rrow": (DataType.INT64, [0, 1, 2]),
            },
        )
        result = _join(left, right, ["k"], ["k2"])
        assert result.to_rows() == [("a", "a", 1), ("b", "b", 0), ("b", "b", 2)]


class TestKeyComparison:
    def test_int_matches_equal_float(self):
        left = _table("l", {"k": (DataType.INT64, [1, 2, 3])})
        right = _table("r", {"k2": (DataType.FLOAT64, [2.0, 3.5])})
        result = _join(left, right, ["k"], ["k2"])
        assert result.to_rows() == [(2, 2.0)]

    def test_bool_matches_equal_int(self):
        left = _table("l", {"k": (DataType.BOOL, [True, False])})
        right = _table("r", {"k2": (DataType.INT64, [1, 5])})
        result = _join(left, right, ["k"], ["k2"])
        assert result.to_rows() == [(True, 1)]

    def test_large_int_keys_stay_exact_against_floats(self):
        """2**53 + 1 != float(2**53): float64 promotion must not collapse them."""
        left = _table("l", {"k": (DataType.INT64, [2**53, 2**53 + 1])})
        right = _table("r", {"k2": (DataType.FLOAT64, [float(2**53)])})
        result = _join(left, right, ["k"], ["k2"])
        assert result.to_rows() == [(2**53, float(2**53))]

    def test_non_integral_floats_never_match_ints(self):
        left = _table("l", {"k": (DataType.INT64, [1, 2])})
        right = _table("r", {"k2": (DataType.FLOAT64, [1.5, float("inf"), 2.0])})
        result = _join(left, right, ["k"], ["k2"])
        assert result.to_rows() == [(2, 2.0)]

    def test_string_vs_int_keys_never_match(self):
        left = _table("l", {"k": (DataType.STRING, ["1", "2"])})
        right = _table("r", {"k2": (DataType.INT64, [1, 2])})
        result = _join(left, right, ["k"], ["k2"])
        assert result.num_rows == 0


class TestEdges:
    def test_empty_probe_side(self):
        left = _table("l", {"k": (DataType.INT64, [])})
        right = _table("r", {"k2": (DataType.INT64, [1, 2])})
        result = _join(left, right, ["k"], ["k2"])
        assert result.num_rows == 0
        assert result.schema.names == ["k", "k2"]

    def test_empty_build_side(self):
        left = _table("l", {"k": (DataType.INT64, [1, 2])})
        right = _table("r", {"k2": (DataType.INT64, [])})
        result = _join(left, right, ["k"], ["k2"])
        assert result.num_rows == 0

    def test_colliding_names_prefixed_with_right_table(self):
        left = _table("l", {"k": (DataType.INT64, [1]), "v": (DataType.INT64, [10])})
        right = _table("r", {"k": (DataType.INT64, [1]), "v": (DataType.INT64, [20])})
        result = _join(left, right, ["k"], ["k"])
        assert result.schema.names == ["k", "v", "r.k", "r.v"]
        assert result.to_rows() == [(1, 10, 1, 20)]

    def test_output_dtypes_preserved(self):
        left = _table(
            "l",
            {"k": (DataType.INT64, [1]), "s": (DataType.STRING, ["a"])},
        )
        right = _table(
            "r",
            {"k2": (DataType.INT64, [1]), "f": (DataType.FLOAT64, [0.5])},
        )
        result = _join(left, right, ["k"], ["k2"])
        dtypes = {c.name: c.dtype for c in result.schema}
        assert dtypes == {
            "k": DataType.INT64,
            "s": DataType.STRING,
            "k2": DataType.INT64,
            "f": DataType.FLOAT64,
        }
