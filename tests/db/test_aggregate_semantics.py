"""Aggregate semantics locked in before the vectorized rewrite.

Covers the group-key dtype contract (keys keep their real dtypes in the
output schema — the old ``_output_schema`` declared every key FLOAT64), the
NULL-group behavior (NULL keys form their own group), and empty inputs.
"""

import pytest

from repro.db.column import Column
from repro.db.expressions import col
from repro.db.operators.aggregate import Aggregate, AggregateSpec
from repro.db.operators.scan import MaterializedInput
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType


def _table(name, spec):
    schema = Schema(ColumnDef(n, dtype) for n, (dtype, _) in spec.items())
    columns = {n: Column.from_values(dtype, values) for n, (dtype, values) in spec.items()}
    return Table(name, schema, columns)


def _aggregate(table, group_by, aggregates):
    return Aggregate(MaterializedInput(table), group_by, aggregates)


class TestKeyDtypes:
    @pytest.fixture()
    def table(self):
        return _table(
            "t",
            {
                "city": (DataType.STRING, ["ams", "ber", "ams", "ber"]),
                "year": (DataType.INT64, [2014, 2014, 2015, 2015]),
                "temp": (DataType.FLOAT64, [5.0, 3.0, 7.0, 9.0]),
            },
        )

    def test_string_and_integer_keys_survive_into_result_schema(self, table):
        agg = _aggregate(
            table,
            [col("city"), col("year")],
            [AggregateSpec("avg", col("temp"))],
        )
        result = agg.execute()
        dtypes = {c.name: c.dtype for c in result.schema}
        assert dtypes["city"] is DataType.STRING
        assert dtypes["year"] is DataType.INT64
        assert dtypes["avg(temp)"] is DataType.FLOAT64
        assert sorted(result.column("city").to_pylist()) == ["ams", "ams", "ber", "ber"]

    def test_declared_output_schema_resolves_real_key_dtypes(self, table):
        """The statically declared schema must match the executed schema."""
        agg = _aggregate(
            table,
            [col("city"), col("year")],
            [AggregateSpec("count", None, alias="n"), AggregateSpec("sum", col("temp"))],
        )
        declared = agg.output_schema(table.schema)
        executed = agg.execute().schema
        assert [(c.name, c.dtype) for c in declared] == [
            (c.name, c.dtype) for c in executed
        ]
        dtypes = {c.name: c.dtype for c in declared}
        assert dtypes["city"] is DataType.STRING
        assert dtypes["year"] is DataType.INT64
        assert dtypes["n"] is DataType.INT64

    def test_computed_group_key_declares_float(self, table):
        agg = _aggregate(
            table,
            [col("year") + 1],
            [AggregateSpec("count", None, alias="n")],
        )
        declared = agg.output_schema(table.schema)
        executed = agg.execute().schema
        assert [(c.name, c.dtype) for c in declared] == [
            (c.name, c.dtype) for c in executed
        ]


class TestNullGroups:
    def test_null_key_forms_its_own_group(self):
        table = _table(
            "t",
            {
                "g": (DataType.INT64, [1, None, 1, None, 2]),
                "v": (DataType.FLOAT64, [1.0, 2.0, 3.0, 4.0, 5.0]),
            },
        )
        result = _aggregate(
            table, [col("g")], [AggregateSpec("sum", col("v"), alias="s")]
        ).execute()
        rows = {row[0]: row[1] for row in result.to_rows()}
        assert rows == {1: 4.0, None: 6.0, 2: 5.0}

    def test_groups_emitted_in_first_occurrence_order(self):
        table = _table(
            "t",
            {
                "g": (DataType.INT64, [3, 1, None, 3, 2, 1]),
                "v": (DataType.INT64, [1, 1, 1, 1, 1, 1]),
            },
        )
        result = _aggregate(
            table, [col("g")], [AggregateSpec("count", None, alias="n")]
        ).execute()
        assert [row[0] for row in result.to_rows()] == [3, 1, None, 2]

    def test_null_values_excluded_from_aggregates_but_counted_by_star(self):
        table = _table(
            "t",
            {
                "g": (DataType.STRING, ["a", "a", "b"]),
                "v": (DataType.FLOAT64, [1.0, None, None]),
            },
        )
        result = _aggregate(
            table,
            [col("g")],
            [
                AggregateSpec("count", None, alias="star"),
                AggregateSpec("count", col("v"), alias="nv"),
                AggregateSpec("avg", col("v"), alias="m"),
            ],
        ).execute()
        rows = {row[0]: row[1:] for row in result.to_rows()}
        assert rows["a"] == (2, 1, 1.0)
        assert rows["b"] == (1, 0, None)


class TestEdges:
    def test_empty_input_grouped(self):
        table = _table(
            "t",
            {"g": (DataType.STRING, []), "v": (DataType.FLOAT64, [])},
        )
        result = _aggregate(
            table, [col("g")], [AggregateSpec("sum", col("v"), alias="s")]
        ).execute()
        assert result.num_rows == 0
        dtypes = {c.name: c.dtype for c in result.schema}
        assert dtypes["g"] is DataType.STRING

    def test_single_row_stddev_is_zero_and_empty_group_is_null(self):
        table = _table(
            "t",
            {
                "g": (DataType.INT64, [1, 2, 2]),
                "v": (DataType.FLOAT64, [4.0, None, None]),
            },
        )
        result = _aggregate(
            table,
            [col("g")],
            [AggregateSpec("stddev", col("v"), alias="sd")],
        ).execute()
        rows = {row[0]: row[1] for row in result.to_rows()}
        assert rows == {1: 0.0, 2: None}

    def test_packed_key_space_overflow_keeps_groups_distinct(self):
        """Key tuples that collide modulo 2**64 under naive packing stay apart.

        With 4 key columns of cardinality 65536 each, the naive product of
        per-column widths (65537**4) exceeds int64, and the tuples
        ``(65533, 5, 65533, 1)`` and ``(0, 0, 0, 0)`` pack to the *same*
        wrapped code.  The factorizer must re-densify instead of wrapping.
        """
        diag = list(range(65536))
        crafted = (65533, 5, 65533, 1)
        columns = {
            f"k{i}": (DataType.INT64, diag + [crafted[i]]) for i in range(4)
        }
        table = _table("t", columns)
        result = _aggregate(
            table,
            [col(f"k{i}") for i in range(4)],
            [AggregateSpec("count", None, alias="n")],
        ).execute()
        assert result.num_rows == 65537  # 65536 diagonal groups + the crafted tuple
        rows = {row[:4]: row[4] for row in result.to_rows()}
        assert rows[crafted] == 1
        assert rows[(0, 0, 0, 0)] == 1

    def test_float_nan_key_groups_with_nulls(self):
        """A NaN float key reads back as NULL and must group with NULLs."""
        table = _table(
            "t",
            {
                "g": (DataType.FLOAT64, [float("nan"), None, 1.0]),
                "v": (DataType.INT64, [1, 1, 1]),
            },
        )
        result = _aggregate(
            table, [col("g")], [AggregateSpec("count", None, alias="n")]
        ).execute()
        rows = {row[0]: row[1] for row in result.to_rows()}
        assert rows == {None: 2, 1.0: 1}
