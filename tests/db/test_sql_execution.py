"""End-to-end SQL execution tests against the Database façade."""

import pytest

from repro.db import Database
from repro.errors import CatalogError, SQLPlanningError, UnsupportedSQLError


class TestBasicSelect:
    def test_projection_and_expression(self, simple_db):
        result = simple_db.query("SELECT order_id, amount * 2 AS double_amount FROM orders")
        assert result.schema.names == ["order_id", "double_amount"]
        assert result.column("double_amount").to_pylist()[0] == 10.0

    def test_where_filter(self, simple_db):
        result = simple_db.query("SELECT order_id FROM orders WHERE amount > 4.5")
        assert result.column("order_id").to_pylist() == [1, 2, 4]

    def test_where_with_string(self, simple_db):
        result = simple_db.query("SELECT count(*) AS n FROM orders WHERE region = 'eu'")
        assert result.row(0) == (4,)

    def test_select_star(self, simple_db):
        result = simple_db.query("SELECT * FROM orders")
        assert set(result.schema.names) == {"order_id", "customer", "amount", "region"}
        assert result.num_rows == 6

    def test_order_by_and_limit(self, simple_db):
        result = simple_db.query("SELECT order_id FROM orders ORDER BY amount DESC LIMIT 2")
        assert result.column("order_id").to_pylist() == [4, 2]

    def test_order_by_ordinal(self, simple_db):
        result = simple_db.query("SELECT order_id, amount FROM orders ORDER BY 2 ASC LIMIT 1")
        assert result.row(0) == (5, 1.0)

    def test_limit_offset(self, simple_db):
        result = simple_db.query("SELECT order_id FROM orders ORDER BY order_id LIMIT 2 OFFSET 4")
        assert result.column("order_id").to_pylist() == [5, 6]

    def test_distinct(self, simple_db):
        result = simple_db.query("SELECT DISTINCT customer FROM orders ORDER BY customer")
        assert result.column("customer").to_pylist() == [10, 20, 30]

    def test_between_and_in(self, simple_db):
        result = simple_db.query(
            "SELECT order_id FROM orders WHERE amount BETWEEN 2 AND 8 AND customer IN (10, 20)"
        )
        assert result.column("order_id").to_pylist() == [1, 2, 3, 6]

    def test_unknown_column_raises(self, simple_db):
        with pytest.raises(SQLPlanningError):
            simple_db.query("SELECT nope FROM orders")

    def test_unknown_table_raises(self, simple_db):
        with pytest.raises(CatalogError):
            simple_db.query("SELECT a FROM missing")

    def test_select_without_from_unsupported(self, simple_db):
        with pytest.raises(UnsupportedSQLError):
            simple_db.query("SELECT 1")


class TestAggregation:
    def test_global_aggregates(self, simple_db):
        result = simple_db.query(
            "SELECT count(*) AS n, sum(amount) AS total, avg(amount) AS mean, "
            "min(amount) AS lo, max(amount) AS hi FROM orders"
        )
        assert result.row(0) == (6, 30.0, 5.0, 1.0, 10.0)

    def test_group_by(self, simple_db):
        result = simple_db.query(
            "SELECT customer, sum(amount) AS total FROM orders GROUP BY customer ORDER BY customer"
        )
        assert result.to_rows() == [(10, 11.5), (20, 8.5), (30, 10.0)]

    def test_group_by_with_having(self, simple_db):
        result = simple_db.query(
            "SELECT customer, count(*) AS n FROM orders GROUP BY customer HAVING count(*) > 1 ORDER BY customer"
        )
        assert result.to_rows() == [(10, 3), (20, 2)]

    def test_group_by_string_key(self, simple_db):
        result = simple_db.query(
            "SELECT region, avg(amount) AS mean FROM orders GROUP BY region ORDER BY region"
        )
        rows = dict(result.to_rows())
        assert rows["eu"] == pytest.approx(12.5 / 4)
        assert rows["us"] == pytest.approx(8.75)

    def test_count_column_skips_nulls(self):
        db = Database()
        db.load_dict("t", {"x": [1.0, None, 3.0]})
        assert db.query("SELECT count(x) AS n FROM t").row(0) == (2,)

    def test_stddev_and_var(self, simple_db):
        result = simple_db.query("SELECT stddev(amount) AS s, var(amount) AS v FROM orders")
        s, v = result.row(0)
        assert s == pytest.approx(v**0.5)

    def test_aggregate_in_expression(self, simple_db):
        result = simple_db.query("SELECT sum(amount) / count(*) AS mean FROM orders")
        assert result.row(0)[0] == pytest.approx(5.0)

    def test_empty_group_result(self, simple_db):
        result = simple_db.query("SELECT customer, sum(amount) AS s FROM orders WHERE amount > 100 GROUP BY customer")
        assert result.num_rows == 0


class TestJoins:
    def test_inner_join(self, simple_db):
        result = simple_db.query(
            "SELECT o.order_id, c.name FROM orders o JOIN customers c ON o.customer = c.customer "
            "ORDER BY o.order_id"
        )
        assert result.num_rows == 6
        assert result.row(0) == (1, "alice")
        assert result.row(3) == (4, "carol")

    def test_join_with_aggregation(self, simple_db):
        result = simple_db.query(
            "SELECT c.name AS name, sum(o.amount) AS total FROM orders o "
            "JOIN customers c ON o.customer = c.customer GROUP BY c.name ORDER BY name"
        )
        assert result.to_rows() == [("alice", 11.5), ("bob", 8.5), ("carol", 10.0)]

    def test_join_filters_non_matching(self):
        db = Database()
        db.load_dict("a", {"k": [1, 2, 3], "v": [10, 20, 30]})
        db.load_dict("b", {"k": [2, 3, 4], "w": [200, 300, 400]})
        result = db.query("SELECT a.k, w FROM a JOIN b ON a.k = b.k ORDER BY a.k")
        assert result.to_rows() == [(2, 200), (3, 300)]

    def test_join_null_keys_never_match(self):
        db = Database()
        db.load_dict("a", {"k": [1, None], "v": [10, 20]})
        db.load_dict("b", {"k": [1, None], "w": [100, 200]})
        result = db.query("SELECT v, w FROM a JOIN b ON a.k = b.k")
        assert result.to_rows() == [(10, 100)]


class TestDDLAndInsert:
    def test_create_insert_select_roundtrip(self):
        db = Database()
        db.sql("CREATE TABLE m (source INT, frequency DOUBLE, intensity DOUBLE)")
        db.sql("INSERT INTO m VALUES (1, 0.12, 2.5), (1, 0.15, 2.1), (2, 0.18, 3.3)")
        result = db.query("SELECT count(*) AS n, max(intensity) AS hi FROM m")
        assert result.row(0) == (3, 3.3)

    def test_insert_with_column_list_reorders(self):
        db = Database()
        db.sql("CREATE TABLE t (a INT, b DOUBLE)")
        db.sql("INSERT INTO t (b, a) VALUES (1.5, 7)")
        assert db.query("SELECT a, b FROM t").row(0) == (7, 1.5)

    def test_explain_returns_plan(self, simple_db):
        plan = simple_db.explain("SELECT customer, sum(amount) FROM orders GROUP BY customer")
        assert "Aggregate" in plan and "TableScan" in plan

    def test_query_result_metadata(self, simple_db):
        result = simple_db.sql("SELECT count(*) FROM orders")
        assert result.statement_type == "select"
        assert result.elapsed_seconds >= 0
        assert result.io["pages_read"] >= 1
        assert result.scalar() == 6

    def test_io_charged_only_for_referenced_columns(self, simple_db):
        simple_db.reset_io()
        simple_db.query("SELECT order_id FROM orders")
        narrow = simple_db.io_snapshot()["bytes_read"]
        simple_db.reset_io()
        simple_db.query("SELECT * FROM orders")
        wide = simple_db.io_snapshot()["bytes_read"]
        assert narrow < wide
