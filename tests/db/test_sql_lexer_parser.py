"""Tests for the SQL lexer and parser."""

import pytest

from repro.db.expressions import Between, BinaryOp, ColumnRef, FunctionCall, InList, IsNull, Literal, UnaryOp
from repro.db.sql.ast import CreateTableStatement, InsertStatement, SelectStatement, Star
from repro.db.sql.lexer import TokenType, tokenize
from repro.db.sql.parser import parse, parse_expression
from repro.db.types import DataType
from repro.errors import SQLSyntaxError, UnsupportedSQLError


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt * FrOm t")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")

    def test_numbers(self):
        tokens = tokenize("1 2.5 3e-2 .75")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == ["1", "2.5", "3e-2", ".75"]

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'abc")

    def test_operators_longest_match(self):
        tokens = tokenize("a <= b <> c")
        ops = [t.value for t in tokens if t.type is TokenType.OPERATOR]
        assert ops == ["<=", "!="]

    def test_comment_skipped(self):
        tokens = tokenize("select 1 -- comment here\n , 2")
        numbers = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert numbers == ["1", "2"]

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "weird name"

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @foo")

    def test_eof_token_terminates(self):
        assert tokenize("select")[-1].type is TokenType.EOF


class TestExpressionParsing:
    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "or"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "and"

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert isinstance(expr, UnaryOp) and expr.op == "not"

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 2")
        assert isinstance(expr, Between)

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.values) == 3

    def test_not_in(self):
        expr = parse_expression("x NOT IN (1)")
        assert isinstance(expr, UnaryOp) and isinstance(expr.operand, InList)

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("x IS NULL"), IsNull)
        expr = parse_expression("x IS NOT NULL")
        assert isinstance(expr, IsNull) and expr.negated

    def test_negative_literal_folded(self):
        expr = parse_expression("-3.5")
        assert isinstance(expr, Literal) and expr.value == -3.5

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert isinstance(expr, ColumnRef) and expr.name == "t.col"

    def test_function_call(self):
        expr = parse_expression("power(x, 2)")
        assert isinstance(expr, FunctionCall) and len(expr.args) == 2

    def test_boolean_and_null_literals(self):
        assert parse_expression("true").value is True
        assert parse_expression("false").value is False
        assert parse_expression("null").value is None

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_expression("1 + 2 extra junk ,")


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, SelectStatement)
        assert len(stmt.items) == 2
        assert stmt.table.name == "t"

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, Star)

    def test_qualified_star(self):
        stmt = parse("SELECT t.* FROM measurements t")
        assert isinstance(stmt.items[0].expression, Star)
        assert stmt.items[0].expression.qualifier == "t"

    def test_aliases(self):
        stmt = parse("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_where_group_having_order_limit(self):
        stmt = parse(
            "SELECT s, count(*) AS n FROM t WHERE a > 1 GROUP BY s HAVING count(*) > 2 "
            "ORDER BY n DESC LIMIT 10 OFFSET 5"
        )
        assert stmt.where is not None
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0].ascending is False
        assert stmt.limit == 10 and stmt.offset == 5

    def test_join_parsing(self):
        stmt = parse("SELECT a FROM t JOIN u ON t.id = u.id AND t.k = u.k")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].left_keys == ("t.id", "t.k")

    def test_left_join_unsupported(self):
        with pytest.raises(UnsupportedSQLError):
            parse("SELECT a FROM t LEFT JOIN u ON t.id = u.id")

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct

    def test_table_alias(self):
        stmt = parse("SELECT m.a FROM measurements m")
        assert stmt.table.alias == "m"
        assert stmt.table.effective_name == "m"

    def test_count_star(self):
        stmt = parse("SELECT count(*) FROM t")
        expr = stmt.items[0].expression
        assert isinstance(expr, FunctionCall) and expr.args == ()

    def test_missing_from_is_allowed_to_parse(self):
        stmt = parse("SELECT 1")
        assert stmt.table is None

    def test_negative_limit_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT a FROM t LIMIT -1")

    def test_semicolon_tolerated(self):
        assert isinstance(parse("SELECT a FROM t;"), SelectStatement)


class TestDDLAndDML:
    def test_create_table(self):
        stmt = parse("CREATE TABLE m (source INT, frequency DOUBLE, intensity DOUBLE, label TEXT, ok BOOLEAN)")
        assert isinstance(stmt, CreateTableStatement)
        assert stmt.columns[0] == ("source", DataType.INT64)
        assert stmt.columns[1] == ("frequency", DataType.FLOAT64)
        assert stmt.columns[3] == ("label", DataType.STRING)
        assert stmt.columns[4] == ("ok", DataType.BOOL)

    def test_create_table_bad_type(self):
        with pytest.raises(UnsupportedSQLError):
            parse("CREATE TABLE t (a blob)")

    def test_insert_values(self):
        stmt = parse("INSERT INTO t VALUES (1, 2.5, 'x'), (2, -3.0, NULL)")
        assert isinstance(stmt, InsertStatement)
        assert stmt.rows == [[1, 2.5, "x"], [2, -3.0, None]]

    def test_insert_with_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_insert_requires_literals(self):
        with pytest.raises(UnsupportedSQLError):
            parse("INSERT INTO t VALUES (a + 1)")

    def test_unsupported_statement(self):
        with pytest.raises(UnsupportedSQLError):
            parse("DELETE FROM t")
