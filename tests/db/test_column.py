"""Tests for columnar storage."""

import numpy as np
import pytest

from repro.db.column import Column
from repro.db.types import DataType
from repro.errors import TypeMismatchError


class TestConstruction:
    def test_from_values_roundtrip(self):
        column = Column.from_values(DataType.INT64, [1, 2, None, 4])
        assert column.to_pylist() == [1, 2, None, 4]

    def test_from_values_infers_nulls(self):
        column = Column.from_values(DataType.FLOAT64, [1.0, None])
        assert column.null_count == 1
        assert column.has_nulls

    def test_from_numpy_nan_becomes_null(self):
        column = Column.from_numpy(DataType.FLOAT64, np.array([1.0, np.nan, 3.0]))
        assert column.to_pylist() == [1.0, None, 3.0]

    def test_infer_builds_common_type(self):
        column = Column.infer([1, 2.5, None])
        assert column.dtype is DataType.FLOAT64

    def test_empty_column(self):
        column = Column.empty(DataType.STRING)
        assert len(column) == 0
        assert column.to_pylist() == []

    def test_validity_length_mismatch_raises(self):
        with pytest.raises(TypeMismatchError):
            Column(DataType.INT64, np.array([1, 2]), np.array([True]))


class TestDerivation:
    @pytest.fixture()
    def column(self):
        return Column.from_values(DataType.FLOAT64, [1.0, 2.0, None, 4.0, 5.0])

    def test_take(self, column):
        assert column.take(np.array([4, 0])).to_pylist() == [5.0, 1.0]

    def test_filter(self, column):
        mask = np.array([True, False, True, False, True])
        assert column.filter(mask).to_pylist() == [1.0, None, 5.0]

    def test_slice(self, column):
        assert column.slice(1, 3).to_pylist() == [2.0, None]

    def test_concat(self, column):
        combined = column.concat(Column.from_values(DataType.FLOAT64, [9.0]))
        assert combined.to_pylist()[-1] == 9.0
        assert len(combined) == 6

    def test_concat_type_mismatch(self, column):
        with pytest.raises(TypeMismatchError):
            column.concat(Column.from_values(DataType.INT64, [1]))

    def test_append_value(self, column):
        appended = column.append_value(None)
        assert appended.to_pylist()[-1] is None
        assert len(appended) == 6
        # original untouched
        assert len(column) == 5


class TestStatisticsHelpers:
    def test_min_max_skip_nulls(self):
        column = Column.from_values(DataType.FLOAT64, [None, 3.0, 1.0, 2.0])
        assert column.min() == 1.0
        assert column.max() == 3.0

    def test_min_of_all_null_is_none(self):
        column = Column.from_values(DataType.FLOAT64, [None, None])
        assert column.min() is None

    def test_distinct_values_sorted(self):
        column = Column.from_values(DataType.INT64, [3, 1, 2, 1, None])
        assert column.distinct_values() == [1, 2, 3]

    def test_string_min_max(self):
        column = Column.from_values(DataType.STRING, ["pear", "apple"])
        assert column.min() == "apple"
        assert column.max() == "pear"

    def test_byte_size(self):
        column = Column.from_values(DataType.INT64, [1, 2, 3])
        assert column.byte_size() == 24

    def test_nonnull_numpy(self):
        column = Column.from_values(DataType.FLOAT64, [1.0, None, 2.0])
        assert list(column.nonnull_numpy()) == [1.0, 2.0]

    def test_equality(self):
        a = Column.from_values(DataType.INT64, [1, None])
        b = Column.from_values(DataType.INT64, [1, None])
        assert a == b
