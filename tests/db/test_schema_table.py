"""Tests for schemas and tables."""

import numpy as np
import pytest

from repro.db.column import Column
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ExecutionError, SchemaError, TypeMismatchError


class TestSchema:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([ColumnDef("a", DataType.INT64), ColumnDef("a", DataType.FLOAT64)])

    def test_of_constructor(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.STRING)
        assert schema.names == ["a", "b"]

    def test_column_lookup(self):
        schema = Schema.of(a=DataType.INT64)
        assert schema.column("a").dtype is DataType.INT64
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_index_of(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.FLOAT64)
        assert schema.index_of("b") == 1

    def test_select_and_rename(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.FLOAT64, c=DataType.STRING)
        assert schema.select(["c", "a"]).names == ["c", "a"]
        assert schema.rename({"a": "x"}).names == ["x", "b", "c"]

    def test_concat(self):
        left = Schema.of(a=DataType.INT64)
        right = Schema.of(b=DataType.FLOAT64)
        assert left.concat(right).names == ["a", "b"]

    def test_row_byte_width(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.FLOAT64, s=DataType.STRING)
        assert schema.row_byte_width() == 8 + 8 + 16

    def test_empty_column_name_rejected(self):
        with pytest.raises(SchemaError):
            ColumnDef("", DataType.INT64)


class TestTableConstruction:
    def test_from_rows(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.STRING)
        table = Table.from_rows("t", schema, [(1, "x"), (2, "y")])
        assert table.num_rows == 2
        assert table.row(1) == (2, "y")

    def test_from_dict_infers_types(self):
        table = Table.from_dict("t", {"a": [1, 2], "b": [1.5, None]})
        assert table.schema.dtype_of("a") is DataType.INT64
        assert table.schema.dtype_of("b") is DataType.FLOAT64

    def test_column_length_mismatch(self):
        schema = Schema.of(a=DataType.INT64, b=DataType.INT64)
        columns = {
            "a": Column.from_values(DataType.INT64, [1, 2]),
            "b": Column.from_values(DataType.INT64, [1]),
        }
        with pytest.raises(SchemaError):
            Table("t", schema, columns)

    def test_wrong_dtype_rejected(self):
        schema = Schema.of(a=DataType.INT64)
        columns = {"a": Column.from_values(DataType.FLOAT64, [1.0])}
        with pytest.raises(TypeMismatchError):
            Table("t", schema, columns)

    def test_from_numpy(self):
        schema = Schema.of(x=DataType.FLOAT64)
        table = Table.from_numpy("t", schema, {"x": np.array([1.0, np.nan])})
        assert table.column("x").to_pylist() == [1.0, None]


class TestTableOperations:
    @pytest.fixture()
    def table(self):
        return Table.from_dict(
            "t",
            {"a": [3, 1, 2, None], "b": [30.0, 10.0, 20.0, 40.0], "s": ["x", "y", "x", "z"]},
        )

    def test_append_rows(self, table):
        table.append_rows([(5, 50.0, "w")])
        assert table.num_rows == 5
        assert table.row(4) == (5, 50.0, "w")

    def test_append_rejects_wrong_width(self, table):
        with pytest.raises(SchemaError):
            table.append_rows([(1, 2.0)])

    def test_append_dicts_missing_key_is_null(self, table):
        table.append_dicts([{"a": 9}])
        assert table.row(table.num_rows - 1) == (9, None, None)

    def test_select_projects_columns(self, table):
        projected = table.select(["b", "a"])
        assert projected.schema.names == ["b", "a"]
        assert projected.row(0) == (30.0, 3)

    def test_filter(self, table):
        filtered = table.filter(np.array([True, False, True, False]))
        assert filtered.num_rows == 2
        assert filtered.column("a").to_pylist() == [3, 2]

    def test_take(self, table):
        taken = table.take(np.array([2, 0]))
        assert taken.column("a").to_pylist() == [2, 3]

    def test_slice_and_head(self, table):
        assert table.slice(1, 3).num_rows == 2
        assert table.head(2).num_rows == 2

    def test_tail(self, table):
        tail = table.tail(2)
        assert tail.num_rows == 2
        assert tail.row(1) == table.row(table.num_rows - 1)
        assert table.tail(100).num_rows == table.num_rows

    def test_sort_by_ascending(self, table):
        result = table.sort_by([("b", True)])
        assert result.column("b").to_pylist() == [10.0, 20.0, 30.0, 40.0]

    def test_sort_by_descending_nulls_last(self, table):
        result = table.sort_by([("a", False)])
        assert result.column("a").to_pylist() == [3, 2, 1, None]

    def test_sort_multi_key_is_stable(self):
        table = Table.from_dict("t", {"k": ["b", "a", "a"], "v": [1, 2, 1]})
        result = table.sort_by([("k", True), ("v", True)])
        assert result.to_rows() == [("a", 1), ("a", 2), ("b", 1)]

    def test_with_column(self, table):
        extended = table.with_column("c", Column.from_values(DataType.INT64, [1, 2, 3, 4]))
        assert "c" in extended.schema
        assert extended.column("c").to_pylist() == [1, 2, 3, 4]

    def test_concat_requires_same_schema(self, table):
        other = Table.from_dict("t2", {"a": [1]})
        with pytest.raises(SchemaError):
            table.concat(other)

    def test_row_out_of_range(self, table):
        with pytest.raises(ExecutionError):
            table.row(10)

    def test_byte_size(self, table):
        # 4 rows * (8 + 8 + 16) bytes
        assert table.byte_size() == 4 * 32

    def test_to_text_contains_header(self, table):
        text = table.to_text()
        assert "a" in text and "NULL" in text

    def test_iter_dicts(self, table):
        first = next(table.iter_dicts())
        assert first == {"a": 3, "b": 30.0, "s": "x"}
