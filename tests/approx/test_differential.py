"""Differential test harness: model answers vs exact answers, at scale.

Generates ≥200 seeded randomized single-table SELECTs (aggregates × GROUP BY
× WHERE ranges) over synthetic datasets with *known* laws, and asserts that

* every approximate answer matches ``answer_exact`` within the answer's own
  stated error estimate (a ``BOUND_MULTIPLIER``·σ band around the stated
  standard error — the estimate must be honest, not just present),
* ``compare()`` reports the route taken, and
* the routes keep holding while streaming ingestion has marked the models
  stale mid-stream.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LawsDatabase

from query_gen import GeneratedQuery, TableProfile, generate_queries

#: Band multiplier applied to each stated standard error.  The stated errors
#: are ~95% bands; across hundreds of randomized queries the harness allows
#: the 3σ (99.7%) band so a deterministic seed stays robustly green.
BOUND_MULTIPLIER = 3.0
ABS_TOL = 1e-6

GROUPS = tuple(range(10))
X_DOMAIN = tuple(float(v) for v in range(6))
REPS_PER_CELL = 6
NOISE = 0.3

TICKS_ROWS = 5000
TICKS_NOISE = 0.4


def _readings_rows(rng: np.random.Generator, reps: int = REPS_PER_CELL):
    """Balanced per-group linear laws: y = a_g + b_g * x + noise."""
    rows = []
    for g in GROUPS:
        intercept, slope = 2.0 + 0.8 * g, 0.4 + 0.15 * g
        for x in X_DOMAIN:
            for _ in range(reps):
                rows.append((g, x, intercept + slope * x + rng.normal(0.0, NOISE)))
    return rows


def _load_readings(db: LawsDatabase, rows) -> None:
    db.load_dict(
        "readings",
        {
            "g": [r[0] for r in rows],
            "x": [r[1] for r in rows],
            "y": [r[2] for r in rows],
        },
    )


READINGS_PROFILE = TableProfile(
    name="readings",
    group_column="g",
    input_column="x",
    output_column="y",
    group_values=GROUPS,
    input_domain=X_DOMAIN,
    input_low=min(X_DOMAIN),
    input_high=max(X_DOMAIN),
)

TICKS_PROFILE = TableProfile(
    name="ticks",
    group_column=None,
    input_column="x",
    output_column="y",
    group_values=(),
    input_domain=(),
    input_low=0.0,
    input_high=10.0,
    continuous_input=True,
)


@pytest.fixture(scope="module")
def differential_db():
    """Both harness tables, with their laws captured."""
    rng = np.random.default_rng(2024)
    db = LawsDatabase()
    _load_readings(db, _readings_rows(rng))
    report = db.fit("readings", "y ~ linear(x)", group_by="g")
    assert report.accepted

    x = rng.uniform(0.0, 10.0, size=TICKS_ROWS)
    y = 2.0 + 1.5 * x + rng.normal(0.0, TICKS_NOISE, size=TICKS_ROWS)
    db.load_dict("ticks", {"x": x.tolist(), "y": y.tolist()})
    report = db.fit("ticks", "y ~ linear(x)")
    assert report.accepted
    return db


# ---------------------------------------------------------------------------
# The differential check
# ---------------------------------------------------------------------------


def _bound(standard_error: float, exact_value: float | None) -> float:
    scale = abs(exact_value) if exact_value is not None else 0.0
    return BOUND_MULTIPLIER * standard_error + ABS_TOL + 1e-9 * scale


def _check_grouped(db: LawsDatabase, query: GeneratedQuery, comparison: dict) -> None:
    approx, exact = comparison["approximate"], comparison["exact"]
    assert comparison["route"] == approx.route
    assert approx.route in ("grouped-model", "grouped-hybrid"), (
        f"grouped query not served from models: {query.sql} -> "
        f"{approx.route} ({approx.reason})"
    )

    approx_rows = {row[0]: row for row in approx.rows()}
    exact_rows = {row[0]: row for row in exact.rows()}
    assert set(approx_rows) == set(exact_rows), (
        f"group sets differ for {query.sql}: "
        f"approx {sorted(approx_rows)} vs exact {sorted(exact_rows)}"
    )

    for key, exact_row in exact_rows.items():
        approx_row = approx_rows[key]
        provenance = approx.group_routes.get((key,), "")
        for position, name in enumerate(query.aggregate_names, start=1):
            exact_value = exact_row[position]
            approx_value = approx_row[position]
            if provenance == "exact":
                stated = 0.0
            else:
                stated = approx.group_errors.get((key,), {}).get(name, 0.0)
            _assert_within(query, approx_value, exact_value, stated, f"group {key}, {name}")


def _check_range(db: LawsDatabase, query: GeneratedQuery, comparison: dict) -> None:
    approx, exact = comparison["approximate"], comparison["exact"]
    assert comparison["route"] == approx.route
    assert approx.route == "range-aggregate", (
        f"range query not served from models: {query.sql} -> "
        f"{approx.route} ({approx.reason})"
    )
    assert approx.table.num_rows == 1 and exact.table.num_rows == 1

    approx_row = approx.rows()[0]
    exact_row = exact.rows()[0]
    for position, name in enumerate(query.aggregate_names):
        exact_value = exact_row[position]
        approx_value = approx_row[position]
        stated = approx.column_errors.get(name, 0.0)
        if exact_value is None and approx_value is not None:
            # The restriction covers no actual rows but a sliver of the
            # estimated domain: acceptable iff the exact engine agrees the
            # restriction is empty on the queried table.
            table_name = query.sql.split(" FROM ", 1)[1].split(" ", 1)[0]
            where = query.sql.split(" WHERE ", 1)[1]
            count_sql = f"SELECT count(*) AS n FROM {table_name} WHERE {where}"
            assert db.sql(count_sql).scalar() == 0
            continue
        _assert_within(query, approx_value, exact_value, stated, name)


def _assert_within(query, approx_value, exact_value, stated_error, label) -> None:
    if exact_value is None and approx_value is None:
        return
    assert approx_value is not None and exact_value is not None, (
        f"{query.sql} [{label}]: approx {approx_value!r} vs exact {exact_value!r}"
    )
    difference = abs(float(approx_value) - float(exact_value))
    bound = _bound(stated_error, float(exact_value))
    assert difference <= bound, (
        f"{query.sql} [{label}]: |{approx_value} - {exact_value}| = {difference:.6g} "
        f"exceeds stated bound {bound:.6g} (se={stated_error:.6g})"
    )


# ---------------------------------------------------------------------------
# The harness runs
# ---------------------------------------------------------------------------


def test_grouped_and_range_queries_match_exact_within_stated_error(differential_db):
    """150 randomized grouped/range queries over the per-group laws."""
    rng = np.random.default_rng(99)
    queries = generate_queries(rng, READINGS_PROFILE, count=150)
    assert len(queries) == 150
    for query in queries:
        comparison = differential_db.compare_sql(query.sql)
        if query.shape == "grouped":
            _check_grouped(differential_db, query, comparison)
        else:
            _check_range(differential_db, query, comparison)


def test_continuous_range_queries_match_exact_within_stated_error(differential_db):
    """70 randomized range queries over the continuous (analytic) law."""
    rng = np.random.default_rng(1234)
    queries = generate_queries(rng, TICKS_PROFILE, count=70, shapes=("range",))
    assert len(queries) == 70
    for query in queries:
        comparison = differential_db.compare_sql(query.sql)
        _check_range(differential_db, query, comparison)


def test_queries_hold_while_models_are_stale_mid_stream():
    """40 randomized queries against models marked stale by streaming ingest.

    The ingested rows follow the same per-group laws (balanced design), so a
    stale model remains the right answer — and the growth-rescaled COUNT/SUM
    must keep tracking the larger table within the stated bounds.
    """
    rng = np.random.default_rng(7)
    db = LawsDatabase(ingest_batch_size=64)
    _load_readings(db, _readings_rows(rng))
    report = db.fit("readings", "y ~ linear(x)", group_by="g")
    assert report.accepted
    model = report.model

    # Stream 50% more rows mid-run; every flushed batch marks models stale.
    extra = _readings_rows(rng, reps=REPS_PER_CELL // 2)
    db.ingest("readings", extra, flush=True)
    assert model.status == "stale"

    queries = generate_queries(rng, READINGS_PROFILE, count=40)
    for query in queries:
        comparison = db.compare_sql(query.sql)
        approx = comparison["approximate"]
        assert not approx.is_exact, f"stale model benched for {query.sql}: {approx.reason}"
        assert "stale" in approx.reason
        if query.shape == "grouped":
            _check_grouped(db, query, comparison)
        else:
            _check_range(db, query, comparison)


def test_harness_scale_meets_issue_floor():
    """The harness totals ≥200 randomized differential queries."""
    assert 150 + 70 + 40 >= 200
