"""Every remaining fallback path must announce itself by message.

Routing regressions are easiest to catch by the *reason* the engine records,
not just by the result: these tests pin the exact reason strings attached to
``ApproximateAnswer`` for each fallback class — joins/multi-table queries,
unknown tables and columns, uncovered columns, SELECT *, non-SELECT
statements, non-enumerable inputs, blow-up protection and unsupported
aggregate shapes."""

import numpy as np
import pytest

from repro import LawsDatabase
from repro.errors import (
    ApproximationError,
    CatalogError,
    ExecutionError,
    ModelNotFoundError,
)


@pytest.fixture(scope="module")
def fallback_db():
    """Two joinable tables; only ``t.y`` has a captured (grouped) model."""
    rng = np.random.default_rng(21)
    rows = []
    for g in range(4):
        for x in range(4):
            for _ in range(8):
                rows.append((g, float(x), 1.0 + g + 0.5 * x + rng.normal(0, 0.2)))
    db = LawsDatabase()
    db.load_dict(
        "t",
        {
            "g": [r[0] for r in rows],
            "x": [r[1] for r in rows],
            "y": [r[2] for r in rows],
            # High-cardinality, never modelled: forces uncovered-column cases.
            "noise": rng.uniform(0, 1, size=len(rows)).tolist(),
        },
    )
    db.load_dict("labels", {"g": [0, 1, 2, 3], "name": ["a", "b", "c", "d"]})
    assert db.fit("t", "y ~ linear(x)", group_by="g").accepted

    # A table whose model input is continuous (non-enumerable domain).
    x = rng.uniform(0.0, 50.0, size=5000)
    db.load_dict(
        "cont",
        {"x": x.tolist(), "y": (3.0 + 0.5 * x + rng.normal(0, 0.3, size=5000)).tolist()},
    )
    assert db.fit("cont", "y ~ linear(x)").accepted
    return db


FALLBACK_CASES = [
    pytest.param(
        "SELECT t.y FROM t JOIN labels ON t.g = labels.g",
        "single-table queries only",
        id="join-multi-table",
    ),
    pytest.param(
        "INSERT INTO labels VALUES (4, 'e')",
        "only SELECT statements can be answered approximately",
        id="non-select",
    ),
    pytest.param(
        "SELECT * FROM t",
        "SELECT * cannot be answered from a model",
        id="select-star",
    ),
    pytest.param(
        "SELECT noise FROM t",
        "no captured model predicts any column referenced by the query",
        id="no-model-for-column",
    ),
    pytest.param(
        "SELECT y, noise FROM t WHERE g = 1",
        "does not cover",
        id="uncovered-column",
    ),
    pytest.param(
        "SELECT y FROM cont WHERE y > 10",
        "not enumerable",
        id="non-enumerable-input",
    ),
]


@pytest.mark.parametrize("sql,expected_reason", FALLBACK_CASES)
def test_fallback_reason_is_recorded(fallback_db, sql, expected_reason):
    answer = fallback_db.approximate_sql(sql)
    assert answer.route == "exact-fallback"
    assert answer.is_exact
    assert expected_reason in answer.reason, (
        f"expected reason containing {expected_reason!r}, got {answer.reason!r}"
    )


@pytest.mark.parametrize("sql,expected_reason", FALLBACK_CASES)
def test_fallback_disallowed_raises_with_same_message(fallback_db, sql, expected_reason):
    with pytest.raises((ApproximationError, ModelNotFoundError)) as excinfo:
        fallback_db.approximate_sql(sql, allow_fallback=False)
    assert expected_reason in str(excinfo.value)


def test_unknown_table_reason():
    """The model router reports the unknown table; the exact fallback then
    fails with the catalog's own error (there is nothing to fall back to)."""
    db = LawsDatabase()
    db.load_dict("t", {"y": [1.0, 2.0]})
    with pytest.raises(ApproximationError, match="unknown table 'missing'"):
        db.approximate_sql("SELECT y FROM missing", allow_fallback=False)
    with pytest.raises(CatalogError):
        db.approximate_sql("SELECT y FROM missing")


def test_unsupported_aggregate_function_reason(fallback_db):
    """A function outside the executor's set is recorded as a route failure
    (and the exact fallback then surfaces the executor's own error)."""
    sql = "SELECT median(y) FROM t WHERE g = 1 AND x = 1"
    with pytest.raises(
        ApproximationError, match="query plan cannot run over the model-generated table"
    ):
        fallback_db.approximate_sql(sql, allow_fallback=False)
    with pytest.raises(ExecutionError, match="unknown scalar function"):
        fallback_db.approximate_sql(sql)


def test_non_numeric_pin_reports_typed_errors(fallback_db):
    """``x = 'abc'`` on a numeric model input must not crash the model
    machinery with a bare ValueError: the approximation layer declines with
    its own error, and the fallback surfaces the executor's type error —
    exactly what exact execution raises for the same query."""
    sql = "SELECT avg(y) AS m FROM cont WHERE x > 1 AND x = 'abc'"
    with pytest.raises(ApproximationError, match="non-numeric"):
        fallback_db.approximate_sql(sql, allow_fallback=False)
    with pytest.raises(ExecutionError, match="cannot compare string column"):
        fallback_db.approximate_sql(sql)


def test_blowup_protection_reason():
    """The max-rows guard names the row count it refused to materialise."""
    rng = np.random.default_rng(4)
    db = LawsDatabase()
    n = 4000
    a = rng.integers(0, 200, size=n).astype(float)
    b = rng.integers(0, 200, size=n).astype(float)
    y = 0.4 * a + 0.2 * b + rng.normal(0, 0.5, size=n)
    db.load_dict("wide", {"a": a.tolist(), "b": b.tolist(), "y": y.tolist()})
    assert db.fit("wide", "y ~ linear(a, b)").accepted
    db.approx.max_virtual_rows = 10
    answer = db.approximate_sql("SELECT y FROM wide")
    assert answer.route == "exact-fallback"
    assert "refusing to materialise" in answer.reason
    assert "max_rows=10" in answer.reason


def test_exact_helper_reason(fallback_db):
    answer = fallback_db.approx.answer_exact("SELECT count(*) AS n FROM t")
    assert answer.reason == "exact execution requested"
