"""Seeded random query generator for the differential test harness.

Generates single-table SELECT statements over the harness's synthetic
datasets, crossing aggregate functions × GROUP BY × WHERE range predicates —
exactly the query shapes the grouped and range routes serve.  Generation is
fully driven by a :class:`numpy.random.Generator`, so a fixed seed yields a
reproducible query workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: Aggregates the model-backed routes weight correctly.
AGGREGATE_FUNCTIONS = ("avg", "sum", "min", "max", "count")


@dataclass(frozen=True)
class GeneratedQuery:
    """One randomized query plus the metadata the harness asserts on."""

    sql: str
    #: "grouped" (GROUP BY present) or "range" (global aggregate over ranges).
    shape: str
    #: Output column name per aggregate in the SELECT list.
    aggregate_names: tuple[str, ...]
    #: The aggregate functions, aligned with ``aggregate_names``.
    functions: tuple[str, ...]


@dataclass(frozen=True)
class TableProfile:
    """What the generator needs to know about a harness table."""

    name: str
    group_column: str | None
    input_column: str
    output_column: str
    group_values: tuple[int, ...]
    #: Discrete input domain (empty for continuous inputs).
    input_domain: tuple[float, ...]
    input_low: float
    input_high: float
    #: Continuous inputs only admit interval predicates (equality on a
    #: continuous value matches no rows and the routes know it cannot).
    continuous_input: bool = False


def generate_queries(
    rng: np.random.Generator,
    profile: TableProfile,
    count: int,
    shapes: Sequence[str] = ("grouped", "range"),
    functions: Sequence[str] = AGGREGATE_FUNCTIONS,
) -> list[GeneratedQuery]:
    """Generate ``count`` randomized queries over the profiled table."""
    queries = []
    for _ in range(count):
        shape = shapes[int(rng.integers(len(shapes)))]
        if shape == "grouped" and profile.group_column is not None:
            queries.append(_grouped_query(rng, profile, functions))
        else:
            queries.append(_range_query(rng, profile, functions))
    return queries


# ---------------------------------------------------------------------------
# Shapes
# ---------------------------------------------------------------------------


def _grouped_query(
    rng: np.random.Generator, profile: TableProfile, functions: Sequence[str]
) -> GeneratedQuery:
    chosen = _choose_functions(rng, functions)
    names = tuple(f"a{i}" for i in range(len(chosen)))
    select = ", ".join(
        [profile.group_column]
        + [
            f"{fn}({profile.output_column}) AS {name}"
            for fn, name in zip(chosen, names)
        ]
    )
    predicates = []
    input_pred = _input_predicate(rng, profile, allow_discrete=not profile.continuous_input)
    if input_pred:
        predicates.append(input_pred)
    group_pred = _group_predicate(rng, profile)
    if group_pred:
        predicates.append(group_pred)
    where = f" WHERE {' AND '.join(predicates)}" if predicates else ""
    sql = (
        f"SELECT {select} FROM {profile.name}{where} "
        f"GROUP BY {profile.group_column} ORDER BY {profile.group_column}"
    )
    return GeneratedQuery(sql=sql, shape="grouped", aggregate_names=names, functions=chosen)


def _range_query(
    rng: np.random.Generator, profile: TableProfile, functions: Sequence[str]
) -> GeneratedQuery:
    chosen = _choose_functions(rng, functions)
    names = tuple(f"a{i}" for i in range(len(chosen)))
    select = ", ".join(
        f"{fn}({profile.output_column}) AS {name}" for fn, name in zip(chosen, names)
    )
    # The range route only engages with a genuine interval predicate.
    predicates = [_interval_predicate(rng, profile)]
    if profile.group_column is not None and rng.random() < 0.4:
        group_pred = _group_predicate(rng, profile)
        if group_pred:
            predicates.append(group_pred)
    sql = f"SELECT {select} FROM {profile.name} WHERE {' AND '.join(predicates)}"
    return GeneratedQuery(sql=sql, shape="range", aggregate_names=names, functions=chosen)


# ---------------------------------------------------------------------------
# Predicate pieces
# ---------------------------------------------------------------------------


def _choose_functions(
    rng: np.random.Generator, functions: Sequence[str]
) -> tuple[str, ...]:
    how_many = 1 + int(rng.random() < 0.35)
    picks = rng.choice(len(functions), size=how_many, replace=False)
    return tuple(functions[int(i)] for i in picks)


def _interval_predicate(rng: np.random.Generator, profile: TableProfile) -> str:
    column = profile.input_column
    low, high = profile.input_low, profile.input_high
    span = high - low
    kind = rng.random()
    a = low + rng.random() * span
    b = low + rng.random() * span
    a, b = min(a, b), max(a, b)
    if kind < 0.5:
        return f"{column} BETWEEN {a:.4f} AND {b:.4f}"
    if kind < 0.7:
        return f"{column} <= {b:.4f}"
    if kind < 0.9:
        return f"{column} >= {a:.4f}"
    # Occasionally an empty or out-of-domain range (both engines must agree).
    return f"{column} > {high + 1.0:.4f}"


def _input_predicate(
    rng: np.random.Generator, profile: TableProfile, allow_discrete: bool
) -> str | None:
    roll = rng.random()
    if roll < 0.35:
        return None
    if roll < 0.75 or not allow_discrete or not profile.input_domain:
        return _interval_predicate(rng, profile)
    domain = profile.input_domain
    if roll < 0.9:
        size = int(rng.integers(1, min(len(domain), 4) + 1))
        picks = rng.choice(len(domain), size=size, replace=False)
        values = ", ".join(f"{domain[int(i)]:g}" for i in sorted(picks))
        return f"{profile.input_column} IN ({values})"
    value = domain[int(rng.integers(len(domain)))]
    return f"{profile.input_column} = {value:g}"


def _group_predicate(rng: np.random.Generator, profile: TableProfile) -> str | None:
    roll = rng.random()
    values = profile.group_values
    if roll < 0.4 or not values:
        return None
    if roll < 0.7:
        size = int(rng.integers(1, min(len(values), 5) + 1))
        picks = rng.choice(len(values), size=size, replace=False)
        chosen = ", ".join(str(values[int(i)]) for i in sorted(picks))
        return f"{profile.group_column} IN ({chosen})"
    if roll < 0.85:
        return f"{profile.group_column} = {values[int(rng.integers(len(values)))]}"
    low = int(rng.integers(min(values), max(values) + 1))
    high = int(rng.integers(low, max(values) + 1))
    return f"{profile.group_column} BETWEEN {low} AND {high}"
