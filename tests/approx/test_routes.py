"""Unit tests for the grouped/range routes, the per-group router and the
WHERE-constraint analysis they are built on."""

import numpy as np
import pytest

from repro import LawsDatabase
from repro.core.approx.routes.constraints import extract_constraints
from repro.core.approx.routes.router import RoutingPolicy, plan_group_routing
from repro.db.sql.parser import parse_expression


def _make_db(rows, ingest_batch_size=512):
    db = LawsDatabase(ingest_batch_size=ingest_batch_size)
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    return db


def _linear_rows(rng, groups=5, xs=4, reps=8, sigma=0.2, skip=None):
    rows = []
    for g in range(groups):
        for x in range(xs):
            n = reps if not (skip and skip(g, x)) else 0
            for _ in range(n):
                rows.append((g, float(x), 1.0 + g + 0.6 * x + rng.normal(0, sigma)))
    return rows


@pytest.fixture(scope="module")
def routed_db():
    rng = np.random.default_rng(42)
    db = _make_db(_linear_rows(rng))
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted
    return db


class TestConstraints:
    def test_between_and_comparisons(self):
        constraints = extract_constraints(parse_expression("x BETWEEN 1 AND 3 AND y < 9"))
        assert constraints.fully_analysed
        x = constraints.constraint("x")
        assert (x.low, x.high) == (1.0, 3.0)
        assert x.low_inclusive and x.high_inclusive
        y = constraints.constraint("y")
        assert y.high == 9.0 and not y.high_inclusive

    def test_flipped_literal_side(self):
        constraints = extract_constraints(parse_expression("3 <= x"))
        x = constraints.constraint("x")
        assert x.low == 3.0 and x.low_inclusive

    def test_in_and_equality_intersect(self):
        constraints = extract_constraints(parse_expression("g IN (1, 2, 3) AND g = 2"))
        assert constraints.constraint("g").values == [2]

    def test_interval_tightening(self):
        constraints = extract_constraints(parse_expression("x > 1 AND x >= 2 AND x < 10 AND x <= 8"))
        x = constraints.constraint("x")
        assert (x.low, x.high) == (2.0, 8.0)
        assert x.low_inclusive and x.high_inclusive

    def test_residual_conjuncts_are_kept(self):
        constraints = extract_constraints(parse_expression("x = 1 OR x = 2"))
        assert not constraints.fully_analysed
        constraints = extract_constraints(parse_expression("x IS NULL AND g = 1"))
        assert len(constraints.residual) == 1
        assert constraints.constraint("g").values == [1]

    def test_admits_and_restrict(self):
        constraints = extract_constraints(parse_expression("x BETWEEN 1 AND 3"))
        x = constraints.constraint("x")
        assert x.restrict_domain([0.0, 1.0, 2.0, 3.0, 4.0]) == [1.0, 2.0, 3.0]
        assert not x.admits(0.5)


class TestRouter:
    def test_failed_groups_go_exact(self):
        rng = np.random.default_rng(3)
        # Group 3 keeps only 8 observations; the floor of 9 fails its fit.
        db = _make_db(_linear_rows(rng, skip=lambda g, x: g == 3 and x > 0))
        report = db.fit("t", "y ~ linear(x)", group_by="g", min_observations=9)
        model = report.model
        plan = plan_group_routing(
            db.models, "t", "y", ("g",), [(g,) for g in range(5)]
        )
        exact_keys = {a.key for a in plan.exact_groups}
        failed = {r.key for r in model.fit.records if not r.succeeded}
        assert failed <= exact_keys

    def test_policy_r_squared_floor(self, routed_db):
        strict = RoutingPolicy(min_group_r_squared=0.999999)
        plan = plan_group_routing(
            routed_db.models, "t", "y", ("g",), [(0,)], policy=strict
        )
        assert not plan.model_groups

    def test_active_model_preferred_over_stale(self, routed_db):
        plan = plan_group_routing(routed_db.models, "t", "y", ("g",), [(1,)])
        [assignment] = plan.assignments
        assert assignment.served_from_model
        assert assignment.model.status == "active"
        assert assignment.fit.n_observations > 0


class TestGroupedRoute:
    def test_per_group_errors_and_provenance(self, routed_db):
        answer = routed_db.approximate_sql(
            "SELECT g, avg(y) AS m, sum(y) AS s FROM t GROUP BY g ORDER BY g"
        )
        assert answer.route == "grouped-model"
        assert answer.io["pages_read"] == 0
        assert len(answer.group_errors) == 5
        for key, errors in answer.group_errors.items():
            assert errors["m"] > 0 and errors["s"] > 0
            assert answer.group_routes[key].startswith("model#")
        estimate = answer.group_error_estimate(2, "m")
        assert estimate.lower < estimate.value < estimate.upper

    def test_weighted_count_matches_exact(self, routed_db):
        comparison = routed_db.compare_sql(
            "SELECT g, count(y) AS n FROM t WHERE x IN (1, 2) GROUP BY g ORDER BY g"
        )
        assert comparison["route"] == "grouped-model"
        assert comparison["approximate"].rows() == comparison["exact"].rows()

    def test_order_by_desc_and_limit(self, routed_db):
        answer = routed_db.approximate_sql(
            "SELECT g, max(y) AS peak FROM t GROUP BY g ORDER BY peak DESC LIMIT 2"
        )
        assert answer.route == "grouped-model"
        assert answer.table.num_rows == 2
        peaks = answer.table.column("peak").to_pylist()
        assert peaks == sorted(peaks, reverse=True)
        assert answer.table.column("g").to_pylist() == [4, 3]

    def test_range_restricted_group_by(self, routed_db):
        comparison = routed_db.compare_sql(
            "SELECT g, avg(y) AS m FROM t WHERE x BETWEEN 1 AND 2 GROUP BY g ORDER BY g"
        )
        assert comparison["route"] == "grouped-model"
        assert comparison["max_relative_error"] < 0.05

    def test_empty_restriction_gives_empty_result(self, routed_db):
        answer = routed_db.approximate_sql(
            "SELECT g, avg(y) AS m FROM t WHERE x > 99 GROUP BY g"
        )
        assert answer.route == "grouped-model"
        assert answer.table.num_rows == 0

    def test_having_stays_on_virtual_table_route(self, routed_db):
        answer = routed_db.approximate_sql(
            "SELECT g, avg(y) AS m FROM t GROUP BY g HAVING avg(y) > 2"
        )
        assert answer.route == "virtual-table"

    def test_hybrid_merges_exact_groups(self):
        rng = np.random.default_rng(5)
        rows = _linear_rows(rng, skip=lambda g, x: g == 3 and x > 0)
        db = _make_db(rows)
        # Group 3 only has 8 observations (one x value); a floor of 9 makes
        # its per-group fit fail, exercising the exact fill-in.
        report = db.fit("t", "y ~ linear(x)", group_by="g", min_observations=9)
        assert any(not r.succeeded for r in report.model.fit.records)
        answer = db.approximate_sql("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g")
        assert answer.route == "grouped-hybrid"
        assert answer.group_routes[(3,)] == "exact"
        assert answer.io["pages_read"] > 0  # only the uncovered group was scanned
        exact = db.sql("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g").table
        assert answer.table.column("g").to_pylist() == exact.column("g").to_pylist()
        merged = answer.table.column("m").to_pylist()
        exact_values = exact.column("m").to_pylist()
        assert merged[3] == pytest.approx(exact_values[3])

    def test_stale_model_keeps_serving_groups(self):
        rng = np.random.default_rng(6)
        db = _make_db(_linear_rows(rng), ingest_batch_size=32)
        report = db.fit("t", "y ~ linear(x)", group_by="g")
        db.ingest("t", _linear_rows(rng, reps=2), flush=True)
        assert report.model.status == "stale"
        answer = db.approximate_sql("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g")
        assert answer.route == "grouped-model"
        assert "stale" in answer.reason

    def test_on_demand_grouped_harvest(self):
        rng = np.random.default_rng(8)
        db = _make_db(_linear_rows(rng))
        db.fit("t", "y ~ linear(x)")  # ungrouped capture (the formula template)
        first = db.approximate_sql("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g")
        assert first.route == "grouped-model"
        assert first.io["pages_read"] > 0  # the one-off harvest scan is charged
        second = db.approximate_sql("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g")
        assert second.route == "grouped-model"
        assert second.io["pages_read"] == 0

    def test_no_template_means_no_harvest(self):
        rng = np.random.default_rng(9)
        db = _make_db(_linear_rows(rng))
        answer = db.approximate_sql("SELECT g, avg(y) AS m FROM t GROUP BY g")
        assert answer.route == "exact-fallback"


class TestRangeRoute:
    def test_grouped_model_combination(self, routed_db):
        comparison = routed_db.compare_sql(
            "SELECT sum(y) AS s, count(y) AS n FROM t WHERE x >= 1 AND x <= 2"
        )
        assert comparison["route"] == "range-aggregate"
        assert comparison["approx_pages_read"] == 0
        approx, exact = comparison["approximate"], comparison["exact"]
        assert approx.table.column("n").to_pylist() == exact.table.column("n").to_pylist()
        assert comparison["max_relative_error"] < 0.05
        assert approx.column_errors["s"] > 0

    def test_group_pinned_range(self, routed_db):
        comparison = routed_db.compare_sql(
            "SELECT avg(y) AS m FROM t WHERE g IN (1, 2) AND x > 0.5"
        )
        assert comparison["route"] == "range-aggregate"
        assert comparison["max_relative_error"] < 0.05

    def test_equality_only_queries_keep_their_routes(self, routed_db):
        answer = routed_db.approximate_sql("SELECT avg(y) AS m FROM t WHERE x = 1")
        assert answer.route == "virtual-table"

    def test_predicate_on_output_declines(self, routed_db):
        answer = routed_db.approximate_sql(
            "SELECT count(y) AS n FROM t WHERE x >= 1 AND y > 3"
        )
        # Filtering on predicted values needs per-row evaluation.
        assert answer.route == "virtual-table"

    def test_empty_range_matches_sql_semantics(self, routed_db):
        answer = routed_db.approximate_sql(
            "SELECT sum(y) AS s, count(y) AS n FROM t WHERE x > 99"
        )
        assert answer.route == "range-aggregate"
        assert answer.rows() == [(None, 0)]

    def test_skewed_input_distribution_count_sum_avg(self):
        """Frequency-weighted coverage: restricted COUNT/SUM/AVG must track
        exact results on skewed input distributions, not assume uniformity."""
        rng = np.random.default_rng(16)
        rows = []
        for g in range(3):
            for x, reps in ((0.0, 60), (1.0, 4), (2.0, 4), (3.0, 4)):
                for _ in range(reps):
                    rows.append((g, x, 1.0 + g + 5.0 * x + rng.normal(0, 0.1)))
        db = _make_db(rows)
        assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
        sql = "SELECT g, count(y) AS n, sum(y) AS s, avg(y) AS m FROM t WHERE x >= 1 GROUP BY g ORDER BY g"
        comparison = db.compare_sql(sql)
        assert comparison["route"] == "grouped-model"
        approx, exact = comparison["approximate"], comparison["exact"]
        for (g, n, s, m), (_, ne, se_, me) in zip(approx.rows(), exact.table.to_rows()):
            errors = approx.group_errors[(g,)]
            assert n == ne  # per-value frequencies make the count exact here
            assert abs(s - se_) <= 3 * errors["s"] + 1e-6
            assert abs(m - me) <= 3 * errors["m"] + 1e-6

    def test_hybrid_with_new_group_does_not_double_count(self):
        """Appends forming a brand-new group must not inflate the stale
        model-served groups: live per-group cardinalities win over the
        table-growth rescaling."""
        rng = np.random.default_rng(18)
        rows = [(g, float(x), 1.0 + g + 0.8 * x + rng.normal(0, 0.1))
                for g in range(4) for x in range(4) for _ in range(12)]
        db = _make_db(rows, ingest_batch_size=64)
        report = db.fit("t", "y ~ linear(x)", group_by="g")
        assert report.accepted
        extra = [(9, float(x), 10.0 + 0.8 * x + rng.normal(0, 0.1))
                 for x in range(4) for _ in range(12)]
        db.ingest("t", extra, flush=True)
        answer = db.approximate_sql("SELECT g, count(y) AS n FROM t GROUP BY g ORDER BY g")
        assert answer.route == "grouped-hybrid"
        assert answer.group_routes[(9,)] == "exact"
        exact = db.sql("SELECT g, count(y) AS n FROM t GROUP BY g ORDER BY g").table
        assert answer.table.column("n").to_pylist() == exact.column("n").to_pylist()

    def test_nonproportional_stale_growth_stays_within_band(self):
        """Streaming growth concentrated in one group: the stated COUNT band
        must cover the worst-case cardinality drift."""
        rng = np.random.default_rng(17)
        rows = [(g, float(x), 1.0 + g + 0.8 * x + rng.normal(0, 0.1))
                for g in range(2) for x in range(4) for _ in range(100)]
        db = _make_db(rows, ingest_batch_size=128)
        report = db.fit("t", "y ~ linear(x)", group_by="g")
        assert report.accepted
        # All new rows land in group 0 only.
        extra = [(0, float(x), 1.0 + 0.8 * x + rng.normal(0, 0.1))
                 for x in range(4) for _ in range(100)]
        db.ingest("t", extra, flush=True)
        assert report.model.status == "stale"
        answer = db.approximate_sql("SELECT g, count(y) AS n FROM t GROUP BY g ORDER BY g")
        assert answer.route == "grouped-model"
        exact = db.sql("SELECT g, count(y) AS n FROM t GROUP BY g ORDER BY g").table
        for (g, n), (_, ne) in zip(answer.rows(), exact.to_rows()):
            band = 3 * answer.group_errors[(g,)]["n"]
            assert abs(n - ne) <= band, (g, n, ne, band)

    def test_null_group_keys_force_exact(self):
        """Rows with a NULL group key form their own exact group; the model
        has no parameters for it, so the route must decline."""
        rng = np.random.default_rng(20)
        rows = [(g, float(x), 1.0 + g + 0.5 * x + rng.normal(0, 0.1))
                for g in range(3) for x in range(4) for _ in range(10)]
        db = LawsDatabase()
        db.load_dict("t", {
            "g": [r[0] for r in rows] + [None] * 5,
            "x": [r[1] for r in rows] + [1.0] * 5,
            "y": [r[2] for r in rows] + [9.0] * 5,
        })
        assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
        comparison = db.compare_sql("SELECT g, avg(y) AS m FROM t GROUP BY g")
        # The grouped route must not serve this (the enumeration route may,
        # with its own long-standing semantics; the key point is no
        # grouped-model answer that silently lacks the NULL group).
        assert comparison["route"] not in ("grouped-model", "grouped-hybrid")

    def test_null_output_values_shrink_count_within_band(self):
        """COUNT(col)/SUM exclude NULLs; the routes shrink by the null
        fraction and state a binomial allowance instead of claiming the
        full row count exactly."""
        rng = np.random.default_rng(21)
        rows = [(g, float(x), 1.0 + g + 0.5 * x + rng.normal(0, 0.05))
                for g in range(3) for x in range(4) for _ in range(10)]
        db = LawsDatabase()
        db.load_dict("t", {
            "g": [r[0] for r in rows] + [0],
            "x": [r[1] for r in rows] + [1.0],
            "y": [r[2] for r in rows] + [None],
        })
        assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
        comparison = db.compare_sql("SELECT g, count(y) AS n FROM t GROUP BY g ORDER BY g")
        assert comparison["route"] == "grouped-model"
        approx, exact = comparison["approximate"], comparison["exact"]
        for (g, n), (_, ne) in zip(approx.rows(), exact.table.to_rows()):
            band = 3 * approx.group_errors[(g,)]["n"] + 1.0
            assert abs(n - ne) <= band, (g, n, ne, band)
        # COUNT(*) still counts NULL-output rows.
        star = db.compare_sql(
            "SELECT g, count(*) AS n, avg(y) AS m FROM t GROUP BY g ORDER BY g"
        )
        assert star["route"] == "grouped-model"
        star_counts = star["approximate"].table.column("n").to_pylist()
        assert star_counts == star["exact"].table.column("n").to_pylist()

    def test_new_group_mid_stream_forces_honest_fallback(self):
        """A group value that appeared after capture cannot be regenerated;
        global aggregates must fall back (with the reason recorded) instead
        of silently dropping the new group's rows — unless the predicate
        explicitly excludes it, in which case the model still serves."""
        rng = np.random.default_rng(19)
        rows = [(g, float(x), 1.0 + g + 0.8 * x + rng.normal(0, 0.1))
                for g in range(4) for x in range(4) for _ in range(12)]
        db = _make_db(rows, ingest_batch_size=64)
        assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
        extra = [(9, float(x), 10.0 + 0.8 * x + rng.normal(0, 0.1))
                 for x in range(4) for _ in range(12)]
        db.ingest("t", extra, flush=True)

        fallback = db.approximate_sql("SELECT sum(y) AS s FROM t WHERE x >= 1")
        assert fallback.route == "exact-fallback"
        assert "appeared after model" in fallback.reason

        served = db.compare_sql("SELECT sum(y) AS s FROM t WHERE x >= 1 AND g IN (0, 1, 2, 3)")
        assert served["route"] == "range-aggregate"
        assert served["max_relative_error"] < 0.05

    def test_predicate_on_unmodelled_column_declines(self):
        """A WHERE constraint the model's inputs cannot express must force
        exact execution, never be silently dropped."""
        rng = np.random.default_rng(15)
        rows = _linear_rows(rng)
        db = LawsDatabase()
        db.load_dict(
            "t",
            {
                "g": [r[0] for r in rows],
                "x": [r[1] for r in rows],
                "y": [r[2] for r in rows],
                "z": rng.uniform(0, 10, size=len(rows)).tolist(),
            },
        )
        assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
        comparison = db.compare_sql("SELECT g, count(y) AS c FROM t WHERE z > 8 GROUP BY g ORDER BY g")
        assert comparison["route"] == "exact-fallback"
        assert comparison["approximate"].rows() == comparison["exact"].rows()

    def test_restricted_count_and_sum_carry_selectivity_error(self, routed_db):
        """Coverage fractions assume uniformity; restricted COUNT/SUM must
        say so via a non-zero stated error instead of claiming exactness."""
        answer = routed_db.approximate_sql(
            "SELECT g, count(y) AS n, sum(y) AS s FROM t WHERE x IN (1, 2) GROUP BY g"
        )
        assert answer.route == "grouped-model"
        for errors in answer.group_errors.values():
            assert errors["n"] > 0
            assert errors["s"] > 0
        unrestricted = routed_db.approximate_sql(
            "SELECT g, count(y) AS n FROM t GROUP BY g"
        )
        for errors in unrestricted.group_errors.values():
            assert errors["n"] == 0.0  # full-domain counts stay exact when fresh

    def test_aggregate_over_group_key_declines(self, routed_db):
        """MIN(g) must never be answered with output-column predictions."""
        comparison = routed_db.compare_sql(
            "SELECT g, min(g) AS lo, avg(y) AS m FROM t GROUP BY g ORDER BY g"
        )
        assert comparison["route"] not in ("grouped-model", "grouped-hybrid")
        approx = comparison["approximate"]
        exact = comparison["exact"]
        assert approx.table.column("lo").to_pylist() == exact.table.column("lo").to_pylist()

    def test_non_monotone_polynomial_max_scans_interior(self):
        """MAX of a concave fit peaks in the interior, not at the corners."""
        rng = np.random.default_rng(12)
        x = rng.uniform(0.0, 10.0, size=6000)
        y = -((x - 5.0) ** 2) + rng.normal(0, 0.3, size=6000)
        db = LawsDatabase()
        db.load_dict("c", {"x": x.tolist(), "y": y.tolist()})
        assert db.fit("c", "y ~ poly(x, degree=2)").accepted
        answer = db.approximate_sql("SELECT max(y) AS peak FROM c WHERE x BETWEEN 0 AND 10")
        assert answer.route == "range-aggregate"
        exact = db.sql("SELECT max(y) AS peak FROM c WHERE x BETWEEN 0 AND 10").scalar()
        # Corner-only evaluation would report ~-25; the interior scan finds ~0.
        assert answer.scalar() == pytest.approx(exact, abs=3 * answer.column_errors["peak"] + 0.5)

    def test_rejected_grouped_refit_is_not_retried(self):
        """ensure_grouped keeps a negative cache over unchanged data."""
        rng = np.random.default_rng(13)
        from repro.core.quality import QualityPolicy

        db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.999999))
        db.load_dict(
            "t",
            {
                "g": [int(v) for v in rng.integers(0, 4, size=200)],
                "x": rng.uniform(0, 1, size=200).tolist(),
                "y": rng.uniform(0, 1, size=200).tolist(),
            },
        )
        db.fit("t", "y ~ linear(x)")  # rejected, but usable as a template
        first = db.approximate_sql("SELECT g, avg(y) AS m FROM t GROUP BY g")
        assert first.route == "exact-fallback"
        models_after_first = len(db.captured_models("t"))
        second = db.approximate_sql("SELECT g, avg(y) AS m FROM t GROUP BY g")
        assert second.route == "exact-fallback"
        assert len(db.captured_models("t")) == models_after_first

    def test_declined_query_shape_skips_harvest(self):
        """A query the route would decline must not trigger a grouped refit."""
        rng = np.random.default_rng(14)
        db = _make_db(_linear_rows(rng))
        db.fit("t", "y ~ linear(x)")
        before = len(db.captured_models("t"))
        # The OR disjunction is a residual conjunct the route cannot analyse.
        answer = db.approximate_sql(
            "SELECT g, avg(y) AS m FROM t WHERE x = 1 OR x = 2 GROUP BY g"
        )
        assert answer.route not in ("grouped-model", "grouped-hybrid")
        assert len(db.captured_models("t")) == before

    def test_continuous_input_uses_analytic_integration(self):
        rng = np.random.default_rng(10)
        x = rng.uniform(0.0, 10.0, size=5000)
        y = 1.0 + 2.0 * x + rng.normal(0, 0.3, size=5000)
        db = LawsDatabase()
        db.load_dict("c", {"x": x.tolist(), "y": y.tolist()})
        assert db.fit("c", "y ~ linear(x)").accepted
        comparison = db.compare_sql("SELECT avg(y) AS m FROM c WHERE x BETWEEN 2 AND 5")
        assert comparison["route"] == "range-aggregate"
        assert "analytic integration" in comparison["approximate"].reason
        assert comparison["max_relative_error"] < 0.05

    def test_pinned_values_respect_cooccurring_interval(self):
        """``x IN (2, 8) AND x < 5`` must evaluate at 2, not at mean(2, 8)."""
        rng = np.random.default_rng(11)
        x = rng.uniform(0.0, 10.0, size=5000)
        y = 1.0 + 2.0 * x + rng.normal(0, 0.3, size=5000)
        db = LawsDatabase()
        db.load_dict("c", {"x": x.tolist(), "y": y.tolist()})
        assert db.fit("c", "y ~ linear(x)").accepted
        answer = db.approximate_sql("SELECT avg(y) AS m FROM c WHERE x IN (2.0, 8.0) AND x < 5")
        assert answer.route == "range-aggregate"
        # y(2) = 5; the unfiltered midpoint mean(2, 8) = 5 would give y(5) = 11.
        assert answer.scalar() == pytest.approx(5.0, abs=0.5)
