"""Recovery under injected and hand-made damage.

Satellite coverage:

* ENOSPC (or a crash) at any fault point *inside* ``checkpoint()`` leaves
  the previous manifest in charge and the WAL replayable — the tmp +
  fsync + rename pivot is the commit point.
* A torn WAL tail is truncated, quarantined, journaled as a
  ``wal-truncation`` event and counted in ``recovery_total{outcome}``.
* Flipped bytes in one warehouse model entry quarantine exactly that
  entry; every other model serves after reopen.
"""

import json

import pytest

from repro import LawsDatabase
from repro.core.planner import AccuracyContract
from repro.errors import ReproError
from repro.resilience import FaultInjector
from repro.resilience.faults import FaultSpec

ROWS = 48
EXTRA = 16


def make_rows(start, count):
    return [(float(t), 2.0 * t + 3.0) for t in range(start, start + count)]


def populate(db):
    db.load_dict(
        "metrics",
        {
            "t": [float(t) for t in range(ROWS)],
            "v": [2.0 * t + 3.0 for t in range(ROWS)],
        },
    )
    db.fit("metrics", "v ~ t")


#: Fault points that fire somewhere inside ``checkpoint()``.
CHECKPOINT_POINTS = (
    "persist.snapshot.write",
    "persist.warehouse.store",
    "persist.manifest.write",
    "persist.wal.reset",
)


def _arrivals(injector, point):
    state = injector._points.get(point)
    return state.count if state is not None else 0


@pytest.mark.parametrize("point", CHECKPOINT_POINTS)
def test_enospc_mid_checkpoint_keeps_previous_manifest_and_wal(tmp_path, point):
    # Probe run: count arrivals at `point` up to (but not including) the
    # second checkpoint, so the fault can be pinned inside checkpoint #2
    # regardless of how many times the point fires during setup.
    probe = FaultInjector([FaultSpec(point, "latency", hit=1_000_000)])

    def run(root, faults):
        db = LawsDatabase.open(root, fault_injector=faults)
        populate(db)
        db.checkpoint()
        db.insert_rows("metrics", make_rows(ROWS, EXTRA))
        return db

    db = run(tmp_path / "probe", probe)
    arrivals_before_second = _arrivals(probe, point)
    db.checkpoint()
    arrivals_inside = _arrivals(probe, point) - arrivals_before_second
    db.close()
    assert arrivals_inside >= 1, f"{point} never fires during checkpoint()"

    faults = FaultInjector(
        [FaultSpec(point, "oserror", hit=arrivals_before_second + 1)],
    )
    db = run(tmp_path / "store", faults)
    try:
        db.checkpoint()
    except ReproError:
        pass  # a typed refusal is the expected shape for most points
    finally:
        db.close()
    assert [e.hit for e in faults.fired()] == [arrivals_before_second + 1]

    # The previous manifest + WAL must reconstruct every acknowledged row.
    reopened = LawsDatabase.open(tmp_path / "store")
    try:
        assert reopened.table("metrics").num_rows == ROWS + EXTRA
        assert reopened.quarantine_report()["count"] == 0
        assert reopened.resilience.health.failed_components() == []
    finally:
        reopened.close()


def test_torn_wal_tail_is_truncated_quarantined_and_journaled(tmp_path):
    root = tmp_path / "store"
    db = LawsDatabase.open(root)
    populate(db)
    db.checkpoint()
    db.insert_rows("metrics", make_rows(ROWS, EXTRA))
    db.insert_rows("metrics", make_rows(ROWS + EXTRA, EXTRA))
    db.close()

    wal_path = root / "wal.log"
    intact = wal_path.read_bytes()
    wal_path.write_bytes(intact[:-7])  # tear the last frame mid-payload

    db = LawsDatabase.open(root)
    try:
        # The torn frame (the second insert) is gone; everything before the
        # tear — checkpointed rows plus the first intact WAL frame — serves.
        assert db.table("metrics").num_rows == ROWS + EXTRA
        truncations = db.events(kind="wal-truncation")
        assert len(truncations) == 1
        assert truncations[0].fields["truncated_bytes"] > 0
        assert (
            db.obs.metrics.counter_value("recovery_total", outcome="wal-truncated")
            == 1
        )
        tails = db.durable.quarantine.records(artefact="wal-tail")
        assert len(tails) == 1
        assert tails[0].reason  # names why the tail was cut
        # The torn tail is damage, not loss of acknowledged commits: the
        # file itself stays live and the store keeps accepting writes.
        db.insert_rows("metrics", make_rows(ROWS + 2 * EXTRA, EXTRA))
        db.checkpoint()
    finally:
        db.close()

    reopened = LawsDatabase.open(root)
    try:
        assert reopened.table("metrics").num_rows == ROWS + 2 * EXTRA
        assert (
            reopened.obs.metrics.counter_value("recovery_total", outcome="clean") == 1
        )
    finally:
        reopened.close()


def test_corrupt_warehouse_entry_quarantined_rest_serves(tmp_path):
    root = tmp_path / "store"
    db = LawsDatabase.open(root)
    db.load_dict(
        "metrics",
        {
            "t": [float(t) for t in range(ROWS)],
            "v": [2.0 * t + 3.0 for t in range(ROWS)],
            "w": [5.0 * t - 1.0 for t in range(ROWS)],
        },
    )
    db.fit("metrics", "v ~ t")
    db.fit("metrics", "w ~ t")
    db.checkpoint()
    db.close()

    manifest = json.loads((root / "MANIFEST.json").read_text())
    warehouse_path = root / manifest["warehouse_file"]
    payload = json.loads(warehouse_path.read_text())
    victims = [e for e in payload["models"] if e["coverage"]["output_column"] == "v"]
    assert len(victims) == 1
    victims[0]["fit"] = "\x00garbage\x00"  # the flipped bytes
    warehouse_path.write_text(json.dumps(payload))

    db = LawsDatabase.open(root)
    try:
        # Exactly the corrupt entry is quarantined and journaled...
        entries = db.durable.quarantine.records(artefact="warehouse-entry")
        assert len(entries) == 1
        assert db.events(kind="quarantine", artefact="warehouse-entry")
        assert db.resilience.health.state("warehouse") == "degraded"
        # ...while the surviving model still answers under contract.
        surviving = db.best_model("metrics", "w")
        assert surviving is not None
        answer = db.query(
            "SELECT avg(w) AS m FROM metrics",
            AccuracyContract(max_relative_error=0.1, verify_fraction=0.0),
        )
        exact = db.query(
            "SELECT avg(w) AS m FROM metrics", AccuracyContract(mode="exact")
        )
        assert float(answer.scalar()) == pytest.approx(float(exact.scalar()), rel=0.1)
        # The quarantined model is simply gone from the store.
        assert all(m.output_column != "v" for m in db.captured_models("metrics"))
    finally:
        db.close()
