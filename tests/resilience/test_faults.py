"""Unit tests for the deterministic fault injector itself."""

import errno

import pytest

from repro.errors import InjectedFault
from repro.resilience.faults import (
    DESTRUCTIVE,
    FAULT_POINTS,
    FaultAction,
    FaultInjector,
    FaultSpec,
)


def test_unscheduled_points_are_silent():
    injector = FaultInjector([FaultSpec("persist.wal.append", "oserror", hit=2)])
    assert injector.hit("persist.snapshot.write") is None
    assert injector.hit("persist.wal.append") is None  # hit 1: not scheduled
    assert injector.fired() == ()


def test_hit_counters_are_one_based_and_per_point():
    injector = FaultInjector(
        [
            FaultSpec("persist.wal.append", "oserror", hit=1),
            FaultSpec("persist.snapshot.write", "oserror", hit=2),
        ]
    )
    with pytest.raises(OSError):
        injector.hit("persist.wal.append")
    # The snapshot point keeps its own counter: its first arrival is clean.
    assert injector.hit("persist.snapshot.write") is None
    with pytest.raises(OSError):
        injector.hit("persist.snapshot.write")


def test_oserror_kind_carries_errno_and_path():
    injector = FaultInjector(
        [FaultSpec("persist.manifest.write", "oserror", errno_code=errno.ENOSPC)]
    )
    with pytest.raises(OSError) as info:
        injector.hit("persist.manifest.write", path="/tmp/MANIFEST.json")
    assert info.value.errno == errno.ENOSPC
    assert info.value.filename == "/tmp/MANIFEST.json"


def test_exception_kind_raises_injected_fault():
    injector = FaultInjector([FaultSpec("fitting.fit", "exception")])
    with pytest.raises(InjectedFault) as info:
        injector.hit("fitting.fit")
    assert info.value.point == "fitting.fit"
    assert info.value.hit == 1


def test_latency_kind_sleeps_through_injectable_sleep():
    slept = []
    injector = FaultInjector(
        [FaultSpec("persist.wal.reset", "latency", latency_seconds=0.25)],
        sleep=slept.append,
    )
    assert injector.hit("persist.wal.reset") is None
    assert slept == [0.25]


def test_cooperative_kinds_return_an_action():
    injector = FaultInjector(
        [FaultSpec("persist.snapshot.write", "torn_write", fraction=0.5)]
    )
    action = injector.hit("persist.snapshot.write")
    assert isinstance(action, FaultAction)
    assert action.kind == "torn_write"


def test_apply_torn_write_keeps_a_prefix():
    action = FaultAction("persist.snapshot.write", "torn_write", fraction=0.5)
    data = bytes(range(100))
    torn = FaultInjector.apply(action, data)
    assert torn == data[:50]
    # Never tears to nothing — a zero-byte "write" is a different failure.
    assert FaultInjector.apply(action, b"x") == b"x"


def test_apply_bit_flip_changes_exactly_one_bit():
    action = FaultAction("persist.snapshot.read", "bit_flip", bit_index=13)
    data = bytes(16)
    flipped = FaultInjector.apply(action, data)
    assert len(flipped) == len(data)
    diff = [a ^ b for a, b in zip(data, flipped)]
    changed = [d for d in diff if d]
    assert len(changed) == 1
    assert bin(changed[0]).count("1") == 1


def test_filter_bytes_flips_on_schedule_only():
    injector = FaultInjector(
        [FaultSpec("persist.wal.replay", "bit_flip", hit=2, bit_index=0)]
    )
    data = b"payload"
    assert injector.filter_bytes("persist.wal.replay", data) == data
    assert injector.filter_bytes("persist.wal.replay", data) != data


def test_fired_log_and_drain():
    injector = FaultInjector([FaultSpec("persist.wal.append", "latency")])
    injector.hit("persist.wal.append")
    events = injector.fired()
    assert [(e.point, e.kind, e.hit) for e in events] == [
        ("persist.wal.append", "latency", 1)
    ]
    assert injector.drain() == events
    assert injector.fired() == ()


def test_is_destructive_matches_the_frozen_set():
    for point, kind in sorted(DESTRUCTIVE):
        assert FaultInjector([FaultSpec(point, kind)]).is_destructive()
    assert not FaultInjector(
        [FaultSpec("persist.wal.append", "oserror")]
    ).is_destructive()


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        FaultSpec("no.such.point", "oserror")
    with pytest.raises(ValueError):
        FaultSpec("persist.wal.append", "no-such-kind")
    with pytest.raises(ValueError):
        FaultSpec("persist.wal.append", "oserror", hit=0)
    with pytest.raises(ValueError):
        FaultInjector(
            [
                FaultSpec("persist.wal.append", "oserror", hit=1),
                FaultSpec("persist.wal.append", "latency", hit=1),
            ]
        )


def test_random_schedule_is_reproducible_and_valid():
    a = FaultInjector.random_schedule(42)
    b = FaultInjector.random_schedule(42)
    assert a == b
    assert FaultInjector.random_schedule(43) != a
    for spec in a:
        assert spec.point in FAULT_POINTS
        assert 1 <= spec.hit <= 5
