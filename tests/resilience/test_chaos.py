"""The seeded chaos torture suite: randomized fault schedules vs an oracle.

Each schedule is derived deterministically from its seed
(:meth:`FaultInjector.random_schedule`), replayed against the shared
workload in :mod:`tests.resilience.harness`, and held to the resilience
layer's three guarantees:

1. **No acknowledged committed batch is ever lost** — for schedules whose
   faults cannot destroy durable bytes; schedules containing destructive
   faults (bit flips on read paths, torn snapshot/warehouse writes) may
   lose data but must *disclose* it (quarantine ledger, failed components,
   journaled WAL truncation).
2. **No undisclosed out-of-contract answer** — a served answer either
   meets its error budget or carries an explicit degradation disclosure.
3. **Every injected fault resolves** as a successful retry, a journaled
   quarantine, or a typed error — enforced structurally: the harness only
   absorbs :class:`~repro.errors.ReproError`; anything else fails the run.

``CHAOS_SCHEDULES`` controls the schedule count (default 200, the
acceptance floor); the CI chaos job additionally randomizes seeds via
``CHAOS_SEED_OFFSET``.
"""

from __future__ import annotations

import os

import pytest

from repro.resilience import FaultInjector
from tests.resilience.harness import run_workload, schedule_count

pytestmark = pytest.mark.chaos

SEED_OFFSET = int(os.environ.get("CHAOS_SEED_OFFSET", "0"))
SEEDS = [SEED_OFFSET + seed for seed in range(schedule_count())]

#: Fault points observed firing across the whole parametrized run —
#: asserted ≥ 8 by the coverage test below.
_FIRED_POINTS: set[str] = set()
_RUNS_COMPLETED: list[int] = []


@pytest.fixture(scope="module")
def oracle(tmp_path_factory):
    """The never-faulted run every schedule is diffed against."""
    outcome = run_workload(tmp_path_factory.mktemp("oracle") / "db")
    bad = [op for op in outcome.ops if not op.ok]
    assert not bad, f"oracle workload must be clean, got failures: {bad}"
    assert outcome.acked_t == outcome.submitted_t
    assert set(outcome.final_t) == outcome.submitted_t
    assert outcome.fingerprint is not None
    assert not outcome.contract_breaches
    return outcome


def test_workload_is_deterministic(tmp_path, oracle):
    """Two never-faulted runs agree byte-for-byte — the oracle is sound."""
    again = run_workload(tmp_path / "db")
    assert again.fingerprint == oracle.fingerprint


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_schedule(seed, tmp_path, oracle):
    specs = FaultInjector.random_schedule(seed)
    faults = FaultInjector(specs, sleep=lambda _s: None)
    outcome = run_workload(tmp_path / "db", faults)
    _FIRED_POINTS.update(event.point for event in outcome.fired)
    _RUNS_COMPLETED.append(seed)

    # A row exists at most once (no batch is ever double-applied) and no
    # row the workload never submitted can appear.
    assert len(outcome.final_t) == len(set(outcome.final_t)), (
        f"seed {seed}: duplicated rows {sorted(outcome.final_t)}"
    )
    assert set(outcome.final_t) <= outcome.submitted_t

    # Served answers are in budget or explicitly degraded.
    assert not outcome.contract_breaches, f"seed {seed}: {outcome.contract_breaches}"

    if not faults.is_destructive():
        assert outcome.fingerprint is not None, (
            f"seed {seed}: audit reopen failed on a non-destructive schedule: "
            f"{[op for op in outcome.ops if not op.ok]}"
        )
        assert not outcome.lost_t, (
            f"seed {seed}: acknowledged rows {sorted(outcome.lost_t)} lost "
            f"under non-destructive schedule {specs}; ops={outcome.ops}"
        )
    elif outcome.lost_t or outcome.fingerprint is None:
        assert outcome.disclosed, (
            f"seed {seed}: destructive schedule lost {sorted(outcome.lost_t)} "
            f"row(s) with no quarantine/health/truncation disclosure; "
            f"ops={outcome.ops}"
        )

    # A run where nothing fired must be indistinguishable from the oracle.
    if not outcome.fired:
        assert outcome.fingerprint == oracle.fingerprint, (
            f"seed {seed}: no fault fired yet the final state diverged"
        )


def test_fault_point_coverage():
    """Across the whole run the schedules must actually exercise the
    instrumented surface — at least 8 distinct fault points fired."""
    if not _RUNS_COMPLETED:
        pytest.skip("seeded schedules did not run (filtered out)")
    assert len(_FIRED_POINTS) >= 8, (
        f"only {len(_FIRED_POINTS)} fault point(s) fired across "
        f"{len(_RUNS_COMPLETED)} schedule(s): {sorted(_FIRED_POINTS)}"
    )
