"""Shared harness for the fault-injection chaos suite.

Design: one deterministic durable workload, run twice — once never-faulted
(the oracle) and once per seeded fault schedule.  The workload models a
process lifetime in three phases:

* **Phase A** (faulted): open a durable store, bulk-load, fit, watch,
  stream batches with maintenance ticks, checkpoint, archive + recall,
  stream more, then close *without* a final checkpoint (crash-style: the
  post-checkpoint acknowledgements live only in the WAL).
* **Phase B** (faulted): reopen the same store — this is where read-path
  faults (bit flips on snapshot/warehouse/WAL bytes) fire — query under
  contracts, run a maintenance tick, close.
* **Phase C** (audit, never faulted): reopen cleanly, recall any archived
  segments, and read the surviving state directly: row identities,
  :meth:`Database.fingerprint`, the quarantine ledger, failed components,
  recovery metrics and journal totals.

Every operation is wrapped so a typed :class:`~repro.errors.ReproError`
is an acceptable *resolution* of an injected fault; anything else escaping
(a bare ``OSError``, a ``ValueError``) propagates and fails the test —
which is exactly the "every injected fault ends as a successful retry, a
journaled quarantine, or a typed error" guarantee.

Row accounting is by identity, not count: every row carries a unique ``t``
and a row is *acknowledged* only when the operation that durably committed
it returned normally (for ingest, only the batches the flush actually
returned).  Lost-vs-acknowledged and double-application are then set
comparisons against the audited final state.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro import LawsDatabase
from repro.core.planner import AccuracyContract
from repro.errors import ReproError
from repro.resilience import FaultInjector
from repro.resilience.faults import FaultEvent

__all__ = ["ChaosOutcome", "OpRecord", "run_workload", "schedule_count", "value_for"]

#: Ingest batch size; every streamed chunk is exactly one batch.
BATCH = 16
#: Rows in the initial bulk load.
INITIAL_ROWS = 64
#: Streamed batches before / after the explicit checkpoint.
BATCHES_BEFORE_CHECKPOINT = 3
BATCHES_AFTER_CHECKPOINT = 2

EXACT = AccuracyContract(mode="exact")
#: The served-answer contract the chaos assertions audit against.
APPROX = AccuracyContract(max_relative_error=0.2, verify_fraction=1.0)


def schedule_count(default: int = 200) -> int:
    """How many seeded schedules to run (``CHAOS_SCHEDULES`` overrides)."""
    return int(os.environ.get("CHAOS_SCHEDULES", default))


def value_for(t: int) -> float:
    """The workload's exact law: rows never deviate from it, so any accepted
    model predicts (near-)exactly and contract checks cannot flake."""
    return 2.5 * t + 1.0


@dataclass
class OpRecord:
    """One workload operation: how it ended and which faults fired in it."""

    name: str
    outcome: str  # "ok" or the typed exception class name
    faults: tuple[FaultEvent, ...] = ()
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.outcome == "ok"


@dataclass
class ChaosOutcome:
    """Everything one workload run exposes to the chaos assertions."""

    ops: list[OpRecord] = field(default_factory=list)
    #: ``t`` identities of rows whose committing operation returned normally.
    acked_t: set[int] = field(default_factory=set)
    #: ``t`` identities of every row the workload ever submitted.
    submitted_t: set[int] = field(default_factory=set)
    #: ``t`` identities present after the clean audit reopen (phase C).
    final_t: list[int] = field(default_factory=list)
    fingerprint: str | None = None
    fired: tuple[FaultEvent, ...] = ()
    quarantine_count: int = 0
    failed_components: list[str] = field(default_factory=list)
    recovery_outcomes: dict[Any, float] = field(default_factory=dict)
    journal_totals: dict[str, int] = field(default_factory=dict)
    #: Served answers that violated their contract without disclosure.
    contract_breaches: list[str] = field(default_factory=list)
    #: Answers served with an explicit degradation disclosure.
    degraded_answers: int = 0

    def op(self, name: str) -> OpRecord:
        return next(record for record in self.ops if record.name == name)

    @property
    def lost_t(self) -> set[int]:
        return self.acked_t - set(self.final_t)

    @property
    def disclosed(self) -> bool:
        """Did the run leave operator-visible evidence of damage?"""
        return bool(
            self.quarantine_count
            or self.failed_components
            or self.journal_totals.get("wal-truncation", 0)
        )


def run_workload(root: Path | str, faults: FaultInjector | None = None) -> ChaosOutcome:
    """Run the three-phase workload; see the module docstring."""
    out = ChaosOutcome()
    fired_all: list[FaultEvent] = []

    def drain() -> tuple[FaultEvent, ...]:
        if faults is None:
            return ()
        events = faults.drain()
        fired_all.extend(events)
        return events

    def step(name: str, fn: Callable[[], Any]) -> tuple[Any, bool]:
        try:
            result = fn()
        except ReproError as exc:
            out.ops.append(OpRecord(name, type(exc).__name__, drain(), str(exc)))
            return None, False
        out.ops.append(OpRecord(name, "ok", drain()))
        return result, True

    def open_db(name: str, with_faults: bool) -> Any:
        db, _ = step(
            name,
            lambda: LawsDatabase.open(
                root,
                ingest_batch_size=BATCH,
                verify_seed=0,
                fault_injector=faults if with_faults else None,
            ),
        )
        return db

    next_t = 0

    def ingest_batch(db: Any, name: str) -> None:
        nonlocal next_t
        ts = list(range(next_t, next_t + BATCH))
        next_t += BATCH
        out.submitted_t.update(ts)
        rows = [(t, value_for(t)) for t in ts]
        batches, ok = step(name, lambda: db.ingest("metrics", rows, flush=True))
        if ok:
            # Acknowledge exactly the rows the flush reported committed —
            # a failed earlier flush requeues its rows, so they may ride
            # out (and become acknowledged) in a later batch.
            for batch in batches:
                out.acked_t.update(int(row[0]) for row in batch.rows)

    def check_contract(db: Any, tag: str) -> None:
        answer, ok_a = step(
            f"query-approx-{tag}",
            lambda: db.query("SELECT avg(v) AS m FROM metrics", APPROX),
        )
        exact, ok_e = step(
            f"query-exact-{tag}",
            lambda: db.query("SELECT avg(v) AS m FROM metrics", EXACT),
        )
        if ok_a and answer.plan.degraded_reason is not None:
            out.degraded_answers += 1
            return
        if not (ok_a and ok_e):
            return
        approx_value = float(answer.scalar())
        exact_value = float(exact.scalar())
        if exact_value and abs(approx_value - exact_value) / abs(exact_value) > (
            APPROX.max_relative_error or 0.0
        ):
            out.contract_breaches.append(
                f"{tag}: served {approx_value} vs exact {exact_value} with no disclosure"
            )

    # -- phase A: populate, checkpoint, archive, crash-style close ----------
    db = open_db("open", with_faults=True)
    if db is not None:
        initial = {
            "t": list(range(INITIAL_ROWS)),
            "v": [value_for(t) for t in range(INITIAL_ROWS)],
        }
        out.submitted_t.update(range(INITIAL_ROWS))
        next_t = INITIAL_ROWS
        _, ok = step("load", lambda: db.load_dict("metrics", initial))
        if ok:
            out.acked_t.update(range(INITIAL_ROWS))
        step("fit", lambda: db.fit("metrics", "v ~ t"))
        step("watch", lambda: db.watch("metrics", "v", order_column="t"))
        for i in range(BATCHES_BEFORE_CHECKPOINT):
            ingest_batch(db, f"ingest-a{i}")
            step(f"maintain-a{i}", db.maintain)
        step("checkpoint", db.checkpoint)
        step("archive", lambda: db.archive("metrics", "t < 16"))
        step("recall", lambda: db.recall_archive("metrics"))
        for i in range(BATCHES_AFTER_CHECKPOINT):
            ingest_batch(db, f"ingest-b{i}")
        check_contract(db, "a")
        step("close-a", db.close)

    # -- phase B: faulted reopen (read-path faults fire here) ---------------
    db = open_db("reopen", with_faults=True)
    if db is not None:
        check_contract(db, "b")
        step("maintain-b", db.maintain)
        step("close-b", db.close)

    # -- phase C: never-faulted audit ---------------------------------------
    audit = open_db("audit-open", with_faults=False)
    if audit is not None:
        if audit.archive_tier is not None and audit.archive_tier.archived_tables():
            step(
                "audit-recall",
                lambda: [
                    audit.recall_archive(name)
                    for name in audit.archive_tier.archived_tables()
                ],
            )
        if audit.database.has_table("metrics"):
            table = audit.database.table("metrics")
            index = table.schema.names.index("t")
            out.final_t = [int(row[index]) for row in table.to_rows()]
        out.fingerprint = audit.database.fingerprint()
        out.quarantine_count = audit.quarantine_report()["count"]
        out.failed_components = audit.resilience.health.failed_components()
        out.recovery_outcomes = audit.obs.metrics.counter_series("recovery_total")
        out.journal_totals = audit.obs.journal.totals()
        step("audit-close", audit.close)

    out.fired = tuple(fired_all)
    return out
