"""Unit tests for the quarantine manager and minimal-subset shrinking."""

import json

import pytest

from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.resilience.quarantine import (
    QuarantineManager,
    minimal_failing_subset,
)


class CountingProbe:
    """probe() that fails when the batch contains any bad item."""

    def __init__(self, bad):
        self.bad = set(bad)
        self.calls = 0

    def __call__(self, batch):
        self.calls += 1
        if any(item in self.bad for item in batch):
            raise ValueError("bad entry in batch")


def test_minimal_subset_empty_and_clean():
    probe = CountingProbe(bad=[])
    assert minimal_failing_subset([], probe) == []
    assert minimal_failing_subset(list(range(8)), probe) == []
    assert probe.calls == 1  # clean fast path: one whole-batch probe


def test_minimal_subset_finds_exactly_the_bad_indices():
    items = list(range(16))
    probe = CountingProbe(bad=[3, 11])
    assert minimal_failing_subset(items, probe) == [3, 11]
    for index in (3, 11):
        with pytest.raises(ValueError):
            probe([items[index]])


def test_minimal_subset_probe_count_is_logarithmic():
    n = 256
    probe = CountingProbe(bad=[57])
    assert minimal_failing_subset(list(range(n)), probe) == [57]
    # One bad entry in n items: ~2*log2(n) probes, nowhere near n.
    assert probe.calls <= 2 * n.bit_length() + 2


def test_quarantine_file_moves_and_ledgers(tmp_path):
    manager = QuarantineManager(tmp_path)
    victim = tmp_path / "segment.npz"
    victim.write_bytes(b"corrupt bytes")
    record = manager.quarantine_file(
        victim, artefact="snapshot-segment", reason="checksum mismatch"
    )
    assert not victim.exists()
    quarantined = tmp_path / "quarantine" / "segment.npz"
    assert quarantined.read_bytes() == b"corrupt bytes"
    assert record.quarantined_path == str(quarantined)
    ledger = json.loads(manager.ledger_path.read_text())
    assert len(ledger["records"]) == 1
    assert ledger["records"][0]["artefact"] == "snapshot-segment"


def test_quarantine_name_collisions_get_suffixes(tmp_path):
    manager = QuarantineManager(tmp_path)
    for payload in (b"first", b"second"):
        manager.quarantine_bytes(payload, name="tail.bin", artefact="wal-tail", reason="torn")
    directory = tmp_path / "quarantine"
    assert (directory / "tail.bin").read_bytes() == b"first"
    assert (directory / "tail.bin.1").read_bytes() == b"second"


def test_ledger_survives_reload(tmp_path):
    manager = QuarantineManager(tmp_path)
    manager.quarantine_bytes(b"x", name="a.bin", artefact="wal-tail", reason="torn")
    manager.quarantine_entry({"model_id": 7}, name="m.json", artefact="warehouse-entry", reason="bad")
    reloaded = QuarantineManager(tmp_path)
    report = reloaded.report()
    assert report["count"] == 2
    assert report["by_artefact"] == {"wal-tail": 1, "warehouse-entry": 1}
    assert reloaded.records(artefact="warehouse-entry")[0].source == "m.json"


def test_corrupt_ledger_is_set_aside_not_fatal(tmp_path):
    manager = QuarantineManager(tmp_path)
    manager.quarantine_bytes(b"x", name="a.bin", artefact="wal-tail", reason="torn")
    manager.ledger_path.write_text("{not json", encoding="utf-8")
    reloaded = QuarantineManager(tmp_path)
    assert reloaded.records() == []
    assert manager.ledger_path.with_suffix(".corrupt").exists()


def test_quarantine_journals_and_counts(tmp_path):
    journal = EventJournal()
    metrics = MetricsRegistry()
    manager = QuarantineManager(tmp_path, journal=journal, metrics=metrics)
    manager.quarantine_bytes(b"x", name="a.bin", artefact="wal-tail", reason="torn")
    events = journal.events(kind="quarantine")
    assert len(events) == 1
    assert events[0].fields["artefact"] == "wal-tail"
    assert metrics.counter_value("quarantine_total", artefact="wal-tail") == 1
