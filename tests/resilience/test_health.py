"""Unit tests for the health registry and the circuit breaker."""

import pytest

from repro.obs.events import EventJournal
from repro.resilience.health import (
    DEGRADED,
    FAILED,
    HEALTHY,
    CircuitBreaker,
    HealthRegistry,
)


def test_unknown_components_are_healthy():
    registry = HealthRegistry()
    assert registry.state("warehouse") == HEALTHY
    assert not registry.is_failed("warehouse")
    assert registry.failed_components() == []


def test_transitions_journal_and_fan_out():
    journal = EventJournal()
    registry = HealthRegistry(journal=journal)
    seen = []
    registry.on_transition = lambda name, was, now: seen.append((name, was, now))
    registry.mark_degraded("wal", "flaky appends")
    registry.mark_failed("wal", "log quarantined")
    registry.mark_failed("wal", "log quarantined")  # no transition, no event
    registry.mark_healthy("wal", "operator acknowledged")
    assert seen == [
        ("wal", HEALTHY, DEGRADED),
        ("wal", DEGRADED, FAILED),
        ("wal", FAILED, HEALTHY),
    ]
    events = journal.events(kind="health-transition")
    assert [(e.fields["was"], e.fields["state"]) for e in events] == [
        (HEALTHY, DEGRADED),
        (DEGRADED, FAILED),
        (FAILED, HEALTHY),
    ]
    assert registry.reason("wal") == "operator acknowledged"


def test_invalid_state_rejected():
    with pytest.raises(ValueError):
        HealthRegistry().set_state("wal", "on-fire")


def test_report_lists_components_sorted():
    registry = HealthRegistry()
    registry.mark_failed("warehouse", "gone")
    registry.mark_degraded("table:metrics", "partial")
    report = registry.report()
    assert list(report) == ["table:metrics", "warehouse"]
    assert report["warehouse"]["state"] == FAILED
    assert registry.failed_components() == ["warehouse"]


def make_breaker(**kwargs):
    clock = {"now": 0.0}
    breaker = CircuitBreaker(
        "refit:metrics.v", clock=lambda: clock["now"], **kwargs
    )
    return breaker, clock


def test_breaker_opens_at_threshold():
    breaker, _ = make_breaker(failure_threshold=3)
    assert not breaker.record_failure("one")
    assert not breaker.record_failure("two")
    assert breaker.allow()
    assert breaker.record_failure("three")  # newly open
    assert breaker.is_open
    assert not breaker.allow()


def test_breaker_success_resets_the_count():
    breaker, _ = make_breaker(failure_threshold=2)
    breaker.record_failure("one")
    breaker.record_success()
    breaker.record_failure("one again")
    assert not breaker.is_open  # the success cleared the streak


def test_half_open_single_trial_then_close():
    breaker, clock = make_breaker(failure_threshold=1, cooldown_seconds=10.0)
    breaker.record_failure("boom")
    assert not breaker.allow()
    clock["now"] = 10.0
    assert breaker.allow()  # the half-open trial
    assert not breaker.allow()  # only one trial at a time
    breaker.record_success()
    assert not breaker.is_open
    assert breaker.allow()


def test_half_open_failure_reopens():
    breaker, clock = make_breaker(failure_threshold=1, cooldown_seconds=10.0)
    breaker.record_failure("boom")
    clock["now"] = 10.0
    assert breaker.allow()
    assert breaker.record_failure("still broken")  # reopens immediately
    assert not breaker.allow()
    clock["now"] = 20.0
    assert breaker.allow()  # a fresh cooldown earns a fresh trial


def test_breaker_drives_health_and_journal():
    journal = EventJournal()
    health = HealthRegistry()
    clock = {"now": 0.0}
    breaker = CircuitBreaker(
        "verifier",
        failure_threshold=1,
        cooldown_seconds=5.0,
        clock=lambda: clock["now"],
        health=health,
        journal=journal,
    )
    breaker.record_failure("storm")
    assert health.state("verifier") == DEGRADED
    assert journal.events(kind="breaker-open")
    clock["now"] = 5.0
    assert breaker.allow()
    breaker.record_success()
    assert health.state("verifier") == HEALTHY
    assert journal.events(kind="breaker-close")
