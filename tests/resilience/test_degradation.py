"""Graceful planner degradation: disclosed model answers vs typed refusals."""

import pytest

from repro import LawsDatabase
from repro.core.planner import AccuracyContract
from repro.errors import DegradedServiceError
from repro.resilience import FaultInjector
from repro.resilience.faults import FaultSpec

ROWS = 64


@pytest.fixture
def db():
    system = LawsDatabase(verify_seed=0)
    system.load_dict(
        "metrics",
        {
            "t": [float(t) for t in range(ROWS)],
            "v": [2.0 * t + 3.0 for t in range(ROWS)],
        },
    )
    system.fit("metrics", "v ~ t")
    return system


def fail_table(db):
    db.resilience.health.mark_failed("table:metrics", "snapshot segments quarantined")


def test_exact_query_raises_typed_degraded_error(db):
    fail_table(db)
    with pytest.raises(DegradedServiceError) as info:
        db.query("SELECT avg(v) AS m FROM metrics", AccuracyContract(mode="exact"))
    assert info.value.component == "table:metrics"
    assert "quarantined" in info.value.reason


def test_approx_query_serves_with_disclosure(db):
    baseline = db.query(
        "SELECT avg(v) AS m FROM metrics",
        AccuracyContract(max_relative_error=0.1, verify_fraction=0.0),
    )
    fail_table(db)
    answer = db.query(
        "SELECT avg(v) AS m FROM metrics",
        AccuracyContract(max_relative_error=0.1, verify_fraction=0.0),
    )
    assert answer.plan.degraded_reason is not None
    assert not answer.is_exact
    assert float(answer.scalar()) == pytest.approx(float(baseline.scalar()), rel=0.1)
    # The disclosure propagates to metrics and the compliance ledger.
    assert db.obs.metrics.counter_total("degraded_answers_total") == 1
    route_report = db.compliance_report()["routes"][answer.route_taken]
    assert route_report["degraded_served"] == 1
    # ...and no feedback audit ran: "exact" over the partial rows would
    # record bogus evidence against the surviving model.
    assert answer.feedback is None


def test_explain_discloses_degradation_without_executing(db):
    fail_table(db)
    plan_text = db.explain("SELECT avg(v) AS m FROM metrics")
    assert "Degraded: table:metrics" in plan_text


def test_queries_on_healthy_tables_unaffected(db):
    db.load_dict("other", {"x": [1.0, 2.0, 3.0]})
    fail_table(db)
    answer = db.query("SELECT sum(x) AS s FROM other", AccuracyContract(mode="exact"))
    assert float(answer.scalar()) == 6.0
    assert answer.plan.degraded_reason is None


def test_acknowledge_degraded_restores_service(db):
    fail_table(db)
    with pytest.raises(DegradedServiceError):
        db.query("SELECT avg(v) AS m FROM metrics", AccuracyContract(mode="exact"))
    db.acknowledge_degraded("table:metrics")
    # The health transition bumped the store version, so the cached
    # degraded plan is invalid and exact service resumes immediately.
    answer = db.query("SELECT avg(v) AS m FROM metrics", AccuracyContract(mode="exact"))
    assert answer.is_exact


def test_refit_breaker_skips_storming_target():
    specs = [
        FaultSpec("streaming.maintenance.refit", "exception", hit=h)
        for h in range(1, 10)
    ]
    db = LawsDatabase(verify_seed=0, fault_injector=FaultInjector(specs))
    db.load_dict(
        "metrics",
        {
            "t": [float(t) for t in range(ROWS)],
            "v": [2.0 * t + 3.0 for t in range(ROWS)],
        },
    )
    db.fit("metrics", "v ~ t")
    db.watch("metrics", "v", order_column="t")
    threshold = db.resilience.breaker_failure_threshold
    kinds = []
    for _ in range(threshold + 2):
        # Every tick sees fresh drifted data, so maintenance keeps trying
        # to refit — and the injected storm keeps failing it.
        db.ingest("metrics", [(float(ROWS), 1e6)], flush=True)
        report = db.maintain()
        (action,) = report.actions
        kinds.append((action.kind, action.details))
    assert [k for k, _ in kinds[:threshold]] == ["error"] * threshold
    skipped = [d for k, d in kinds[threshold:] if k == "none"]
    assert skipped and all("circuit breaker" in d for d in skipped)
    assert db.resilience.health.state("refit:metrics.v") == "degraded"
    # The stale-but-servable old model keeps answering throughout.
    assert db.best_model("metrics", "v") is not None


def test_verifier_breaker_stops_failing_audits():
    specs = [FaultSpec("planner.verify", "exception", hit=h) for h in range(1, 20)]
    db = LawsDatabase(verify_seed=0, fault_injector=FaultInjector(specs))
    db.load_dict(
        "metrics",
        {
            "t": [float(t) for t in range(ROWS)],
            "v": [2.0 * t + 3.0 for t in range(ROWS)],
        },
    )
    db.fit("metrics", "v ~ t")
    contract = AccuracyContract(max_relative_error=0.1, verify_fraction=1.0)
    threshold = db.resilience.breaker_failure_threshold
    for i in range(threshold + 2):
        # The audit storm must never fail an answer that served correctly.
        answer = db.query(f"SELECT avg(v) AS m{i} FROM metrics", contract)
        assert answer.feedback is None
    breaker = db.resilience.breaker("planner.verify")
    assert breaker.is_open
    # Only `threshold` audits actually ran; the rest were skipped open.
    fired = [e for e in db.resilience.faults.fired() if e.point == "planner.verify"]
    assert len(fired) == threshold
    assert db.obs.metrics.counter_total("verifier_failures_total") == threshold
