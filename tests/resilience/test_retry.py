"""Unit tests for the retry policy and the retrier."""

import errno
import random

import pytest

from repro.obs.events import EventJournal
from repro.resilience.retry import Retrier, RetryPolicy, TRANSIENT_ERRNOS


def make_retrier(policy=None, **kwargs):
    """A retrier with a fake clock and a sleep log — no real time passes."""
    slept = []
    clock = {"now": 0.0}

    def sleep(seconds):
        slept.append(seconds)
        clock["now"] += seconds

    retrier = Retrier(policy, sleep=sleep, clock=lambda: clock["now"], **kwargs)
    return retrier, slept, clock


def test_delays_shape_exponential_capped_jittered():
    policy = RetryPolicy(
        max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
    )
    assert list(policy.delays(random.Random(0))) == [0.1, 0.2, 0.4, 0.5]
    jittered = RetryPolicy(
        max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.25
    )
    for base, actual in zip([0.1, 0.2, 0.4, 0.8], jittered.delays(random.Random(0))):
        assert base <= actual <= base * 1.25


def test_transient_classification():
    for code in TRANSIENT_ERRNOS:
        assert Retrier.is_transient(OSError(code, "x"))
    assert not Retrier.is_transient(OSError(errno.ENOSPC, "full"))
    assert not Retrier.is_transient(ValueError("not an OSError"))


def test_retry_succeeds_after_transient_failures():
    retrier, slept, _ = make_retrier(RetryPolicy(max_attempts=4, jitter=0.0))
    first = OSError(errno.EIO, "flaky")
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] < 2:
            raise OSError(errno.EIO, "flaky again")
        return "ok"

    assert retrier.retry(fn, first_error=first, operation="t") == "ok"
    assert calls["n"] == 2
    assert len(slept) == 2  # one backoff per re-attempt


def test_non_transient_error_mid_retry_raises_immediately():
    retrier, _, _ = make_retrier()

    def fn():
        raise OSError(errno.ENOSPC, "disk full")

    with pytest.raises(OSError) as info:
        retrier.retry(fn, first_error=OSError(errno.EIO, "flaky"), operation="t")
    assert info.value.errno == errno.ENOSPC


def test_retry_all_keeps_retrying_non_transient_errors():
    retrier, _, _ = make_retrier(RetryPolicy(max_attempts=4, jitter=0.0))
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] < 3:
            raise OSError(errno.ENOSPC, "phantom full")
        return "read"

    result = retrier.retry(
        fn, first_error=OSError(errno.ENOSPC, "phantom full"), retry_all=True
    )
    assert result == "read"
    assert calls["n"] == 3


def test_exhaustion_reraises_the_last_error():
    retrier, slept, _ = make_retrier(RetryPolicy(max_attempts=3, jitter=0.0))
    attempts = []

    def fn():
        attempts.append(1)
        raise OSError(errno.EIO, f"attempt {len(attempts)}")

    with pytest.raises(OSError) as info:
        retrier.retry(fn, first_error=OSError(errno.EIO, "attempt 0"))
    assert "attempt 2" in str(info.value)
    assert len(slept) == 2  # max_attempts - 1 re-attempts


def test_timeout_budget_stops_early():
    policy = RetryPolicy(
        max_attempts=10, base_delay=1.0, multiplier=1.0, max_delay=1.0,
        jitter=0.0, timeout_budget=2.5,
    )
    retrier, slept, _ = make_retrier(policy)

    def fn():
        raise OSError(errno.EIO, "never")

    with pytest.raises(OSError):
        retrier.retry(fn, first_error=OSError(errno.EIO, "first"))
    # Only two 1-second sleeps fit in a 2.5-second budget.
    assert slept == [1.0, 1.0]


def test_retry_outcomes_are_journaled():
    journal = EventJournal()
    retrier, _, _ = make_retrier(RetryPolicy(max_attempts=2, jitter=0.0))
    retrier.journal = journal
    retrier.retry(lambda: "ok", first_error=OSError(errno.EIO, "x"), operation="op-a")
    with pytest.raises(OSError):
        retrier.retry(
            lambda: (_ for _ in ()).throw(OSError(errno.EIO, "y")),
            first_error=OSError(errno.EIO, "y"),
            operation="op-b",
        )
    events = journal.events(kind="retry")
    outcomes = {e.fields["operation"]: e.fields["outcome"] for e in events}
    assert outcomes == {"op-a": "success", "op-b": "exhausted"}
