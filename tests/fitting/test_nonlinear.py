"""Tests for Gauss-Newton and Levenberg-Marquardt optimisation."""

import numpy as np
import pytest

from repro.errors import FittingError, InsufficientDataError
from repro.fitting import Exponential, Logistic, PowerLaw, Sinusoid, fit_model, fit_nonlinear_family
from repro.fitting.nonlinear import gauss_newton, levenberg_marquardt, numeric_jacobian


@pytest.fixture()
def powerlaw_data():
    rng = np.random.default_rng(7)
    x = rng.uniform(0.1, 0.2, 500)
    y = 0.06 * x**-0.7 * np.exp(rng.normal(0, 0.02, 500))
    return x, y


class TestOptimisers:
    def test_gauss_newton_solves_quadratic_residual(self):
        # Fit y = a*x + b to exact data; residuals are linear in params so GN converges in one step.
        x = np.linspace(0, 1, 30)
        y = 2.0 * x + 1.0

        def residual(params):
            return params[0] * x + params[1] - y

        params, iterations, converged = gauss_newton(residual, np.array([0.0, 0.0]))
        assert converged
        assert params == pytest.approx([2.0, 1.0], abs=1e-8)
        assert iterations <= 3

    def test_levenberg_marquardt_powerlaw(self, powerlaw_data):
        x, y = powerlaw_data

        def residual(params):
            return params[0] * x ** params[1] - y

        params, _, converged = levenberg_marquardt(residual, np.array([1.0, -1.0]))
        assert converged
        assert params[1] == pytest.approx(-0.7, abs=0.05)

    def test_numeric_jacobian_matches_analytic(self):
        x = np.linspace(1, 2, 10)

        def residual(params):
            return params[0] * np.exp(params[1] * x)

        params = np.array([1.5, 0.3])
        numeric = numeric_jacobian(residual, params)
        analytic = np.column_stack([np.exp(0.3 * x), 1.5 * x * np.exp(0.3 * x)])
        assert numeric == pytest.approx(analytic, rel=1e-4)

    def test_gauss_newton_nonfinite_raises(self):
        from repro.errors import ConvergenceError

        def residual(params):
            return np.array([np.inf, np.inf])

        with pytest.raises(ConvergenceError):
            gauss_newton(residual, np.array([1.0]))


class TestFamilyFits:
    def test_powerlaw_recovery_lm(self, powerlaw_data):
        x, y = powerlaw_data
        fit = fit_nonlinear_family(PowerLaw(), {"frequency": x}, y, method="lm")
        assert fit.param_dict["alpha"] == pytest.approx(-0.7, abs=0.03)
        assert fit.param_dict["p"] == pytest.approx(0.06, rel=0.1)
        assert fit.converged
        assert fit.r_squared > 0.9

    def test_powerlaw_recovery_gn(self, powerlaw_data):
        x, y = powerlaw_data
        fit = fit_nonlinear_family(PowerLaw(), {"frequency": x}, y, method="gn")
        assert fit.param_dict["alpha"] == pytest.approx(-0.7, abs=0.05)

    def test_exponential_recovery(self):
        rng = np.random.default_rng(8)
        x = np.linspace(0, 3, 200)
        y = 2.0 * np.exp(-1.2 * x) + rng.normal(0, 0.01, 200)
        fit = fit_model(Exponential(), {"x": x}, y)
        assert fit.param_dict["a"] == pytest.approx(2.0, rel=0.05)
        assert fit.param_dict["b"] == pytest.approx(-1.2, rel=0.05)

    def test_logistic_recovery(self):
        rng = np.random.default_rng(9)
        x = np.linspace(-5, 5, 300)
        y = 4.0 / (1.0 + np.exp(-1.5 * (x - 0.5))) + rng.normal(0, 0.02, 300)
        fit = fit_model(Logistic(), {"x": x}, y)
        assert fit.param_dict["L"] == pytest.approx(4.0, rel=0.05)
        assert fit.param_dict["x0"] == pytest.approx(0.5, abs=0.1)

    def test_sinusoid_recovery(self):
        x = np.linspace(0, 4 * np.pi, 400)
        y = 2.0 * np.sin(1.0 * x + 0.0) + 5.0
        fit = fit_model(Sinusoid(), {"x": x}, y)
        assert fit.r_squared > 0.99

    def test_custom_initial_params(self, powerlaw_data):
        x, y = powerlaw_data
        fit = fit_nonlinear_family(
            PowerLaw(), {"x": x}, y, initial_params=np.array([0.05, -0.5])
        )
        assert fit.param_dict["alpha"] == pytest.approx(-0.7, abs=0.05)

    def test_wrong_initial_param_length(self, powerlaw_data):
        x, y = powerlaw_data
        with pytest.raises(FittingError):
            fit_nonlinear_family(PowerLaw(), {"x": x}, y, initial_params=np.array([1.0]))

    def test_insufficient_data(self):
        with pytest.raises(InsufficientDataError):
            fit_nonlinear_family(PowerLaw(), {"x": np.array([1.0, 2.0])}, np.array([1.0, 2.0]))

    def test_unknown_method(self, powerlaw_data):
        x, y = powerlaw_data
        with pytest.raises(FittingError):
            fit_nonlinear_family(PowerLaw(), {"x": x}, y, method="sgd")

    def test_covariance_present(self, powerlaw_data):
        x, y = powerlaw_data
        fit = fit_nonlinear_family(PowerLaw(), {"x": x}, y)
        assert fit.covariance is not None
        assert fit.covariance.shape == (2, 2)

    def test_fit_model_dispatches_nonlinear(self, powerlaw_data):
        x, y = powerlaw_data
        fit = fit_model(PowerLaw(), {"x": x}, y)
        assert fit.extra.get("method") == "lm"

    def test_fit_model_drops_nan_rows(self, powerlaw_data):
        x, y = powerlaw_data
        y = y.copy()
        y[:10] = np.nan
        fit = fit_model(PowerLaw(), {"x": x}, y)
        assert fit.n_observations == len(y) - 10
