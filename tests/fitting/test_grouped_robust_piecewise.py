"""Tests for grouped fitting, robust fitting and piecewise polynomials."""

import numpy as np
import pytest

from repro.datasets import lofar
from repro.errors import FittingError, InsufficientDataError
from repro.fitting import (
    GroupedFitter,
    LinearModel,
    PowerLaw,
    fit_grouped,
    fit_model,
    fit_piecewise,
    fit_robust,
)


class TestGroupedFitting:
    @pytest.fixture(scope="class")
    def dataset(self):
        return lofar.generate(num_sources=40, observations_per_source=24, seed=21, anomaly_fraction=0.0)

    @pytest.fixture(scope="class")
    def grouped(self, dataset):
        table = dataset.to_table()
        return fit_grouped(table, PowerLaw(), ["frequency"], "intensity", ["source"])

    def test_one_record_per_source(self, grouped, dataset):
        assert grouped.num_groups == dataset.num_sources

    def test_parameters_recovered_per_group(self, grouped, dataset):
        recovered = 0
        for source_id, truth in dataset.truths.items():
            fit = grouped.result_for(source_id)
            if fit is None:
                continue
            if abs(fit.param_dict["alpha"] - truth.alpha) < 0.25:
                recovered += 1
        assert recovered >= 0.9 * dataset.num_sources

    def test_parameter_table_shape(self, grouped, dataset):
        table = grouped.to_parameter_table()
        assert table.num_rows == len(grouped.fitted)
        assert set(table.schema.names) == {"source", "p", "alpha", "residual_se", "r_squared", "n_obs"}

    def test_parameter_table_much_smaller_than_raw(self, grouped, dataset):
        raw_bytes = dataset.to_table().byte_size()
        assert grouped.byte_size() < 0.3 * raw_bytes

    def test_too_few_observations_recorded_as_failure(self):
        table = lofar.generate(num_sources=3, observations_per_source=2, seed=1).to_table()
        result = fit_grouped(table, PowerLaw(), ["frequency"], "intensity", ["source"])
        assert all(not record.succeeded for record in result.records)
        assert all("observations" in record.error for record in result.records)

    def test_anomaly_ranking_sorted(self, grouped):
        ranking = grouped.anomaly_ranking()
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_requires_group_columns(self):
        with pytest.raises(FittingError):
            GroupedFitter(PowerLaw(), ["x"], "y", [])

    def test_null_group_keys_skipped(self):
        from repro.db.table import Table

        table = Table.from_dict(
            "t",
            {"g": [1, 1, 1, 1, None], "x": [1.0, 2.0, 3.0, 4.0, 5.0], "y": [2.0, 4.0, 6.0, 8.0, 10.0]},
        )
        result = fit_grouped(table, LinearModel(("x",)), ["x"], "y", ["g"])
        assert result.num_groups == 1

    def test_params_by_key(self, grouped):
        params = grouped.params_by_key()
        assert all(set(p) == {"p", "alpha"} for p in params.values())


class TestRobustFitting:
    def test_huber_resists_outliers(self):
        rng = np.random.default_rng(11)
        x = rng.uniform(0, 10, 300)
        y = 1.0 + 2.0 * x + rng.normal(0, 0.1, 300)
        y[:15] += 50.0  # gross outliers
        plain = fit_model(LinearModel(("x",)), {"x": x}, y)
        robust = fit_robust(LinearModel(("x",)), {"x": x}, y, weight_function="huber")
        assert abs(robust.param_dict["beta_x"] - 2.0) < abs(plain.param_dict["beta_x"] - 2.0)

    def test_bisquare_weight_function(self):
        robust = fit_robust(
            LinearModel(("x",)),
            {"x": np.linspace(0, 1, 50)},
            np.linspace(0, 2, 50),
            weight_function="bisquare",
        )
        assert robust.param_dict["beta_x"] == pytest.approx(2.0, abs=1e-6)

    def test_unknown_weight_function(self):
        with pytest.raises(FittingError):
            fit_robust(LinearModel(("x",)), {"x": np.ones(10)}, np.ones(10), weight_function="magic")

    def test_robust_nonlinear_trims_outliers(self):
        rng = np.random.default_rng(12)
        x = rng.uniform(0.1, 0.2, 200)
        y = 0.06 * x**-0.7
        y[:10] *= 10.0  # interference spikes
        robust = fit_robust(PowerLaw(), {"x": x}, y)
        assert robust.param_dict["alpha"] == pytest.approx(-0.7, abs=0.1)

    def test_robust_metadata_recorded(self):
        x = np.linspace(0, 1, 30)
        fit = fit_robust(LinearModel(("x",)), {"x": x}, 2 * x)
        assert "robust" in fit.extra


class TestPiecewise:
    def test_piecewise_fits_regime_change(self):
        x = np.linspace(0, 10, 400)
        y = np.where(x < 5, 2.0 * x, 10.0 - 1.0 * (x - 5))
        fit = fit_piecewise(x, y, num_segments=2, degree=1)
        assert fit.r_squared > 0.95

    def test_segment_count_and_params(self):
        x = np.linspace(0, 1, 100)
        fit = fit_piecewise(x, x**2, num_segments=4, degree=2)
        assert len(fit.family.segments) == 4
        assert fit.family.num_params == 4 * 3

    def test_prediction_outside_range_extrapolates(self):
        x = np.linspace(0, 1, 50)
        fit = fit_piecewise(x, 3.0 * x, num_segments=2, degree=1)
        value = fit.predict({"x": np.array([2.0])})[0]
        assert np.isfinite(value)

    def test_insufficient_data(self):
        with pytest.raises(InsufficientDataError):
            fit_piecewise(np.array([1.0, 2.0]), np.array([1.0, 2.0]), num_segments=3, degree=1)

    def test_byte_size_scales_with_segments(self):
        x = np.linspace(0, 1, 200)
        small = fit_piecewise(x, x, num_segments=2, degree=1).family.byte_size()
        large = fit_piecewise(x, x, num_segments=8, degree=1).family.byte_size()
        assert large > small
