"""Tests for model families and the formula language."""

import numpy as np
import pytest

from repro.errors import FittingError, FormulaError
from repro.fitting import (
    Constant,
    Exponential,
    LinearModel,
    Polynomial,
    PowerLaw,
    family_by_name,
    parse_formula,
)
from repro.fitting.families import FAMILY_REGISTRY


class TestFamilies:
    def test_powerlaw_predict(self):
        family = PowerLaw()
        values = family.predict({"x": np.array([2.0, 4.0])}, np.array([3.0, 0.5]))
        assert values == pytest.approx([3.0 * 2**0.5, 3.0 * 2.0])

    def test_powerlaw_initial_guess_from_loglog(self):
        x = np.array([0.12, 0.15, 0.16, 0.18])
        y = 0.05 * x**-0.8
        guess = PowerLaw().initial_guess({"x": x}, y)
        assert guess[1] == pytest.approx(-0.8, abs=1e-6)

    def test_powerlaw_jacobian_shape(self):
        jac = PowerLaw().jacobian({"x": np.array([1.0, 2.0, 3.0])}, np.array([1.0, -0.5]))
        assert jac.shape == (3, 2)

    def test_linear_design_matrix_with_intercept(self):
        family = LinearModel(("a", "b"))
        X = family.design_matrix({"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])})
        assert X.shape == (2, 3)
        assert list(X[:, 0]) == [1.0, 1.0]

    def test_linear_param_names(self):
        assert LinearModel(("a", "b")).param_names == ("intercept", "beta_a", "beta_b")
        assert LinearModel(("a",), intercept=False).param_names == ("beta_a",)

    def test_polynomial_degree_zero_is_constant(self):
        family = Polynomial(degree=0)
        assert family.num_params == 1

    def test_polynomial_negative_degree_rejected(self):
        with pytest.raises(FittingError):
            Polynomial(degree=-1)

    def test_constant_family(self):
        family = Constant()
        guess = family.initial_guess({"x": np.array([1.0, 2.0])}, np.array([5.0, 7.0]))
        assert guess[0] == pytest.approx(6.0)
        assert family.predict({"x": np.array([1.0, 2.0])}, guess) == pytest.approx([6.0, 6.0])

    def test_exponential_initial_guess(self):
        x = np.linspace(0, 2, 50)
        y = 3.0 * np.exp(0.5 * x)
        guess = Exponential().initial_guess({"x": x}, y)
        assert guess[0] == pytest.approx(3.0, rel=1e-3)
        assert guess[1] == pytest.approx(0.5, rel=1e-3)

    def test_family_registry_lookup(self):
        assert isinstance(family_by_name("powerlaw"), PowerLaw)
        assert isinstance(family_by_name("poly", degree=3), Polynomial)
        with pytest.raises(FittingError):
            family_by_name("does_not_exist")

    def test_param_dict(self):
        family = PowerLaw()
        assert family.param_dict(np.array([1.5, -0.5])) == {"p": 1.5, "alpha": -0.5}

    def test_every_registered_family_instantiates(self):
        for name in FAMILY_REGISTRY:
            family = family_by_name(name)
            assert family.num_params >= 1


class TestFormulas:
    def test_basic_powerlaw_formula(self):
        parsed = parse_formula("intensity ~ powerlaw(frequency)")
        assert parsed.output == "intensity"
        assert parsed.inputs == ("frequency",)
        assert isinstance(parsed.build_family(), PowerLaw)

    def test_linear_formula_multiple_inputs(self):
        parsed = parse_formula("sales ~ linear(price, advertising)")
        family = parsed.build_family()
        assert isinstance(family, LinearModel)
        assert family.input_names == ("price", "advertising")

    def test_r_style_additive_shorthand(self):
        parsed = parse_formula("y ~ x1 + x2")
        assert parsed.family_name == "linear"
        assert parsed.inputs == ("x1", "x2")

    def test_polynomial_with_kwarg(self):
        parsed = parse_formula("y ~ poly(x, degree=3)")
        family = parsed.build_family()
        assert isinstance(family, Polynomial)
        assert family.degree == 3

    def test_kwarg_literal_types(self):
        parsed = parse_formula("y ~ linear(x, intercept=false)")
        family = parsed.build_family()
        assert family.intercept is False

    def test_whitespace_tolerated(self):
        parsed = parse_formula("  y   ~   powerlaw( x )  ")
        assert parsed.inputs == ("x",)

    def test_missing_tilde_rejected(self):
        with pytest.raises(FormulaError):
            parse_formula("y = powerlaw(x)")

    def test_unknown_family_rejected(self):
        with pytest.raises(FormulaError):
            parse_formula("y ~ wavelet(x)")

    def test_no_inputs_rejected(self):
        with pytest.raises(FormulaError):
            parse_formula("y ~ powerlaw()")

    def test_bad_column_name_rejected(self):
        with pytest.raises(FormulaError):
            parse_formula("y ~ powerlaw(1x)")

    def test_qualified_column_names_allowed(self):
        parsed = parse_formula("m.intensity ~ powerlaw(m.frequency)")
        assert parsed.output == "m.intensity"
