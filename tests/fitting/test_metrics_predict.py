"""Tests for goodness-of-fit metrics and prediction intervals."""

import numpy as np
import pytest

from repro.fitting import (
    LinearModel,
    PowerLaw,
    adjusted_r_squared,
    aic,
    bic,
    f_test_against_constant,
    f_test_nested,
    fit_model,
    predict_interval,
    r_squared,
    residual_standard_error,
)


class TestMetrics:
    def test_r_squared_perfect_fit(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == 1.0

    def test_r_squared_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r_squared_can_be_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, np.array([3.0, 3.0, 0.0])) < 0

    def test_r_squared_constant_data(self):
        y = np.array([2.0, 2.0])
        assert r_squared(y, y) == 1.0
        assert r_squared(y, np.array([1.0, 1.0])) == 0.0

    def test_adjusted_r_squared_penalises_parameters(self):
        rng = np.random.default_rng(0)
        y = rng.normal(0, 1, 30)
        predictions = y + rng.normal(0, 0.5, 30)
        assert adjusted_r_squared(y, predictions, num_params=10) < adjusted_r_squared(y, predictions, num_params=2)

    def test_residual_standard_error(self):
        residuals = np.array([1.0, -1.0, 1.0, -1.0])
        assert residual_standard_error(residuals, num_params=2) == pytest.approx(np.sqrt(4 / 2))

    def test_residual_standard_error_zero_dof(self):
        assert residual_standard_error(np.array([1.0]), num_params=2) == 0.0

    def test_aic_bic_prefer_better_fit(self):
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        good = y + 0.01
        bad = y + 1.0
        assert aic(y, good, 2) < aic(y, bad, 2)
        assert bic(y, good, 2) < bic(y, bad, 2)

    def test_bic_penalises_parameters_more(self):
        y = np.linspace(0, 1, 100)
        predictions = y + 0.01
        aic_delta = aic(y, predictions, 10) - aic(y, predictions, 2)
        bic_delta = bic(y, predictions, 10) - bic(y, predictions, 2)
        assert bic_delta > aic_delta

    def test_f_test_significant_for_real_relationship(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 1, 100)
        y = 2.0 * x + rng.normal(0, 0.05, 100)
        predictions = 2.0 * x
        result = f_test_against_constant(y, predictions, num_params=2)
        assert result.significant()
        assert result.p_value < 1e-6

    def test_f_test_not_significant_for_noise(self):
        rng = np.random.default_rng(2)
        y = rng.normal(0, 1, 50)
        predictions = np.full(50, y.mean()) + rng.normal(0, 0.001, 50)
        result = f_test_against_constant(y, predictions, num_params=2)
        assert not result.significant(alpha=0.01)

    def test_f_test_nested_degenerate_dof(self):
        y = np.array([1.0, 2.0])
        result = f_test_nested(y, y, y, reduced_params=1, full_params=5)
        assert result.p_value == 1.0

    def test_f_test_perfect_full_model(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        reduced = np.full(4, y.mean())
        result = f_test_nested(y, reduced, y, 1, 2)
        assert result.p_value == 0.0


class TestPredictionIntervals:
    def test_interval_contains_truth_for_linear(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 10, 500)
        y = 1.0 + 2.0 * x + rng.normal(0, 0.5, 500)
        fit = fit_model(LinearModel(("x",)), {"x": x}, y)
        intervals = predict_interval(fit, {"x": 5.0}, confidence=0.99)
        assert len(intervals) == 1
        assert intervals[0].contains(11.0)

    def test_interval_width_scales_with_confidence(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(0, 1, 100)
        y = x + rng.normal(0, 0.1, 100)
        fit = fit_model(LinearModel(("x",)), {"x": x}, y)
        narrow = predict_interval(fit, {"x": 0.5}, confidence=0.5)[0]
        wide = predict_interval(fit, {"x": 0.5}, confidence=0.99)[0]
        assert wide.upper - wide.lower > narrow.upper - narrow.lower

    def test_nonlinear_interval_uses_rse(self):
        rng = np.random.default_rng(5)
        x = rng.uniform(0.1, 0.2, 300)
        y = 0.06 * x**-0.7 * np.exp(rng.normal(0, 0.03, 300))
        fit = fit_model(PowerLaw(), {"x": x}, y)
        interval = predict_interval(fit, {"x": 0.15})[0]
        assert interval.standard_error == pytest.approx(fit.residual_standard_error)

    def test_vector_inputs_give_one_interval_per_point(self):
        x = np.linspace(0, 1, 50)
        fit = fit_model(LinearModel(("x",)), {"x": x}, 2 * x)
        intervals = predict_interval(fit, {"x": np.array([0.1, 0.2, 0.3])})
        assert len(intervals) == 3
        assert str(intervals[0])  # renders without error
