"""Tests for OLS / weighted least squares."""

import numpy as np
import pytest

from repro.errors import FittingError, InsufficientDataError
from repro.fitting import LinearModel, Polynomial, fit_linear_family, fit_ols, solve_normal_equations


@pytest.fixture()
def noisy_line():
    rng = np.random.default_rng(1)
    x = rng.uniform(0, 10, 400)
    y = 3.0 + 2.0 * x + rng.normal(0, 0.1, 400)
    return x, y


class TestOLS:
    def test_exact_recovery_without_noise(self):
        x = np.linspace(0, 1, 50)
        X = np.column_stack([np.ones(50), x])
        y = 5.0 - 2.0 * x
        beta, cov, residuals = fit_ols(X, y)
        assert beta == pytest.approx([5.0, -2.0], abs=1e-10)
        assert np.max(np.abs(residuals)) < 1e-10

    def test_matches_normal_equations(self, noisy_line):
        x, y = noisy_line
        X = np.column_stack([np.ones(len(x)), x])
        beta_lstsq, _, _ = fit_ols(X, y)
        beta_normal = solve_normal_equations(X, y)
        assert beta_lstsq == pytest.approx(beta_normal, rel=1e-8)

    def test_covariance_shrinks_with_more_data(self):
        rng = np.random.default_rng(2)

        def fit_with(n):
            x = rng.uniform(0, 10, n)
            X = np.column_stack([np.ones(n), x])
            y = 1.0 + x + rng.normal(0, 1.0, n)
            _, cov, _ = fit_ols(X, y)
            return cov[1, 1]

        assert fit_with(2000) < fit_with(50)

    def test_insufficient_data(self):
        X = np.ones((2, 3))
        with pytest.raises(InsufficientDataError):
            fit_ols(X, np.array([1.0, 2.0]))

    def test_shape_mismatch(self):
        with pytest.raises(FittingError):
            fit_ols(np.ones((5, 2)), np.ones(4))

    def test_weights_must_be_nonnegative(self):
        X = np.ones((3, 1))
        with pytest.raises(FittingError):
            fit_ols(X, np.ones(3), weights=np.array([1.0, -1.0, 1.0]))

    def test_weighted_fit_downweights_outlier(self):
        x = np.array([0.0, 1.0, 2.0, 3.0, 10.0])
        y = np.array([0.0, 1.0, 2.0, 3.0, 100.0])  # last point is an outlier
        X = np.column_stack([np.ones(5), x])
        unweighted, _, _ = fit_ols(X, y)
        weights = np.array([1.0, 1.0, 1.0, 1.0, 1e-6])
        weighted, _, _ = fit_ols(X, y, weights=weights)
        assert abs(weighted[1] - 1.0) < abs(unweighted[1] - 1.0)

    def test_rank_deficient_design_returns_solution(self):
        # Two identical columns: rank deficient but lstsq still solves it.
        X = np.column_stack([np.ones(10), np.ones(10)])
        beta, cov, _ = fit_ols(X, np.full(10, 4.0))
        assert np.isinf(cov).all()
        assert X @ beta == pytest.approx(np.full(10, 4.0))


class TestLinearFamilyFit:
    def test_multivariate_recovery(self):
        rng = np.random.default_rng(3)
        x1 = rng.uniform(0, 1, 300)
        x2 = rng.uniform(0, 1, 300)
        y = 1.0 + 2.0 * x1 - 3.0 * x2
        fit = fit_linear_family(LinearModel(("x1", "x2")), {"x1": x1, "x2": x2}, y)
        assert fit.param_dict["intercept"] == pytest.approx(1.0, abs=1e-9)
        assert fit.param_dict["beta_x1"] == pytest.approx(2.0, abs=1e-9)
        assert fit.param_dict["beta_x2"] == pytest.approx(-3.0, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_no_intercept(self):
        x = np.linspace(1, 10, 50)
        fit = fit_linear_family(LinearModel(("x",), intercept=False), {"x": x}, 4.0 * x)
        assert list(fit.param_dict) == ["beta_x"]
        assert fit.param_dict["beta_x"] == pytest.approx(4.0)

    def test_polynomial_fit(self):
        x = np.linspace(-2, 2, 200)
        y = 1.0 - 0.5 * x + 0.25 * x**2
        fit = fit_linear_family(Polynomial(degree=2), {"x": x}, y)
        assert fit.params == pytest.approx([1.0, -0.5, 0.25], abs=1e-9)

    def test_metrics_populated(self, noisy_line):
        x, y = noisy_line
        fit = fit_linear_family(LinearModel(("x",)), {"x": x}, y, output_name="target")
        assert fit.output_name == "target"
        assert 0.99 < fit.r_squared <= 1.0
        assert fit.residual_standard_error == pytest.approx(0.1, rel=0.2)
        assert fit.adjusted_r_squared <= fit.r_squared + 1e-12
        assert fit.degrees_of_freedom == len(x) - 2

    def test_nonlinear_family_rejected(self, noisy_line):
        from repro.fitting import PowerLaw

        x, y = noisy_line
        with pytest.raises(FittingError):
            fit_linear_family(PowerLaw(), {"x": x}, y)

    def test_predict_after_fit(self):
        x = np.linspace(0, 1, 20)
        fit = fit_linear_family(LinearModel(("x",)), {"x": x}, 2.0 + 3.0 * x)
        assert fit.predict({"x": np.array([2.0])})[0] == pytest.approx(8.0)

    def test_param_standard_errors(self, noisy_line):
        x, y = noisy_line
        fit = fit_linear_family(LinearModel(("x",)), {"x": x}, y)
        ses = fit.param_standard_errors()
        assert set(ses) == {"intercept", "beta_x"}
        assert all(se > 0 for se in ses.values())
