"""Crash-recovery property suite.

The protocol under test: checkpoint → WAL appends → simulated kill (the
process dies mid-write, leaving a truncated or corrupted WAL tail) → reopen
→ the recovered database answers a seeded query workload *identically* to a
never-killed oracle holding exactly the rows that survived.

Because WAL records are applied in order and a damaged frame discards the
tail behind it, the recovered table is always ``checkpoint rows + a prefix
of the post-checkpoint batches`` — the oracle is rebuilt from that prefix
and every query (exact and model-served) must agree.
"""

from __future__ import annotations

import shutil

import numpy as np
import pytest

from repro import AccuracyContract, LawsDatabase

BASE_ROWS = 600
BATCH = 64
POST_CHECKPOINT_ROWS = 640

QUERIES = [
    "SELECT source, AVG(intensity) FROM m GROUP BY source",
    "SELECT source, COUNT(intensity) FROM m GROUP BY source",
    "SELECT AVG(intensity) FROM m",
    "SELECT intensity FROM m WHERE source = 3 AND frequency = 0.15",
    "SELECT SUM(intensity) FROM m WHERE frequency BETWEEN 0.12 AND 0.16",
]


def generate_rows(seed: int, count: int, start: int = 0) -> list[tuple]:
    rng = np.random.default_rng(seed)
    rows = []
    for i in range(count):
        source = int(rng.integers(0, 8))
        frequency = float(rng.choice([0.12, 0.15, 0.16, 0.18]))
        intensity = float(
            (2.0 + 0.3 * source) * frequency**-0.7 * (1.0 + 0.01 * rng.standard_normal())
        )
        rows.append((start + i, source, frequency, intensity))
    return rows


def build_system(db: LawsDatabase, rows: list[tuple]) -> None:
    db.load_dict(
        "m",
        {
            "seq": [r[0] for r in rows],
            "source": [r[1] for r in rows],
            "frequency": [r[2] for r in rows],
            "intensity": [r[3] for r in rows],
        },
    )
    db.fit("m", "intensity ~ powerlaw(frequency)", group_by="source")


def answers_for(db: LawsDatabase) -> list:
    out = []
    for sql in QUERIES:
        exact = db.query(sql, AccuracyContract(mode="exact"))
        approx = db.query(sql, AccuracyContract(mode="approx", verify_fraction=0.0))
        out.append((exact.table.to_pydict(), approx.route_taken, approx.table.to_pydict()))
    return out


def run_crash_cycle(tmp_path, seed: int, damage) -> None:
    """One full cycle with ``damage(path, tail_start)`` mangling the WAL."""
    root = tmp_path / f"store{seed}"
    base = generate_rows(seed, BASE_ROWS)
    stream = generate_rows(seed + 1000, POST_CHECKPOINT_ROWS, start=BASE_ROWS)

    db = LawsDatabase.open(root, ingest_batch_size=BATCH)
    build_system(db, base)
    db.checkpoint()
    wal_path = db.durable.wal.path
    tail_start = wal_path.stat().st_size
    db.ingest("m", stream, flush=True)
    db.durable.wal.close()  # the "kill": no checkpoint, no close protocol

    damage(wal_path, tail_start)

    recovered = LawsDatabase.open(root, ingest_batch_size=BATCH)
    report = recovered.last_recovery
    survivors = recovered.table("m").num_rows

    # Sanity on the recovery shape: nothing before the damage is lost, and
    # full batches survive intact.
    assert BASE_ROWS <= survivors <= BASE_ROWS + POST_CHECKPOINT_ROWS
    assert report.models_restored == 1
    surviving_stream = survivors - BASE_ROWS
    assert surviving_stream == report.wal_rows_replayed
    assert surviving_stream % BATCH == 0

    # The never-killed oracle: the same data that survived, never persisted.
    oracle = LawsDatabase(ingest_batch_size=BATCH)
    build_system(oracle, base)
    oracle.ingest("m", stream[:surviving_stream], flush=True)

    assert answers_for(recovered) == answers_for(oracle)


def truncate_at(offset_fraction: float):
    def damage(path, tail_start):
        size = path.stat().st_size
        cut = tail_start + int((size - tail_start) * offset_fraction)
        with open(path, "r+b") as handle:
            handle.truncate(cut)

    return damage


def corrupt_at(offset_fraction: float):
    def damage(path, tail_start):
        data = bytearray(path.read_bytes())
        index = tail_start + int((len(data) - 1 - tail_start) * offset_fraction)
        data[index] ^= 0x5A
        path.write_bytes(bytes(data))

    return damage


@pytest.mark.parametrize("fraction", [0.0, 0.1, 0.33, 0.66, 0.95, 1.0])
def test_truncated_tail_recovers_prefix(tmp_path, fraction):
    run_crash_cycle(tmp_path, seed=11, damage=truncate_at(fraction))


@pytest.mark.parametrize("fraction", [0.05, 0.5, 0.9])
def test_corrupted_tail_recovers_prefix(tmp_path, fraction):
    run_crash_cycle(tmp_path, seed=23, damage=corrupt_at(fraction))


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_clean_kill_loses_nothing(tmp_path, seed):
    """A kill *between* batch writes (intact WAL) replays every row."""

    def no_damage(path, tail_start):
        pass

    run_crash_cycle(tmp_path, seed=100 + seed, damage=no_damage)


def test_double_crash_double_recovery(tmp_path):
    """Recovery is idempotent: crash, recover, crash again, recover again."""
    root = tmp_path / "store"
    base = generate_rows(5, BASE_ROWS)
    db = LawsDatabase.open(root, ingest_batch_size=BATCH)
    build_system(db, base)
    db.checkpoint()
    db.ingest("m", generate_rows(6, BATCH * 2, start=BASE_ROWS), flush=True)
    db.durable.wal.close()

    # First recovery replays the WAL but never checkpoints — and dies too.
    first = LawsDatabase.open(root, ingest_batch_size=BATCH)
    rows_after_first = first.table("m").num_rows
    first.durable.wal.close()

    second = LawsDatabase.open(root, ingest_batch_size=BATCH)
    assert second.table("m").num_rows == rows_after_first == BASE_ROWS + BATCH * 2


def test_crash_between_manifest_and_wal_reset_discards_stale_log(tmp_path):
    """The epoch guard: a WAL predating the manifest must not double-apply."""
    root = tmp_path / "store"
    db = LawsDatabase.open(root, ingest_batch_size=BATCH)
    build_system(db, generate_rows(9, BASE_ROWS))
    db.checkpoint()
    db.ingest("m", generate_rows(10, BATCH, start=BASE_ROWS), flush=True)

    # Simulate the torn checkpoint: snapshot the pre-checkpoint WAL, run the
    # checkpoint (which includes the WAL'd rows in its segments), then put
    # the stale WAL back as if the process died before wal.reset().
    stale_wal = db.durable.wal.path.read_bytes()
    db.checkpoint()
    db.durable.wal.close()
    db.durable.wal.path.write_bytes(stale_wal)

    recovered = LawsDatabase.open(root, ingest_batch_size=BATCH)
    assert recovered.last_recovery.wal_discarded_epoch_mismatch
    assert recovered.last_recovery.wal_records_replayed == 0
    # No double-applied rows: the snapshot already holds them exactly once.
    assert recovered.table("m").num_rows == BASE_ROWS + BATCH


def test_stale_epoch_wal_with_no_records_is_restamped(tmp_path):
    """A record-free stale-epoch log must still be re-stamped on recovery,
    or writes accepted into it are discarded by the *next* recovery."""
    root = tmp_path / "store"
    db = LawsDatabase.open(root, ingest_batch_size=BATCH)
    build_system(db, generate_rows(41, BASE_ROWS))
    db.checkpoint()  # checkpoint #1 stamps the WAL with epoch 1
    stale_wal = db.durable.wal.path.read_bytes()  # epoch-1 log, zero records
    db.checkpoint()  # checkpoint #2
    db.durable.wal.close()
    # Crash between manifest #2's rename and its wal.reset: the epoch-1,
    # record-free log is what the next process finds.
    db.durable.wal.path.write_bytes(stale_wal)

    recovered = LawsDatabase.open(root, ingest_batch_size=BATCH)
    recovered.ingest("m", generate_rows(42, BATCH, start=BASE_ROWS), flush=True)
    recovered.durable.wal.close()

    final = LawsDatabase.open(root, ingest_batch_size=BATCH)
    assert final.table("m").num_rows == BASE_ROWS + BATCH  # nothing discarded


def test_recovered_database_keeps_accepting_wal_appends(tmp_path):
    """Post-recovery writes land in the (repaired) WAL and survive again."""
    root = tmp_path / "store"
    db = LawsDatabase.open(root, ingest_batch_size=BATCH)
    build_system(db, generate_rows(31, BASE_ROWS))
    db.checkpoint()
    db.durable.wal.close()

    again = LawsDatabase.open(root, ingest_batch_size=BATCH)
    again.ingest("m", generate_rows(32, BATCH, start=BASE_ROWS), flush=True)
    again.durable.wal.close()

    final = LawsDatabase.open(root, ingest_batch_size=BATCH)
    assert final.table("m").num_rows == BASE_ROWS + BATCH


def test_sql_insert_marks_models_stale_like_insert_rows(tmp_path):
    """DML through query() follows the same lifecycle contract as
    insert_rows() — and matches what replaying its WAL record does."""
    root = tmp_path / "store"
    db = LawsDatabase.open(root)
    build_system(db, generate_rows(55, BASE_ROWS))
    db.checkpoint()  # persist the model so recovery has a warehouse to load
    assert [m.status for m in db.captured_models()] == ["active"]
    db.query("INSERT INTO m VALUES (9999, 1, 0.15, 2.5)")
    assert [m.status for m in db.captured_models()] == ["stale"]
    db.durable.wal.close()

    recovered = LawsDatabase.open(root)
    assert recovered.table("m").num_rows == BASE_ROWS + 1
    assert [m.status for m in recovered.captured_models()] == ["stale"]


def test_sql_ddl_and_dml_survive_a_crash(tmp_path):
    """CREATE TABLE / INSERT through the SQL front-end reach the WAL too."""
    root = tmp_path / "store"
    db = LawsDatabase.open(root)
    db.query("CREATE TABLE readings (sensor INT, value FLOAT)")
    db.query("INSERT INTO readings VALUES (1, 10.5), (2, 20.5)")
    db.query("INSERT INTO readings VALUES (3, 30.5)")
    db.durable.wal.close()  # crash: never checkpointed

    recovered = LawsDatabase.open(root)
    result = recovered.query(
        "SELECT sensor, value FROM readings", AccuracyContract(mode="exact")
    )
    assert result.table.to_rows() == [(1, 10.5), (2, 20.5), (3, 30.5)]


def test_large_load_snapshots_instead_of_row_json_wal(tmp_path):
    """Bulk loads persist as columnar segments referenced by one WAL record
    — not as row-wise JSON, and not via a full checkpoint per load (which
    would re-snapshot every earlier table, quadratic across a burst)."""
    root = tmp_path / "store"
    db = LawsDatabase.open(root)
    n = 70_000  # >= LARGE_CREATE_SNAPSHOT_ROWS
    db.load_dict("big", {"x": [float(i) for i in range(n)]})
    db.load_dict("big2", {"x": [float(i) for i in range(n)]})
    assert db.durable.checkpoint_id == 0  # no checkpoint forced by the loads
    assert len(list(db.durable.walseg_dir.iterdir())) == 2
    db.durable.wal.close()

    recovered = LawsDatabase.open(root)
    assert recovered.table("big").num_rows == n
    assert recovered.table("big2").num_rows == n
    assert recovered.last_recovery.wal_records_replayed == 2  # one per load
    assert recovered.last_recovery.wal_rows_replayed == 2 * n
    # The checkpoint that absorbs the loads purges the WAL-side segments.
    recovered.checkpoint()
    assert not recovered.durable.walseg_dir.exists()


def test_bulk_load_is_chunked_into_bounded_wal_frames(tmp_path):
    """A bulk load must never become one giant WAL frame (the frame cap
    would fire after the in-memory registration already succeeded)."""
    root = tmp_path / "store"
    db = LawsDatabase.open(root)
    n = 10_000  # > WAL_APPEND_CHUNK_ROWS, so several frames
    db.load_dict("big", {"x": [float(i) for i in range(n)]})
    db.durable.wal.close()

    recovered = LawsDatabase.open(root)
    assert recovered.table("big").num_rows == n
    assert recovered.last_recovery.wal_records_replayed >= 1 + 3  # create + ≥3 chunks
    assert recovered.last_recovery.wal_rows_replayed == n


def test_drop_table_survives_a_crash_and_retires_models(tmp_path):
    root = tmp_path / "store"
    db = LawsDatabase.open(root)
    build_system(db, generate_rows(61, BASE_ROWS))
    db.checkpoint()
    db.drop_table("m")
    assert not db.database.has_table("m")
    assert all(m.status == "retired" for m in db.captured_models())
    db.durable.wal.close()  # crash before the drop is checkpointed

    recovered = LawsDatabase.open(root)
    assert not recovered.database.has_table("m")
    assert all(m.status == "retired" for m in recovered.captured_models())


def test_crash_before_cleanup_does_not_leak_old_checkpoints(tmp_path):
    """A crash between the manifest rename and the old-checkpoint cleanup
    leaves orphans; the next successful checkpoint must sweep them."""
    root = tmp_path / "store"
    db = LawsDatabase.open(root)
    build_system(db, generate_rows(71, BASE_ROWS))
    db.checkpoint()
    # Simulate the un-cleaned crash: resurrect a fake older checkpoint dir.
    stale_segments = root / "segments" / "ckpt00000"
    stale_segments.mkdir(parents=True)
    (stale_segments / "junk.npz").write_bytes(b"junk")
    (root / "warehouse" / "models-00000.json").write_text("{}")

    db.checkpoint()
    remaining_segments = {p.name for p in (root / "segments").iterdir()}
    remaining_warehouse = {p.name for p in (root / "warehouse").iterdir()}
    assert remaining_segments == {"ckpt00002"}
    assert remaining_warehouse == {"models-00002.json"}


def test_fresh_directory_then_copy_elsewhere(tmp_path):
    """A checkpointed store is a self-contained directory: copy = backup."""
    root = tmp_path / "store"
    with LawsDatabase.open(root) as db:
        build_system(db, generate_rows(77, BASE_ROWS))
    # context-manager exit checkpointed + closed
    backup = tmp_path / "backup"
    shutil.copytree(root, backup)
    restored = LawsDatabase.open(backup)
    assert restored.table("m").num_rows == BASE_ROWS
    assert len(restored.captured_models()) == 1
