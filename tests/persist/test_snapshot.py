"""Columnar snapshot round trips across every dtype, NULLs and segmenting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import PersistenceError
from repro.persist.snapshot import (
    read_table_segments,
    schema_from_payload,
    schema_to_payload,
    write_table_segments,
)

ALL_TYPES = Schema(
    [
        ColumnDef("i", DataType.INT64),
        ColumnDef("f", DataType.FLOAT64),
        ColumnDef("s", DataType.STRING),
        ColumnDef("b", DataType.BOOL),
    ]
)


def roundtrip(tmp_path, table, rows_per_segment=65536):
    entries = write_table_segments(tmp_path, table, rows_per_segment=rows_per_segment)
    loaded = read_table_segments(tmp_path, table.name, table.schema, entries)
    return entries, loaded


def test_all_dtypes_with_nulls(tmp_path):
    table = Table.from_rows(
        "t",
        ALL_TYPES,
        [
            (1, 1.5, "alpha", True),
            (None, None, None, None),
            (-(2**60), float("inf"), "", False),
            (3, -0.0, "unicode: ünïcödé ✓", True),
            # Trailing NULs: numpy's fixed-width unicode strips them; the
            # snapshot pad must protect them through the round trip.
            (4, 2.5, "nul tail\x00", True),
            (5, 3.5, "\x00", False),
        ],
    )
    _, loaded = roundtrip(tmp_path, table)
    assert loaded.to_pydict() == table.to_pydict()
    assert loaded.schema == table.schema


def test_schema_payload_round_trip():
    payload = schema_to_payload(ALL_TYPES)
    assert schema_from_payload(payload) == ALL_TYPES


def test_empty_table_round_trip(tmp_path):
    table = Table.empty("empty", ALL_TYPES)
    entries, loaded = roundtrip(tmp_path, table)
    assert entries == []
    assert loaded.num_rows == 0
    assert loaded.schema == ALL_TYPES


def test_multi_segment_round_trip(tmp_path):
    rng = np.random.default_rng(7)
    n = 1000
    table = Table.from_dict(
        "big",
        {
            "x": [int(v) for v in rng.integers(-100, 100, size=n)],
            "y": [float(v) for v in rng.standard_normal(n)],
        },
    )
    entries, loaded = roundtrip(tmp_path, table, rows_per_segment=128)
    assert len(entries) == 8  # ceil(1000 / 128)
    assert [e["rows"] for e in entries[:2]] == [128, 128]
    assert loaded.to_pydict() == table.to_pydict()


def test_segment_manifest_carries_column_stats(tmp_path):
    table = Table.from_dict("t", {"x": [1, 2, None, 4], "s": ["a", "b", "c", None]})
    entries, _ = roundtrip(tmp_path, table)
    stats = entries[0]["columns"]
    assert stats["x"] == {"null_count": 1, "min": 1, "max": 4}
    assert stats["s"] == {"null_count": 1, "min": "a", "max": "c"}


def test_missing_segment_file_raises(tmp_path):
    table = Table.from_dict("t", {"x": [1, 2, 3]})
    entries = write_table_segments(tmp_path, table)
    (tmp_path / entries[0]["file"]).unlink()
    with pytest.raises(PersistenceError, match="segment missing"):
        read_table_segments(tmp_path, "t", table.schema, entries)


def test_schema_mismatch_raises(tmp_path):
    table = Table.from_dict("t", {"x": [1, 2, 3]})
    entries = write_table_segments(tmp_path, table)
    wrong = Schema([ColumnDef("y", DataType.INT64)])
    with pytest.raises(PersistenceError, match="lacks column"):
        read_table_segments(tmp_path, "t", wrong, entries)
