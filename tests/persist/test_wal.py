"""WAL framing, checksum verification and torn-tail truncation."""

from __future__ import annotations

import struct

import pytest

from repro.errors import PersistenceError
from repro.persist.wal import WriteAheadLog


@pytest.fixture
def wal(tmp_path):
    return WriteAheadLog(tmp_path / "wal.log")


def test_records_round_trip(wal):
    wal.reset(epoch=7)
    records = [
        {"op": "append", "table": "t", "rows": [[1, 2.5, "x", None]]},
        {"op": "append", "table": "t", "rows": [[2, float("nan"), "y", True]]},
        {"op": "create_table", "name": "u", "schema": [["a", "int64", True]]},
    ]
    for record in records:
        wal.append(record)
    replay = wal.replay()
    assert replay.epoch == 7
    assert not replay.was_truncated
    assert len(replay.records) == len(records)
    assert replay.records[0] == records[0]
    assert replay.records[2] == records[2]
    # NaN survives the JSON round trip (non-strict mode)
    value = replay.records[1]["rows"][0][1]
    assert value != value


def test_empty_log_replays_empty(wal):
    replay = wal.replay()
    assert replay.records == []
    assert replay.epoch == 0
    assert not replay.was_truncated


def test_torn_header_is_truncated(wal):
    wal.reset(epoch=1)
    wal.append({"op": "append", "table": "t", "rows": [[1]]})
    wal.close()
    with open(wal.path, "ab") as handle:
        handle.write(b"\x05\x00")  # half a frame header
    replay = wal.replay(repair=True)
    assert len(replay.records) == 1
    assert replay.was_truncated
    assert replay.truncation_reason == "torn frame header"
    # repair=True physically removed the tail: a fresh replay is clean.
    again = wal.replay()
    assert not again.was_truncated
    assert len(again.records) == 1


def test_torn_payload_is_truncated(wal):
    wal.reset(epoch=1)
    wal.append({"op": "append", "table": "t", "rows": [[1]]})
    size_before = wal.size_bytes
    wal.append({"op": "append", "table": "t", "rows": [[2]]})
    wal.close()
    # Chop the last record's payload mid-way (simulated crash mid-write).
    with open(wal.path, "r+b") as handle:
        handle.truncate(size_before + 10)
    replay = wal.replay(repair=True)
    assert len(replay.records) == 1
    assert replay.records[0]["rows"] == [[1]]
    assert replay.truncation_reason == "torn frame payload"


def test_corrupted_checksum_drops_tail(wal):
    wal.reset(epoch=1)
    offsets = []
    for i in range(4):
        offsets.append(wal.append({"op": "append", "table": "t", "rows": [[i]]}))
    wal.close()
    # Flip one payload byte inside the third record.
    data = bytearray(wal.path.read_bytes())
    data[offsets[1] + 12] ^= 0xFF
    wal.path.write_bytes(bytes(data))
    replay = wal.replay(repair=True)
    # Records after the corruption are untrusted and dropped with it.
    assert [r["rows"] for r in replay.records] == [[[0]], [[1]]]
    assert replay.truncation_reason == "frame checksum mismatch"


def test_implausible_length_stops_replay(wal):
    wal.reset(epoch=1)
    wal.append({"op": "append", "table": "t", "rows": [[1]]})
    wal.close()
    with open(wal.path, "ab") as handle:
        handle.write(struct.pack("<II", 2**31, 0) + b"garbage")
    replay = wal.replay(repair=True)
    assert len(replay.records) == 1
    assert "implausible" in replay.truncation_reason


def test_reset_truncates_and_stamps_epoch(wal):
    wal.reset(epoch=1)
    for i in range(5):
        wal.append({"op": "append", "table": "t", "rows": [[i]]})
    wal.reset(epoch=2)
    replay = wal.replay()
    assert replay.epoch == 2
    assert replay.records == []


def test_oversized_record_is_refused(wal):
    wal.reset(epoch=1)
    huge = {"op": "append", "table": "t", "rows": [["x" * (300 * 1024 * 1024)]]}
    with pytest.raises(PersistenceError):
        wal.append(huge)
