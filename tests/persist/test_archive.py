"""The model-only tier: archived segments served from warehouse models.

Acceptance shape (ISSUE 5): after ``archive()`` drops raw segments,
``db.query()`` under a permissive contract serves those segments purely
from warehouse models with zero simulated raw-page IO, while a contract it
cannot meet yields an explicit archived-data reason instead of a wrong
answer computed over the partial table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AccuracyContract, LawsDatabase
from repro.errors import ApproximationError, ArchiveError, PersistenceError


def seeded_rows(n=1200, seed=3):
    rng = np.random.default_rng(seed)
    source = rng.integers(0, 6, size=n)
    ts = np.arange(n, dtype=np.float64)
    frequency = rng.choice([0.12, 0.15, 0.16, 0.18], size=n)
    intensity = (2.0 + 0.4 * source) * frequency**-0.7 * (
        1.0 + 0.01 * rng.standard_normal(n)
    )
    return {
        "ts": [float(v) for v in ts],
        "source": [int(v) for v in source],
        "frequency": [float(v) for v in frequency],
        "intensity": [float(v) for v in intensity],
    }


@pytest.fixture
def db(tmp_path):
    database = LawsDatabase.open(tmp_path / "store")
    database.load_dict("m", seeded_rows())
    database.fit("m", "intensity ~ powerlaw(frequency)", group_by="source")
    return database


GROUPED_SQL = "SELECT source, AVG(intensity) FROM m GROUP BY source"


def test_archive_serves_from_models_with_zero_raw_io(db):
    exact_before = db.query(GROUPED_SQL, AccuracyContract(mode="exact"))
    report = db.archive("m", "ts < 900")
    assert report.rows_archived == 900
    assert db.table("m").num_rows == 300

    answer = db.query(GROUPED_SQL, AccuracyContract(max_relative_error=0.5))
    assert answer.route_taken == "grouped-model"
    assert not answer.is_exact
    assert answer.approx.io.get("pages_read", 0.0) == 0.0  # zero raw-page IO
    # Model answers still describe the FULL logical table (within model
    # error), not the 300 surviving rows.
    by_source_model = dict(answer.table.to_rows())
    by_source_exact = dict(exact_before.table.to_rows())
    for source, value in by_source_exact.items():
        assert by_source_model[source] == pytest.approx(value, rel=0.05)


def test_count_over_archived_rows_uses_merged_statistics(db):
    exact_count = db.query(
        "SELECT source, COUNT(intensity) FROM m GROUP BY source",
        AccuracyContract(mode="exact"),
    )
    db.archive("m", "ts < 900")
    counted = db.query(
        "SELECT source, COUNT(intensity) FROM m GROUP BY source",
        AccuracyContract(mode="approx"),
    )
    # COUNTs come from the merged (live + archived) catalog statistics: the
    # archived rows are still counted, exactly.
    assert dict(counted.table.to_rows()) == dict(exact_count.table.to_rows())
    assert counted.approx.io.get("pages_read", 0.0) == 0.0


def test_exact_contract_refuses_with_archived_reason(db):
    db.archive("m", "ts < 900")
    with pytest.raises(ApproximationError, match="archived"):
        db.query(GROUPED_SQL, AccuracyContract(mode="exact"))


def test_unmeetable_budget_refuses_rather_than_lying(db):
    db.archive("m", "ts < 900")
    with pytest.raises(ApproximationError, match="archived"):
        db.query(GROUPED_SQL, AccuracyContract(max_relative_error=1e-9))


def test_query_without_any_model_refuses(db):
    db.archive("m", "ts < 900")
    # No captured model predicts ts; even auto mode has no honest route.
    with pytest.raises(ApproximationError, match="archived"):
        db.query("SELECT AVG(ts) FROM m")


def test_join_queries_never_prove_disjointness_by_bare_name(db, tmp_path):
    """Constraint analysis strips table qualifiers: in a join, a filter on
    one table's ``ts`` must not "prove" disjointness from *another* table's
    archived ``ts`` predicate — that served a silently wrong exact answer."""
    other = LawsDatabase.open(tmp_path / "join_store")
    other.load_dict("a", {"id": [1, 2, 3], "ts": [5000.0, 6000.0, 7000.0], "v": [1.0, 2.0, 3.0]})
    other.load_dict("b", {"id": [1, 2, 3], "ts": [10.0, 20.0, 30.0], "w": [9.0, 8.0, 7.0]})
    other.archive("b", "ts < 1000")
    with pytest.raises(ApproximationError, match="archived"):
        other.query(
            "SELECT v, w FROM a JOIN b ON a.id = b.id WHERE a.ts >= 5000",
            AccuracyContract(mode="exact"),
        )


def test_provably_disjoint_query_still_runs_exact(db):
    exact_before = db.query(
        "SELECT SUM(intensity) FROM m WHERE ts >= 900", AccuracyContract(mode="exact")
    )
    db.archive("m", "ts < 900")
    after = db.query(
        "SELECT SUM(intensity) FROM m WHERE ts >= 900", AccuracyContract(mode="exact")
    )
    assert after.is_exact
    assert after.table.to_pydict() == exact_before.table.to_pydict()


def test_explain_shows_unavailable_exact_candidate(db):
    db.archive("m", "ts < 900")
    text = db.explain(GROUPED_SQL)
    assert "UNAVAILABLE" in text
    assert "model-only tier" in text


def test_recall_restores_exact_answers(db):
    exact_before = db.query(GROUPED_SQL, AccuracyContract(mode="exact"))
    db.archive("m", "ts < 900")
    restored = db.recall_archive("m")
    assert restored == 900
    assert db.table("m").num_rows == 1200
    after = db.query(GROUPED_SQL, AccuracyContract(mode="exact"))
    assert dict(after.table.to_rows()) == {
        s: pytest.approx(v) for s, v in exact_before.table.to_rows()
    }
    with pytest.raises(ArchiveError):
        db.recall_archive("m")  # nothing left to recall


def test_archive_survives_checkpoint_and_reopen(db, tmp_path):
    db.archive("m", "ts < 900")
    db.checkpoint()
    db.close()

    reopened = LawsDatabase.open(tmp_path / "store")
    assert reopened.last_recovery.archived_tables == ["m"]
    assert reopened.table("m").num_rows == 300
    answer = reopened.query(GROUPED_SQL, AccuracyContract(max_relative_error=0.5))
    assert answer.route_taken == "grouped-model"
    assert answer.approx.io.get("pages_read", 0.0) == 0.0
    with pytest.raises(ApproximationError, match="archived"):
        reopened.query(GROUPED_SQL, AccuracyContract(mode="exact"))
    # ... and recall still works from the reopened process.
    assert reopened.recall_archive("m") == 900
    assert reopened.table("m").num_rows == 1200


def test_archive_accounting_in_storage_report(db):
    before = db.storage_report()
    assert before["total_archived_bytes"] == 0
    db.archive("m", "ts < 900")
    report = db.storage_report()
    assert report["tables"]["m"]["archived_bytes"] > 0
    assert report["total_archived_bytes"] == report["tables"]["m"]["archived_bytes"]
    assert report["tables"]["m"]["raw_bytes"] < before["tables"]["m"]["raw_bytes"]


def test_archive_requires_durable_store():
    memory_only = LawsDatabase()
    memory_only.load_dict("m", seeded_rows(60))
    with pytest.raises(PersistenceError, match="opt-in"):
        memory_only.archive("m", "ts < 30")


def test_archive_rejects_empty_selection(db):
    with pytest.raises(ArchiveError, match="selects no rows"):
        db.archive("m", "ts < -1")


def test_feedback_never_audits_archived_answers(db):
    """Verification re-runs "exact" over the partial live table — over an
    archived table that would record bogus evidence against a model that is
    answering correctly for the full logical table.  It must be skipped."""
    db.archive("m", "ts < 900")
    for _ in range(6):
        answer = db.query(
            GROUPED_SQL, AccuracyContract(max_relative_error=0.5, verify_fraction=1.0)
        )
        assert answer.feedback is None  # sampling suppressed, nothing recorded
    for model in db.captured_models():
        assert model.observed_errors == []
        assert "planner_demoted" not in model.metadata


def test_recall_keeps_segment_files_until_a_checkpoint_persists_them(db, tmp_path):
    archive_dir = db.durable.archive_dir
    db.archive("m", "ts < 400")
    db.archive("m", "ts < 800")
    assert len(list(archive_dir.glob("*.npz"))) == 2
    db.checkpoint()  # the manifest now references both archive segments
    db.recall_archive("m")
    # Until the next checkpoint snapshots the recalled rows, the archive
    # segments are their only durable copy — the replayed recall record
    # reads them back on recovery.
    assert len(list(archive_dir.glob("*.npz"))) == 2
    db.durable.wal.close()  # crash before any checkpoint
    crashed = LawsDatabase.open(tmp_path / "store")
    # The WAL-logged recall replays: the acknowledged state (everything
    # live) survives the crash.
    assert crashed.archive_tier.archived_rows("m") == 0
    assert crashed.table("m").num_rows == 1200
    crashed.close()

    # The checkpoint that persists the recall purges the now-garbage files.
    db.checkpoint()
    assert list(archive_dir.glob("*.npz")) == []
    assert db.table("m").num_rows == 1200


def test_archive_itself_survives_a_crash_via_the_wal(db, tmp_path):
    """An acknowledged archive() must not be silently undone by a crash —
    the user archived to shed memory; a restart must not reload the rows.
    No explicit checkpoint here: archive() itself persists the warehouse
    models about to serve in place of the raw rows, so the replayed archive
    record never leaves a model-less tier behind."""
    db.archive("m", "ts < 900")
    db.durable.wal.close()  # crash immediately after the archive

    crashed = LawsDatabase.open(tmp_path / "store")
    assert crashed.archive_tier.archived_rows("m") == 900
    assert crashed.table("m").num_rows == 300
    assert crashed.last_recovery.models_restored >= 1  # models came with it
    answer = crashed.query(GROUPED_SQL, AccuracyContract(max_relative_error=0.5))
    assert answer.route_taken == "grouped-model"
    assert answer.approx.io.get("pages_read", 0.0) == 0.0
    with pytest.raises(ApproximationError, match="archived"):
        crashed.query(GROUPED_SQL, AccuracyContract(mode="exact"))


def test_dropping_an_archived_table_clears_the_tier(db):
    db.archive("m", "ts < 900")
    db.drop_table("m")
    assert not db.database.has_table("m")
    assert db.archive_tier.archived_rows("m") == 0
    # A recreated table of the same name starts clean: no dead overlay, no
    # phantom archived rows, no blocked queries.
    db.load_dict("m", {"ts": [1.0, 2.0], "intensity": [5.0, 6.0]})
    assert db.database.stats("m").row_count == 2
    count = db.query("SELECT COUNT(intensity) FROM m", AccuracyContract(mode="exact"))
    assert count.scalar() == 2


def test_drop_of_archived_table_replays_cleanly(db, tmp_path):
    db.checkpoint()
    db.archive("m", "ts < 900")
    db.checkpoint()  # manifest now carries the archive payload
    db.drop_table("m")
    db.durable.wal.close()  # crash: the drop lives only in the WAL

    crashed = LawsDatabase.open(tmp_path / "store")
    assert not crashed.database.has_table("m")
    assert crashed.archive_tier.archived_rows("m") == 0
    crashed.load_dict("m", {"ts": [1.0], "intensity": [5.0]})
    assert crashed.database.stats("m").row_count == 1


def test_maintenance_never_refits_over_an_archived_table(db):
    db.watch("m", "intensity", order_column="ts")
    db.archive("m", "ts < 900")
    db.ingest("m", [(1200.0 + i, 2, 0.15, 99.0) for i in range(600)], flush=True)
    before = {m.model_id: m.status for m in db.captured_models()}
    report = db.maintain()
    # The shifted stream would normally trigger a refit/segmentation; with
    # 900 rows archived that fit would see only the biased live remainder.
    assert report.actions_of_kind("refit") == []
    assert report.actions_of_kind("segmented") == []
    assert "archived" in report.actions[0].details
    assert {m.model_id: m.status for m in db.captured_models()} == before
    # Recalling the archive lifts the guard.
    db.recall_archive("m")
    lifted = db.maintain()
    assert all("archived" not in action.details for action in lifted.actions)


def test_on_demand_grouped_harvest_is_blocked_while_archived(db, tmp_path):
    other = LawsDatabase.open(tmp_path / "other")
    other.load_dict("m", seeded_rows())
    # Only an ungrouped capture exists: a GROUP BY normally triggers the
    # on-demand grouped harvest, which must refuse over an archived table.
    other.fit("m", "intensity ~ powerlaw(frequency)")
    other.archive("m", "ts < 900")
    with pytest.raises(ApproximationError, match="archived"):
        other.query(GROUPED_SQL, AccuracyContract(max_relative_error=0.5))
    assert all(not m.is_grouped for m in other.captured_models())


def test_direct_fit_is_blocked_while_archived(db):
    """Every capture path funnels through the harvester's guard: a fit over
    the predicate-biased live remainder would be served as describing the
    full logical table, with feedback verification disabled."""
    from repro.errors import HarvestError

    db.archive("m", "ts < 900")
    with pytest.raises(HarvestError, match="archived"):
        db.fit("m", "intensity ~ powerlaw(frequency)")
    with pytest.raises(HarvestError, match="archived"):
        db.strawman("m").fit("intensity ~ powerlaw(frequency)")
    # The pre-archive grouped model (fitted on the full data) still serves...
    existing = db.ensure_grouped_model("m", "intensity", ["source"])
    assert existing is not None and existing.fitted_row_count == 1200
    # ... but capturing a NEW grouping would fit the biased remainder: blocked.
    models_before = len(db.captured_models())
    assert (
        db.ensure_grouped_model(
            "m", "intensity", ["frequency"], formula="intensity ~ powerlaw(frequency)"
        )
        is None
    )
    assert len(db.captured_models()) == models_before
    db.recall_archive("m")
    # Guard lifted: the capture goes through again (acceptance is up to the
    # quality gate, not the archive guard).
    assert db.fit("m", "intensity ~ powerlaw(frequency)").model is not None


def test_replacing_an_archived_table_clears_the_tier(db, tmp_path):
    from repro.db.table import Table

    db.archive("m", "ts < 900")
    replacement = Table.from_dict("m", {"ts": [1.0, 2.0], "intensity": [5.0, 6.0]})
    db.register_table(replacement, replace=True)
    assert db.archive_tier.archived_rows("m") == 0
    assert db.database.stats("m").row_count == 2
    count = db.query("SELECT COUNT(intensity) FROM m", AccuracyContract(mode="exact"))
    assert count.scalar() == 2

    # ... and the WAL replay of that replace behaves identically.
    db.durable.wal.close()
    crashed = LawsDatabase.open(tmp_path / "store")
    assert crashed.archive_tier.archived_rows("m") == 0
    assert crashed.table("m").num_rows == 2


def test_archiving_does_not_stale_models(db):
    statuses = {m.model_id: m.status for m in db.captured_models()}
    db.archive("m", "ts < 900")
    assert {m.model_id: m.status for m in db.captured_models()} == statuses
