"""Opt-in persistence, the context-manager protocol and cold-start serving."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import AccuracyContract, LawsDatabase
from repro.errors import FormatVersionError, PersistenceError


def sensor_rows(n=400, seed=5):
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 20.0, n)
    return {
        "x": [float(v) for v in x],
        "y": [float(v) for v in (3.0 + 2.0 * x + 0.01 * rng.standard_normal(n))],
    }


# ---------------------------------------------------------------------------
# Satellite: persistence is strictly opt-in — a plain LawsDatabase must
# behave exactly as the PR-1 streaming subsystem shipped it.
# ---------------------------------------------------------------------------


def test_in_memory_database_never_touches_disk(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # any stray file write would land here
    db = LawsDatabase(ingest_batch_size=32)
    db.load_dict("s", sensor_rows())
    db.fit("s", "y ~ linear(x)")
    db.watch("s", "y", order_column="x")
    batches = db.ingest("s", [(21.0, 45.0)] * 64, flush=True)
    assert sum(b.num_rows for b in batches) == 64
    db.maintain()
    assert db.query("SELECT COUNT(y) FROM s", AccuracyContract(mode="exact")).scalar() == 464

    assert db.durable is None and db.archive_tier is None
    assert os.listdir(tmp_path) == []  # nothing written, ever


def test_in_memory_ingest_unchanged_vs_streaming_suite(tmp_path, monkeypatch):
    """The PR-1 regression: same batches, same stats, same row ranges."""
    monkeypatch.chdir(tmp_path)
    db = LawsDatabase(ingest_batch_size=10)
    db.load_dict("s", {"x": [0.0], "y": [0.0]})
    first = db.ingest("s", [(float(i), float(i)) for i in range(25)])
    assert [(b.start_row, b.end_row) for b in first] == [(1, 11), (11, 21)]
    assert db.ingestor.pending("s") == 5
    rest = db.flush_ingest("s")
    assert [(b.start_row, b.end_row) for b in rest] == [(21, 26)]
    stats = db.ingest_stats("s")
    assert stats.rows_ingested == 25 and stats.batches_flushed == 3
    assert os.listdir(tmp_path) == []


def test_persistence_calls_require_opt_in():
    db = LawsDatabase()
    with pytest.raises(PersistenceError, match="opt-in"):
        db.checkpoint()
    with pytest.raises(PersistenceError, match="opt-in"):
        db.recall_archive("s")
    db.close()  # close on an unopened database is a harmless no-op


def test_context_manager_on_memory_database_is_noop(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with LawsDatabase() as db:
        db.load_dict("s", sensor_rows(50))
    assert os.listdir(tmp_path) == []


# ---------------------------------------------------------------------------
# Satellite: context manager → checkpoint() + close()
# ---------------------------------------------------------------------------


def test_context_manager_checkpoints_and_closes(tmp_path):
    root = tmp_path / "store"
    with LawsDatabase.open(root) as db:
        db.load_dict("s", sensor_rows())
        db.fit("s", "y ~ linear(x)")
        db.ingest("s", [(21.0, 45.0)] * 10)  # buffered, not yet flushed
        assert db.durable is not None
    assert db.durable is None  # closed on exit

    reopened = LawsDatabase.open(root)
    # The exit checkpoint flushed the buffered ingest rows first.
    assert reopened.table("s").num_rows == 410
    assert reopened.last_recovery.models_restored == 1
    assert reopened.last_recovery.wal_records_replayed == 0  # all in the snapshot


def test_context_manager_skips_checkpoint_on_exception(tmp_path):
    root = tmp_path / "store"
    with pytest.raises(RuntimeError):
        with LawsDatabase.open(root) as db:
            db.load_dict("s", sensor_rows())
            raise RuntimeError("boom")
    # No checkpoint happened, but the WAL carried the load.
    reopened = LawsDatabase.open(root)
    assert reopened.last_recovery.checkpoint_id == 0
    assert reopened.table("s").num_rows == 400


# ---------------------------------------------------------------------------
# Cold start: a reopened database serves from models immediately
# ---------------------------------------------------------------------------


def test_cold_start_serves_models_without_refitting(tmp_path):
    root = tmp_path / "store"
    with LawsDatabase.open(root) as db:
        db.load_dict("s", sensor_rows())
        db.fit("s", "y ~ linear(x)")
        warm = db.query(
            "SELECT AVG(y) FROM s", AccuracyContract(mode="approx", verify_fraction=0.0)
        )

    cold = LawsDatabase.open(root)
    answer = cold.query(
        "SELECT AVG(y) FROM s", AccuracyContract(mode="approx", verify_fraction=0.0)
    )
    assert not answer.is_exact
    assert answer.table.to_pydict() == warm.table.to_pydict()
    assert [m.model_id for m in cold.captured_models()] == [
        m.model_id for m in db.captured_models()
    ]
    # New captures continue the id sequence instead of colliding.
    report = cold.fit("s", "y ~ poly(x, degree=2)")
    assert report.model.model_id > max(m.model_id for m in db.captured_models())


def test_numpy_typed_ingest_survives_the_wal(tmp_path):
    """Producers hand rows straight from NumPy; the WAL must frame them."""
    root = tmp_path / "store"
    rng = np.random.default_rng(1)
    db = LawsDatabase.open(root, ingest_batch_size=8)
    db.load_dict("s", sensor_rows(16))
    db.checkpoint()
    rows = [(np.float64(30.0 + i), np.float64(2.0 * i)) for i in range(16)]
    db.ingest("s", rows, flush=True)
    db.ingest("s", [(float(rng.standard_normal()), np.int64(4))], flush=True)
    db.durable.wal.close()

    reopened = LawsDatabase.open(root)
    assert reopened.table("s").num_rows == 16 + 16 + 1
    assert reopened.table("s").column("y")[-1] == 4.0


def test_planner_calibration_round_trips(tmp_path):
    root = tmp_path / "store"
    with LawsDatabase.open(root) as db:
        db.load_dict("s", sensor_rows(60))
        costs = db.planner.cost_model.costs
    reopened = LawsDatabase.open(root)
    assert reopened.planner.cost_model.costs == costs


def test_open_passes_constructor_kwargs_through(tmp_path):
    db = LawsDatabase.open(tmp_path / "store", ingest_batch_size=7, verify_seed=123)
    assert db.ingestor.batch_size == 7


def test_future_format_version_is_refused(tmp_path):
    root = tmp_path / "store"
    with LawsDatabase.open(root) as db:
        db.load_dict("s", sensor_rows(40))
    manifest = root / "MANIFEST.json"
    manifest.write_text(manifest.read_text().replace('"format_version": 1', '"format_version": 99'))
    with pytest.raises(FormatVersionError, match="v99"):
        LawsDatabase.open(root)
