"""Model-warehouse serialization round trips across every model family."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.captured_model import CapturedModel, ModelCoverage
from repro.core.model_store import ModelStore
from repro.core.quality import judge_fit
from repro.errors import FormatVersionError
from repro.fitting.fit import fit_model
from repro.fitting.families import family_by_name
from repro.fitting.grouped import fit_grouped
from repro.fitting.piecewise import fit_piecewise
from repro.db.table import Table
from repro.persist.warehouse import (
    WAREHOUSE_FORMAT_VERSION,
    deserialize_model,
    restore_store,
    serialize_model,
    serialize_store,
)

RNG = np.random.default_rng(42)
X = np.linspace(0.5, 8.0, 200)

#: (family name, kwargs, ground-truth generator) for every registered family.
FAMILY_CASES = [
    ("powerlaw", {}, lambda x: 2.5 * x**-0.8),
    ("exponential", {}, lambda x: 1.5 * np.exp(0.3 * x)),
    ("linear", {"input_names": ("x",)}, lambda x: 2.0 + 3.0 * x),
    ("polynomial", {"degree": 3}, lambda x: 1.0 - 0.5 * x + 0.25 * x**3),
    ("constant", {}, lambda x: np.full_like(x, 4.2)),
    ("logistic", {}, lambda x: 10.0 / (1.0 + np.exp(-1.2 * (x - 4.0)))),
    ("sinusoid", {}, lambda x: 2.0 * np.sin(1.5 * x + 0.3) + 5.0),
]


def capture_from_fit(fit, quality=None, **overrides) -> CapturedModel:
    input_names = getattr(fit, "input_names", None) or fit.input_columns
    output_name = getattr(fit, "output_name", None) or fit.output_column
    coverage = ModelCoverage(
        table_name="t",
        input_columns=tuple(input_names),
        output_column=output_name,
        group_columns=overrides.pop("group_columns", ()),
        predicate_sql=overrides.pop("predicate_sql", None),
    )
    formula_default = f"{output_name} ~ test"
    return CapturedModel(
        coverage=coverage,
        formula=overrides.pop("formula", formula_default),
        fit=fit,
        quality=quality if quality is not None else judge_fit(fit),
        accepted=True,
        **overrides,
    )


def json_round_trip(model: CapturedModel) -> CapturedModel:
    # Through real JSON text, not just dict identity: the warehouse file is
    # a format, and the round trip must survive the serializer.
    payload = json.loads(json.dumps(serialize_model(model)))
    return deserialize_model(payload)


@pytest.mark.parametrize("name,kwargs,truth", FAMILY_CASES, ids=[c[0] for c in FAMILY_CASES])
def test_every_family_round_trips(name, kwargs, truth):
    family = family_by_name(name, **kwargs)
    y = truth(X) * (1.0 + 0.01 * RNG.standard_normal(len(X)))
    fit = fit_model(family, {"x": X}, y, output_name="y")
    quality = judge_fit(fit, y=y, inputs={"x": X})  # includes the F-test
    model = capture_from_fit(fit, quality=quality)

    restored = json_round_trip(model)

    assert restored.model_id == model.model_id
    assert restored.family_name == model.family_name
    np.testing.assert_array_equal(restored.fit.params, model.fit.params)
    assert restored.quality == model.quality  # dataclass equality incl. F-test
    probe = {"x": np.linspace(0.7, 7.3, 37)}
    np.testing.assert_array_equal(restored.predict(probe), model.predict(probe))


def test_multi_input_linear_round_trips():
    family = family_by_name("linear", input_names=("a", "b"))
    inputs = {"a": X, "b": np.sqrt(X)}
    y = 1.0 + 2.0 * inputs["a"] - 3.0 * inputs["b"]
    fit = fit_model(family, inputs, y, output_name="y")
    restored = json_round_trip(capture_from_fit(fit))
    probe = {"a": X[:11], "b": np.sqrt(X[:11])}
    np.testing.assert_array_equal(restored.predict(probe), fit.predict(probe))


def test_piecewise_round_trips():
    x = np.linspace(0.0, 10.0, 400)
    y = np.where(x < 5.0, 1.0 + 0.5 * x, 8.0 - 0.9 * x)
    fit = fit_piecewise(x, y, num_segments=4, degree=1, output_name="y", input_name="x")
    restored = json_round_trip(capture_from_fit(fit))
    assert restored.family_name == "piecewise"
    assert restored.fit.family.degree == 1
    assert len(restored.fit.family.segments) == 4
    np.testing.assert_array_equal(restored.predict({"x": x}), fit.predict({"x": x}))


def test_grouped_model_round_trips_including_failed_groups():
    rows = []
    for group in ("alpha", "beta", "gamma"):
        scale = {"alpha": 1.0, "beta": 2.0, "gamma": 3.0}[group]
        for x in np.linspace(1.0, 4.0, 30):
            rows.append((group, float(x), float(scale * x**-0.5)))
    rows.append(("lonely", 1.0, 1.0))  # too few observations: a failed group
    table = Table.from_dict(
        "t",
        {
            "g": [r[0] for r in rows],
            "x": [r[1] for r in rows],
            "y": [r[2] for r in rows],
        },
    )
    grouped = fit_grouped(table, family_by_name("powerlaw"), ["x"], "y", ["g"])
    assert grouped.failed  # the lonely group must be preserved through the trip
    model = capture_from_fit(
        grouped,
        quality=judge_fit(grouped.fitted[0].result),
        group_columns=("g",),
        group_fit_fraction=0.75,
    )
    restored = json_round_trip(model)

    assert restored.is_grouped
    assert restored.fit.group_columns == ("g",)
    assert len(restored.fit.records) == len(grouped.records)
    assert [r.key for r in restored.fit.records] == [r.key for r in grouped.records]
    failed = [r for r in restored.fit.records if not r.succeeded]
    assert len(failed) == 1 and failed[0].key == ("lonely",)
    np.testing.assert_array_equal(
        restored.predict({"x": np.array([2.0])}, group_key=("beta",)),
        model.predict({"x": np.array([2.0])}, group_key=("beta",)),
    )
    # The parameter table (Table 1 of the paper) regenerates identically.
    assert restored.parameter_table().to_pydict() == model.parameter_table().to_pydict()


def test_lifecycle_and_evidence_round_trip():
    family = family_by_name("linear", input_names=("x",))
    fit = fit_model(family, {"x": X}, 2.0 * X, output_name="y")
    model = capture_from_fit(
        fit,
        predicate_sql="x >= 1.5",
        formula="y ~ linear(x)",
        fitted_row_count=123,
        metadata={"robust": True, "method": "gn", "planner_demoted": "observed errors"},
        status="stale",
        observed_errors=[0.01, 0.5, float("inf")],
    )
    restored = json_round_trip(model)
    assert restored.status == "stale"
    assert restored.coverage.predicate_sql == "x >= 1.5"
    assert restored.fitted_row_count == 123
    assert restored.metadata["planner_demoted"] == "observed errors"
    assert restored.metadata["robust"] is True
    assert restored.observed_errors[:2] == [0.01, 0.5]
    assert restored.observed_errors[2] == float("inf")
    assert restored.formula == "y ~ linear(x)"
    assert not restored.is_usable and restored.is_servable


def test_store_payload_round_trips_and_gates_future_versions():
    store = ModelStore()
    family = family_by_name("constant")
    fit = fit_model(family, {"x": X}, np.full_like(X, 3.0), output_name="y")
    store.add(capture_from_fit(fit))
    payload = json.loads(json.dumps(serialize_store(store)))
    assert payload["format_version"] == WAREHOUSE_FORMAT_VERSION

    target = ModelStore()
    restored = restore_store(payload, target)
    assert len(restored) == 1 and len(target) == 1

    payload["format_version"] = WAREHOUSE_FORMAT_VERSION + 1
    with pytest.raises(FormatVersionError):
        restore_store(payload, ModelStore())
