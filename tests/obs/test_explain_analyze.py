"""Acceptance-criterion tests: ``EXPLAIN ANALYZE`` on an exact, an
approximate and a hybrid query shows per-stage wall time, simulated page
IO, the route decision with rejected alternatives, and — for model-served
routes — the predicted vs observed error."""

import re

import pytest

from repro import AccuracyContract, LawsDatabase

CONTRACT = AccuracyContract(max_relative_error=0.05)
GROUPED_SQL = "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g"


def _golden_rows():
    return [
        (g, float(x), 10.0 * g + 2.0 * x)
        for g in range(2)
        for x in range(4)
        for _ in range(6)
    ]


def _build_db():
    db = LawsDatabase(verify_sample_fraction=0.0)
    rows = _golden_rows()
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
    return db


@pytest.fixture(scope="module")
def db():
    return _build_db()


def _assert_stage_timed(text: str, stage: str) -> None:
    pattern = re.compile(rf"^\s*{re.escape(stage)}\s+\[\d+\.\d{{3}}ms", re.MULTILINE)
    assert pattern.search(text), f"stage {stage!r} missing a wall-time in:\n{text}"


def test_exact_explain_analyze(db):
    text = db.explain_analyze("SELECT count(*) AS n FROM t")
    assert text.startswith("EXPLAIN ANALYZE: SELECT count(*) AS n FROM t")
    assert "Route: exact" in text
    for stage in ("query", "parse", "plan", "execute", "op:TableScan"):
        _assert_stage_timed(text, stage)
    assert "io=1 page(s)" in text  # simulated page IO from the scan
    assert "· decision: exact" in text
    assert "· candidates: chosen — exact" in text


def test_approx_explain_analyze_shows_rejected_and_errors(db):
    text = db.explain_analyze(GROUPED_SQL, CONTRACT)
    assert "Route: grouped-model" in text
    for stage in ("query", "parse", "plan", "execute", "route:grouped", "verify-sample"):
        _assert_stage_timed(text, stage)
    # The route decision, with the rejected alternative and its predicted cost.
    assert "· candidates: chosen — grouped-model [cost≈" in text
    assert "· candidates: rejected — exact [cost≈" in text
    # Predicted vs observed error (EXPLAIN ANALYZE forces the verify sample).
    assert "· predicted_relative_error: 0.00%" in text
    assert "· observed_relative_error: 0.00%" in text
    assert "· budget: 5.00%" in text
    assert "· within_budget: True" in text
    # The verify sample's exact re-execution pays (and reports) page IO.
    assert "io=" in text


def test_hybrid_explain_analyze():
    db = _build_db()
    db.insert_rows("t", [(2, float(x), 77.0 + 2.0 * x) for x in range(4)])
    text = db.explain_analyze(GROUPED_SQL, CONTRACT)
    assert "Route: grouped-hybrid" in text
    for stage in ("route:grouped", "exact-fill-in", "verify-sample"):
        _assert_stage_timed(text, stage)
    assert "· exact_groups: 1" in text
    assert "· model_groups: 2" in text
    assert "· candidates: rejected — exact [cost≈" in text
    assert "· predicted_relative_error:" in text
    assert "· observed_relative_error:" in text
    # The exact fill-in scans real pages.
    fill_in_line = next(line for line in text.splitlines() if "exact-fill-in" in line)
    assert "io=" in fill_in_line


def test_explain_analyze_restores_disabled_observability():
    db = LawsDatabase(observability=False)
    rows = _golden_rows()
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    assert not db.obs.enabled
    text = db.explain_analyze("SELECT count(*) AS n FROM t")
    assert "Route: exact" in text
    # The temporary enable is undone: follow-up queries trace nothing.
    assert not db.obs.enabled
    traces_before = len(db.obs.tracer.traces())
    db.query("SELECT count(*) AS n FROM t")
    assert len(db.obs.tracer.traces()) == traces_before


def test_explain_analyze_strips_prefix(db):
    text = db.explain_analyze("EXPLAIN ANALYZE SELECT count(*) AS n FROM t")
    assert text.startswith("EXPLAIN ANALYZE: SELECT count(*) AS n FROM t")


def test_explain_analyze_forces_verification_even_when_sampling_off(db):
    # db fixture has verify_sample_fraction=0.0, yet the analyze run verifies.
    text = db.explain_analyze(GROUPED_SQL, CONTRACT)
    assert "verify-sample" in text
    # …while a plain query under the same contract does not.
    db.query(GROUPED_SQL, CONTRACT)
    assert db.last_trace().find("verify-sample") is None
