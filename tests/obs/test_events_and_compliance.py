"""The lifecycle event journal, contract-compliance ledger and slow-query
log, exercised through the real subsystems they instrument: harvest,
maintenance (drift → changepoint → refit), demotion, checkpoint/recovery,
archive, and the planner's feedback loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AccuracyContract, LawsDatabase
from repro.obs import ComplianceLedger, EventJournal, SlowQueryLog, normalize_reason


# ---------------------------------------------------------------------------
# Unit level
# ---------------------------------------------------------------------------


class TestEventJournal:
    def test_record_and_filter(self):
        j = EventJournal()
        j.record("model-capture", model_id=1, table="t")
        j.record("model-capture", model_id=2, table="u")
        j.record("checkpoint", checkpoint_id=1)
        assert [e.kind for e in j.events()] == [
            "model-capture",
            "model-capture",
            "checkpoint",
        ]
        assert [e.fields["model_id"] for e in j.events("model-capture")] == [1, 2]
        assert [e.fields["model_id"] for e in j.events("model-capture", table="u")] == [2]
        assert j.totals() == {"model-capture": 2, "checkpoint": 1}

    def test_ring_buffer_evicts_but_totals_are_monotonic(self):
        j = EventJournal(capacity=2)
        for i in range(5):
            j.record("e", i=i)
        assert [e.fields["i"] for e in j.events()] == [3, 4]
        assert j.totals() == {"e": 5}

    def test_limit_returns_newest(self):
        j = EventJournal()
        for i in range(4):
            j.record("e", i=i)
        assert [e.fields["i"] for e in j.events(limit=2)] == [2, 3]

    def test_disabled_journal_records_nothing(self):
        j = EventJournal()
        j.enabled = False
        assert j.record("e") is None
        assert j.events() == []
        assert j.totals() == {}

    def test_on_record_hook(self):
        seen = []
        j = EventJournal()
        j.on_record = seen.append
        j.record("e", x=1)
        assert len(seen) == 1 and seen[0].kind == "e"


class TestComplianceLedger:
    def test_served_and_verified_accounting(self):
        ledger = ComplianceLedger()
        ledger.record_served("grouped-model", 0.01, model_ids=[7])
        ledger.record_served("grouped-model", 0.03, model_ids=[7])
        violated = ledger.record_verified(
            "grouped-model", 0.02, error_budget=0.05, model_ids=[7]
        )
        assert violated is False
        routes = ledger.report()["routes"]
        entry = routes["grouped-model"]
        assert entry["served"] == 2
        assert entry["verified"] == 1
        assert entry["mean_predicted_relative_error"] == pytest.approx(0.02)
        assert entry["mean_observed_relative_error"] == pytest.approx(0.02)
        assert entry["budget_checks"] == 1
        assert entry["budget_violations"] == 0
        models = ledger.report()["models"]
        assert models[7]["served"] == 2 and models[7]["verified"] == 1

    def test_budget_violation_and_lying_models(self):
        ledger = ComplianceLedger()
        ledger.record_served("grouped-model", 0.01, model_ids=[9])
        violated = ledger.record_verified(
            "grouped-model", 0.30, error_budget=0.05, model_ids=[9], demoted_ids=[9]
        )
        assert violated is True
        entry = ledger.report()["routes"]["grouped-model"]
        assert entry["budget_violations"] == 1
        model = ledger.report()["models"][9]
        assert model["budget_violations"] == 1 and model["demotions"] == 1
        liars = ledger.lying_models()
        assert [liar["model_id"] for liar in liars] == [9]

    def test_no_budget_means_no_check(self):
        ledger = ComplianceLedger()
        ledger.record_served("range-aggregate", 0.01)
        assert (
            ledger.record_verified("range-aggregate", 0.5, error_budget=float("inf"))
            is False
        )
        entry = ledger.report()["routes"]["range-aggregate"]
        assert entry["budget_checks"] == 0 and entry["budget_violations"] == 0


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_seconds=0.1)
        log.observe("SELECT fast", "exact", 0.01)
        log.observe("SELECT slow", "exact", 0.5)
        assert [e.sql for e in log.entries()] == ["SELECT slow"]
        assert log.total == 1

    def test_capacity_ring_and_total(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=2)
        for i in range(4):
            log.observe(f"q{i}", "exact", 1.0)
        assert [e.sql for e in log.entries()] == ["q2", "q3"]
        assert log.total == 4

    def test_disabled_log_records_nothing(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.enabled = False
        log.observe("q", "exact", 1.0)
        assert log.entries() == [] and log.total == 0


def test_normalize_reason():
    assert normalize_reason(None) == "unspecified"
    assert normalize_reason("  ") == "unspecified"
    assert normalize_reason("no usable model; tried 3 candidates") == "no usable model"
    assert len(normalize_reason("x" * 200)) == 80


# ---------------------------------------------------------------------------
# Through the real subsystems
# ---------------------------------------------------------------------------


def _regime(rng, t_start, t_stop, intercept, slope, noise=0.2, step=0.25):
    t = np.arange(t_start, t_stop, step)
    return t, intercept + slope * t + rng.normal(0, noise, len(t))


def test_capture_event_recorded():
    db = LawsDatabase()
    db.load_dict("t", {"x": [float(i) for i in range(20)], "y": [2.0 * i for i in range(20)]})
    db.fit("t", "y ~ linear(x)")
    events = db.events("model-capture")
    assert len(events) == 1
    event = events[0]
    assert event.fields["table"] == "t"
    assert event.fields["column"] == "y"
    assert event.fields["accepted"] is True
    assert db.metrics()["counters"]["events_total"] == [
        {"labels": {"kind": "model-capture"}, "value": 1.0}
    ]


def test_drift_maintenance_and_changepoint_events():
    rng = np.random.default_rng(7)
    t, v = _regime(rng, 0.0, 100.0, intercept=2.0, slope=0.5)
    db = LawsDatabase(ingest_batch_size=100)
    db.load_dict("readings", {"t": t, "value": v})
    assert db.fit("readings", "value ~ linear(t)").accepted
    db.watch("readings", "value", order_column="t")

    # Level shift at t=100: the drift monitor must fire once.
    t2, v2 = _regime(rng, 100.0, 200.0, intercept=26.0, slope=0.5)
    for start in range(0, len(t2), 50):
        db.ingest("readings", list(zip(t2[start : start + 50], v2[start : start + 50])))
    db.flush_ingest()

    drift = db.events("drift-detected")
    assert len(drift) == 1
    assert drift[0].fields["table"] == "readings"
    assert drift[0].fields["column"] == "value"

    db.maintain()
    maintenance = db.events("maintenance")
    assert len(maintenance) == 1
    assert maintenance[0].fields["action"] == "segmented"
    changepoints = db.events("changepoint")
    assert len(changepoints) == 1
    assert len(changepoints[0].fields["indices"]) == 1
    supersedes = db.events("model-supersede")
    assert len(supersedes) == 1


def test_demotion_event_via_model_store():
    db = LawsDatabase()
    db.load_dict("t", {"x": [float(i) for i in range(20)], "y": [2.0 * i for i in range(20)]})
    report = db.fit("t", "y ~ linear(x)")
    db.models.demote(report.model.model_id, "observed errors exceeded the budget")
    events = db.events("model-demotion")
    assert len(events) == 1
    assert events[0].fields["model_id"] == report.model.model_id
    assert "budget" in events[0].fields["reason"]


def test_checkpoint_recovery_and_archive_events(tmp_path):
    db = LawsDatabase.open(tmp_path / "store")
    db.load_dict(
        "m",
        {
            "ts": [float(i) for i in range(40)],
            "x": [float(i % 5) for i in range(40)],
            "y": [1.0 + 2.0 * (i % 5) for i in range(40)],
        },
    )
    assert db.fit("m", "y ~ linear(x)").accepted
    report = db.checkpoint()
    checkpoints = db.events("checkpoint")
    assert len(checkpoints) >= 1
    assert checkpoints[-1].fields["checkpoint_id"] == report.checkpoint_id

    archived = db.archive("m", "ts < 20")
    archive_events = db.events("archive")
    assert len(archive_events) == 1
    assert archive_events[0].fields["rows"] == archived.rows_archived
    restored = db.recall_archive("m")
    recall_events = db.events("archive-recall")
    assert len(recall_events) == 1
    assert recall_events[0].fields["rows"] == restored
    db.close()

    # Reopen: recovery must be journaled in the *new* session's journal.
    db2 = LawsDatabase.open(tmp_path / "store")
    recoveries = db2.events("recovery")
    assert len(recoveries) == 1
    assert recoveries[0].fields["tables_loaded"] >= 1
    db2.close()


def test_slow_query_log_through_database():
    db = LawsDatabase(verify_sample_fraction=0.0, slow_query_seconds=0.0)
    db.load_dict("t", {"x": [float(i) for i in range(20)], "y": [2.0 * i for i in range(20)]})
    db.query("SELECT count(*) AS n FROM t")
    entries = db.slow_queries()
    assert len(entries) == 1
    assert entries[0].sql == "SELECT count(*) AS n FROM t"
    assert entries[0].route == "exact"
    assert "query" in entries[0].trace_summary
    assert db.metrics()["gauges"]["slow_queries"] == [{"labels": {}, "value": 1.0}]


def test_plan_cache_and_storage_gauges_in_snapshot():
    db = LawsDatabase(verify_sample_fraction=0.0)
    db.load_dict("t", {"x": [float(i) for i in range(30)], "y": [2.0 * i for i in range(30)]})
    assert db.fit("t", "y ~ linear(x)").accepted
    contract = AccuracyContract(max_relative_error=0.5)
    for _ in range(3):
        db.query("SELECT avg(y) AS m FROM t WHERE x BETWEEN 1 AND 20", contract)
    snapshot = db.metrics()
    gauges = snapshot["gauges"]

    def gauge(name, **labels):
        for entry in gauges[name]:
            if entry["labels"] == {k: str(v) for k, v in labels.items()}:
                return entry["value"]
        raise AssertionError(f"no gauge {name} with labels {labels}: {gauges.get(name)}")

    # Plan-cache stats per layer reconcile with the live introspection APIs.
    planner_info = db.planner.plan_cache_info()
    assert gauge("plan_cache_hits", layer="planner") == planner_info["hits"]
    assert gauge("plan_cache_misses", layer="planner") == planner_info["misses"]
    assert gauge("plan_cache_size", layer="sql") == db.database.plan_cache_info()["size"]
    assert planner_info["hits"] >= 2  # the repeated query actually hit

    # Storage savings per table and in total.
    report = db.storage_report()
    assert gauge("storage_raw_bytes", table="t") == report["tables"]["t"]["raw_bytes"]
    assert gauge("storage_model_bytes", table="t") == report["tables"]["t"]["model_bytes"]
    assert gauge("storage_total_raw_bytes") == report["total_raw_bytes"]
    assert gauge("storage_total_model_bytes") == report["total_model_bytes"]
    assert gauge("models", status="active") == 1
    assert gauge("io_pages_read") == db.database.io_snapshot()["pages_read"]


def test_compliance_report_through_database():
    db = LawsDatabase(verify_sample_fraction=1.0)
    rows = [
        (g, float(x), 10.0 * g + 2.0 * x)
        for g in range(2)
        for x in range(4)
        for _ in range(6)
    ]
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
    db.query(
        "SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g",
        AccuracyContract(max_relative_error=0.05),
    )
    report = db.compliance_report()
    entry = report["routes"]["grouped-model"]
    assert entry["served"] == 1 and entry["verified"] == 1
    assert entry["budget_violations"] == 0
    # The law is exact, so the model keeps its promise.
    assert entry["mean_observed_relative_error"] <= entry["mean_predicted_relative_error"] + 1e-9
    assert db.obs.compliance.lying_models() == []
