"""Unit tests for the metrics registry: counters, gauges, histograms,
the disabled no-op path, and the JSON / Prometheus exporters."""

import json

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry


class TestCounters:
    def test_inc_accumulates(self):
        m = MetricsRegistry()
        m.inc("queries_total", route="exact")
        m.inc("queries_total", route="exact")
        m.inc("queries_total", 3.0, route="grouped-model")
        assert m.counter_value("queries_total", route="exact") == 2.0
        assert m.counter_value("queries_total", route="grouped-model") == 3.0
        assert m.counter_total("queries_total") == 5.0

    def test_missing_counter_is_zero(self):
        m = MetricsRegistry()
        assert m.counter_value("nope") == 0.0
        assert m.counter_total("nope") == 0.0

    def test_label_order_does_not_matter(self):
        m = MetricsRegistry()
        m.inc("c", a="1", b="2")
        m.inc("c", b="2", a="1")
        assert m.counter_value("c", b="2", a="1") == 2.0


class TestGauges:
    def test_set_overwrites(self):
        m = MetricsRegistry()
        m.set_gauge("models", 3, status="active")
        m.set_gauge("models", 5, status="active")
        assert m.gauge_value("models", status="active") == 5.0

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge_value("nope") is None


class TestHistogram:
    def test_cumulative_buckets(self):
        h = Histogram(buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)
        # Cumulative: ≤0.1 → 1, ≤1.0 → 3, ≤10.0 → 4, +Inf → 5.
        assert snap["buckets"] == [[0.1, 1], [1.0, 3], [10.0, 4], ["+Inf", 5]]

    def test_boundary_value_falls_in_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.snapshot()["buckets"][0] == [1.0, 1]

    def test_registry_observe_uses_default_buckets(self):
        m = MetricsRegistry()
        m.observe("query_seconds", 0.002)
        snap = m.snapshot()["histograms"]["query_seconds"]
        assert snap["count"] == 1
        assert len(snap["buckets"]) == len(DEFAULT_LATENCY_BUCKETS) + 1


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        m = MetricsRegistry(enabled=False)
        m.inc("c")
        m.set_gauge("g", 1.0)
        m.observe("h", 0.5)
        snap = m.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_clears_everything(self):
        m = MetricsRegistry()
        m.inc("c")
        m.set_gauge("g", 1.0)
        m.observe("h", 0.5)
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestExporters:
    def _registry(self):
        m = MetricsRegistry()
        m.inc("queries_total", 2, route="exact")
        m.set_gauge("models", 4, status="active")
        m.observe("query_seconds", 0.002)
        return m

    def test_json_round_trips(self):
        payload = json.loads(self._registry().to_json())
        assert payload["counters"]["queries_total"] == [
            {"labels": {"route": "exact"}, "value": 2.0}
        ]
        assert payload["gauges"]["models"] == [
            {"labels": {"status": "active"}, "value": 4.0}
        ]
        assert payload["histograms"]["query_seconds"]["count"] == 1

    def test_prometheus_text_exposition(self):
        text = self._registry().to_prometheus_text()
        assert "# TYPE repro_queries_total counter" in text
        assert 'repro_queries_total{route="exact"} 2' in text
        assert "# TYPE repro_models gauge" in text
        assert 'repro_models{status="active"} 4' in text
        assert "# TYPE repro_query_seconds histogram" in text
        assert 'repro_query_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_query_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        m = MetricsRegistry()
        m.inc("c", reason='say "hi"\nbye\\')
        text = m.to_prometheus_text()
        assert 'reason="say \\"hi\\"\\nbye\\\\"' in text

    def test_prometheus_emits_help_before_every_type(self):
        """Exposition conformance: every # TYPE line is preceded by a # HELP
        line for the same metric (what promtool check metrics expects)."""
        lines = self._registry().to_prometheus_text().splitlines()
        type_indices = [i for i, line in enumerate(lines) if line.startswith("# TYPE ")]
        assert type_indices  # the fixture registry has metrics of every kind
        for i in type_indices:
            metric = lines[i].split()[2]
            assert lines[i - 1].startswith(f"# HELP {metric} "), lines[i - 1]

    def test_prometheus_help_text_for_known_metrics(self):
        m = MetricsRegistry()
        m.inc("queries_total", route="exact")
        text = m.to_prometheus_text()
        assert "# HELP repro_queries_total Queries served, by route taken." in text

    def test_prometheus_help_falls_back_for_unknown_metrics(self):
        m = MetricsRegistry()
        m.inc("made_up_metric_total")
        text = m.to_prometheus_text()
        assert "# HELP repro_made_up_metric_total " in text
        assert "# TYPE repro_made_up_metric_total counter" in text

    def test_prometheus_help_escapes_newlines(self):
        # HELP escaping: backslash and newline only (quotes are legal).
        from repro.obs.metrics import _help_text

        assert _help_text("x") == "repro metric (no description registered)."
        assert "\n" not in _help_text("queries_total")
