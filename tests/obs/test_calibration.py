"""Adaptive cost calibration: observed operator timings retune the planner.

The convergence test is the PR's acceptance scenario: the static BENCH
calibration believes exact execution is fast, an (injected) slow clock
makes the *observed* per-row rates hundreds of times worse, and after
enough traced queries the calibrator installs an adaptive cost model that
flips the AUTO route decision from exact to model serving — with the
recalibration journaled and the provenance visible in ``explain()``.
"""

import pytest

from repro import LawsDatabase
from repro.core.planner.cost import CostModel, OperatorCosts
from repro.obs.calibration import CostCalibrator
from repro.obs.trace import Span


class SkewedClock:
    """A monotonic clock advancing a fixed step per reading.

    Span timing does ``start = clock(); ...; elapsed = clock() - start``,
    so every span appears to take at least one step — orders of magnitude
    above the microseconds the BENCH calibration predicts per row.
    """

    def __init__(self, step: float) -> None:
        self.step = step
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _build_db(groups: int = 200, rows_per_group: int = 10) -> LawsDatabase:
    db = LawsDatabase(verify_sample_fraction=0.0)
    n = groups * rows_per_group
    db.load_dict(
        "t",
        {
            "g": [i % groups for i in range(n)],
            "x": [float(i // groups) for i in range(n)],
            "y": [10.0 * (i % groups) + 2.0 * (i // groups) for i in range(n)],
        },
    )
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted
    return db


SQL = "SELECT g, avg(y) AS m FROM t GROUP BY g"


class TestConvergence:
    def test_skewed_timings_flip_the_route_decision(self):
        db = _build_db()
        # Under AUTO with no error budget the decision is pure predicted
        # cost: ~200 model evaluations cost more than a 2000-row exact
        # pipeline under the static BENCH rates, so exact wins.
        first = db.query(SQL)
        assert first.plan.cost_source is not None
        assert first.plan.cost_source.startswith(("bench:", "builtin"))
        assert first.route_taken == "exact"

        # Skew the observed world: every span reading advances 50ms, so the
        # traced scan/aggregate rates come out ~350x worse than planned.
        db.obs.tracer.clock = SkewedClock(step=0.05)
        calibrator = db.obs.calibration
        for _ in range(calibrator.min_samples + 2):
            db.query(SQL)

        report = calibrator.report()
        assert report["recalibrations"] >= 1
        assert report["source"].startswith("adaptive:gen")

        # The journal carries the planned-vs-observed shift per rate field.
        events = db.events(kind="cost-recalibration")
        assert events
        shifted = events[-1].fields["shifted"]
        assert "scan_seconds_per_row" in shifted
        assert (
            shifted["scan_seconds_per_row"]["observed"]
            > shifted["scan_seconds_per_row"]["planned"]
        )

        # The recalibrated model makes exact look as slow as it measured —
        # the same query now routes to model serving, and the plan (and its
        # EXPLAIN rendering) disclose the adaptive provenance.
        flipped = db.query(SQL)
        assert flipped.plan.is_model_route
        assert flipped.plan.cost_source.startswith("adaptive:gen")
        assert "Cost model: adaptive:gen" in db.explain(SQL)
        assert db.obs.metrics.counter_total("cost_recalibrations_total") >= 1

    def test_static_model_would_keep_routing_exact(self):
        """The control: without recalibration the BENCH rates keep choosing
        exact — the flip in the test above is the calibrator's doing."""
        db = _build_db()
        db.obs.tracer.clock = SkewedClock(step=0.05)
        db.obs.calibration.enabled = False
        for _ in range(8):
            answer = db.query(SQL)
        assert answer.route_taken == "exact"
        assert db.obs.metrics.counter_total("cost_recalibrations_total") == 0


class TestSetCostModel:
    def test_swap_invalidates_cached_plans(self):
        db = _build_db()
        plan_before = db.plan(SQL)
        assert not plan_before.is_model_route
        # An adaptive model claiming exact execution costs 1s/row must flip
        # every cached decision immediately, not at the next catalog bump.
        slow = OperatorCosts(scan_seconds_per_row=0.9, group_by_seconds_per_row=0.1)
        db.planner.set_cost_model(CostModel(slow, source="adaptive:test"))
        plan_after = db.plan(SQL)
        assert plan_after.is_model_route
        assert plan_after.cost_source == "adaptive:test"

    def test_version_is_part_of_the_cache_key(self):
        db = _build_db()
        db.plan(SQL)
        before = db.planner.plan_cache_info()
        db.planner.set_cost_model(CostModel(OperatorCosts(), source="adaptive:v2"))
        db.plan(SQL)
        after = db.planner.plan_cache_info()
        assert after["misses"] == before["misses"] + 1


class TestObservationDiscipline:
    def _span(self, name: str, elapsed: float, rows: int, children=()) -> Span:
        span = Span(name=name, elapsed_seconds=elapsed)
        span.attributes["rows_out"] = rows
        span.children = list(children)
        return span

    def _calibrator(self, **kwargs) -> tuple[CostCalibrator, "_PlannerStub"]:
        planner = _PlannerStub()
        return CostCalibrator(planner, **kwargs), planner

    def test_small_inputs_are_ignored(self):
        calibrator, planner = self._calibrator(min_rows=256, min_samples=1)
        tiny = self._span("op:TableScan", elapsed=10.0, rows=8)
        root = Span(name="query", children=[tiny])
        for _ in range(5):
            calibrator.observe_trace(root)
        assert planner.installed is None  # fixed overhead, not throughput

    def test_rates_are_clamped_against_absurd_spans(self):
        calibrator, planner = self._calibrator(min_rows=1, min_samples=1)
        absurd = self._span("op:TableScan", elapsed=1e9, rows=1000)
        calibrator.observe_trace(Span(name="query", children=[absurd]))
        installed = planner.installed
        assert installed is not None
        assert installed.costs.scan_seconds_per_row <= 1.0

    def test_blocking_operators_are_charged_per_input_row(self):
        calibrator, _ = self._calibrator(min_rows=1, min_samples=10)
        scan = self._span("op:TableScan", elapsed=1.0, rows=1000)
        # Aggregate emitted 10 groups but consumed 1000 rows; its rate must
        # divide by the input, matching how the cost model predicts it.
        agg = self._span("op:Aggregate", elapsed=3.0, rows=10, children=[scan])
        calibrator.observe_trace(Span(name="query", children=[agg]))
        estimate = calibrator.report()["estimates"]["group_by_seconds_per_row"]
        # Self time (3.0 - 1.0 nested scan) over 1000 input rows.
        assert estimate["ewma_seconds_per_row"] == pytest.approx(2.0 / 1000.0)

    def test_stable_rates_do_not_churn_the_plan_cache(self):
        calibrator, planner = self._calibrator(min_rows=1, min_samples=1)
        planned = planner.cost_model.costs.scan_seconds_per_row
        steady = self._span("op:TableScan", elapsed=planned * 1000, rows=1000)
        for _ in range(10):
            calibrator.observe_trace(Span(name="query", children=[steady]))
        assert planner.installed is None  # within drift_threshold: no swap


class _PlannerStub:
    def __init__(self) -> None:
        self.cost_model = CostModel()
        self.installed: CostModel | None = None

    def set_cost_model(self, model: CostModel) -> None:
        self.cost_model = model
        self.installed = model
