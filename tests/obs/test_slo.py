"""SLO engine: multi-window burn-rate alerting routed through health.

The acceptance scenario for this subsystem: a latency cliff that started
minutes ago trips the *fast* window (burn ≥ 14x) while the *slow* window —
diluted by an hour of good service — stays under its 6x threshold.  The
breach degrades the ``slo:<name>`` component in the health registry and is
journaled; recovery clears both.
"""

import pytest

from repro.obs.events import EventJournal
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_SLOS, SLO, SLOEngine
from repro.resilience.health import DEGRADED, HEALTHY, HealthRegistry


class SettableClock:
    def __init__(self, now: float = 100_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _engine(slos=None, **kwargs):
    clock = SettableClock()
    journal = EventJournal()
    health = HealthRegistry(journal=journal)
    engine = SLOEngine(
        health=health,
        journal=journal,
        metrics=MetricsRegistry(),
        slos=slos or (SLO(name="latency", kind="latency", objective=0.99, threshold_seconds=0.1),),
        clock=clock,
        **kwargs,
    )
    return engine, clock, health, journal


def _event_kinds(journal):
    return [event.kind for event in journal.events()]


class TestBurnWindows:
    def test_fast_burn_trips_while_slow_burn_does_not(self):
        engine, clock, health, journal = _engine()
        # An hour of good service: 600 fast queries spread over the slow
        # window but all older than the fast window's 300s cutoff.
        for i in range(600):
            clock.now = 100_000.0 - 3000.0 + i * (2600.0 / 600.0)
            engine.observe_query(0.001)
        clock.now = 100_000.0
        assert not engine.evaluate()["latency"]["alerting"]

        # Then a cliff: 30 straight slow queries in the last 10 seconds.
        for i in range(30):
            clock.now = 100_000.0 - 10.0 + i / 3.0
            engine.observe_query(0.5)
        clock.now = 100_000.0
        report = engine.evaluate()["latency"]

        fast, slow = report["windows"]["fast"], report["windows"]["slow"]
        # Fast window holds only the cliff: 30/30 bad → burn 100x ≥ 14.
        assert fast["bad"] == 30 and fast["events"] == 30
        assert fast["burn_rate"] == pytest.approx(100.0)
        assert fast["alerting"]
        # Slow window dilutes it: 30/630 bad → burn ≈4.8x < 6.
        assert slow["events"] == 630
        assert slow["burn_rate"] == pytest.approx((30 / 630) / 0.01)
        assert not slow["alerting"]

        assert report["alerting"] and report["alert_window"] == "fast"
        # The breach reached the health registry and the journal.
        assert health.state("slo:latency") == DEGRADED
        assert "burn" in health.reason("slo:latency")
        burns = [e for e in journal.events() if e.kind == "slo-burn"]
        assert len(burns) == 1
        assert burns[0].fields["window"] == "fast"
        assert engine.metrics.counter_value(
            "slo_breaches_total", slo="latency", window="fast"
        ) == 1.0

    def test_recovery_clears_the_alert_and_health(self):
        engine, clock, health, journal = _engine()
        # Good history keeps the slow window diluted throughout.
        for i in range(600):
            clock.now = 100_000.0 - 3000.0 + i * (2600.0 / 600.0)
            engine.observe_query(0.001)
        for i in range(30):
            clock.now = 100_000.0 - 10.0 + i / 3.0
            engine.observe_query(0.5)
        clock.now = 100_000.0
        engine.evaluate()
        assert health.state("slo:latency") == DEGRADED

        # The cliff ages out of the fast window; good traffic keeps the
        # event count above min_events so the all-clear is evidence-based.
        clock.advance(200.0)
        for _ in range(30):
            engine.observe_query(0.001)
        clock.advance(200.0)
        report = engine.evaluate()["latency"]
        assert not report["alerting"]
        assert health.state("slo:latency") == HEALTHY
        assert "slo-recovered" in _event_kinds(journal)

    def test_min_events_gate_suppresses_noise(self):
        # Two bad queries out of two is a 100% bad fraction — but two
        # events prove nothing; no alert below min_events.
        engine, clock, health, _ = _engine()
        engine.observe_query(0.5)
        engine.observe_query(0.5)
        assert not engine.evaluate()["latency"]["alerting"]
        assert health.state("slo:latency") == HEALTHY

    def test_breach_fires_once_not_every_evaluation(self):
        engine, clock, _, journal = _engine()
        for i in range(30):
            clock.now = 100_000.0 - 10.0 + i / 3.0
            engine.observe_query(0.5)
        clock.now = 100_000.0
        engine.evaluate()
        engine.evaluate()
        engine.evaluate()
        assert _event_kinds(journal).count("slo-burn") == 1


class TestSignals:
    def test_compliance_counts_only_audited_answers(self):
        engine, clock, _, _ = _engine(
            slos=(SLO(name="compliance", kind="compliance", objective=0.95),)
        )
        for _ in range(100):
            engine.observe_query(0.01, violated=None)  # unaudited: no evidence
        report = engine.evaluate()["compliance"]
        assert report["windows"]["fast"]["events"] == 0

        for _ in range(24):
            engine.observe_query(0.01, violated=True)
        report = engine.evaluate()["compliance"]
        assert report["windows"]["fast"]["events"] == 24
        assert report["alerting"]

    def test_degraded_kind_tracks_the_flag(self):
        engine, clock, health, _ = _engine(
            slos=(SLO(name="degraded-serving", kind="degraded", objective=0.99),)
        )
        for _ in range(24):
            engine.observe_query(0.001, degraded=True)
        assert engine.evaluate()["degraded-serving"]["alerting"]
        assert health.state("slo:degraded-serving") == DEGRADED

    def test_latency_percentiles_in_report(self):
        engine, clock, _, _ = _engine()
        for i in range(1, 101):
            engine.observe_query(i / 1000.0)
        report = engine.report()
        assert report["observed_queries"] == 100
        assert report["latency_percentiles"]["p50"] == pytest.approx(0.050, abs=0.002)
        assert report["latency_percentiles"]["p99"] == pytest.approx(0.099, abs=0.002)

    def test_disabled_engine_observes_nothing(self):
        engine, clock, _, _ = _engine()
        engine.enabled = False
        for _ in range(50):
            engine.observe_query(9.9)
        assert engine.report()["observed_queries"] == 0


class TestDeclaration:
    def test_default_slos_are_valid(self):
        assert {slo.name for slo in DEFAULT_SLOS} == {
            "latency",
            "compliance",
            "degraded-serving",
        }

    def test_objective_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="objective"):
            SLO(name="x", kind="latency", objective=1.0, threshold_seconds=0.1)

    def test_latency_requires_threshold(self):
        with pytest.raises(ValueError, match="threshold_seconds"):
            SLO(name="x", kind="latency", objective=0.99)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SLO(name="x", kind="availability", objective=0.99)

    def test_redefining_resets_tracking(self):
        engine, clock, _, _ = _engine()
        for _ in range(30):
            engine.observe_query(0.5)
        engine.define(SLO(name="latency", kind="latency", objective=0.99, threshold_seconds=0.1))
        assert engine.evaluate()["latency"]["windows"]["fast"]["events"] == 0
