"""Tracer/span unit tests plus golden trace trees for the three routes.

The golden fixture follows ``tests/planner/test_explain_golden.py``: the
data obeys an exact per-group linear law, so the route decisions (and
therefore the span trees) are deterministic.  Wall times and IO counts
are volatile; the golden assertions cover the *shape* — span names in
pre-order — and the decision attributes.
"""

import pytest

from repro import AccuracyContract, LawsDatabase
from repro.obs import Span, Tracer


class TestSpan:
    def test_find_and_walk(self):
        root = Span(name="query")
        child = Span(name="plan")
        grandchild = Span(name="op:Sort")
        child.children.append(grandchild)
        root.children.append(child)
        assert root.find("op:Sort") is grandchild
        assert root.find("nope") is None
        assert [s.name for s in root.walk()] == ["query", "plan", "op:Sort"]
        assert root.span_names() == ["query", "plan", "op:Sort"]

    def test_render_shows_attributes_and_io(self):
        root = Span(name="query", elapsed_seconds=0.0012)
        root.io = {"pages_read": 3.0, "virtual_io_seconds": 0.001}
        root.annotate(sql="SELECT 1", candidates=["chosen — a", "rejected — b"])
        text = root.to_text()
        assert "query  [1.200ms, io=3 page(s)]" in text
        assert "· sql: SELECT 1" in text
        assert "· candidates: chosen — a" in text
        assert "· candidates: rejected — b" in text


class TestTracer:
    def test_disabled_tracer_discards(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("query") as root:
            with tracer.span("child") as child:
                child.annotate(x=1)
        assert not tracer.active
        assert tracer.last_trace() is None
        assert root.name == "discarded"

    def test_span_outside_trace_discards(self):
        tracer = Tracer()
        with tracer.span("orphan") as span:
            pass
        assert span.name == "discarded"
        assert tracer.last_trace() is None

    def test_nested_trace_becomes_child_span(self):
        tracer = Tracer()
        with tracer.trace("outer"):
            with tracer.trace("inner"):
                with tracer.span("leaf"):
                    pass
        trace = tracer.last_trace()
        assert trace.span_names() == ["outer", "inner", "leaf"]
        assert len(tracer.traces()) == 1

    def test_keep_traces_ring(self):
        tracer = Tracer(keep_traces=2)
        for i in range(4):
            with tracer.trace(f"q{i}"):
                pass
        assert [t.name for t in tracer.traces()] == ["q2", "q3"]
        assert tracer.last_trace().name == "q3"

    def test_io_snapshot_delta(self):
        counter = {"pages_read": 0.0, "virtual_io_seconds": 0.0}
        tracer = Tracer(io_snapshot=lambda: dict(counter))
        with tracer.trace("query"):
            with tracer.span("execute"):
                counter["pages_read"] += 4
        trace = tracer.last_trace()
        assert trace.pages_read == 4
        assert trace.find("execute").pages_read == 4


@pytest.fixture(scope="module")
def golden_db():
    db = LawsDatabase(verify_sample_fraction=0.0)
    rows = [
        (g, float(x), 10.0 * g + 2.0 * x)
        for g in range(2)
        for x in range(4)
        for _ in range(6)
    ]
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted
    return db


CONTRACT = AccuracyContract(max_relative_error=0.05)


def test_exact_trace_tree(golden_db):
    golden_db.query("SELECT count(*) AS n FROM t")
    trace = golden_db.last_trace()
    assert trace.span_names() == [
        "query",
        "parse",
        "plan",
        "execute",
        "op:Project",
        "op:Aggregate",
        "op:TableScan",
    ]
    plan = trace.find("plan")
    assert plan.attributes["decision"] == "exact"
    candidates = plan.attributes["candidates"]
    assert len(candidates) == 1
    assert candidates[0].startswith("chosen — exact [cost≈")
    scan = trace.find("op:TableScan")
    assert scan.attributes["rows_out"] == 48
    assert scan.attributes["operator"].startswith("TableScan(t")


def test_grouped_model_trace_tree(golden_db):
    golden_db.query("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g", CONTRACT)
    trace = golden_db.last_trace()
    assert trace.span_names() == ["query", "parse", "plan", "execute", "route:grouped"]
    plan = trace.find("plan")
    assert plan.attributes["decision"] == "grouped-model"
    candidates = plan.attributes["candidates"]
    assert any(c.startswith("chosen — grouped-model") for c in candidates)
    assert any(c.startswith("rejected — exact") for c in candidates)
    execute = trace.find("execute")
    assert execute.attributes["route_taken"] == "grouped-model"
    assert execute.attributes["rows"] == 2
    route = trace.find("route:grouped")
    assert route.attributes["model_groups"] == 2
    assert route.attributes["exact_groups"] == 0


def test_hybrid_trace_tree_has_exact_fill_in():
    db = LawsDatabase(verify_sample_fraction=0.0)
    rows = [
        (g, float(x), 10.0 * g + 2.0 * x)
        for g in range(2)
        for x in range(4)
        for _ in range(6)
    ]
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
    # A group the model never saw forces the hybrid route's exact fill-in.
    db.insert_rows("t", [(2, float(x), 77.0 + 2.0 * x) for x in range(4)])
    answer = db.query("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g", CONTRACT)
    assert answer.route_taken == "grouped-hybrid"
    trace = db.last_trace()
    names = trace.span_names()
    assert names[:5] == ["query", "parse", "plan", "execute", "route:grouped"]
    assert "exact-fill-in" in names
    # The fill-in runs traced operators under the route span.
    fill_in = trace.find("exact-fill-in")
    assert any(s.name.startswith("op:") for s in fill_in.walk())
    route = trace.find("route:grouped")
    assert route.attributes["exact_groups"] == 1


def test_feedback_verify_span_nests_not_new_trace():
    db = LawsDatabase(verify_sample_fraction=1.0)
    rows = [
        (g, float(x), 10.0 * g + 2.0 * x)
        for g in range(2)
        for x in range(4)
        for _ in range(6)
    ]
    db.load_dict(
        "t",
        {"g": [r[0] for r in rows], "x": [r[1] for r in rows], "y": [r[2] for r in rows]},
    )
    assert db.fit("t", "y ~ linear(x)", group_by="g").accepted
    db.query("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g", CONTRACT)
    trace = db.last_trace()
    verify = trace.find("verify-sample")
    assert verify is not None
    assert verify.attributes["within_budget"] is True
    assert "predicted_relative_error" in verify.attributes
    assert "observed_relative_error" in verify.attributes
    # The feedback re-execution traces inside the same tree, not a new one.
    assert len(db.obs.tracer.traces()) == 1


def test_last_trace_survives_next_query(golden_db):
    golden_db.query("SELECT count(*) AS n FROM t")
    first = golden_db.last_trace()
    golden_db.query("SELECT g, avg(y) AS m FROM t GROUP BY g ORDER BY g", CONTRACT)
    second = golden_db.last_trace()
    assert first is not second
    assert second.attributes["sql"].startswith("SELECT g")
