"""The ops surface: ``ops_report()`` and the OTLP/JSON trace export.

The report is the single operational status document the dashboard and
the CI artifact consume; the key invariant is *reconciliation* — its
counters must agree with the journal's monotonic totals and with the
recorders' own accounting, not be an independent (driftable) tally.
"""

import json

from repro import AccuracyContract, LawsDatabase


def _served_db() -> LawsDatabase:
    db = LawsDatabase(verify_sample_fraction=1.0, verify_seed=3)
    db.load_dict(
        "t",
        {
            "g": [i % 4 for i in range(800)],
            "x": [float(i) for i in range(800)],
            "y": [5.0 * (i % 4) + 2.0 * float(i) for i in range(800)],
        },
    )
    report = db.fit("t", "y ~ linear(x)", group_by="g")
    assert report.accepted
    contract = AccuracyContract(max_relative_error=0.1)
    for _ in range(4):
        db.query("SELECT g, avg(y) AS m FROM t GROUP BY g", contract)
        db.query("SELECT count(*) AS n FROM t", AccuracyContract(mode="exact"))
    return db


class TestOpsReport:
    def test_report_is_json_serializable(self):
        report = _served_db().ops_report()
        parsed = json.loads(json.dumps(report))
        assert set(parsed) == {
            "queries",
            "slo",
            "calibration",
            "flight",
            "events",
            "health",
            "plan_cache",
            "storage",
            "compliance",
        }

    def test_query_counters_reconcile_across_surfaces(self):
        db = _served_db()
        report = db.ops_report()
        queries = report["queries"]
        # by_route sums to the total: same counter, two views.
        assert sum(queries["by_route"].values()) == queries["total"] == 8.0
        # The flight recorder saw every non-telemetry query the planner
        # accounted.
        assert report["flight"]["recorded_queries"] == 8
        # So did the SLO engine.
        assert report["slo"]["observed_queries"] == 8

    def test_event_totals_are_the_journals_monotonic_totals(self):
        db = _served_db()
        db.flush_telemetry()
        report = db.ops_report()
        assert report["events"] == db.obs.journal.totals()
        # And journal totals are monotonic counts of the events themselves
        # (the journal ring may evict, totals never decrease).
        for kind, total in report["events"].items():
            assert total >= len(db.events(kind=kind))

    def test_metrics_events_counter_matches_journal_totals(self):
        db = _served_db()
        db.flush_telemetry()
        totals = db.obs.journal.totals()
        for key, value in db.obs.metrics.counter_series("events_total").items():
            kind = dict(key).get("kind")
            assert totals.get(kind) == int(value), kind

    def test_verified_counter_matches_compliance_report(self):
        db = _served_db()
        report = db.ops_report()
        verified = report["queries"]["verified"]
        assert verified > 0  # sample fraction 1.0: model routes audited
        compliance_total = sum(
            entry.get("verified", 0) for entry in report["compliance"].get("routes", {}).values()
        )
        if compliance_total:  # compliance collector tracks the same stream
            assert compliance_total == verified

    def test_telemetry_flush_is_visible_in_the_report(self):
        db = _served_db()
        before = db.ops_report()["flight"]
        assert before["pending_queries"] > 0
        rows = db.flush_telemetry()
        after = db.ops_report()["flight"]
        assert after["pending_queries"] == 0
        assert after["flushes"] == before["flushes"] + 1
        assert after["flushed_rows"] == before["flushed_rows"] + rows


class TestOtlpExport:
    def test_export_shape_and_span_links(self):
        db = _served_db()
        payload = db.export_traces_otlp()
        assert json.loads(json.dumps(payload)) == payload
        resource = payload["resourceSpans"][0]
        service = resource["resource"]["attributes"][0]
        assert service["key"] == "service.name"
        assert service["value"] == {"stringValue": "repro-laws-db"}
        scope = resource["scopeSpans"][0]
        assert scope["scope"]["name"] == "repro.obs.trace"
        spans = scope["spans"]
        assert spans

        by_id = {}
        roots = 0
        for span in spans:
            assert len(span["traceId"]) == 32
            assert len(span["spanId"]) == 16
            assert int(span["endTimeUnixNano"]) >= int(span["startTimeUnixNano"])
            by_id[(span["traceId"], span["spanId"])] = span
            if "parentSpanId" not in span:
                roots += 1
        # Every parent link resolves within the same trace.
        for span in spans:
            parent = span.get("parentSpanId")
            if parent is not None:
                assert (span["traceId"], parent) in by_id
        assert roots == len({span["traceId"] for span in spans})

    def test_operator_spans_carry_rows_out_attributes(self):
        db = _served_db()
        spans = db.export_traces_otlp()["resourceSpans"][0]["scopeSpans"][0]["spans"]
        op_spans = [span for span in spans if span["name"].startswith("op:")]
        assert op_spans
        keys = {attr["key"] for span in op_spans for attr in span["attributes"]}
        assert "rows_out" in keys

    def test_export_is_deterministic(self):
        db = _served_db()
        assert db.export_traces_otlp() == db.export_traces_otlp()
