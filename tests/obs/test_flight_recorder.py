"""The flight recorder: self-telemetry through the real ingest path.

Covers the dogfooding loop end to end — query records land in
``_telemetry_*`` tables via the streaming ingestor, a latency baseline is
harvested over the system's own series, a latency regression journals the
same ``drift-detected`` event a drifting sensor table would — and the
feedback-loop guards: querying the telemetry warehouse never generates
more telemetry than it reads.
"""

import random

import pytest

from repro import AccuracyContract, LawsDatabase
from repro.obs.flight import (
    METRIC_TABLE,
    OPERATOR_TABLE,
    QUERY_TABLE,
    TELEMETRY_PREFIX,
    is_telemetry_table,
)


def _db(**kwargs) -> LawsDatabase:
    db = LawsDatabase(**kwargs)
    db.load_dict(
        "t",
        {
            "g": [i % 4 for i in range(400)],
            "x": [float(i) for i in range(400)],
            "y": [2.0 * i for i in range(400)],
        },
    )
    return db


class TestIsTelemetryTable:
    def test_prefix_match(self):
        assert is_telemetry_table(QUERY_TABLE)
        assert is_telemetry_table(TELEMETRY_PREFIX + "anything")
        assert not is_telemetry_table("t")
        assert not is_telemetry_table("telemetry")
        assert not is_telemetry_table(None)
        assert not is_telemetry_table("")


class TestFlush:
    def test_flush_lands_rows_through_the_ingest_path(self):
        db = _db()
        flight = db.obs.flight
        flight.flush_every = 0  # explicit flushes only
        db.query("SELECT avg(y) AS m FROM t")
        db.query("SELECT count(*) AS n FROM t")
        report = flight.report()
        assert report["recorded_queries"] == 2
        assert report["pending_queries"] == 2
        assert report["pending_operator_rows"] > 0

        ingested_before = db.obs.metrics.counter_total("ingest_rows_total")
        rows = db.flush_telemetry()
        assert rows > 0
        # The rows went through the StreamIngestor, not a side door.
        assert db.obs.metrics.counter_total("ingest_rows_total") >= ingested_before + rows

        for table in (QUERY_TABLE, OPERATOR_TABLE, METRIC_TABLE):
            assert db.database.has_table(table)
        assert db.database.table(QUERY_TABLE).num_rows == 2
        assert db.database.table(OPERATOR_TABLE).num_rows == report["pending_operator_rows"]
        assert db.database.table(METRIC_TABLE).num_rows > 0

        # And the warehouse is queryable like any other table.
        result = db.query(f"SELECT count(*) AS n FROM {QUERY_TABLE}")
        assert result.rows()[0][0] == 2

    def test_operator_rows_carry_span_timings(self):
        db = _db()
        db.obs.flight.flush_every = 0
        db.query("SELECT g, avg(y) AS m FROM t GROUP BY g")
        db.flush_telemetry()
        operators = {
            row[1] for row in db.query(f"SELECT seq, operator FROM {OPERATOR_TABLE}").rows()
        }
        assert "TableScan" in operators
        assert "Aggregate" in operators

    def test_auto_flush_after_flush_every_queries(self):
        db = _db()
        flight = db.obs.flight
        flight.flush_every = 8
        for _ in range(8):
            db.query("SELECT count(*) AS n FROM t")
        report = flight.report()
        assert report["flushes"] >= 1
        assert report["pending_queries"] == 0
        assert db.database.table(QUERY_TABLE).num_rows >= 8

    def test_disabled_recorder_records_nothing(self):
        db = _db(observability=False)
        db.query("SELECT count(*) AS n FROM t")
        assert db.obs.flight.report()["recorded_queries"] == 0
        assert db.flush_telemetry() == 0
        assert not db.database.has_table(QUERY_TABLE)


class TestLatencyBaseline:
    def test_baseline_fitted_and_drift_watch_armed(self):
        db = _db()
        flight = db.obs.flight
        flight.flush_every = 0
        flight.baseline_min_rows = 32
        rng = random.Random(7)
        for _ in range(32):
            flight.record_query("exact", 0.010 + rng.gauss(0.0, 0.001))
        flight.flush()
        report = flight.report()
        assert report["baseline_model_id"] is not None
        assert report["watching_latency_drift"]
        model = db.models.get(report["baseline_model_id"])
        assert model.metadata.get("telemetry_baseline") is True
        targets = {(t.table_name, t.output_column) for t in db.maintenance.targets()}
        assert (QUERY_TABLE, "elapsed_us") in targets

    def test_latency_regression_journals_drift_detected(self):
        db = _db()
        flight = db.obs.flight
        flight.flush_every = 0
        flight.baseline_min_rows = 64
        rng = random.Random(11)
        for _ in range(64):
            flight.record_query("exact", 0.010 + rng.gauss(0.0, 0.001))
        flight.flush()
        assert flight.report()["watching_latency_drift"]
        assert not db.events(kind="drift-detected")

        # A 50x latency regression: each flush is one scored ingest batch;
        # the detector's patience needs two consecutive bad batches.
        for _ in range(2):
            for _ in range(16):
                flight.record_query("exact", 0.500 + rng.gauss(0.0, 0.001))
            flight.flush()
        drifts = db.events(kind="drift-detected")
        assert drifts
        assert drifts[-1].fields["table"] == QUERY_TABLE
        assert drifts[-1].fields["column"] == "elapsed_us"

    def test_steady_latency_does_not_alarm(self):
        db = _db()
        flight = db.obs.flight
        flight.flush_every = 0
        flight.baseline_min_rows = 64
        rng = random.Random(13)
        for _ in range(64):
            flight.record_query("exact", 0.010 + rng.gauss(0.0, 0.001))
        flight.flush()
        for _ in range(4):
            for _ in range(16):
                flight.record_query("exact", 0.010 + rng.gauss(0.0, 0.001))
            flight.flush()
        assert not db.events(kind="drift-detected")

    def test_unwatchable_series_keeps_baseline_without_refit_churn(self):
        # A degenerate latency series (e.g. zero residual error) cannot
        # anchor a residual drift detector; the recorder must keep the
        # baseline — no refit on every subsequent flush — and simply not
        # arm the watch.
        from repro.streaming.maintenance import DriftMonitorError

        db = _db()
        flight = db.obs.flight
        flight.flush_every = 0
        flight.baseline_min_rows = 32

        def unwatchable(*args, **kwargs):
            raise DriftMonitorError("degenerate residual error")

        db.maintenance.watch = unwatchable
        for _ in range(32):
            flight.record_query("exact", 0.010)
        flight.flush()
        models_before = len(db.models.all_models())
        report = flight.report()
        assert report["baseline_model_id"] is not None
        assert not report["watching_latency_drift"]
        for _ in range(3):
            flight.record_query("exact", 0.010)
            flight.flush()
        assert len(db.models.all_models()) == models_before  # no refit per flush


class TestFeedbackLoopGuards:
    """Querying the telemetry warehouse must not mint more telemetry."""

    def _seeded(self) -> LawsDatabase:
        db = _db(verify_sample_fraction=1.0, slow_query_seconds=0.0)
        db.obs.flight.flush_every = 0
        db.query("SELECT count(*) AS n FROM t")
        db.flush_telemetry()
        return db

    def test_plan_is_stamped_as_telemetry(self):
        db = self._seeded()
        plan = db.plan(f"SELECT count(*) AS n FROM {QUERY_TABLE}")
        assert plan.telemetry
        assert not db.plan("SELECT count(*) AS n FROM t").telemetry

    def test_telemetry_queries_mint_no_new_telemetry_rows(self):
        db = self._seeded()
        flight = db.obs.flight
        recorded_before = flight.report()["recorded_queries"]
        rows_before = db.database.table(QUERY_TABLE).num_rows
        read_rows = 0
        for _ in range(5):
            read_rows += len(db.query(f"SELECT seq, route FROM {QUERY_TABLE}").rows())
        db.flush_telemetry()
        minted = db.database.table(QUERY_TABLE).num_rows - rows_before
        assert read_rows > 0
        assert minted == 0  # read 5 batches, produced nothing
        assert flight.report()["recorded_queries"] == recorded_before

    def test_telemetry_queries_skip_verification_and_slow_log(self):
        db = self._seeded()
        slow_before = db.obs.slow_log.total
        answer = db.query(
            f"SELECT avg(elapsed_us) AS m FROM {QUERY_TABLE}",
            AccuracyContract(max_relative_error=0.5),
        )
        assert answer.feedback is None  # verify_sample_fraction=1.0 elsewhere
        assert db.obs.slow_log.total == slow_before  # threshold 0.0 elsewhere

    def test_telemetry_queries_skip_slo_accounting(self):
        db = self._seeded()
        observed_before = db.obs.slo.report()["observed_queries"]
        db.query(f"SELECT count(*) AS n FROM {QUERY_TABLE}")
        assert db.obs.slo.report()["observed_queries"] == observed_before

    def test_harvester_never_autocaptures_telemetry_tables(self):
        db = self._seeded()
        flight = db.obs.flight
        flight.baseline_min_rows = 10_000  # keep the deliberate baseline out
        version_before = db.models.version
        # Aggregates over the telemetry table would be auto-capture bait on
        # a user table; the guard must suppress it here.
        for _ in range(10):
            db.query(f"SELECT route, avg(elapsed_us) AS m FROM {QUERY_TABLE} GROUP BY route")
        assert db.models.version == version_before
        assert all(
            not is_telemetry_table(model.table_name)
            for model in db.models.all_models()
            if not model.metadata.get("telemetry_baseline")
        )

    def test_telemetry_tables_never_route_through_the_baseline_model(self):
        # The baseline model exists over _telemetry_queries, but the planner
        # must not serve user queries of the warehouse from it.  (The
        # zero-IO analytic-aggregate route reads real table statistics, not
        # the baseline model, so it remains legitimate.)
        db = _db()
        flight = db.obs.flight
        flight.flush_every = 0
        flight.baseline_min_rows = 32
        rng = random.Random(3)
        for _ in range(32):
            flight.record_query("exact", 0.010 + rng.gauss(0.0, 0.001))
        flight.flush()
        assert flight.report()["baseline_model_id"] is not None
        answer = db.query(
            f"SELECT avg(elapsed_us) AS m FROM {QUERY_TABLE}",
            AccuracyContract(max_relative_error=0.5),
        )
        assert answer.route_taken in ("exact", "analytic-aggregate")
        assert answer.route_taken != "grouped-model"

    def test_flush_reentrancy_is_latched(self):
        # A flush triggers ingest listeners; if one re-entered flush() the
        # recorder would deadlock or double-drain. The latch makes nested
        # calls no-ops.
        db = _db()
        flight = db.obs.flight
        flight.flush_every = 0
        flight.record_query("exact", 0.01)
        inner_rows = []
        original_ensure = flight._ensure_baseline

        def reenter():
            inner_rows.append(flight.flush())
            original_ensure()

        flight._ensure_baseline = reenter
        outer = flight.flush()
        assert outer > 0
        assert inner_rows == [0]
