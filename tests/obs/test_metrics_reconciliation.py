"""Reconciliation: the metrics counters must agree exactly with the
ground-truth tallies computed from the differential harness's own
``PlannedAnswer`` objects — route counts, fallback reasons, and feedback
verifications all come from the same seeded query workload the PR-2
differential harness generates."""

from __future__ import annotations

import sys
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

from repro import AccuracyContract, LawsDatabase
from repro.obs import normalize_reason

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "approx"))

from query_gen import TableProfile, generate_queries  # noqa: E402

GROUPS = tuple(range(10))
X_DOMAIN = tuple(float(v) for v in range(6))

PROFILE = TableProfile(
    name="readings",
    group_column="g",
    input_column="x",
    output_column="y",
    group_values=GROUPS,
    input_domain=X_DOMAIN,
    input_low=min(X_DOMAIN),
    input_high=max(X_DOMAIN),
)

#: Handcrafted queries that must take the exact-fallback route when the
#: contract forces the approximate engine.
FALLBACK_SQL = [
    "SELECT noise FROM readings",
    "SELECT noise FROM readings WHERE g = 1",
    "SELECT * FROM readings",
]


@pytest.fixture(scope="module")
def harness_db():
    rng = np.random.default_rng(2024)
    rows = []
    for g in GROUPS:
        intercept, slope = 2.0 + 0.8 * g, 0.4 + 0.15 * g
        for x in X_DOMAIN:
            for _ in range(6):
                rows.append((g, x, intercept + slope * x + rng.normal(0.0, 0.3)))
    db = LawsDatabase(verify_sample_fraction=1.0)
    db.load_dict(
        "readings",
        {
            "g": [r[0] for r in rows],
            "x": [r[1] for r in rows],
            "y": [r[2] for r in rows],
            "noise": rng.uniform(0, 1, size=len(rows)).tolist(),
        },
    )
    assert db.fit("readings", "y ~ linear(x)", group_by="g").accepted
    return db


def test_metrics_reconcile_with_differential_harness_tallies(harness_db):
    db = harness_db
    rng = np.random.default_rng(77)
    queries = generate_queries(rng, PROFILE, count=60)
    contract = AccuracyContract(max_relative_error=0.5)
    fallback_contract = AccuracyContract(mode="approx")

    db.obs.metrics.reset()

    route_tally: Counter[str] = Counter()
    reason_tally: Counter[str] = Counter()
    verified = 0

    def _run(sql: str, active_contract: AccuracyContract) -> None:
        nonlocal verified
        answer = db.query(sql, active_contract)
        route_tally[answer.route_taken] += 1
        if answer.route_taken == "exact-fallback":
            reason_tally[normalize_reason(answer.approx.reason)] += 1
        if answer.feedback is not None:
            verified += 1

    for query in queries:
        _run(query.sql, contract)
    for sql in FALLBACK_SQL:
        _run(sql, fallback_contract)

    assert route_tally["exact-fallback"] == len(FALLBACK_SQL)
    assert sum(route_tally.values()) == len(queries) + len(FALLBACK_SQL)
    # The generated workload must actually exercise the model routes.
    assert route_tally["grouped-model"] + route_tally["grouped-hybrid"] > 0
    assert route_tally["range-aggregate"] > 0
    assert verified > 0

    metrics = db.obs.metrics
    snapshot = db.metrics()

    # Route counts: one counter sample per route, values matching the tally.
    counted_routes = {
        entry["labels"]["route"]: entry["value"]
        for entry in snapshot["counters"]["queries_total"]
    }
    assert counted_routes == {route: float(n) for route, n in route_tally.items()}

    # Fallback reasons reconcile label-for-label.
    counted_reasons = {
        entry["labels"]["reason"]: entry["value"]
        for entry in snapshot["counters"].get("fallbacks_total", [])
    }
    assert counted_reasons == {reason: float(n) for reason, n in reason_tally.items()}

    # Feedback verifications.
    assert metrics.counter_total("feedback_verifications_total") == float(verified)

    # Every query landed in the latency histogram.
    histogram = snapshot["histograms"]["query_seconds"]
    assert histogram["count"] == len(queries) + len(FALLBACK_SQL)

    # The compliance ledger served-counts agree with the same tally.
    served = {
        route: entry["served"]
        for route, entry in db.compliance_report()["routes"].items()
    }
    assert served == dict(route_tally)
