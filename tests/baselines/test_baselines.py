"""Tests for the related-work baselines: sampling, histograms, gzip,
MauveDB-style views, FunctionDB-style function tables and SPARTAN-style
predictive compression."""

import numpy as np
import pytest

from repro.baselines import functiondb, gzip_baseline, histogram, mauvedb, sampling, spartan
from repro.db.table import Table
from repro.errors import ApproximationError, InsufficientDataError


@pytest.fixture(scope="module")
def numeric_table():
    rng = np.random.default_rng(42)
    n = 4000
    x = rng.uniform(0, 100, n)
    return Table.from_dict(
        "t",
        {
            "g": [int(v) for v in rng.integers(1, 21, n)],
            "x": x,
            "y": (3.0 + 0.5 * x + rng.normal(0, 0.5, n)),
        },
    )


class TestUniformSampling:
    def test_avg_estimate_close(self, numeric_table):
        sampler = sampling.UniformSampler(numeric_table, fraction=0.1, seed=1)
        exact = float(np.mean(numeric_table.column("y").to_numpy()))
        estimate = sampler.estimate("avg", "y")
        assert estimate.value == pytest.approx(exact, rel=0.05)
        assert abs(estimate.value - exact) < 4 * estimate.standard_error

    def test_sum_estimate_scales_up(self, numeric_table):
        sampler = sampling.UniformSampler(numeric_table, fraction=0.2, seed=2)
        exact = float(np.sum(numeric_table.column("y").to_numpy()))
        estimate = sampler.estimate("sum", "y")
        assert estimate.value == pytest.approx(exact, rel=0.1)

    def test_count_estimate(self, numeric_table):
        sampler = sampling.UniformSampler(numeric_table, fraction=0.25, seed=3)
        estimate = sampler.estimate("count", "y")
        assert estimate.value == pytest.approx(numeric_table.num_rows, rel=0.05)

    def test_min_max_biased_inward(self, numeric_table):
        sampler = sampling.UniformSampler(numeric_table, fraction=0.05, seed=4)
        exact_min = float(np.min(numeric_table.column("y").to_numpy()))
        exact_max = float(np.max(numeric_table.column("y").to_numpy()))
        assert sampler.estimate("min", "y").value >= exact_min
        assert sampler.estimate("max", "y").value <= exact_max

    def test_error_shrinks_with_larger_sample(self, numeric_table):
        small = sampling.UniformSampler(numeric_table, fraction=0.02, seed=5).estimate("avg", "y")
        large = sampling.UniformSampler(numeric_table, fraction=0.5, seed=5).estimate("avg", "y")
        assert large.standard_error < small.standard_error

    def test_sample_bytes_proportional_to_fraction(self, numeric_table):
        sampler = sampling.UniformSampler(numeric_table, fraction=0.1, seed=6)
        assert sampler.sample_bytes() == pytest.approx(0.1 * numeric_table.byte_size(), rel=0.05)

    def test_invalid_fraction(self, numeric_table):
        with pytest.raises(ApproximationError):
            sampling.UniformSampler(numeric_table, fraction=0.0)

    def test_unsupported_estimator(self, numeric_table):
        sampler = sampling.UniformSampler(numeric_table, fraction=0.1)
        with pytest.raises(ApproximationError):
            sampler.estimate("median", "y")

    def test_predicate_mask_restriction(self, numeric_table):
        sampler = sampling.UniformSampler(numeric_table, fraction=0.3, seed=7)
        mask = sampler.sample.column("x").to_numpy() > 50
        estimate = sampler.estimate("avg", "y", predicate_mask=mask)
        exact_rows = numeric_table.column("x").to_numpy() > 50
        exact = float(np.mean(numeric_table.column("y").to_numpy()[exact_rows]))
        assert estimate.value == pytest.approx(exact, rel=0.05)


class TestStratifiedSampling:
    def test_every_group_represented(self, numeric_table):
        sampler = sampling.StratifiedSampler(numeric_table, "g", rows_per_group=10, seed=1)
        groups = set(sampler.sample.column("g").to_pylist())
        assert groups == set(numeric_table.column("g").to_pylist())

    def test_group_averages_close(self, numeric_table):
        sampler = sampling.StratifiedSampler(numeric_table, "g", rows_per_group=40, seed=2)
        estimates = sampler.estimate_group_avg("y")
        g = np.array(numeric_table.column("g").to_pylist())
        y = numeric_table.column("y").to_numpy()
        for key, estimate in list(estimates.items())[:5]:
            exact = float(np.mean(y[g == key]))
            assert estimate == pytest.approx(exact, rel=0.15)

    def test_rows_per_group_validation(self, numeric_table):
        with pytest.raises(ApproximationError):
            sampling.StratifiedSampler(numeric_table, "g", rows_per_group=0)


class TestHistograms:
    def test_equi_width_counts_sum_to_total(self, numeric_table):
        hist = histogram.build_equi_width(numeric_table.column("y"), 32, "y")
        assert sum(b.count for b in hist.buckets) == numeric_table.num_rows

    def test_avg_estimate_close(self, numeric_table):
        hist = histogram.build_equi_depth(numeric_table.column("y"), 64, "y")
        exact = float(np.mean(numeric_table.column("y").to_numpy()))
        assert hist.estimate("avg") == pytest.approx(exact, rel=0.05)

    def test_range_count_estimate(self, numeric_table):
        hist = histogram.build_equi_depth(numeric_table.column("x"), 64, "x")
        estimated = hist.estimate("count", low=25.0, high=75.0)
        exact = int(np.sum((numeric_table.column("x").to_numpy() >= 25) & (numeric_table.column("x").to_numpy() <= 75)))
        assert estimated == pytest.approx(exact, rel=0.1)

    def test_selectivity_bounded(self, numeric_table):
        hist = histogram.build_equi_width(numeric_table.column("x"), 16, "x")
        assert 0.0 <= hist.selectivity(10.0, 20.0) <= 1.0
        assert hist.selectivity(hist.min_value, hist.max_value) == pytest.approx(1.0)

    def test_min_max_estimates(self, numeric_table):
        hist = histogram.build_equi_width(numeric_table.column("x"), 16, "x")
        assert hist.estimate("min") == pytest.approx(0.0, abs=10.0)
        assert hist.estimate("max") == pytest.approx(100.0, abs=10.0)

    def test_byte_size_much_smaller_than_column(self, numeric_table):
        hist = histogram.build_equi_width(numeric_table.column("y"), 32, "y")
        assert hist.byte_size() < numeric_table.column("y").byte_size() / 10

    def test_empty_column(self):
        from repro.db.column import Column
        from repro.db.types import DataType

        hist = histogram.build_equi_width(Column.empty(DataType.FLOAT64), 8)
        assert hist.total_count == 0

    def test_unsupported_estimator(self, numeric_table):
        hist = histogram.build_equi_width(numeric_table.column("y"), 8)
        with pytest.raises(ApproximationError):
            hist.estimate("stddev")


class TestGzipBaseline:
    def test_compression_reduces_size(self, numeric_table):
        result = gzip_baseline.compress_table(numeric_table)
        assert 0 < result.compressed_bytes < result.raw_bytes
        assert result.ratio < 1.0
        assert set(result.per_column_bytes) == {"g", "x", "y"}

    def test_roundtrip_byte_count(self, numeric_table):
        assert gzip_baseline.decompress_column_count(numeric_table) == numeric_table.num_rows * 8

    def test_string_columns_supported(self):
        table = Table.from_dict("t", {"s": ["aaa", "bbb", None, "aaa"] * 100})
        result = gzip_baseline.compress_table(table)
        assert result.compressed_bytes > 0

    def test_summary_renders(self, numeric_table):
        assert "zlib" in gzip_baseline.compress_table(numeric_table).summary()


class TestSpartan:
    def test_predicts_linearly_dependent_column(self, numeric_table):
        result = spartan.compress_table(numeric_table, error_tolerance=0.10)
        assert "y" in result.predicted_columns
        assert result.stored_bytes < result.raw_bytes

    def test_reports_outliers(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 10, 1000)
        y = 2.0 * x
        y[:50] += 100.0
        table = Table.from_dict("t", {"x": x, "y": y})
        result = spartan.compress_table(table, error_tolerance=0.05)
        plan = next(p for p in result.plans if p.column == "y")
        if plan.predicted:
            assert plan.outlier_count >= 50

    def test_unpredictable_data_kept_verbatim(self):
        rng = np.random.default_rng(2)
        table = Table.from_dict("t", {"a": rng.normal(0, 1, 500), "b": rng.normal(0, 1, 500)})
        result = spartan.compress_table(table)
        assert result.predicted_columns == []
        assert result.stored_bytes == result.raw_bytes

    def test_negative_tolerance_rejected(self, numeric_table):
        from repro.errors import CompressionError

        with pytest.raises(CompressionError):
            spartan.compress_table(numeric_table, error_tolerance=-0.1)


class TestMauveDB:
    def test_gridded_view_lookup_close_to_truth(self, numeric_table):
        view = mauvedb.build_regression_view(numeric_table, "x", "y", grid_points=32, degree=1)
        assert view.lookup(50.0) == pytest.approx(3.0 + 0.5 * 50.0, rel=0.05)

    def test_grouped_view_has_group_entries(self, numeric_table):
        view = mauvedb.build_regression_view(numeric_table, "x", "y", group_column="g", grid_points=8, degree=1)
        assert len(view.gridded_values) == 20
        table = view.to_table()
        assert table.num_rows == 20 * 8

    def test_view_byte_size_accounts_grid(self, numeric_table):
        small = mauvedb.build_regression_view(numeric_table, "x", "y", grid_points=4).byte_size()
        large = mauvedb.build_regression_view(numeric_table, "x", "y", grid_points=64).byte_size()
        assert large > small

    def test_missing_group_lookup_raises(self, numeric_table):
        view = mauvedb.build_regression_view(numeric_table, "x", "y", group_column="g", grid_points=4)
        with pytest.raises(ApproximationError):
            view.lookup(10.0, group_key=999)


class TestFunctionDB:
    def test_point_lookup_close_to_truth(self, numeric_table):
        table = functiondb.build_function_table(numeric_table, "x", "y", num_segments=4, degree=1)
        assert table.point(40.0) == pytest.approx(3.0 + 0.5 * 40.0, rel=0.05)

    def test_grouped_function_table(self, numeric_table):
        table = functiondb.build_function_table(
            numeric_table, "x", "y", group_column="g", num_segments=2, degree=1
        )
        assert table.num_groups == 20
        assert table.byte_size() > 0

    def test_aggregate_over_grid(self, numeric_table):
        table = functiondb.build_function_table(numeric_table, "x", "y", num_segments=4, degree=1)
        xs = np.linspace(0, 100, 200)
        assert table.aggregate("avg", xs) == pytest.approx(3.0 + 0.5 * 50.0, rel=0.1)
        assert table.aggregate("max", xs) > table.aggregate("min", xs)

    def test_unknown_group_raises(self, numeric_table):
        table = functiondb.build_function_table(numeric_table, "x", "y", group_column="g", num_segments=2)
        with pytest.raises(ApproximationError):
            table.point(1.0, group_key=12345)

    def test_insufficient_data(self):
        tiny = Table.from_dict("t", {"x": [1.0, 2.0], "y": [1.0, 2.0]})
        with pytest.raises(InsufficientDataError):
            functiondb.build_function_table(tiny, "x", "y", num_segments=4, degree=2)
