"""Shared fixtures for the test suite.

The expensive fixtures (a LOFAR dataset with a captured grouped model, a
TPC-DS-lite database with captured linear models) are session-scoped so the
several dozen tests that exercise the approximate query engine, compression
and anomaly detection all reuse the same fitted models.
"""

from __future__ import annotations

import pytest

from repro import LawsDatabase
from repro.datasets import lofar, sensors, tpcds_lite
from repro.db import Database


@pytest.fixture(scope="session")
def lofar_dataset():
    """A small but realistic synthetic LOFAR dataset (120 sources)."""
    return lofar.generate(num_sources=120, observations_per_source=32, seed=11)


@pytest.fixture(scope="session")
def lofar_db(lofar_dataset):
    """A LawsDatabase with the LOFAR table loaded and the power law captured."""
    db = LawsDatabase()
    db.register_table(lofar_dataset.to_table("measurements"))
    report = db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
    assert report.accepted, "fixture model must pass the quality gate"
    return db


@pytest.fixture(scope="session")
def lofar_model(lofar_db):
    """The captured grouped power-law model of the LOFAR fixture."""
    return lofar_db.best_model("measurements", "intensity")


@pytest.fixture(scope="session")
def tpcds_dataset():
    """A small TPC-DS-lite star schema."""
    return tpcds_lite.generate(num_items=60, num_stores=6, num_days=90, sales_per_day_per_store=6, seed=5)


@pytest.fixture(scope="session")
def tpcds_db(tpcds_dataset):
    """A LawsDatabase with the TPC-DS-lite tables and a captured linear model."""
    db = LawsDatabase()
    tpcds_lite.load_into(db.database, tpcds_dataset)
    report = db.fit("store_sales", "sales_price ~ linear(list_price)")
    assert report.accepted
    return db


@pytest.fixture(scope="session")
def sensor_dataset():
    return sensors.generate(num_sensors=8, num_hours=24 * 5, seed=9)


@pytest.fixture()
def simple_db():
    """A plain relational database with two small joinable tables."""
    db = Database()
    db.load_dict(
        "orders",
        {
            "order_id": [1, 2, 3, 4, 5, 6],
            "customer": [10, 20, 10, 30, 20, 10],
            "amount": [5.0, 7.5, 2.5, 10.0, 1.0, 4.0],
            "region": ["eu", "us", "eu", "us", "eu", "eu"],
        },
    )
    db.load_dict(
        "customers",
        {"customer": [10, 20, 30], "name": ["alice", "bob", "carol"]},
    )
    return db
