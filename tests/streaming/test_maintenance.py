"""The maintenance loop end-to-end: watch -> ingest -> drift -> segment -> serve.

The headline test is the acceptance scenario from the streaming subsystem
issue: ingest a stream with a mid-stream regime change into a
:class:`LawsDatabase`; after ``maintain()`` the model store must hold an
active model per regime segment and an approximate aggregate over the full
range must land within its reported error bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LawsDatabase
from repro.errors import DriftMonitorError


def _regime(rng, t_start, t_stop, intercept, slope, noise=0.2, step=0.25):
    t = np.arange(t_start, t_stop, step)
    return t, intercept + slope * t + rng.normal(0, noise, len(t))


@pytest.fixture()
def streaming_db():
    """A LawsDatabase with regime-1 data loaded and a linear model captured."""
    rng = np.random.default_rng(7)
    t, v = _regime(rng, 0.0, 100.0, intercept=2.0, slope=0.5)
    db = LawsDatabase(ingest_batch_size=100)
    db.load_dict("readings", {"t": t, "value": v})
    report = db.fit("readings", "value ~ linear(t)")
    assert report.accepted
    return db, rng


class TestWatch:
    def test_watch_requires_captured_model(self):
        db = LawsDatabase()
        db.load_dict("readings", {"t": [0.0, 1.0], "value": [0.0, 1.0]})
        with pytest.raises(DriftMonitorError):
            db.watch("readings", "value")

    def test_watch_validates_order_column(self, streaming_db):
        db, _ = streaming_db
        with pytest.raises(DriftMonitorError, match="order column"):
            db.watch("readings", "value", order_column="bogus")

    def test_watch_rejects_non_numeric_order_column(self):
        db = LawsDatabase()
        db.load_dict("events", {"ts": ["a", "b", "c", "d", "e", "f"],
                                "t": [0.0, 1.0, 2.0, 3.0, 4.0, 5.0],
                                "value": [0.0, 1.1, 2.0, 3.1, 4.0, 5.1]})
        assert db.fit("events", "value ~ linear(t)").accepted
        with pytest.raises(DriftMonitorError, match="numeric"):
            db.watch("events", "value", order_column="ts")

    def test_watch_registers_target(self, streaming_db):
        db, _ = streaming_db
        target = db.watch("readings", "value", order_column="t")
        assert target.model_id == db.best_model("readings", "value").model_id
        assert db.maintenance.target_for("readings", "value") is target
        assert "watch readings.value" in target.describe()
        db.maintenance.unwatch("readings", "value")
        with pytest.raises(DriftMonitorError):
            db.maintenance.target_for("readings", "value")


class TestMaintainQuietPath:
    def test_no_action_without_batches(self, streaming_db):
        db, _ = streaming_db
        db.watch("readings", "value", order_column="t")
        report = db.maintain()
        assert [a.kind for a in report.actions] == ["none"]
        assert not report.did_anything

    def test_benign_appends_revalidated_back_to_active(self, streaming_db):
        db, rng = streaming_db
        db.watch("readings", "value", order_column="t")
        model = db.best_model("readings", "value")
        # Same law continues: drift monitor stays quiet, model goes stale.
        t, v = _regime(rng, 100.0, 150.0, intercept=2.0, slope=0.5)
        db.ingest("readings", list(zip(t, v)), flush=True)
        assert model.status == "stale"
        report = db.maintain()
        assert [a.kind for a in report.actions] == ["revalidated"]
        assert model.status == "active"
        assert db.models.candidates("readings", "value")

    def test_failing_target_does_not_abort_the_tick(self, streaming_db, monkeypatch):
        db, rng = streaming_db
        db.watch("readings", "value", order_column="t")
        # Second healthy target on another table.
        t = np.arange(0.0, 60.0, 0.5)
        db.load_dict("other", {"t": t, "value": 3.0 + 0.1 * t + rng.normal(0, 0.05, len(t))})
        assert db.fit("other", "value ~ linear(t)").accepted
        db.watch("other", "value", order_column="t")

        # Drift on "readings" whose refit raises: the tick must report the
        # error and still process the other target.
        t2, v2 = _regime(rng, 100.0, 200.0, intercept=30.0, slope=0.5)
        db.ingest("readings", list(zip(t2, v2)), flush=True)
        from repro.errors import HarvestError

        def boom(*args, **kwargs):
            raise HarvestError("synthetic refit failure")

        monkeypatch.setattr(db.harvester, "fit_and_capture", boom)
        model_count = len(db.captured_models("readings"))
        report = db.maintain()
        kinds = {(a.table_name, a.kind) for a in report.actions}
        # Harvest failures are contained inside the drift handling: the
        # action reports them and the other target is still processed.
        assert ("readings", "segmented") in kinds
        assert ("other", "none") in kinds
        action = report.actions_of_kind("segmented")[0]
        assert action.new_model_ids == ()
        assert "HarvestError" in action.details
        assert len(db.captured_models("readings")) == model_count
        # The failed attempt is deferred, not retried on the same data.
        report = db.maintain()
        assert [a.kind for a in report.actions_of_kind("none") if a.table_name == "readings"]

    def test_maintain_report_summary(self, streaming_db):
        db, _ = streaming_db
        db.watch("readings", "value", order_column="t")
        assert "readings.value" in db.maintain().summary()
        assert LawsDatabase().maintain().summary() == "(no watched targets)"


class TestMaintainDriftPath:
    def _stream_regime_change(self, db, rng, batch=50):
        """Level shift of +24 at t=100 (the trend itself continues)."""
        t, v = _regime(rng, 100.0, 200.0, intercept=26.0, slope=0.5)
        for start in range(0, len(t), batch):
            db.ingest("readings", list(zip(t[start : start + batch], v[start : start + batch])))
        db.flush_ingest()
        return t, v

    def test_acceptance_scenario_segment_and_serve(self, streaming_db):
        db, rng = streaming_db
        target = db.watch("readings", "value", order_column="t")
        old_model = db.models.get(target.model_id)

        self._stream_regime_change(db, rng)
        assert target.last_verdict is not None and target.last_verdict.drifted

        report = db.maintain()
        actions = report.actions_of_kind("segmented")
        assert len(actions) == 1
        action = actions[0]

        # The change point is localised at the regime boundary (row 400 = t 100).
        assert len(action.changepoint_indices) == 1
        assert abs(action.changepoint_indices[0] - 400) <= 16

        # The old whole-table model was superseded, not left benched-stale.
        assert old_model.status == "superseded"
        assert old_model.metadata["superseded_by"] in action.new_model_ids

        # One active (non-stale) model per regime segment.
        segment_models = [
            m
            for m in db.models.candidates("readings", "value", require_whole_table=False)
            if not m.coverage.covers_whole_table
        ]
        assert len(segment_models) == 2
        assert all(m.status == "active" and m.accepted for m in segment_models)
        predicates = sorted(m.coverage.predicate_sql for m in segment_models)
        assert any("<" in p for p in predicates) and any(">=" in p for p in predicates)

        # Full-range approximate aggregate lands within its reported error bound.
        answer = db.approximate_sql("SELECT avg(value) AS m FROM readings")
        assert not answer.is_exact
        exact = db.sql("SELECT avg(value) AS m FROM readings").table.row(0)[0]
        estimate = answer.error_estimate("m")
        assert estimate is not None and estimate.standard_error > 0
        assert abs(answer.scalar() - exact) <= 2.0 * estimate.standard_error

        # The detector now monitors the freshest regime's model and is calm.
        monitored = db.models.get(target.model_id)
        assert monitored.coverage.predicate_sql is not None  # tail segment model
        t3, v3 = _regime(rng, 200.0, 220.0, intercept=26.0, slope=0.5)
        db.ingest("readings", list(zip(t3, v3)), flush=True)
        assert not target.last_verdict.drifted

    def test_drift_without_order_column_refits_whole_table(self, streaming_db):
        db, rng = streaming_db
        target = db.watch("readings", "value")  # no order column
        old_id = target.model_id
        self._stream_regime_change(db, rng)
        report = db.maintain()
        actions = report.actions_of_kind("refit")
        assert len(actions) == 1
        assert actions[0].old_model_ids == (old_id,)
        assert db.models.get(old_id).status == "superseded"
        new_model = db.models.get(target.model_id)
        assert new_model.model_id != old_id
        assert new_model.coverage.covers_whole_table

    def test_segment_models_survive_benign_ticks_after_segmentation(self, streaming_db):
        """Partial models must be revalidated on their own coverage subset.

        With a shift large enough that no segment model passes a
        *whole-table* quality check, a benign append plus a quiet
        maintenance tick must not destroy the per-segment models.
        """
        db, rng = streaming_db
        db.watch("readings", "value", order_column="t")
        # +200 level shift: each regime is perfectly linear, their union is not.
        t2 = np.arange(100.0, 200.0, 0.25)
        v2 = 202.0 + 0.5 * t2 + rng.normal(0, 0.2, len(t2))
        db.ingest("readings", list(zip(t2, v2)), flush=True)
        db.maintain()
        segment_ids = [
            m.model_id
            for m in db.models.candidates("readings", "value", require_whole_table=False)
            if not m.coverage.covers_whole_table
        ]
        assert len(segment_ids) == 2

        # One benign batch of the current regime, then a quiet tick.
        t3 = np.arange(200.0, 210.0, 0.25)
        v3 = 202.0 + 0.5 * t3 + rng.normal(0, 0.2, len(t3))
        db.ingest("readings", list(zip(t3, v3)), flush=True)
        db.maintain()
        for model_id in segment_ids:
            model = db.models.get(model_id)
            assert model.status == "active", f"segment model#{model_id} was benched"

    def test_second_regime_change_does_not_resegment_history(self, streaming_db):
        """Drift on a segment model is analysed within its own coverage.

        A second regime change must produce sub-segments of the monitored
        tail segment, not re-detect the first boundary and duplicate the
        historical segment models.
        """
        db, rng = streaming_db
        target = db.watch("readings", "value", order_column="t")
        self._stream_regime_change(db, rng)  # shift at t=100
        db.maintain()
        predicates_before = {
            m.coverage.predicate_sql
            for m in db.captured_models("readings")
            if m.coverage.predicate_sql is not None
        }

        # Second regime change at t=200.
        t3, v3 = _regime(rng, 200.0, 300.0, intercept=50.0, slope=0.5)
        db.ingest("readings", list(zip(t3, v3)), flush=True)
        assert target.last_verdict.drifted
        report = db.maintain()
        action = report.actions_of_kind("segmented")[0]
        # Exactly the new boundary, found within the tail segment's rows.
        assert len(action.changepoint_indices) == 1

        new_predicates = {
            m.coverage.predicate_sql
            for m in db.captured_models("readings")
            if m.coverage.predicate_sql is not None
        } - predicates_before
        # Every new segment is scoped inside the old tail coverage (t >= 100),
        # and the historical "t < 100" segment was not re-harvested.
        assert new_predicates
        assert all(p.startswith("(t >= 100.0) AND (") for p in new_predicates)
        # One active model per current regime piece, queries still answered.
        active_partials = [
            m
            for m in db.models.candidates("readings", "value", require_whole_table=False)
            if not m.coverage.covers_whole_table
        ]
        assert len(active_partials) >= 3
        assert not db.approximate_sql("SELECT avg(value) AS m FROM readings").is_exact

    def test_late_rows_of_old_regime_do_not_alarm_segment_model(self, streaming_db):
        """Batch scoring respects the monitored model's coverage predicate."""
        db, rng = streaming_db
        target = db.watch("readings", "value", order_column="t")
        self._stream_regime_change(db, rng)
        db.maintain()
        monitored = db.models.get(target.model_id)
        assert monitored.coverage.predicate_sql is not None  # tail segment

        # Late-arriving regime-1 backfill (t < 100, old law): outside the
        # monitored segment's coverage, so it must not trip the detector.
        t_late = np.arange(0.05, 100.0, 0.5)
        v_late = 2.0 + 0.5 * t_late + rng.normal(0, 0.2, len(t_late))
        db.ingest("readings", list(zip(t_late, v_late)), flush=True)
        assert target.last_verdict is None or not target.last_verdict.drifted

    def test_queries_stay_accurate_through_regime_change(self, streaming_db):
        """The whole point: with maintenance, post-drift answers stay tight."""
        db, rng = streaming_db
        db.watch("readings", "value", order_column="t")
        self._stream_regime_change(db, rng)

        # Before maintenance the stale pre-change model serves and is badly off.
        stale_error = abs(
            db.approximate_sql("SELECT avg(value) AS m FROM readings").scalar()
            - db.sql("SELECT avg(value) AS m FROM readings").table.row(0)[0]
        )
        db.maintain()
        fresh_error = abs(
            db.approximate_sql("SELECT avg(value) AS m FROM readings").scalar()
            - db.sql("SELECT avg(value) AS m FROM readings").table.row(0)[0]
        )
        assert fresh_error < stale_error / 10


class TestRejectedRefitSafety:
    """A rejected refit must never bench the old (still servable) model."""

    def _v_shape_db(self, order_column):
        # Trend up then sharply down: no single linear fit passes the gate.
        rng = np.random.default_rng(21)
        t1, v1 = _regime(rng, 0.0, 100.0, intercept=0.0, slope=1.0, noise=0.2)
        db = LawsDatabase(ingest_batch_size=100)
        db.load_dict("readings", {"t": t1, "value": v1})
        assert db.fit("readings", "value ~ linear(t)").accepted
        db.watch("readings", "value", order_column=order_column)
        t2 = np.arange(100.0, 200.0, 0.25)
        v2 = 200.0 - 1.0 * t2 + rng.normal(0, 0.2, len(t2))
        db.ingest("readings", list(zip(t2, v2)), flush=True)
        return db

    def test_rejected_whole_refit_keeps_old_model_serving(self):
        db = self._v_shape_db(order_column="t")
        target = db.maintenance.target_for("readings", "value")
        old_model = db.models.get(target.model_id)
        old_reference = target.detector.reference_rse

        report = db.maintain()
        action = report.actions[0]
        assert action.kind in ("segmented", "refit")

        # The old model was not superseded by a rejected whole-table refit:
        # it stays stale and keeps serving full-range queries.
        assert old_model.status == "stale"
        whole_models = [
            m
            for m in db.captured_models("readings")
            if m.coverage.covers_whole_table and m.model_id != old_model.model_id
        ]
        assert whole_models and not any(m.accepted for m in whole_models)
        answer = db.approximate_sql("SELECT avg(value) AS m FROM readings")
        assert not answer.is_exact
        assert answer.used_model_ids == [old_model.model_id]

        if action.kind == "segmented":
            # Monitoring moved to an accepted current-regime segment model.
            monitored = db.models.get(target.model_id)
            assert monitored.accepted and not monitored.coverage.covers_whole_table
        else:
            # No acceptable successor at all: keep watching the old model
            # with its original drift reference.
            assert target.model_id == old_model.model_id
            assert target.detector.reference_rse == old_reference

    def test_rejected_refit_without_order_column_keeps_watching_old(self):
        db = self._v_shape_db(order_column=None)
        target = db.maintenance.target_for("readings", "value")
        old_id = target.model_id
        old_reference = target.detector.reference_rse

        report = db.maintain()
        assert [a.kind for a in report.actions] == ["refit"]
        old_model = db.models.get(old_id)
        assert old_model.status == "stale"  # not superseded
        # Watcher still points at the serving model, reference untouched,
        # detector cleared so the alarm re-accumulates before retrying.
        assert target.model_id == old_id
        assert target.detector.reference_rse == old_reference
        assert target.last_verdict is None

    def test_rejected_refit_is_not_retried_until_new_data(self):
        db = self._v_shape_db(order_column=None)
        db.maintain()  # drift -> whole refit rejected -> deferred
        model_count = len(db.captured_models("readings"))
        for _ in range(3):
            report = db.maintain()
            assert [a.kind for a in report.actions] == ["none"]
            assert "deferred" in report.actions[0].details
        assert len(db.captured_models("readings")) == model_count
        # New data lifts the deferral and maintenance may try again.
        rng = np.random.default_rng(5)
        t, v = _regime(rng, 200.0, 230.0, intercept=0.0, slope=-1.0)
        db.ingest("readings", list(zip(t, 200.0 + v)), flush=True)
        report = db.maintain()
        assert report.actions[0].kind != "error"


class TestNaNOrderValues:
    def test_null_order_rows_do_not_poison_segmentation(self, streaming_db):
        """Rows with a NULL arrival order are excluded from the timeline, so
        no 'col >= nan' predicate can ever be rendered."""
        db, rng = streaming_db
        db.watch("readings", "value", order_column="t")
        t2, v2 = _regime(rng, 100.0, 200.0, intercept=26.0, slope=0.5)
        db.ingest("readings", list(zip(t2, v2)), flush=True)
        # A few readings arrive with no timestamp at all.
        db.ingest("readings", {"value": [27.0, 28.0, 29.0]}, flush=True)
        report = db.maintain()
        assert report.actions_of_kind("segmented")
        for model in db.captured_models("readings"):
            predicate = model.coverage.predicate_sql or ""
            assert "nan" not in predicate


class TestRevalidationGuard:
    def test_capture_rejection_stands_without_new_data(self):
        """revalidate()'s pooled score must not overturn the harvest policy's
        rejection of a model fitted on this very data (e.g. a refit the
        maintenance loop just rejected)."""
        rng = np.random.default_rng(31)
        x = rng.uniform(0, 10, 60)
        data = {
            "g": [1] * 60 + [2] + [3],
            "x": list(x) + [1.0, 2.0],
            "y": list(1.0 + 2.0 * x + rng.normal(0, 0.05, 60)) + [5.0, 7.0],
        }
        db = LawsDatabase()
        db.load_dict("t", data)
        # Groups 2 and 3 have one observation each: unfittable, so the
        # grouped model fails the pass-fraction gate despite a pooled R²~1.
        report = db.fit("t", "y ~ linear(x)", group_by="g")
        assert not report.accepted

        results = db.lifecycle.revalidate("t", "y")
        assert results and results[0].still_acceptable  # the weak pooled score passes
        assert not report.model.accepted  # ...but the harvest verdict stands
        assert not db.models.candidates("t", "y")


class TestGroupedModelMaintenance:
    def test_grouped_model_drift_and_refit(self):
        rng = np.random.default_rng(11)
        hours = np.arange(0.0, 120.0)
        data = {"sensor": [], "hour": [], "temperature": []}
        for sensor in (1, 2, 3):
            data["sensor"].extend([sensor] * len(hours))
            data["hour"].extend(hours)
            data["temperature"].extend(10.0 + sensor + 0.05 * hours + rng.normal(0, 0.1, len(hours)))

        db = LawsDatabase(ingest_batch_size=60)
        db.load_dict("sensors", data)
        report = db.fit("sensors", "temperature ~ linear(hour)", group_by="sensor")
        assert report.accepted
        target = db.watch("sensors", "temperature", order_column="hour")

        # All sensors jump by +15 degrees (e.g. heating failure regime).
        rows = []
        for hour in np.arange(120.0, 240.0):
            for sensor in (1, 2, 3):
                rows.append((sensor, hour, 25.0 + sensor + 0.05 * hour + rng.normal(0, 0.1)))
        db.ingest("sensors", rows, flush=True)
        assert target.last_verdict.drifted

        report = db.maintain()
        assert report.did_anything
        kinds = {action.kind for action in report.actions}
        assert kinds & {"segmented", "refit"}
        # The freshly monitored model explains the new regime.
        monitored = db.models.get(target.model_id)
        assert monitored.accepted
        t_new, v_new = [], []
        for hour in np.arange(240.0, 260.0):
            for sensor in (1, 2, 3):
                t_new.append((sensor, hour, 25.0 + sensor + 0.05 * hour + rng.normal(0, 0.1)))
        db.ingest("sensors", t_new, flush=True)
        assert not target.last_verdict.drifted
