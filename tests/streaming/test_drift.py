"""Drift detectors: true positives on regime change, quiet on clean noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming import PageHinkleyDetector, ResidualDriftDetector, RollingStats, SlidingWindow


class TestSlidingWindow:
    def test_arrival_order_and_eviction(self):
        window = SlidingWindow(4)
        window.extend([1.0, 2.0])
        assert list(window.values()) == [1.0, 2.0]
        window.extend([3.0, 4.0, 5.0])
        assert list(window.values()) == [2.0, 3.0, 4.0, 5.0]
        assert window.is_full

    def test_oversized_batch_keeps_tail(self):
        window = SlidingWindow(3)
        window.extend(np.arange(10.0))
        assert list(window.values()) == [7.0, 8.0, 9.0]

    def test_ignores_nonfinite(self):
        window = SlidingWindow(4)
        window.extend([1.0, np.nan, np.inf, 2.0])
        assert list(window.values()) == [1.0, 2.0]

    def test_rms(self):
        window = SlidingWindow(4)
        window.extend([3.0, -4.0])
        assert window.rms() == pytest.approx(np.sqrt(12.5))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestRollingStats:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.normal(3.0, 2.0, 500)
        stats = RollingStats()
        stats.observe(values)
        assert stats.mean == pytest.approx(float(np.mean(values)))
        assert stats.variance == pytest.approx(float(np.var(values, ddof=1)))
        stats.reset()
        assert stats.count == 0


class TestResidualDriftDetector:
    def _clean_batches(self, rng, n_batches=10, batch=64, scale=1.0):
        return [rng.normal(0.0, scale, batch) for _ in range(n_batches)]

    def test_no_false_positive_on_in_distribution_noise(self):
        rng = np.random.default_rng(1)
        detector = ResidualDriftDetector(reference_rse=1.0, multiplier=2.5, patience=2)
        verdicts = [detector.observe(batch) for batch in self._clean_batches(rng)]
        assert not any(v.drifted for v in verdicts)

    def test_true_positive_on_shifted_residuals(self):
        rng = np.random.default_rng(2)
        detector = ResidualDriftDetector(
            reference_rse=1.0, multiplier=2.5, window=128, min_observations=16, patience=2
        )
        for batch in self._clean_batches(rng, n_batches=3):
            detector.observe(batch)
        # Regime change: residuals now centred at 10 sigma.
        verdict = detector.observe(rng.normal(10.0, 1.0, 128))
        assert not verdict.drifted  # patience: first hot batch is not enough
        verdict = detector.observe(rng.normal(10.0, 1.0, 128))
        assert verdict.drifted
        assert verdict.statistic > verdict.threshold

    def test_warmup_period_never_fires(self):
        detector = ResidualDriftDetector(reference_rse=0.1, min_observations=32, patience=1)
        verdict = detector.observe(np.full(8, 100.0))
        assert not verdict.drifted
        assert "warming up" in verdict.reason

    def test_streak_resets_on_quiet_batch(self):
        rng = np.random.default_rng(3)
        detector = ResidualDriftDetector(
            reference_rse=1.0, multiplier=2.0, window=64, min_observations=8, patience=2
        )
        detector.observe(rng.normal(0, 1.0, 64))
        detector.observe(rng.normal(8.0, 1.0, 64))  # hot (streak 1)
        detector.observe(rng.normal(0.0, 0.5, 64))  # window flushed by quiet batch
        verdict = detector.observe(rng.normal(8.0, 1.0, 64))  # hot again (streak 1)
        assert not verdict.drifted

    def test_no_evidence_batch_does_not_advance_streak(self):
        rng = np.random.default_rng(7)
        detector = ResidualDriftDetector(
            reference_rse=1.0, multiplier=2.0, window=64, min_observations=8, patience=2
        )
        detector.observe(rng.normal(8.0, 1.0, 64))  # hot (streak 1)
        # A batch of only NaN residuals (e.g. rows of unseen groups) adds no
        # evidence and must not push the streak to the patience limit.
        verdict = detector.observe(np.full(32, np.nan))
        assert not verdict.drifted
        assert "no finite residuals" in verdict.reason
        # Real hot evidence afterwards does complete the patience streak.
        assert detector.observe(rng.normal(8.0, 1.0, 64)).drifted

    def test_rebase_clears_state(self):
        rng = np.random.default_rng(4)
        detector = ResidualDriftDetector(reference_rse=1.0, min_observations=8, patience=1)
        detector.observe(rng.normal(10.0, 1.0, 64))
        detector.observe(rng.normal(10.0, 1.0, 64))
        assert detector.last_verdict.drifted
        detector.rebase(5.0)
        assert detector.last_verdict is None
        assert detector.reference_rse == 5.0

    def test_invalid_reference_rejected(self):
        with pytest.raises(ValueError):
            ResidualDriftDetector(reference_rse=0.0)
        with pytest.raises(ValueError):
            ResidualDriftDetector(reference_rse=float("nan"))


class TestPageHinkley:
    def test_quiet_on_stationary_stream(self):
        rng = np.random.default_rng(5)
        detector = PageHinkleyDetector(delta=0.05, threshold=50.0)
        verdicts = [detector.observe(rng.normal(0, 1.0, 64)) for _ in range(10)]
        assert not any(v.drifted for v in verdicts)

    def test_fires_on_sustained_shift(self):
        rng = np.random.default_rng(6)
        detector = PageHinkleyDetector(delta=0.05, threshold=50.0)
        for _ in range(5):
            detector.observe(rng.normal(0, 1.0, 64))
        drifted = False
        for _ in range(10):
            drifted = detector.observe(rng.normal(6.0, 1.0, 64)).drifted
            if drifted:
                break
        assert drifted

    def test_reset(self):
        detector = PageHinkleyDetector(threshold=1.0)
        detector.observe(np.full(100, 50.0))
        detector.reset()
        assert detector.last_verdict is None
        assert not detector.observe(np.zeros(4)).drifted
