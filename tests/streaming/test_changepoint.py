"""Multiscale change-point detection: localisation, false positives, scales."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming import estimate_noise_sigma, find_changepoints


def _step_series(rng, lengths, levels, noise=1.0):
    parts = [rng.normal(level, noise, length) for length, level in zip(lengths, levels)]
    return np.concatenate(parts)


class TestNoiseEstimate:
    def test_recovers_sigma_despite_jumps(self):
        rng = np.random.default_rng(0)
        series = _step_series(rng, [300, 300], [0.0, 50.0], noise=2.0)
        sigma = estimate_noise_sigma(series)
        # The single 50-unit jump must not inflate the estimate.
        assert sigma == pytest.approx(2.0, rel=0.15)

    def test_degenerate_series(self):
        assert np.isnan(estimate_noise_sigma(np.array([1.0])))
        assert estimate_noise_sigma(np.zeros(100)) > 0  # falls back, stays positive


class TestFindChangepoints:
    def test_single_changepoint_localised(self):
        rng = np.random.default_rng(1)
        series = _step_series(rng, [200, 200], [0.0, 5.0])
        result = find_changepoints(series, min_segment=16)
        assert len(result.changepoints) == 1
        assert abs(result.changepoints[0].index - 200) <= 5
        assert result.segments() == [(0, result.indices[0]), (result.indices[0], 400)]

    def test_no_false_positive_on_pure_noise(self):
        rng = np.random.default_rng(2)
        for seed in range(5):
            series = np.random.default_rng(seed).normal(0.0, 1.0, 500)
            result = find_changepoints(series, min_segment=16)
            assert result.changepoints == []
        assert "no change points" in result.describe()

    def test_two_changepoints(self):
        rng = np.random.default_rng(3)
        series = _step_series(rng, [150, 150, 150], [0.0, 6.0, -6.0])
        result = find_changepoints(series, min_segment=16)
        assert len(result.changepoints) == 2
        assert abs(result.indices[0] - 150) <= 5
        assert abs(result.indices[1] - 300) <= 5
        means = result.segment_means(series)
        assert means == pytest.approx([0.0, 6.0, -6.0], abs=0.5)

    def test_min_segment_respected(self):
        rng = np.random.default_rng(4)
        series = _step_series(rng, [30, 500], [0.0, 4.0])
        result = find_changepoints(series, min_segment=50)
        # The true change at 30 is inside the forbidden margin; whatever is
        # reported must respect the minimum segment length.
        for start, stop in result.segments():
            assert stop - start >= 50

    def test_max_changepoints_keeps_strongest(self):
        rng = np.random.default_rng(5)
        series = _step_series(rng, [100] * 5, [0.0, 8.0, 0.0, 8.0, 0.0])
        result = find_changepoints(series, min_segment=16, max_changepoints=2)
        assert len(result.changepoints) == 2
        assert result.indices == sorted(result.indices)

    def test_short_series_returns_empty(self):
        result = find_changepoints(np.arange(10.0), min_segment=16)
        assert result.changepoints == []

    def test_nonfinite_values_are_carried_forward(self):
        rng = np.random.default_rng(6)
        series = _step_series(rng, [200, 200], [0.0, 5.0])
        series[50] = np.nan
        series[250] = np.inf
        result = find_changepoints(series, min_segment=16)
        assert len(result.changepoints) == 1
        assert abs(result.changepoints[0].index - 200) <= 5

    def test_multiscale_penalty_demands_more_from_short_intervals(self):
        # A small bump that would clear the base significance alone must be
        # rejected once the sqrt(2 log(n/m)) term for its short scale applies.
        rng = np.random.default_rng(7)
        n = 2048
        series = rng.normal(0.0, 1.0, n)
        series[1000:1032] += 1.2  # weak, short anomaly, not a regime change
        result = find_changepoints(series, min_segment=16, significance=2.5)
        assert result.changepoints == []

    def test_known_sigma_override(self):
        rng = np.random.default_rng(8)
        series = _step_series(rng, [200, 200], [0.0, 1.0], noise=0.2)
        loose = find_changepoints(series, sigma=5.0)  # noise overstated -> blind
        tight = find_changepoints(series, sigma=0.2)
        assert loose.changepoints == []
        assert len(tight.changepoints) == 1
