"""The batched append path: buffering, flushing, stats and listeners."""

from __future__ import annotations

import pytest

from repro import LawsDatabase
from repro.db import Database
from repro.errors import CatalogError, StreamingError
from repro.streaming import StreamIngestor


@pytest.fixture()
def db():
    database = Database()
    database.load_dict("events", {"t": [0.0], "value": [1.0]})
    return database


class TestStreamIngestor:
    def test_buffers_below_batch_size(self, db):
        ingestor = StreamIngestor(db, batch_size=10)
        flushed = ingestor.submit("events", [(1.0, 2.0), (2.0, 3.0)])
        assert flushed == []
        assert ingestor.pending("events") == 2
        assert db.table("events").num_rows == 1  # nothing appended yet

    def test_auto_flush_at_batch_size(self, db):
        ingestor = StreamIngestor(db, batch_size=3)
        flushed = ingestor.submit("events", [(float(i), float(i)) for i in range(7)])
        assert [batch.num_rows for batch in flushed] == [3, 3]
        assert ingestor.pending("events") == 1
        assert db.table("events").num_rows == 1 + 6

    def test_batch_row_ranges_are_contiguous(self, db):
        ingestor = StreamIngestor(db, batch_size=2)
        flushed = ingestor.submit("events", [(float(i), float(i)) for i in range(4)])
        assert (flushed[0].start_row, flushed[0].end_row) == (1, 3)
        assert (flushed[1].start_row, flushed[1].end_row) == (3, 5)

    def test_explicit_flush_drains_remainder(self, db):
        ingestor = StreamIngestor(db, batch_size=100)
        ingestor.submit("events", [(1.0, 1.0)])
        flushed = ingestor.flush("events")
        assert len(flushed) == 1 and flushed[0].num_rows == 1
        assert ingestor.pending("events") == 0
        assert ingestor.flush("events") == []  # idempotent when empty

    def test_flush_all_tables(self, db):
        db.load_dict("other", {"x": [1.0]})
        ingestor = StreamIngestor(db, batch_size=100)
        ingestor.submit("events", [(1.0, 1.0)])
        ingestor.submit("other", [(2.0,)])
        flushed = ingestor.flush()
        assert {batch.table_name for batch in flushed} == {"events", "other"}

    def test_flush_all_isolates_per_table_failures(self, db):
        from repro.errors import TypeMismatchError

        db.load_dict("other", {"x": [1.0]})
        ingestor = StreamIngestor(db, batch_size=100)
        ingestor.submit("events", [(1.0, "not-a-float")])
        ingestor.submit("other", [(2.0,)])
        with pytest.raises(TypeMismatchError):
            ingestor.flush()
        # The healthy table was still flushed; the broken buffer is retained.
        assert db.table("other").num_rows == 2
        assert ingestor.pending("other") == 0
        assert ingestor.pending("events") == 1

    def test_columnar_submission(self, db):
        ingestor = StreamIngestor(db, batch_size=2)
        flushed = ingestor.submit("events", {"t": [1.0, 2.0], "value": [5.0, 6.0]})
        assert flushed[0].rows == ((1.0, 5.0), (2.0, 6.0))

    def test_columnar_missing_column_becomes_null(self, db):
        ingestor = StreamIngestor(db, batch_size=1)
        flushed = ingestor.submit("events", {"t": [9.0]})
        assert flushed[0].rows == ((9.0, None),)

    def test_columnar_unknown_column_rejected(self, db):
        ingestor = StreamIngestor(db, batch_size=10)
        with pytest.raises(StreamingError, match="unknown columns"):
            ingestor.submit("events", {"bogus": [1.0]})

    def test_columnar_ragged_lengths_rejected(self, db):
        ingestor = StreamIngestor(db, batch_size=10)
        with pytest.raises(StreamingError, match="ragged"):
            ingestor.submit("events", {"t": [1.0, 2.0], "value": [1.0]})

    def test_columnar_present_but_empty_column_rejected(self, db):
        ingestor = StreamIngestor(db, batch_size=10)
        # An explicitly provided empty column is a length mismatch, not a
        # null-fill request (that is what *omitting* the column means).
        with pytest.raises(StreamingError, match="ragged"):
            ingestor.submit("events", {"t": [1.0, 2.0], "value": []})

    def test_unknown_table_rejected_before_buffering(self, db):
        ingestor = StreamIngestor(db, batch_size=10)
        with pytest.raises(CatalogError):
            ingestor.submit("missing", [(1.0, 2.0)])

    def test_stats_accounting(self, db):
        ingestor = StreamIngestor(db, batch_size=5)
        ingestor.submit("events", [(float(i), float(i)) for i in range(12)])
        stats = ingestor.stats("events")
        assert stats.rows_ingested == 10
        assert stats.batches_flushed == 2
        assert stats.pending_rows == 2
        assert stats.last_batch_rows == 5
        assert stats.rows_per_second > 0
        assert "events" in ingestor.describe()

    def test_listener_sees_every_flush(self, db):
        ingestor = StreamIngestor(db, batch_size=2)
        seen = []
        ingestor.add_listener(seen.append)
        ingestor.submit("events", [(float(i), float(i)) for i in range(5)])
        ingestor.flush("events")
        assert [batch.num_rows for batch in seen] == [2, 2, 1]
        ingestor.remove_listener(seen.append)
        ingestor.submit("events", [(9.0, 9.0), (9.5, 9.5)])
        assert len(seen) == 3

    def test_invalid_batch_size_rejected(self, db):
        with pytest.raises(StreamingError):
            StreamIngestor(db, batch_size=0)

    def test_bad_arity_row_rejected_at_submit(self, db):
        ingestor = StreamIngestor(db, batch_size=100)
        with pytest.raises(StreamingError, match="2 columns"):
            ingestor.submit("events", [(1.0, 1.0), (2.0, 2.0, "extra")])
        # Rejected up front: nothing was buffered, the stream is not poisoned.
        assert ingestor.pending("events") == 0

    def test_failed_flush_keeps_buffer_for_retry_and_discard_drains(self, db):
        from repro.errors import TypeMismatchError

        ingestor = StreamIngestor(db, batch_size=100)
        ingestor.submit("events", [(1.0, 1.0), (2.0, "not-a-float")])
        with pytest.raises(TypeMismatchError):
            ingestor.flush("events")
        # Nothing committed, nothing lost: the buffer is intact for retry.
        assert db.table("events").num_rows == 1
        assert ingestor.pending("events") == 2
        # The public escape hatch for an unappendable buffer.
        assert ingestor.discard("events") == 2
        assert ingestor.pending("events") == 0
        assert ingestor.flush("events") == []

    def test_failed_append_mid_submit_does_not_duplicate_committed_rows(self, db):
        from repro.errors import TypeMismatchError

        ingestor = StreamIngestor(db, batch_size=2)
        rows = [(1.0, 1.0), (2.0, 2.0), (3.0, "bad"), (4.0, 4.0)]
        with pytest.raises(TypeMismatchError):
            ingestor.submit("events", rows)
        # Batch 1 was committed; the buffer holds only the uncommitted tail.
        assert db.table("events").num_rows == 1 + 2
        assert ingestor.pending("events") == 2
        with pytest.raises(TypeMismatchError):
            ingestor.flush("events")
        assert db.table("events").num_rows == 1 + 2  # still no duplicates

    def test_reentrant_listener_submit_does_not_duplicate_rows(self, db):
        ingestor = StreamIngestor(db, batch_size=2)
        fed = []

        def reactive_listener(batch):
            # A consumer that reacts to the first flush by producing one more
            # row for the same table.
            if not fed:
                fed.append(True)
                ingestor.submit("events", [(9.0, 9.0)])

        ingestor.add_listener(reactive_listener)
        ingestor.submit("events", [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
        ingestor.flush("events")
        values = db.table("events").column("t").to_pylist()
        # Every submitted row appears exactly once (no reentrant re-append).
        assert sorted(values) == [0.0, 1.0, 2.0, 3.0, 9.0]

    def test_raising_listener_does_not_requeue_committed_rows(self, db):
        ingestor = StreamIngestor(db, batch_size=2)

        def bad_listener(batch):
            raise RuntimeError("listener exploded")

        ingestor.add_listener(bad_listener)
        with pytest.raises(RuntimeError):
            ingestor.submit("events", [(1.0, 1.0), (2.0, 2.0)])
        # The batch was committed before the listener ran; it must not be
        # re-appended by later flushes.
        assert db.table("events").num_rows == 1 + 2
        assert ingestor.pending("events") == 0
        ingestor.remove_listener(bad_listener)
        assert ingestor.flush("events") == []
        assert db.table("events").num_rows == 1 + 2


class TestLawsDatabaseIngest:
    def test_ingest_marks_models_stale_but_keeps_serving(self):
        import numpy as np

        rng = np.random.default_rng(3)
        t = np.arange(0.0, 50.0, 0.1)
        db = LawsDatabase(ingest_batch_size=50)
        db.load_dict("readings", {"t": t, "value": 1.0 + 2.0 * t + rng.normal(0, 0.1, len(t))})
        report = db.fit("readings", "value ~ linear(t)")
        assert report.accepted

        db.ingest("readings", [(50.0 + i * 0.1, 1.0 + 2.0 * (50.0 + i * 0.1)) for i in range(50)])
        model = report.model
        assert model.status == "stale"
        # Deprioritized, not hidden: the engine still answers from the model,
        # and the answer discloses that it was served stale.
        answer = db.approximate_sql("SELECT avg(value) AS m FROM readings")
        assert not answer.is_exact
        assert answer.used_model_ids == [model.model_id]
        assert "stale model" in answer.reason

    def test_model_backed_features_survive_ingest_window(self):
        """compare_scan/compress/best_model work from a stale model between
        an ingest batch and the next maintain() tick."""
        import numpy as np

        rng = np.random.default_rng(4)
        t = np.arange(0.0, 50.0, 0.1)
        db = LawsDatabase(ingest_batch_size=50)
        db.load_dict("readings", {"t": t, "value": 1.0 + 2.0 * t + rng.normal(0, 0.1, len(t))})
        report = db.fit("readings", "value ~ linear(t)")
        db.ingest("readings", [(50.0 + i * 0.1, 101.0 + 0.2 * i) for i in range(50)])
        assert report.model.status == "stale"
        assert db.best_model("readings", "value").model_id == report.model.model_id
        assert db.compare_scan("readings", "value").model_pages_read == 0
        assert db.compress_table("readings").stats is not None

    def test_ingest_flush_and_stats_via_facade(self):
        db = LawsDatabase(ingest_batch_size=1000)
        db.load_dict("readings", {"t": [0.0], "value": [0.0]})
        assert db.ingest("readings", [(1.0, 1.0)]) == []
        flushed = db.flush_ingest("readings")
        assert flushed[0].num_rows == 1
        assert db.ingest_stats("readings").rows_ingested == 1

    def test_ingest_flush_kwarg(self):
        db = LawsDatabase(ingest_batch_size=1000)
        db.load_dict("readings", {"t": [0.0], "value": [0.0]})
        batches = db.ingest("readings", [(1.0, 1.0), (2.0, 2.0)], flush=True)
        assert sum(batch.num_rows for batch in batches) == 2
        assert db.table("readings").num_rows == 3
