"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import lofar, sensors, timeseries, tpcds_lite


class TestLofarGenerator:
    def test_schema_matches_paper(self, lofar_dataset):
        table = lofar_dataset.to_table()
        assert table.schema.names == ["source", "frequency", "intensity"]

    def test_row_count(self, lofar_dataset):
        expected = lofar_dataset.config.num_sources * lofar_dataset.config.observations_per_source
        assert lofar_dataset.num_rows == expected

    def test_frequencies_enumerable_four_bands(self, lofar_dataset):
        distinct = set(np.round(lofar_dataset.frequencies, 6))
        assert distinct == {0.12, 0.15, 0.16, 0.18}

    def test_reproducible_with_seed(self):
        a = lofar.generate(num_sources=10, observations_per_source=5, seed=3)
        b = lofar.generate(num_sources=10, observations_per_source=5, seed=3)
        assert np.array_equal(a.intensities, b.intensities, equal_nan=True)

    def test_different_seeds_differ(self):
        a = lofar.generate(num_sources=10, observations_per_source=5, seed=3)
        b = lofar.generate(num_sources=10, observations_per_source=5, seed=4)
        assert not np.array_equal(a.intensities, b.intensities, equal_nan=True)

    def test_truths_follow_power_law(self, lofar_dataset):
        # Spot-check a normal source: mean observed intensity per band tracks p*nu^alpha.
        normal = next(t for t in lofar_dataset.truths.values() if not t.is_anomalous)
        mask = lofar_dataset.source_ids == normal.source_id
        freqs = lofar_dataset.frequencies[mask]
        intensities = lofar_dataset.intensities[mask]
        finite = np.isfinite(intensities)
        for band in (0.12, 0.18):
            in_band = np.isclose(freqs, band) & finite
            if in_band.sum() >= 3:
                observed = float(np.mean(intensities[in_band]))
                assert observed == pytest.approx(normal.p * band**normal.alpha, rel=0.15)

    def test_anomaly_fraction_respected(self):
        dataset = lofar.generate(num_sources=200, observations_per_source=5, seed=1, anomaly_fraction=0.1)
        assert len(dataset.anomalous_sources()) == 20

    def test_missing_values_injected(self):
        dataset = lofar.generate(num_sources=50, observations_per_source=40, seed=2, missing_fraction=0.05)
        assert np.isnan(dataset.intensities).sum() > 0

    def test_paper_scale_config(self):
        config = lofar.paper_scale_config()
        assert config.num_sources == lofar.PAPER_NUM_SOURCES
        assert config.num_sources * config.observations_per_source == pytest.approx(
            lofar.PAPER_NUM_MEASUREMENTS, rel=0.02
        )

    def test_scaled_config_clamps(self):
        config = lofar.scaled_config(scale=0.001)
        assert config.num_sources >= 10
        full = lofar.scaled_config(scale=1.0)
        assert full.num_sources == lofar.PAPER_NUM_SOURCES

    def test_byte_size_about_24_bytes_per_row(self, lofar_dataset):
        assert lofar_dataset.byte_size() == lofar_dataset.num_rows * 24


class TestTpcdsLite:
    def test_tables_and_keys(self, tpcds_dataset):
        assert tpcds_dataset.store_sales.num_rows == (
            tpcds_dataset.config.num_days
            * tpcds_dataset.config.num_stores
            * tpcds_dataset.config.sales_per_day_per_store
        )
        assert tpcds_dataset.item.num_rows == tpcds_dataset.config.num_items
        item_ids = set(tpcds_dataset.store_sales.column("item_id").to_pylist())
        assert item_ids <= set(tpcds_dataset.item.column("item_id").to_pylist())

    def test_planted_discount_law(self, tpcds_dataset):
        sales = tpcds_dataset.store_sales
        ratio = np.array(sales.column("sales_price").to_pylist()) / np.array(sales.column("list_price").to_pylist())
        assert float(np.mean(ratio)) == pytest.approx(tpcds_dataset.discount, rel=0.02)

    def test_planted_markup_per_category(self, tpcds_dataset):
        sales = tpcds_dataset.store_sales
        items = tpcds_dataset.item
        category_by_item = dict(zip(items.column("item_id").to_pylist(), items.column("category_id").to_pylist()))
        item_ids = sales.column("item_id").to_pylist()
        list_price = np.array(sales.column("list_price").to_pylist())
        wholesale = np.array(sales.column("wholesale_cost").to_pylist())
        for category, markup in list(tpcds_dataset.category_markup.items())[:3]:
            mask = np.array([category_by_item[i] == category for i in item_ids])
            if mask.sum() > 50:
                observed = float(np.mean(list_price[mask] / wholesale[mask]))
                assert observed == pytest.approx(markup, rel=0.02)

    def test_load_into_registers_tables(self, tpcds_db):
        assert set(tpcds_db.table_names()) >= {"store_sales", "item", "store", "date_dim"}

    def test_benchmark_queries_run(self, tpcds_db):
        for name, sql in tpcds_lite.BENCHMARK_QUERIES:
            result = tpcds_db.sql(sql)
            assert result.table.num_rows >= 1, name

    def test_reproducible(self):
        a = tpcds_lite.generate(num_items=10, num_stores=2, num_days=10, seed=3)
        b = tpcds_lite.generate(num_items=10, num_stores=2, num_days=10, seed=3)
        assert a.store_sales.to_pydict() == b.store_sales.to_pydict()


class TestSensors:
    def test_schema_and_rows(self, sensor_dataset):
        table = sensor_dataset.to_table()
        assert table.schema.names == ["sensor", "hour", "temperature"]
        assert table.num_rows <= sensor_dataset.config.num_sensors * sensor_dataset.config.num_hours

    def test_dropouts_remove_rows(self):
        full = sensors.generate(num_sensors=5, num_hours=100, dropout_fraction=0.0, seed=1)
        sparse = sensors.generate(num_sensors=5, num_hours=100, dropout_fraction=0.3, seed=1)
        assert sparse.to_table().num_rows < full.to_table().num_rows

    def test_daily_cycle_present(self, sensor_dataset):
        table = sensor_dataset.to_table()
        hours = np.array(table.column("hour").to_pylist())
        temps = np.array(table.column("temperature").to_pylist())
        afternoon = temps[(hours % 24 == 15)]
        night = temps[(hours % 24 == 3)]
        assert float(np.mean(afternoon)) > float(np.mean(night))

    def test_truths_recorded(self, sensor_dataset):
        assert len(sensor_dataset.truths) == sensor_dataset.config.num_sensors


class TestTimeseries:
    @pytest.mark.parametrize("law,params", [
        ("linear", (1.0, 2.0)),
        ("quadratic", (1.0, 0.0, 0.5)),
        ("exponential", (2.0, 0.3)),
        ("powerlaw", (1.0, -0.5)),
        ("seasonal", (2.0, 5.0, 1.0)),
    ])
    def test_laws_generate(self, law, params):
        spec = timeseries.SeriesSpec(law=law, params=params, n_points=100, x_min=0.1, noise_std=0.0, seed=1)
        x, y = timeseries.generate_series(spec)
        assert len(x) == len(y) == 100
        assert np.all(np.isfinite(y))

    def test_unknown_law(self):
        with pytest.raises(ValueError):
            timeseries.generate_series(timeseries.SeriesSpec(law="cubic_spline", params=()))

    def test_series_table(self):
        spec = timeseries.SeriesSpec(law="linear", params=(0.0, 1.0), n_points=50)
        table = timeseries.series_table(spec, x_name="t", y_name="value")
        assert table.schema.names == ["t", "value"]
        assert table.num_rows == 50

    def test_noise_zero_is_exact(self):
        spec = timeseries.SeriesSpec(law="linear", params=(1.0, 2.0), n_points=50, noise_std=0.0)
        x, y = timeseries.generate_series(spec)
        assert np.allclose(y, 1.0 + 2.0 * x)
