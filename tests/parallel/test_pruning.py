"""Partition pruning: never drops rows, and actually saves simulated IO."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LawsDatabase
from repro.core.approx.routes.constraints import extract_constraints
from repro.db.sql.parser import parse
from repro.parallel.partition import build_partition_map, partition_entries
from repro.parallel.pruning import prune_partitions


def _constraints(where_sql: str):
    statement = parse(f"SELECT * FROM t WHERE {where_sql}")
    return extract_constraints(statement.where)


PREDICATES = [
    "y < 50",
    "y >= 990",
    "y BETWEEN 300 AND 310",
    "y > 1000000",
    "y IN (5, 500, 995)",
    "y = 123",
    "y < 100 AND x > 0.0",
    "y >= 10 AND y <= 20 AND k = 3",
]


class TestPruningProperty:
    @pytest.mark.parametrize("predicate", PREDICATES)
    @pytest.mark.parametrize("partitions", [2, 7, 16])
    def test_pruning_never_drops_rows(self, predicate: str, partitions: int) -> None:
        """Kept partitions contain every row the full scan would return."""
        rng = np.random.default_rng(42)
        rows = 5000
        db = LawsDatabase(observability=False)
        db.load_dict(
            "t",
            {
                "k": rng.integers(0, 8, rows).tolist(),
                "x": rng.normal(0, 1, rows).tolist(),
                "y": np.sort(rng.integers(0, 1000, rows)).tolist(),
            },
        )
        sql = f"SELECT count(*), sum(x) FROM t WHERE {predicate}"
        db.parallel.enabled = False
        oracle = db.database.sql(sql).rows()
        db.parallel.enabled = True
        db.partition_table("t", partitions=partitions)
        result = db.database.sql(sql).rows()
        assert result[0][0] == oracle[0][0], f"pruning dropped rows for {predicate!r}"
        assert result[0][1] == pytest.approx(oracle[0][1], rel=1e-9, nan_ok=True) or (
            result[0][1] is None and oracle[0][1] is None
        )

    def test_prune_unit_semantics(self) -> None:
        """Direct unit checks of the prune decision table."""
        db = LawsDatabase(observability=False)
        table = db.load_dict(
            "t", {"y": list(range(100)), "s": [None] * 100}
        )
        payload = build_partition_map(table.pinned(), 4)
        entries = partition_entries(payload, table.num_rows)

        kept, pruned = prune_partitions(entries, _constraints("y < 10").by_column, {"y", "s"})
        assert pruned == 3 and [e["id"] for e in kept] == [0]

        # All-NULL column: every extracted constraint rejects NULL.
        kept, pruned = prune_partitions(entries, _constraints("s = 1").by_column, {"y", "s"})
        assert pruned == 4 and kept == []

        # Column not prunable (e.g. shadowed by a join right table): kept.
        kept, pruned = prune_partitions(entries, _constraints("y < 10").by_column, {"s"})
        assert pruned == 0 and len(kept) == 4

        # Residual-only predicates prune nothing.
        kept, pruned = prune_partitions(entries, _constraints("y + y < 10").by_column, {"y"})
        assert pruned == 0

    def test_tail_partition_is_never_pruned(self) -> None:
        db = LawsDatabase(observability=False)
        table = db.load_dict("t", {"y": list(range(100))})
        payload = build_partition_map(table.pinned(), 4)
        db.database.insert_rows("t", [(5,)] * 10)  # appended past built_rows
        entries = partition_entries(payload, db.table("t").num_rows)
        assert len(entries) == 5 and entries[-1]["columns"] == {}
        kept, pruned = prune_partitions(entries, _constraints("y = 5").by_column, {"y"})
        assert pruned == 3
        assert entries[-1] in kept  # the tail survives any predicate


class TestPageIOReduction:
    def test_selective_range_predicate_saves_5x_pages(self) -> None:
        """ISSUE acceptance: >=5x page-IO reduction on a selective range scan."""
        rng = np.random.default_rng(3)
        rows = 200_000
        db = LawsDatabase(observability=False)
        db.load_dict(
            "t",
            {
                "y": np.sort(rng.integers(0, 1000, rows)).tolist(),
                "x": rng.normal(0, 1, rows).tolist(),
            },
        )
        db.partition_table("t", partitions=16)
        sql = "SELECT count(*), sum(x) FROM t WHERE y BETWEEN 100 AND 140"

        db.parallel.enabled = False
        with db.database.io_model.scope() as unpruned_scope:
            oracle = db.database.sql(sql).rows()
        db.parallel.enabled = True
        with db.database.io_model.scope() as pruned_scope:
            result = db.database.sql(sql).rows()

        assert result[0][0] == oracle[0][0]
        unpruned_pages = unpruned_scope.snapshot()["pages_read"]
        pruned_pages = pruned_scope.snapshot()["pages_read"]
        assert pruned_pages > 0
        assert unpruned_pages / pruned_pages >= 5.0, (
            f"page-IO reduction {unpruned_pages}/{pruned_pages} below 5x"
        )
