"""Mergeable column statistics: per-partition stats fold into table stats."""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro import LawsDatabase
from repro.db.stats import compute_column_stats, compute_table_stats, merge_table_stats
from repro.db.table import Table


def _table(seed: int, rows: int) -> Table:
    rng = np.random.default_rng(seed)
    db = LawsDatabase(observability=False)
    x = rng.normal(5.0, 3.0, rows)
    return db.load_dict(
        "t",
        {
            "k": rng.integers(0, 6, rows).tolist(),
            "x": [None if rng.random() < 0.1 else float(v) for v in x],
            "s": [f"tag{int(v) % 4}" for v in rng.integers(0, 100, rows)],
        },
    ).pinned()


def _assert_stats_equal(merged, whole) -> None:
    assert merged.row_count == whole.row_count
    assert merged.null_count == whole.null_count
    assert merged.min_value == whole.min_value
    assert merged.max_value == whole.max_value
    assert merged.distinct_count == whole.distinct_count
    assert merged.domain == whole.domain
    assert merged.domain_counts == whole.domain_counts
    if whole.mean is None:
        assert merged.mean is None
    else:
        assert merged.mean == pytest.approx(whole.mean, rel=1e-9)
        assert merged.std == pytest.approx(whole.std, rel=1e-9, abs=1e-12)


class TestColumnStatsMerge:
    @pytest.mark.parametrize("column", ["k", "x", "s"])
    def test_merge_of_halves_equals_whole_scan(self, column: str) -> None:
        table = _table(seed=9, rows=3001)
        split = 1200
        whole = compute_column_stats(column, table.column(column))
        left = compute_column_stats(column, table.slice(0, split).column(column))
        right = compute_column_stats(column, table.slice(split, table.num_rows).column(column))
        _assert_stats_equal(left.merge(right), whole)

    def test_merge_is_associative_over_many_shards(self) -> None:
        table = _table(seed=4, rows=2048)
        whole = compute_column_stats("x", table.column("x"))
        bounds = [0, 100, 777, 1024, 2048]
        shards = [
            compute_column_stats("x", table.slice(a, b).column("x"))
            for a, b in zip(bounds, bounds[1:])
        ]
        left_fold = functools.reduce(lambda a, b: a.merge(b), shards)
        right_fold = functools.reduce(lambda a, b: b.merge(a), reversed(shards))
        _assert_stats_equal(left_fold, whole)
        _assert_stats_equal(right_fold, whole)

    def test_merge_with_empty_and_all_null_shards(self) -> None:
        table = _table(seed=2, rows=500)
        whole = compute_column_stats("x", table.column("x"))
        empty = compute_column_stats("x", table.slice(0, 0).column("x"))
        merged = empty.merge(compute_column_stats("x", table.column("x")))
        _assert_stats_equal(merged, whole)

    def test_merge_rejects_mismatched_columns(self) -> None:
        table = _table(seed=2, rows=100)
        k = compute_column_stats("k", table.column("k"))
        x = compute_column_stats("x", table.column("x"))
        with pytest.raises(ValueError):
            k.merge(x)


class TestTableStatsMerge:
    def test_merge_table_stats_matches_whole_table(self) -> None:
        table = _table(seed=13, rows=1500)
        whole = compute_table_stats(table)
        left = compute_table_stats(table.slice(0, 600))
        right = compute_table_stats(table.slice(600, table.num_rows))
        merged = merge_table_stats(left, right)
        assert merged.row_count == whole.row_count
        for name in table.schema.names:
            _assert_stats_equal(merged.column(name), whole.column(name))


class TestIngestStatsMerge:
    def test_flush_merges_batch_stats_without_rescan(self) -> None:
        """Warm stats + batched appends keep catalog stats exact via merge."""
        rng = np.random.default_rng(21)
        db = LawsDatabase(ingest_batch_size=64, observability=False)
        db.load_dict("t", {"k": rng.integers(0, 6, 512).tolist()})
        catalog = db.database.catalog

        catalog.stats("t")  # warm the cache so the flush path can merge
        assert catalog.stats_clean("t")

        db.ingest("t", [(int(v),) for v in rng.integers(0, 6, 256)], flush=True)
        assert catalog.stats_clean("t"), "flush should merge the delta, not dirty stats"

        merged = catalog.stats("t").column("k")
        fresh = compute_table_stats(db.table("t").pinned()).column("k")
        _assert_stats_equal(merged, fresh)
