"""Per-partition models: fitting, shard-scoped staleness, refit, round-trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LawsDatabase
from repro.errors import HarvestError
from repro.persist.warehouse import deserialize_model, serialize_model


def _make_db(rows: int = 2048, partitions: int = 4) -> LawsDatabase:
    rng = np.random.default_rng(23)
    db = LawsDatabase(observability=False)
    t = np.arange(rows, dtype=np.float64)
    v = 3.0 * t + 7.0 + rng.normal(0, 0.05, rows)
    db.load_dict("readings", {"t": t.tolist(), "v": v.tolist()})
    db.partition_table("readings", partitions=partitions)
    return db


class TestFitPartitioned:
    def test_fits_one_model_per_partition(self) -> None:
        db = _make_db(partitions=4)
        reports = db.fit_partitioned("readings", "v ~ linear(t)")
        assert len(reports) == 4
        assert all(report.accepted for report in reports)
        ids = sorted(report.model.metadata["partition_id"] for report in reports)
        assert ids == [0, 1, 2, 3]
        ranges = sorted(report.model.coverage.row_range for report in reports)
        assert ranges == [(0, 512), (512, 1024), (1024, 1536), (1536, 2048)]
        assert all(not report.model.coverage.covers_whole_table for report in reports)

    def test_requires_partition_map(self) -> None:
        db = LawsDatabase(observability=False)
        db.load_dict("t", {"a": [1.0, 2.0], "b": [2.0, 4.0]})
        with pytest.raises(HarvestError, match="partition map"):
            db.fit_partitioned("t", "b ~ linear(a)")


class TestShardScopedStaleness:
    def test_append_past_shard_keeps_lower_shards_active(self) -> None:
        """A batch landing in the tail stales only shards it touches."""
        db = _make_db(partitions=4)
        reports = db.fit_partitioned("readings", "v ~ linear(t)")
        by_partition = {report.model.metadata["partition_id"]: report.model for report in reports}

        db.insert_rows("readings", [(3000.0 + i, 3.0 * (3000.0 + i) + 7.0) for i in range(16)])

        for partition_id, model in by_partition.items():
            refreshed = db.models.get(model.model_id)
            assert refreshed.status == "active", (
                f"partition {partition_id} model went {refreshed.status!r} though its "
                f"rows {refreshed.coverage.row_range} are below the append boundary"
            )

    def test_whole_table_model_still_goes_stale_on_append(self) -> None:
        db = _make_db()
        report = db.fit("readings", "v ~ linear(t)")
        db.insert_rows("readings", [(9000.0, 27007.0)])
        assert db.models.get(report.model.model_id).status == "stale"


class TestWarehouseRoundTrip:
    def test_row_range_and_partition_id_survive_serialization(self) -> None:
        db = _make_db(partitions=4)
        model = db.fit_partitioned("readings", "v ~ linear(t)")[2].model
        restored = deserialize_model(serialize_model(model))
        assert restored.coverage.row_range == model.coverage.row_range == (1024, 1536)
        assert restored.metadata["partition_id"] == 2
        assert not restored.coverage.covers_whole_table

    def test_old_payload_without_row_range_loads(self) -> None:
        db = _make_db()
        model = db.fit("readings", "v ~ linear(t)").model
        payload = serialize_model(model)
        payload["coverage"].pop("row_range", None)  # pre-partitioning payload
        restored = deserialize_model(payload)
        assert restored.coverage.row_range is None


class TestMaintenanceRefit:
    def test_refit_rescopes_to_current_partition_bounds(self) -> None:
        """Maintenance refits a shard model against its *current* row range."""
        db = _make_db(partitions=4)
        reports = db.fit_partitioned("readings", "v ~ linear(t)")
        tail_model = max(reports, key=lambda r: r.model.coverage.row_range[1]).model

        # Appends land in (and past) the tail shard; rebuilding the map and
        # maintaining must refit the stale tail model over the new bounds.
        db.insert_rows(
            "readings", [(2048.0 + i, 3.0 * (2048.0 + i) + 7.0) for i in range(512)]
        )
        db.partition_table("readings", partitions=4)
        db.maintain()

        refreshed = db.models.get(tail_model.model_id)
        candidates = [
            model
            for model in db.models.models_for_table("readings")
            if model.status == "active" and model.coverage.row_range is not None
        ]
        assert refreshed.status in ("active", "stale")
        assert candidates, "maintenance left no active partition model"
