"""Partitioned queries under concurrent ingest: snapshot-consistent shards.

The partition map commits as catalog table-metadata, so a pinned snapshot
pairs the map with the table rows of the same commit; rows appended after
the map form the implicit tail shard for fresh queries only.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import LawsDatabase

pytestmark = pytest.mark.concurrency


def _make_db(rows: int = 4096, batch: int = 256) -> LawsDatabase:
    rng = np.random.default_rng(17)
    db = LawsDatabase(ingest_batch_size=batch, observability=False)
    db.load_dict(
        "readings",
        {
            "t": list(range(rows)),
            "v": rng.normal(10.0, 2.0, rows).tolist(),
        },
    )
    db.partition_table("readings", partitions=8)
    return db


def test_pinned_partitioned_query_is_repeatable_across_ingest() -> None:
    db = _make_db()
    snap = db.snapshot()
    sql = "SELECT count(v) AS c, sum(v) AS s FROM readings"
    before = db.query(sql, snapshot=snap).rows()

    db.ingest("readings", [(10_000 + i, 5.0) for i in range(512)], flush=True)

    pinned = db.query(sql, snapshot=snap).rows()
    fresh = db.query(sql).rows()
    assert pinned == before, "a held snapshot must not observe the ingest commit"
    assert fresh[0][0] == before[0][0] + 512, "a fresh query must see the tail shard"


def test_partitioned_query_during_ingest_sees_batch_boundaries() -> None:
    """Concurrent partitioned aggregates only ever observe whole batches."""
    batch = 256
    db = _make_db(rows=4096, batch=batch)
    base_rows = 4096
    total_appends = 2048
    stop = threading.Event()
    observed: list[int] = []
    errors: list[BaseException] = []

    def reader() -> None:
        try:
            while not stop.is_set():
                count = db.query("SELECT count(t) AS c FROM readings").rows()[0][0]
                observed.append(count)
        except BaseException as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    try:
        for i in range(total_appends):
            db.ingest("readings", [(100_000 + i, 1.0)])
        db.flush_ingest("readings")
    finally:
        stop.set()
        thread.join(timeout=30)

    assert not errors, errors
    assert observed, "reader thread never completed a query"
    valid = {base_rows + k * batch for k in range(total_appends // batch + 1)}
    torn = [count for count in observed if count not in valid]
    assert not torn, f"partitioned reads observed non-batch-boundary counts: {torn[:5]}"
    assert db.query("SELECT count(t) AS c FROM readings").rows()[0][0] == base_rows + total_appends


def test_partitioned_query_during_archive_returns_consistent_rows() -> None:
    """A snapshot held across an archive operation keeps its shard list."""
    db = _make_db()
    snap = db.snapshot()
    sql = "SELECT count(v) AS c FROM readings WHERE t < 2048"
    before = db.query(sql, snapshot=snap).rows()
    with db.database.catalog.reading(snap.catalog):
        assert db.partition_map("readings") is not None

    db.ingest("readings", [(50_000 + i, 2.0) for i in range(256)], flush=True)
    after = db.query(sql, snapshot=snap).rows()
    assert after == before
