"""Worker-pool semantics: backends, retry-once, degrade-to-serial chaos."""

from __future__ import annotations

import numpy as np
import pytest

from repro import LawsDatabase
from repro.errors import InjectedFault
from repro.obs import EventJournal, MetricsRegistry
from repro.parallel.pool import WorkerPool, _TASK_REGISTRY
from repro.resilience.faults import FaultInjector, FaultSpec


class TestWorkerPool:
    def test_results_in_task_order(self) -> None:
        pool = WorkerPool(max_workers=4)
        assert pool.run_tasks([lambda i=i: i * i for i in range(10)]) == [
            i * i for i in range(10)
        ]

    def test_process_backend_returns_results_and_clears_registry(self) -> None:
        pool = WorkerPool(max_workers=2, backend="process")
        assert pool.run_tasks([lambda i=i: i + 1 for i in range(4)]) == [1, 2, 3, 4]
        assert not _TASK_REGISTRY

    def test_retry_once_recovers_without_degrading(self) -> None:
        pool = WorkerPool(max_workers=2, deadline_seconds=5.0)
        pool.faults = FaultInjector([FaultSpec("parallel.worker.task", "exception", hit=1)])
        pool.metrics = MetricsRegistry()
        pool.journal = EventJournal()
        assert pool.run_tasks([lambda: 1, lambda: 2]) == [1, 2]
        assert pool.metrics.counter_value("parallel_retries_total") == 1.0
        assert pool.metrics.counter_value("parallel_degraded_total") == 0.0
        assert pool.journal.events(kind="parallel-degraded") == []

    def test_repeat_exception_degrades_to_serial(self) -> None:
        pool = WorkerPool(max_workers=2, deadline_seconds=5.0)
        pool.faults = FaultInjector(
            [
                FaultSpec("parallel.worker.task", "exception", hit=1),
                FaultSpec("parallel.worker.task", "exception", hit=2),
            ]
        )
        pool.metrics = MetricsRegistry()
        pool.journal = EventJournal()
        assert pool.run_tasks([lambda: 7]) == [7]  # degraded run still answers
        assert pool.metrics.counter_value("parallel_degraded_total") == 1.0
        events = pool.journal.events(kind="parallel-degraded")
        assert len(events) == 1
        assert "InjectedFault" in events[0].fields["error"]

    def test_hang_past_deadline_degrades(self) -> None:
        pool = WorkerPool(max_workers=2, deadline_seconds=0.05)
        pool.faults = FaultInjector(
            [
                FaultSpec("parallel.worker.task", "latency", hit=1, latency_seconds=0.5),
                FaultSpec("parallel.worker.task", "latency", hit=2, latency_seconds=0.5),
            ]
        )
        pool.metrics = MetricsRegistry()
        pool.journal = EventJournal()
        assert pool.run_tasks([lambda: "ok"]) == ["ok"]
        assert pool.metrics.counter_value("parallel_degraded_total") == 1.0
        assert "TimeoutError" in pool.journal.events(kind="parallel-degraded")[0].fields["error"]

    def test_genuine_error_still_raises_after_degrade(self) -> None:
        pool = WorkerPool(max_workers=2, deadline_seconds=5.0)

        def bad() -> None:
            raise ValueError("task bug, not a fault")

        with pytest.raises(ValueError):
            pool.run_tasks([bad])


class TestChaosPartitionedQuery:
    def test_worker_faults_degrade_but_query_answers_correctly(self) -> None:
        """ISSUE satellite 6: chaos coverage of ``parallel.worker.task``.

        Two scheduled worker faults force retry-then-degrade in the middle
        of a partitioned GROUP BY; the query must still return the oracle
        answer, journal the degrade and bump ``parallel_degraded_total``.
        """
        # 8 partition tasks arrive as hits 1-8; the single first-pass fault
        # (hit 2) forces one retry, which arrives as hit 9 and faults again,
        # forcing the degrade path.
        injector = FaultInjector(
            [
                FaultSpec("parallel.worker.task", "exception", hit=2),
                FaultSpec("parallel.worker.task", "exception", hit=9),
            ]
        )
        rng = np.random.default_rng(5)
        rows = 120_000
        data = {
            "k": rng.integers(0, 10, rows).tolist(),
            "x": rng.normal(1.0, 2.0, rows).tolist(),
        }
        sql = "SELECT k, count(*), sum(x) FROM t GROUP BY k ORDER BY k"

        oracle_db = LawsDatabase(observability=False)
        oracle_db.load_dict("t", data)
        oracle_db.parallel.enabled = False
        oracle = oracle_db.database.sql(sql).rows()

        db = LawsDatabase(fault_injector=injector)
        db.load_dict("t", data)
        db.partition_table("t", partitions=8)
        result = db.database.sql(sql).rows()

        assert [r[:2] for r in result] == [r[:2] for r in oracle]
        for got, want in zip(result, oracle):
            assert got[2] == pytest.approx(want[2], rel=1e-9)
        assert any(event.point == "parallel.worker.task" for event in injector.fired())
        counters = db.metrics()["counters"]
        assert "parallel_degraded_total" in counters
        assert len(db.events(kind="parallel-degraded")) == 1
