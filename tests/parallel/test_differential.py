"""Differential property suite: partitioned execution equals the oracle.

Every query runs twice on identical data — once through the partitioned
path, once with the engine disabled (the single-partition oracle) — across
partition counts {1, 2, 7, 16}.  Row membership, group keys and integer
aggregates must match exactly; float aggregates (sum/avg/var/stddev) are
compared with a tolerance because partitioned partial sums legitimately
round differently than one single-pass reduction.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import LawsDatabase

PARTITION_COUNTS = (1, 2, 7, 16)

QUERIES = [
    "SELECT id, k, x, y FROM facts WHERE y >= 250 AND y < 700",
    "SELECT count(*) FROM facts WHERE x > 10",
    "SELECT count(*), count(x), sum(x), avg(x), min(x), max(x), stddev(x), var(x) FROM facts",
    "SELECT count(*), sum(x) FROM facts WHERE y > 100000",  # empty result
    "SELECT k, count(*), count(x), sum(x), avg(x), min(y), max(y), stddev(x), var(x) "
    "FROM facts GROUP BY k ORDER BY k",
    "SELECT k, avg(x) AS m FROM facts WHERE y BETWEEN 50 AND 400 GROUP BY k "
    "HAVING count(*) > 3 ORDER BY m DESC, k LIMIT 7",
    "SELECT DISTINCT k FROM facts WHERE y < 500 ORDER BY k",
    "SELECT label, count(*), sum(x), stddev(x) FROM facts JOIN dim ON facts.k = dim.k "
    "WHERE y < 600 GROUP BY label ORDER BY label",
    "SELECT id, label FROM facts JOIN dim ON facts.k = dim.k WHERE y < 40 ORDER BY id LIMIT 25",
    "SELECT k, y, count(*) FROM facts GROUP BY k, y ORDER BY k, y LIMIT 40",
]


def build_db(seed: int = 7, rows: int = 4000) -> LawsDatabase:
    rng = np.random.default_rng(seed)
    db = LawsDatabase(observability=False)
    x = rng.normal(20.0, 6.0, rows)
    x[rng.random(rows) < 0.08] = np.nan  # NULL-bearing aggregate input
    db.load_dict(
        "facts",
        {
            "id": list(range(rows)),
            "k": rng.integers(0, 13, rows).tolist(),
            "x": [None if math.isnan(v) else float(v) for v in x],
            "y": rng.integers(0, 1000, rows).tolist(),
        },
    )
    db.load_dict("dim", {"k": list(range(13)), "label": [f"g{i:02d}" for i in range(13)]})
    return db


def run_query(db: LawsDatabase, sql: str, parallel: bool) -> list[tuple]:
    db.parallel.enabled = parallel
    try:
        return db.database.sql(sql).rows()
    finally:
        db.parallel.enabled = True


def assert_rows_equal(expected: list[tuple], actual: list[tuple], context: str) -> None:
    assert len(expected) == len(actual), f"{context}: row count {len(actual)} != {len(expected)}"
    for row_index, (want, got) in enumerate(zip(expected, actual)):
        assert len(want) == len(got)
        for want_value, got_value in zip(want, got):
            where = f"{context} row {row_index}: {got!r} != {want!r}"
            if isinstance(want_value, float) and isinstance(got_value, float):
                assert got_value == pytest.approx(want_value, rel=1e-9, abs=1e-9, nan_ok=True), where
            else:
                assert got_value == want_value, where


@pytest.mark.parametrize("partitions", PARTITION_COUNTS)
def test_differential_against_oracle(partitions: int) -> None:
    db = build_db()
    oracle = {sql: run_query(db, sql, parallel=False) for sql in QUERIES}
    db.partition_table("facts", partitions=partitions)
    for sql in QUERIES:
        assert_rows_equal(oracle[sql], run_query(db, sql, parallel=True), f"p={partitions} {sql}")


@pytest.mark.parametrize("partitions", PARTITION_COUNTS)
@pytest.mark.parametrize("scheme", ["range", "hash"])
def test_differential_after_physical_reclustering(partitions: int, scheme: str) -> None:
    """Re-clustered tables reorder rows; set semantics must be preserved."""
    db = build_db(seed=11)
    oracle = {sql: run_query(db, sql, parallel=False) for sql in QUERIES}
    db.partition_table("facts", partitions=partitions, by="y", scheme=scheme)
    for sql in QUERIES:
        # Re-clustering changed base-row order, so compare as ordered only
        # when the query orders fully; otherwise compare as multisets.
        expected, actual = oracle[sql], run_query(db, sql, parallel=True)
        expected_sorted = sorted(expected, key=repr)
        actual_sorted = sorted(actual, key=repr)
        assert_rows_equal(expected_sorted, actual_sorted, f"{scheme} p={partitions} {sql}")


def test_tail_partition_covers_appended_rows() -> None:
    """Rows appended after the map was built land in the unpruned tail."""
    db = build_db(rows=1000)
    db.partition_table("facts", partitions=7)
    db.insert_rows("facts", [(10_000 + i, 3, 5.0, 999) for i in range(50)])
    got = run_query(db, "SELECT count(*) FROM facts WHERE y = 999", parallel=True)
    want = run_query(db, "SELECT count(*) FROM facts WHERE y = 999", parallel=False)
    assert got == want
    assert got[0][0] >= 50


def test_partition_map_visible_after_cached_query() -> None:
    """Publishing a map is a versioned commit: it must invalidate memoized
    snapshots and cached plans from queries run before ``partition_table``."""
    rng = np.random.default_rng(3)
    db = LawsDatabase(observability=False)
    db.load_dict(
        "facts",
        {
            "y": np.sort(rng.integers(0, 1000, 4000)).tolist(),
            "x": rng.normal(0, 1, 4000).tolist(),
        },
    )
    sql = "SELECT count(*) FROM facts WHERE y BETWEEN 10 AND 30"
    before = db.database.sql(sql).rows()  # memoizes a pre-map snapshot
    db.partition_table("facts", partitions=8)
    assert db.database.sql(sql).rows() == before

    from repro.obs import MetricsRegistry

    db.parallel.metrics = MetricsRegistry()
    db.database.sql(sql).rows()
    assert db.parallel.metrics.counter_value("partitions_pruned_total") > 0


def test_replace_invalidates_partition_map() -> None:
    """A replaced table must not be pruned with the old incarnation's stats."""
    db = build_db(rows=500)
    db.partition_table("facts", partitions=4)
    replacement = db.table("facts")
    db.register_table(replacement.slice(0, 100), replace=True)
    assert db.partition_map("facts") is None
