"""Snapshot semantics, single-threaded and deterministic.

The MVCC contract in its simplest observable form: a query executed
against a held :class:`~repro.core.snapshot.Snapshot` returns the same
answer before and after concurrent-style commits (ingest flushes, model
registrations), while fresh queries see the new state immediately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import LawsDatabase
from repro.core.planner import AccuracyContract
from repro.errors import CatalogError

pytestmark = pytest.mark.concurrency


def _make_db(rows: int = 256, batch: int = 64) -> LawsDatabase:
    db = LawsDatabase(ingest_batch_size=batch, observability=False)
    db.load_dict(
        "readings",
        {
            "t": list(range(rows)),
            "v": [2.5 * i + 1.0 for i in range(rows)],
        },
    )
    return db


def test_pinned_query_is_repeatable_across_ingest():
    db = _make_db()
    snap = db.snapshot()
    sql = "SELECT count(v) AS c, sum(v) AS s FROM readings"
    before = db.query(sql, snapshot=snap).rows()

    db.ingest("readings", [(1000 + i, 5.0) for i in range(64)], flush=True)

    pinned = db.query(sql, snapshot=snap).rows()
    fresh = db.query(sql).rows()
    assert pinned == before, "a held snapshot must not observe the ingest commit"
    assert fresh[0][0] == before[0][0] + 64, "a fresh query must see the committed batch"


def test_snapshot_pins_catalog_version_and_tables():
    db = _make_db()
    snap = db.snapshot()
    v0 = snap.catalog_version
    assert snap.versions == (snap.catalog_version, snap.model_version)

    db.ingest("readings", [(2000, 1.0)], flush=True)
    assert db.database.catalog.live_version > v0
    assert snap.catalog_version == v0, "a snapshot's version is frozen at capture"
    # The pinned table object itself never grows.
    assert snap.catalog.table("readings").num_rows == 256


def test_snapshot_memo_reuse_and_invalidation():
    db = _make_db()
    first = db.snapshot()
    assert db.snapshot() is first, "unchanged registries must reuse the memoized snapshot"
    db.ingest("readings", [(3000, 1.0)], flush=True)
    second = db.snapshot()
    assert second is not first, "a commit must invalidate the memoized snapshot"
    assert second.catalog_version > first.catalog_version


def test_snapshot_pins_model_population():
    db = _make_db()
    report = db.fit("readings", "v ~ t")
    assert report.accepted
    snap = db.snapshot()
    model_id = report.model.model_id

    db.models.remove(model_id)
    assert db.models.live_version > snap.model_version
    with db.models.reading(snap.models):
        assert db.models.get(model_id) is report.model, (
            "a pinned reader must still resolve the membership it captured"
        )


def test_pinned_reader_survives_table_drop():
    db = _make_db()
    snap = db.snapshot()
    db.drop_table("readings")
    with pytest.raises(CatalogError):
        db.table("readings")
    with db.database.reading(snap.catalog):
        assert db.database.table("readings").num_rows == 256
    answer = db.query(
        "SELECT count(v) AS c FROM readings",
        AccuracyContract(mode="exact"),
        snapshot=snap,
    )
    assert answer.scalar() == 256


def test_fresh_snapshot_not_pinned_to_readers_pin():
    """snapshot() freshness checks use live versions, even on a pinned thread."""
    db = _make_db()
    snap = db.snapshot()
    with snap.reading(db.database.catalog, db.models):
        db.database.insert_rows("readings", [(4000, 1.0)])
        inner = db.planner.snapshot()
    assert inner.catalog_version > snap.catalog_version


def test_pinned_stats_describe_pinned_rows():
    db = _make_db()
    snap = db.snapshot()
    db.ingest("readings", [(5000 + i, 99.0) for i in range(64)], flush=True)
    with db.database.reading(snap.catalog):
        assert db.database.stats("readings").row_count == 256
    assert db.database.stats("readings").row_count == 320


def test_pinned_table_is_frozen_against_append_growth():
    db = _make_db()
    frozen = db.table("readings").pinned()
    n0 = frozen.num_rows
    data0 = frozen.column("v").to_numpy().copy()
    db.ingest("readings", [(6000 + i, -1.0) for i in range(128)], flush=True)
    assert frozen.num_rows == n0
    np.testing.assert_array_equal(frozen.column("v").to_numpy(), data0)
