"""Telemetry under concurrency: flight flushes racing queries and ingest.

The flight recorder flushes through the same ingest/commit machinery the
racing workers are using, while the planner's accounting hooks
(calibration, SLO, flight) run on every served query — the deadlock bait
is a flush holding the recorder lock while ingest listeners call back into
observability.  These tests drive that overlap on real threads and then
assert the books still balance: recorder accounting, metrics counters and
journal totals all describe the same stream.
"""

from __future__ import annotations

import threading

import pytest

from repro import LawsDatabase
from repro.core.planner import AccuracyContract
from repro.obs.flight import QUERY_TABLE
from tests.concurrency.harness import iterations, run_workers

pytestmark = pytest.mark.concurrency

EXACT = AccuracyContract(mode="exact")


def _seed_db() -> LawsDatabase:
    db = LawsDatabase(ingest_batch_size=64, verify_sample_fraction=0.0)
    db.load_dict(
        "stream",
        {
            "t": list(range(256)),
            "g": [i % 4 for i in range(256)],
            "v": [2.5 * i + 1.0 for i in range(256)],
        },
    )
    return db


def test_flight_flushes_race_queries_and_ingest_without_deadlock():
    """Concurrent query/ingest/flush workers must all run to completion.

    ``run_workers`` fails the test if any worker is still alive after the
    timeout, which is exactly what a flush-vs-ingest lock cycle would
    produce.
    """
    db = _seed_db()
    db.obs.flight.flush_every = 8  # frequent auto-flushes amid the race
    rounds = iterations(40)
    stop = threading.Event()

    def querier() -> None:
        try:
            for _ in range(rounds):
                if stop.is_set():
                    return
                db.query("SELECT count(*) AS n, sum(v) AS s FROM stream", EXACT)
        finally:
            stop.set()

    def ingester() -> None:
        try:
            for i in range(rounds):
                if stop.is_set():
                    return
                base = 10_000 + i * 4
                db.ingest(
                    "stream",
                    [(base + j, j % 4, float(j)) for j in range(4)],
                    flush=(i % 5 == 4),
                )
        finally:
            stop.set()

    def flusher() -> None:
        try:
            for _ in range(rounds):
                if stop.is_set():
                    return
                db.flush_telemetry()
        finally:
            stop.set()

    run_workers(querier, querier, ingester, flusher, timeout=120.0)
    # Drain whatever the race left pending; the recorder must still work.
    db.flush_telemetry()
    assert db.obs.flight.report()["pending_queries"] == 0


def test_telemetry_books_balance_after_the_race():
    """After racing workers finish, every surface tells the same story."""
    db = _seed_db()
    db.obs.flight.flush_every = 0  # all flushes explicit, to count exactly
    rounds = iterations(30)
    queries_per_worker = rounds
    workers = 3

    def querier() -> None:
        for _ in range(queries_per_worker):
            db.query("SELECT g, avg(v) AS m FROM stream GROUP BY g", EXACT)

    def flusher() -> None:
        for _ in range(rounds // 2):
            db.flush_telemetry()

    run_workers(querier, querier, querier, flusher, timeout=120.0)
    db.flush_telemetry()

    total_queries = workers * queries_per_worker
    report = db.ops_report()
    # Metrics counter == planner accounting == flight recorder == SLO feed.
    assert report["queries"]["total"] == float(total_queries)
    assert report["flight"]["recorded_queries"] == total_queries
    assert report["flight"]["pending_queries"] == 0
    assert report["slo"]["observed_queries"] == total_queries
    # Every recorded query landed in the warehouse exactly once (flushes
    # never double-drain or drop under the race).
    assert db.database.table(QUERY_TABLE).num_rows == total_queries
    # Journal totals stay the metrics counters' source of truth.
    for key, value in db.obs.metrics.counter_series("events_total").items():
        kind = dict(key).get("kind")
        assert report["events"].get(kind) == int(value), kind


def test_concurrent_flush_calls_never_double_ingest():
    """N threads calling flush() on the same pending set: rows land once."""
    db = _seed_db()
    flight = db.obs.flight
    flight.flush_every = 0
    recorded = 200
    for i in range(recorded):
        flight.record_query("exact", 0.001 * (i % 7))

    def flusher() -> None:
        for _ in range(10):
            db.flush_telemetry()

    run_workers(*[flusher] * 4, timeout=60.0)
    assert db.database.table(QUERY_TABLE).num_rows == recorded
    assert flight.report()["pending_queries"] == 0
