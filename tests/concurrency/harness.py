"""Shared harness for the concurrency torture suite.

Design: every threaded test is an *oracle differential*.  A single-threaded
oracle enumerates the aggregate values that are legal at each committed
batch boundary; concurrent readers then assert that every answer they
observe is one of those values.  The assertions are interleaving-independent
— whichever way the scheduler slices the threads, a snapshot-isolated
reader can only ever land on a committed boundary, so the tests are
deterministic in normal CI despite using real threads.  A torn read (a
count from one version paired with a sum from another) is exactly what the
oracle set can never contain.

Stress scaling: the suite runs small (seconds) by default; setting
``CONCURRENCY_STRESS=1`` multiplies iteration counts for the CI stress job
(which also randomizes ``PYTHONHASHSEED`` to vary dict ordering).
"""

from __future__ import annotations

import os
import threading
from typing import Callable, Sequence

#: Multiplier applied to iteration counts under the CI stress job.
STRESS = os.environ.get("CONCURRENCY_STRESS", "") not in ("", "0")


def iterations(normal: int, stress_factor: int = 8) -> int:
    """Iteration count for a torture loop (scaled up under stress)."""
    return normal * stress_factor if STRESS else normal


def run_workers(*workers: Callable[[], None], timeout: float = 60.0) -> None:
    """Run each worker in its own thread; re-raise the first failure.

    Workers start behind a barrier so they actually overlap, and a worker
    that raises stops the others early via the shared ``stop`` event the
    caller is expected to poll (purely cooperative — a worker ignoring it
    just runs to completion).  A join timeout fails the test instead of
    hanging CI forever.
    """
    errors: list[BaseException] = []
    barrier = threading.Barrier(len(workers))

    def runner(worker: Callable[[], None]) -> None:
        barrier.wait()
        try:
            worker()
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors.append(exc)

    threads = [
        threading.Thread(target=runner, args=(worker,), daemon=True) for worker in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
    hung = [thread for thread in threads if thread.is_alive()]
    if hung:
        raise AssertionError(f"{len(hung)} worker(s) still running after {timeout}s — deadlock?")
    if errors:
        raise errors[0]


class BatchOracle:
    """Single-threaded oracle for a batched append stream.

    Given the initial rows and the exact stream a writer will push in
    batches, precomputes ``count -> (sum, avg)`` at every committed batch
    boundary.  A snapshot-isolated reader must observe one of these states
    and nothing else.
    """

    def __init__(
        self, initial_values: Sequence[float], stream_values: Sequence[float], batch_size: int
    ) -> None:
        self.batch_size = batch_size
        self.states: dict[int, float] = {}
        total = float(sum(initial_values))
        count = len(initial_values)
        self.states[count] = total
        for start in range(0, len(stream_values), batch_size):
            chunk = stream_values[start : start + batch_size]
            total += float(sum(chunk))
            count += len(chunk)
            self.states[count] = total

    def check(self, count: int, total: float, rel_tol: float = 1e-9) -> None:
        """Assert ``(count, total)`` is a committed boundary state."""
        assert count in self.states, (
            f"count {count} is not a committed batch boundary "
            f"(legal: {sorted(self.states)}) — torn or mid-batch read"
        )
        expected = self.states[count]
        scale = max(abs(expected), 1.0)
        assert abs(total - expected) <= rel_tol * scale, (
            f"sum {total!r} does not match oracle {expected!r} at count {count} "
            f"— count and sum come from different versions (torn read)"
        )
