"""Threaded torture tests: oracle differentials under real concurrency.

Each test runs readers against writers on real threads and asserts every
observed answer belongs to the single-threaded oracle's set of committed
states (see :mod:`tests.concurrency.harness`).  The assertions hold for
*every* interleaving, so the tests are deterministic in normal CI; the
``CONCURRENCY_STRESS=1`` job multiplies the iteration counts.
"""

from __future__ import annotations

import threading

import pytest

from repro import LawsDatabase
from repro.core.planner import AccuracyContract
from tests.concurrency.harness import BatchOracle, iterations, run_workers

pytestmark = pytest.mark.concurrency

EXACT = AccuracyContract(mode="exact")
BATCH = 64


def _seed_db(rows: int = 256, observability: bool = True) -> LawsDatabase:
    db = LawsDatabase(ingest_batch_size=BATCH, observability=observability)
    db.load_dict(
        "stream",
        {
            "t": list(range(rows)),
            "v": [2.5 * i + 1.0 for i in range(rows)],
        },
    )
    db.load_dict(
        "fixed",
        {"k": list(range(100)), "w": [float(i % 7) for i in range(100)]},
    )
    return db


def test_reader_never_observes_torn_ingest():
    """count+sum in one query must always describe one committed boundary."""
    db = _seed_db()
    rounds = iterations(6)
    stream = [(10_000 + i, float((i * 37) % 101)) for i in range(rounds * BATCH)]
    oracle = BatchOracle(
        [2.5 * i + 1.0 for i in range(256)], [v for _, v in stream], BATCH
    )
    stop = threading.Event()

    def writer() -> None:
        try:
            for start in range(0, len(stream), BATCH):
                db.ingest("stream", stream[start : start + BATCH])
        finally:
            stop.set()

    def reader() -> None:
        observed = set()
        while not stop.is_set() or len(observed) < 2:
            count, total = db.query(
                "SELECT count(v) AS c, sum(v) AS s FROM stream", EXACT
            ).rows()[0]
            oracle.check(int(count), float(total))
            observed.add(int(count))
            if stop.is_set():
                break

    run_workers(writer, reader, reader)
    # The writer pushed exact multiples of the batch size, so nothing is
    # left buffered and the final state is the last oracle boundary.
    final = db.query("SELECT count(v) AS c, sum(v) AS s FROM stream", EXACT).rows()[0]
    oracle.check(int(final[0]), float(final[1]))
    assert int(final[0]) == 256 + rounds * BATCH


def test_untouched_table_is_constant_under_catalog_churn():
    """Version churn on one table must never disturb readers of another."""
    db = _seed_db()
    expected = db.query("SELECT count(w) AS c, sum(w) AS s FROM fixed", EXACT).rows()
    stop = threading.Event()

    def churner() -> None:
        try:
            for i in range(iterations(20)):
                db.ingest("stream", [(50_000 + i, 1.0)], flush=True)
        finally:
            stop.set()

    def reader() -> None:
        while True:
            got = db.query("SELECT count(w) AS c, sum(w) AS s FROM fixed", EXACT).rows()
            assert got == expected, "catalog churn on another table leaked into this read"
            if stop.is_set():
                break

    run_workers(churner, reader, reader)


def test_reader_during_refit_matches_oracle():
    """Model-served answers stay sane while maintenance refits concurrently."""
    db = _seed_db(observability=False)
    report = db.fit("stream", "v ~ t")
    assert report.accepted
    db.watch("stream", "v", order_column="t")
    contract = AccuracyContract(mode="approx", allow_exact_fallback=True)
    rounds = iterations(4)
    # The stream stays on the fitted line, so every committed boundary's
    # true avg is known and any accepted (re)fit serves it almost exactly.
    stream = [(256 + i, 2.5 * (256 + i) + 1.0) for i in range(rounds * BATCH)]
    boundaries = []
    count, total = 256, sum(2.5 * i + 1.0 for i in range(256))
    boundaries.append(total / count)
    for start in range(0, len(stream), BATCH):
        chunk = stream[start : start + BATCH]
        total += sum(v for _, v in chunk)
        count += len(chunk)
        boundaries.append(total / count)
    stop = threading.Event()

    def writer() -> None:
        try:
            for start in range(0, len(stream), BATCH):
                db.ingest("stream", stream[start : start + BATCH])
                db.maintain()
        finally:
            stop.set()

    def reader() -> None:
        while True:
            answer = db.query("SELECT avg(v) AS m FROM stream", contract)
            value = float(answer.scalar())
            closest = min(abs(value - b) / abs(b) for b in boundaries)
            assert closest < 0.05, (
                f"avg {value} is not near any committed boundary {boundaries}"
            )
            if stop.is_set():
                break

    run_workers(writer, reader, reader)


def test_concurrent_identical_queries_share_one_plan():
    """N threads hammering one statement: same answer, consistent caches."""
    db = _seed_db()
    sql = "SELECT sum(v) AS s FROM stream WHERE t < 100"
    expected = db.query(sql, EXACT).scalar()
    per_thread = iterations(30)

    def reader() -> None:
        for _ in range(per_thread):
            assert db.query(sql, EXACT).scalar() == expected

    run_workers(reader, reader, reader, reader)
    info = db.database.executor.plan_cache_info()
    assert info["size"] <= info["capacity"]
    metrics = db.metrics()
    served = sum(
        counter["value"]
        for counter in metrics["counters"].get("queries_total", [])
    )
    # 1 warm-up + 4 threads * per_thread, every one recorded exactly once
    # (the metrics registry is locked — unsynchronized += would drop some).
    assert served == 1 + 4 * per_thread


def test_checkpoint_during_ingest_recovers_every_acked_batch(tmp_path):
    """Appends and redo records commit atomically w.r.t. checkpoints.

    After any interleaving of flushes and checkpoints, a recovery must see
    every acknowledged batch exactly once — a batch in the snapshot but
    also in the post-reset WAL would come back twice; one that slipped
    between snapshot and reset would vanish.
    """
    rounds = iterations(6)
    with LawsDatabase.open(tmp_path / "db", **{"ingest_batch_size": BATCH}) as db:
        db.load_dict(
            "stream", {"t": list(range(64)), "v": [float(i) for i in range(64)]}
        )
        stop = threading.Event()

        def writer() -> None:
            try:
                for i in range(rounds):
                    db.ingest(
                        "stream",
                        [(1000 * (i + 1) + j, 1.0) for j in range(BATCH)],
                    )
            finally:
                stop.set()

        def checkpointer() -> None:
            while True:
                db.checkpoint(flush_ingest=False)
                if stop.is_set():
                    break

        run_workers(writer, checkpointer)
        acked = 64 + rounds * BATCH
        assert db.query("SELECT count(v) AS c FROM stream", EXACT).scalar() == acked

    reopened = LawsDatabase.open(tmp_path / "db")
    try:
        recovered = reopened.query("SELECT count(v) AS c FROM stream", EXACT).scalar()
        assert recovered == acked, (
            f"recovery saw {recovered} rows, acknowledged {acked} — a batch was "
            f"lost or double-applied across a concurrent checkpoint"
        )
    finally:
        reopened.close()


def test_reader_during_archive_never_sees_partial_table(tmp_path):
    """The logical table is invariant under archive/recall, so every answer
    must stay the full-table average — pre-archive exact, post-archive
    model-served, but never an exact scan over the shrunken remainder (the
    torn state: table swapped before the archive guard flipped)."""
    with LawsDatabase.open(tmp_path / "db", **{"ingest_batch_size": BATCH}) as db:
        rows = 512
        db.load_dict(
            "stream",
            {"t": list(range(rows)), "v": [2.5 * i + 1.0 for i in range(rows)]},
        )
        report = db.fit("stream", "v ~ t")
        assert report.accepted
        true_avg = sum(2.5 * i + 1.0 for i in range(rows)) / rows
        # The remainder after archiving t < 256 has a very different avg, so
        # a torn read is numerically far outside the model's error.
        contract = AccuracyContract(max_relative_error=0.1)
        stop = threading.Event()

        def archiver() -> None:
            try:
                for _ in range(iterations(3)):
                    db.archive("stream", "t < 256")
                    db.recall_archive("stream")
            finally:
                stop.set()

        def reader() -> None:
            while True:
                value = float(db.query("SELECT avg(v) AS m FROM stream", contract).scalar())
                assert abs(value - true_avg) / true_avg < 0.1, (
                    f"avg {value} vs logical-table avg {true_avg}: read saw the "
                    f"partial remainder mid-archive"
                )
                if stop.is_set():
                    break

        run_workers(archiver, reader, reader)


def test_snapshot_pinned_reader_is_stable_across_concurrent_commits():
    """A reader holding one snapshot gets identical answers while a writer
    commits batches underneath it — the tentpole property end to end."""
    db = _seed_db()
    snap = db.snapshot()
    sql = "SELECT count(v) AS c, sum(v) AS s FROM stream"
    pinned_answer = db.query(sql, EXACT, snapshot=snap).rows()
    stop = threading.Event()

    def writer() -> None:
        try:
            for i in range(iterations(10)):
                db.ingest("stream", [(90_000 + i, 3.0)], flush=True)
        finally:
            stop.set()

    def pinned_reader() -> None:
        while True:
            assert db.query(sql, EXACT, snapshot=snap).rows() == pinned_answer
            if stop.is_set():
                break

    run_workers(writer, pinned_reader, pinned_reader)
    assert db.query(sql, EXACT).rows() != pinned_answer


@pytest.mark.parametrize("threads", [4])
def test_metrics_and_journal_under_contention(threads):
    """Locked observability collectors: no lost increments, no exceptions."""
    db = _seed_db()
    per_thread = iterations(25)

    def worker() -> None:
        for i in range(per_thread):
            db.obs.metrics.inc("torture_total", route="r")
            db.obs.journal.record("torture", i=i)

    run_workers(*[worker for _ in range(threads)])
    total = db.obs.metrics.counter_total("torture_total")
    assert total == threads * per_thread
    assert db.obs.journal.totals()["torture"] == threads * per_thread
