"""End-to-end integration tests reproducing the paper's workflow (Figure 2).

These tests walk through the whole story on a small synthetic LOFAR dataset:
load → fit via the strawman → capture → approximate queries with error
bounds → storage optimisation → anomaly hunting → data change → re-fit.
"""

import numpy as np
import pytest

from repro import LawsDatabase
from repro.core.quality import QualityPolicy
from repro.datasets import lofar, tpcds_lite


class TestFigure2Workflow:
    """The five steps of the model interception workflow, end to end."""

    @pytest.fixture(scope="class")
    def setup(self):
        dataset = lofar.generate(num_sources=100, observations_per_source=36, seed=101)
        db = LawsDatabase()
        db.register_table(dataset.to_table("measurements"))
        return dataset, db

    def test_steps_1_to_5(self, setup):
        dataset, db = setup

        # (1)+(2): the user fits a model against what looks like a local dataframe.
        frame = db.strawman("measurements")
        report = frame.fit("intensity ~ powerlaw(frequency)", group_by="source")

        # (3): the database returns the goodness of fit and keeps the model.
        assert report.r_squared > 0.8
        assert db.models.has_model_for("measurements", "intensity")

        # (4)+(5): a later query is answered from the model, with error bounds.
        answer = db.approximate_sql(
            "SELECT intensity FROM measurements WHERE source = 17 AND frequency = 0.16"
        )
        assert answer.route == "point"
        assert answer.io["pages_read"] == 0
        truth = dataset.truth_for(17)
        assert answer.scalar() == pytest.approx(truth.p * 0.16**truth.alpha, rel=0.2)
        assert answer.column_errors["intensity"] > 0

    def test_table1_shape_parameter_table_is_small(self, setup):
        dataset, db = setup
        model = db.best_model("measurements", "intensity")
        params = model.parameter_table()
        assert params.num_rows <= dataset.num_sources
        raw_bytes = db.table("measurements").byte_size()
        assert params.byte_size() < 0.15 * raw_bytes

    def test_storage_report(self, setup):
        _, db = setup
        report = db.storage_report()
        assert report["total_model_bytes"] < report["total_raw_bytes"]
        assert "measurements" in report["tables"]

    def test_describe_renders(self, setup):
        _, db = setup
        text = db.describe()
        assert "measurements" in text and "model#" in text


class TestDataGrowthStory:
    """§2: more observations per source make the model more precise, not larger."""

    def test_parameter_table_size_constant_as_data_grows(self):
        small = lofar.generate(num_sources=50, observations_per_source=10, seed=7)
        large = lofar.generate(num_sources=50, observations_per_source=60, seed=7)

        sizes = {}
        errors = {}
        for name, dataset in (("small", small), ("large", large)):
            db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.5))
            db.register_table(dataset.to_table("measurements"))
            report = db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
            sizes[name] = report.model.stored_byte_size()
            alpha_errors = []
            for record in report.model.fit.records:
                if record.result is None:
                    continue
                truth = dataset.truth_for(record.key[0])
                if truth.is_anomalous:
                    continue
                alpha_errors.append(abs(record.result.param_dict["alpha"] - truth.alpha))
            errors[name] = float(np.mean(alpha_errors))

        assert sizes["large"] == sizes["small"]          # storage does not grow
        assert errors["large"] <= errors["small"] * 1.1  # precision does not degrade


class TestTpcdsWorkflow:
    def test_benchmark_queries_approximate_vs_exact(self, tpcds_db):
        # Harvest a second law (profit is linear in price and cost) and answer a
        # benchmark-style aggregate from the models.
        tpcds_db.fit("store_sales", "net_profit ~ linear(sales_price, wholesale_cost, quantity)")
        answer = tpcds_db.approximate_sql("SELECT avg(sales_price) AS m, max(sales_price) AS hi FROM store_sales")
        exact = tpcds_db.sql("SELECT avg(sales_price), max(sales_price) FROM store_sales").table.row(0)
        assert answer.route == "analytic-aggregate"
        assert answer.table.row(0)[0] == pytest.approx(exact[0], rel=0.05)
        assert answer.table.row(0)[1] == pytest.approx(exact[1], rel=0.3)

    def test_models_do_not_interfere_across_tables(self, tpcds_db):
        models = tpcds_db.captured_models()
        tables = {model.table_name for model in models}
        assert "store_sales" in tables
        for model in models:
            assert model.table_name in tpcds_db.table_names()


class TestMultiModelSelection:
    def test_better_model_wins(self):
        dataset = lofar.generate(num_sources=40, observations_per_source=30, seed=55, anomaly_fraction=0.0)
        db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.0))
        db.register_table(dataset.to_table("measurements"))
        db.fit("measurements", "intensity ~ constant(frequency)", group_by="source")
        db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
        best = db.best_model("measurements", "intensity")
        assert best.family_name == "powerlaw"

    def test_engine_uses_best_model(self):
        dataset = lofar.generate(num_sources=40, observations_per_source=30, seed=56, anomaly_fraction=0.0)
        db = LawsDatabase(quality_policy=QualityPolicy(min_r_squared=0.0))
        db.register_table(dataset.to_table("measurements"))
        db.fit("measurements", "intensity ~ constant(frequency)", group_by="source")
        db.fit("measurements", "intensity ~ powerlaw(frequency)", group_by="source")
        answer = db.approximate_sql(
            "SELECT intensity FROM measurements WHERE source = 3 AND frequency = 0.12"
        )
        best = db.best_model("measurements", "intensity")
        assert answer.used_model_ids == [best.model_id]
