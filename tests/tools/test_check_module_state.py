"""The module-state lint checker: catches what it should, allows what it must."""

from __future__ import annotations

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
_spec = importlib.util.spec_from_file_location(
    "check_module_state", REPO_ROOT / "tools" / "check_module_state.py"
)
check_module_state = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_module_state)


def _names(source: str) -> set[str]:
    return {name for _, name in check_module_state.scan_source(source)}


def test_flags_mutable_displays_and_constructors():
    source = (
        "CACHE = {}\n"
        "ITEMS = []\n"
        "SEEN = set()\n"
        "TABLE: dict = dict()\n"
        "import threading\n"
        "_lock = threading.Lock()\n"
        "_tls = threading.local()\n"
    )
    assert _names(source) == {"CACHE", "ITEMS", "SEEN", "TABLE", "_lock", "_tls"}


def test_ignores_immutable_bindings_and_nested_scopes():
    source = (
        "__all__ = ['f']\n"
        "LIMIT = 7\n"
        "NAMES = ('a', 'b')\n"
        "FROZEN = frozenset({'a'})\n"
        "def f():\n"
        "    local_cache = {}\n"
        "    return local_cache\n"
        "class C:\n"
        "    registry = {}\n"
    )
    assert _names(source) == set()


def test_check_flags_new_state_and_stale_allowlist(tmp_path, monkeypatch):
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text("STATE = {}\n")
    (pkg / "ok.py").write_text("LIMIT = 3\n")
    monkeypatch.setattr(
        check_module_state, "ALLOWLIST", {"src/pkg/gone.py": {"_old"}}
    )
    problems = check_module_state.check(["src/pkg"], tmp_path)
    assert any("bad.py:1" in p and "'STATE'" in p for p in problems)
    assert any("gone.py" in p and "allowlist entry" in p for p in problems)
    assert not any("ok.py" in p for p in problems)


def test_allowlisted_state_passes(tmp_path, monkeypatch):
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "tables.py").write_text("_DISPATCH = {'a': 1}\n")
    monkeypatch.setattr(
        check_module_state, "ALLOWLIST", {"src/pkg/tables.py": {"_DISPATCH"}}
    )
    assert check_module_state.check(["src/pkg"], tmp_path) == []


def test_repo_guarded_packages_are_clean():
    problems = check_module_state.check(
        list(check_module_state.DEFAULT_ROOTS), REPO_ROOT
    )
    assert problems == [], "\n".join(problems)
