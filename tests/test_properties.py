"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.approx.legal import BloomFilter
from repro.db.column import Column
from repro.db.table import Table
from repro.db.types import DataType
from repro.fitting.linear import fit_ols, solve_normal_equations
from repro.fitting.metrics import r_squared, residual_standard_error
from repro.baselines.histogram import build_equi_depth, build_equi_width

# Keep example counts moderate: the full suite should stay fast.
SETTINGS = settings(max_examples=60, deadline=None)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e6, max_value=1e6)
optional_floats = st.one_of(st.none(), finite_floats)
optional_ints = st.one_of(st.none(), st.integers(min_value=-10**9, max_value=10**9))


class TestColumnProperties:
    @SETTINGS
    @given(st.lists(optional_floats, max_size=200))
    def test_float_column_roundtrip(self, values):
        column = Column.from_values(DataType.FLOAT64, values)
        assert column.to_pylist() == values
        assert column.null_count == sum(1 for v in values if v is None)

    @SETTINGS
    @given(st.lists(optional_ints, max_size=200))
    def test_int_column_roundtrip(self, values):
        column = Column.from_values(DataType.INT64, values)
        assert column.to_pylist() == values

    @SETTINGS
    @given(st.lists(optional_floats, min_size=1, max_size=100), st.data())
    def test_filter_then_concat_preserves_values(self, values, data):
        column = Column.from_values(DataType.FLOAT64, values)
        mask = np.array(data.draw(st.lists(st.booleans(), min_size=len(values), max_size=len(values))))
        kept = column.filter(mask)
        dropped = column.filter(~mask)
        assert sorted(
            (v for v in kept.to_pylist() + dropped.to_pylist() if v is not None)
        ) == sorted(v for v in values if v is not None)

    @SETTINGS
    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_min_max_bound_all_values(self, values):
        column = Column.from_values(DataType.FLOAT64, values)
        assert column.min() == min(values)
        assert column.max() == max(values)


class TestTableProperties:
    @SETTINGS
    @given(st.lists(st.tuples(st.integers(-1000, 1000), finite_floats), min_size=1, max_size=100))
    def test_sort_is_a_permutation_and_ordered(self, rows):
        table = Table.from_dict("t", {"k": [r[0] for r in rows], "v": [r[1] for r in rows]})
        result = table.sort_by([("k", True)])
        keys = result.column("k").to_pylist()
        assert keys == sorted(keys)
        assert sorted(result.to_rows()) == sorted(table.to_rows())

    @SETTINGS
    @given(st.lists(finite_floats, min_size=1, max_size=100), st.integers(0, 120), st.integers(0, 120))
    def test_slice_matches_python_semantics(self, values, start, stop):
        table = Table.from_dict("t", {"v": values})
        assert table.slice(start, stop).column("v").to_pylist() == values[start:stop]


class TestBloomFilterProperties:
    @SETTINGS
    @given(st.sets(st.tuples(st.integers(0, 10**6), st.integers(0, 10**6)), min_size=1, max_size=300))
    def test_no_false_negatives_ever(self, items):
        bloom = BloomFilter(expected_items=len(items), false_positive_rate=0.01)
        bloom.add_many(items)
        assert all(item in bloom for item in items)

    @SETTINGS
    @given(st.integers(1, 10_000), st.floats(0.001, 0.2))
    def test_sizing_monotone_in_items(self, items, rate):
        small = BloomFilter(expected_items=items, false_positive_rate=rate)
        large = BloomFilter(expected_items=items * 2, false_positive_rate=rate)
        assert large.num_bits >= small.num_bits


class TestFittingProperties:
    @SETTINGS
    @given(
        st.lists(
            st.tuples(st.floats(-100, 100), st.floats(-100, 100)),
            min_size=5,
            max_size=100,
        ),
        st.floats(-5, 5),
        st.floats(-5, 5),
    )
    def test_ols_residuals_orthogonal_to_design(self, points, intercept, slope):
        x = np.array([p[0] for p in points])
        noise = np.array([p[1] for p in points]) * 0.01
        y = intercept + slope * x + noise
        X = np.column_stack([np.ones(len(x)), x])
        beta, _, residuals = fit_ols(X, y)
        # Normal equations: X^T residuals == 0 (within numerical tolerance).
        assert np.allclose(X.T @ residuals, 0.0, atol=1e-6 * max(1.0, np.abs(y).max()))

    @SETTINGS
    @given(
        st.lists(st.floats(-50, 50), min_size=6, max_size=80),
        st.floats(-3, 3),
        st.floats(-3, 3),
    )
    def test_lstsq_matches_normal_equations(self, xs, intercept, slope):
        x = np.array(xs)
        if len(np.unique(x)) < 3:
            return  # degenerate design, covered by rank-deficiency unit tests
        y = intercept + slope * x
        X = np.column_stack([np.ones(len(x)), x])
        if np.linalg.cond(X) > 1e7:
            # Normal equations square the condition number; on a nearly
            # rank-deficient design (e.g. x values of 1e-158 next to zeros)
            # the two solvers legitimately diverge — that regime belongs to
            # the rank-deficiency unit tests, not this equivalence property.
            return
        beta_a, _, _ = fit_ols(X, y)
        beta_b = solve_normal_equations(X, y)
        assert np.allclose(beta_a, beta_b, atol=1e-6)

    @SETTINGS
    @given(st.lists(finite_floats, min_size=3, max_size=100))
    def test_r_squared_of_perfect_prediction_is_one(self, values):
        y = np.array(values)
        assert r_squared(y, y) == 1.0

    @SETTINGS
    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=100), st.integers(1, 3))
    def test_rse_nonnegative(self, residuals, num_params):
        assert residual_standard_error(np.array(residuals), num_params) >= 0.0


class TestHistogramProperties:
    @SETTINGS
    @given(st.lists(st.floats(-1000, 1000), min_size=1, max_size=300), st.integers(1, 64))
    def test_bucket_counts_conserve_rows(self, values, buckets):
        column = Column.from_values(DataType.FLOAT64, values)
        for hist in (build_equi_width(column, buckets), build_equi_depth(column, buckets)):
            assert sum(b.count for b in hist.buckets) == len(values)

    @SETTINGS
    @given(st.lists(st.floats(0, 1000), min_size=2, max_size=300))
    def test_full_range_sum_matches_exact(self, values):
        column = Column.from_values(DataType.FLOAT64, values)
        hist = build_equi_width(column, 32)
        assert hist.estimate("sum") == np.sum(np.array(values)) or abs(
            hist.estimate("sum") - float(np.sum(np.array(values)))
        ) <= 1e-6 * max(1.0, abs(float(np.sum(np.array(values)))))
