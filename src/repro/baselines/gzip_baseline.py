"""Generic byte-level compression baseline.

SPARTAN, the semantic-compression system the paper cites, "is only barely
able to outperform standard gzip compression" — so gzip (zlib) is the
honest baseline any model-based compression claim must beat.  The table is
serialised column-at-a-time into its packed binary representation and
compressed with zlib at the default level.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.db.table import Table
from repro.db.types import DataType

__all__ = ["GzipCompressionResult", "compress_table", "decompress_column_count"]


@dataclass(frozen=True)
class GzipCompressionResult:
    """Byte accounting for zlib-compressing a table column by column."""

    raw_bytes: int
    compressed_bytes: int
    per_column_bytes: dict[str, int]
    level: int

    @property
    def ratio(self) -> float:
        return self.compressed_bytes / self.raw_bytes if self.raw_bytes else 0.0

    def summary(self) -> str:
        return f"raw={self.raw_bytes}B, zlib={self.compressed_bytes}B ({self.ratio:.1%})"


def _column_bytes(table: Table, name: str) -> bytes:
    column = table.column(name)
    if column.dtype is DataType.STRING:
        return ("\x00".join("" if v is None else str(v) for v in column.to_pylist())).encode("utf-8")
    return np.ascontiguousarray(column.values).tobytes()


def compress_table(table: Table, level: int = 6) -> GzipCompressionResult:
    """Compress every column of ``table`` with zlib and report the sizes."""
    per_column: dict[str, int] = {}
    total_compressed = 0
    for name in table.schema.names:
        compressed = zlib.compress(_column_bytes(table, name), level)
        per_column[name] = len(compressed)
        total_compressed += len(compressed)
    return GzipCompressionResult(
        raw_bytes=table.byte_size(),
        compressed_bytes=total_compressed,
        per_column_bytes=per_column,
        level=level,
    )


def decompress_column_count(table: Table, level: int = 6) -> int:
    """Sanity helper: compress+decompress one column and return its byte length.

    Used by tests to confirm the baseline round-trips (zlib is lossless, so
    this is mostly a guard against serialisation bugs).
    """
    if not table.schema.names:
        return 0
    name = table.schema.names[0]
    raw = _column_bytes(table, name)
    return len(zlib.decompress(zlib.compress(raw, level)))
