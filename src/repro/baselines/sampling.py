"""Sampling-based approximate query answering (BlinkDB-style baseline).

§1 of the paper names sampling as one of the two established approaches to
approximate query answering: "only a subset of data is used to answer a
time-critical query ... predicting the extent of these errors is well
understood."  This baseline implements uniform and stratified row sampling
with the classic scale-up estimators and central-limit error bounds, so the
benchmarks can compare captured models against the approach they claim to
beat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approx.error_bounds import ErrorEstimate
from repro.db.table import Table
from repro.errors import ApproximationError

__all__ = ["SampleEstimate", "UniformSampler", "StratifiedSampler"]


@dataclass(frozen=True)
class SampleEstimate:
    """An aggregate estimated from a sample, with its standard error."""

    function: str
    value: float
    standard_error: float
    sample_rows: int
    total_rows: int

    @property
    def error(self) -> ErrorEstimate:
        return ErrorEstimate(value=self.value, standard_error=self.standard_error)

    @property
    def sampling_fraction(self) -> float:
        return self.sample_rows / self.total_rows if self.total_rows else 0.0


class UniformSampler:
    """Uniform row sampling over a table."""

    def __init__(self, table: Table, fraction: float, seed: int = 0) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ApproximationError("sampling fraction must be in (0, 1]")
        self.table = table
        self.fraction = fraction
        self.seed = seed
        self._sample = self._draw()

    def _draw(self) -> Table:
        rng = np.random.default_rng(self.seed)
        n = self.table.num_rows
        size = max(1, int(round(n * self.fraction)))
        indices = rng.choice(n, size=min(size, n), replace=False)
        return self.table.take(np.sort(indices))

    @property
    def sample(self) -> Table:
        return self._sample

    def sample_bytes(self) -> int:
        """Storage footprint of the materialised sample (the budget knob)."""
        return self._sample.byte_size()

    # -- estimators -----------------------------------------------------------------

    def estimate(self, function: str, column: str, predicate_mask: np.ndarray | None = None) -> SampleEstimate:
        """Estimate ``function(column)`` over the full table from the sample.

        ``predicate_mask`` optionally restricts the sample rows (the caller
        evaluates the predicate on the sample table).
        """
        function = function.lower()
        values = self._sample.column(column).nonnull_numpy().astype(np.float64)
        validity = self._sample.column(column).validity
        if predicate_mask is not None:
            mask = np.asarray(predicate_mask, dtype=bool)
            values = self._sample.column(column).to_numpy().astype(np.float64)[mask & validity]
        n_sample = len(values)
        n_total = self.table.num_rows
        scale = 1.0 / self.fraction

        if n_sample == 0:
            return SampleEstimate(function, float("nan"), float("inf"), 0, n_total)

        std = float(np.std(values, ddof=1)) if n_sample > 1 else 0.0
        if function == "avg":
            return SampleEstimate(function, float(np.mean(values)), std / np.sqrt(n_sample), n_sample, n_total)
        if function == "sum":
            estimate = float(np.sum(values)) * scale
            se = std * np.sqrt(n_sample) * scale
            return SampleEstimate(function, estimate, se, n_sample, n_total)
        if function == "count":
            estimate = n_sample * scale
            # Binomial standard error on the matching fraction, scaled up.
            p = n_sample / max(len(self._sample.column(column).to_pylist()), 1)
            se = float(np.sqrt(max(p * (1 - p), 0.0) * self.table.num_rows / self.fraction))
            return SampleEstimate(function, estimate, se, n_sample, n_total)
        if function == "min":
            return SampleEstimate(function, float(np.min(values)), std, n_sample, n_total)
        if function == "max":
            return SampleEstimate(function, float(np.max(values)), std, n_sample, n_total)
        raise ApproximationError(f"unsupported sample estimator {function!r}")


class StratifiedSampler:
    """Stratified sampling: a fixed number of rows per group (BlinkDB's trick
    for making rare groups answerable)."""

    def __init__(self, table: Table, group_column: str, rows_per_group: int, seed: int = 0) -> None:
        if rows_per_group < 1:
            raise ApproximationError("rows_per_group must be at least 1")
        self.table = table
        self.group_column = group_column
        self.rows_per_group = rows_per_group
        self.seed = seed
        self._sample, self._group_sizes = self._draw()

    def _draw(self) -> tuple[Table, dict]:
        rng = np.random.default_rng(self.seed)
        keys = self.table.column(self.group_column).to_pylist()
        by_group: dict = {}
        for index, key in enumerate(keys):
            by_group.setdefault(key, []).append(index)
        chosen: list[int] = []
        group_sizes: dict = {}
        for key, indices in by_group.items():
            group_sizes[key] = len(indices)
            if len(indices) <= self.rows_per_group:
                chosen.extend(indices)
            else:
                chosen.extend(rng.choice(indices, size=self.rows_per_group, replace=False).tolist())
        return self.table.take(np.array(sorted(chosen), dtype=np.int64)), group_sizes

    @property
    def sample(self) -> Table:
        return self._sample

    def sample_bytes(self) -> int:
        return self._sample.byte_size()

    def estimate_group_avg(self, value_column: str) -> dict:
        """Per-group AVG estimates (each group estimated from its own rows)."""
        keys = self._sample.column(self.group_column).to_pylist()
        values = self._sample.column(value_column).to_numpy().astype(np.float64)
        validity = self._sample.column(value_column).validity
        sums: dict = {}
        counts: dict = {}
        for key, value, valid in zip(keys, values, validity):
            if not valid:
                continue
            sums[key] = sums.get(key, 0.0) + float(value)
            counts[key] = counts.get(key, 0) + 1
        return {key: sums[key] / counts[key] for key in sums if counts.get(key)}
