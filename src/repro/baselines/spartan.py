"""SPARTAN-style predictive semantic compression (simplified baseline).

Babu et al.'s SPARTAN compresses a table by learning which columns can be
*predicted* from other columns, storing the predictor plus error-bounded
corrections instead of the column.  The full system learns Bayesian networks
and CART trees; this baseline keeps the essential mechanism at the scale the
benchmarks need:

* for every numeric column, try to predict it with a linear model over the
  other numeric columns;
* if the prediction is within an absolute error tolerance for a large enough
  fraction of rows, store (model + outlier corrections) instead of the
  column;
* columns that cannot be predicted well are kept verbatim.

The reported size is what a SPARTAN-like system would store; the comparison
against model-harvesting compression (and plain zlib) is the point of the
``bench_semantic_compression`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.table import Table
from repro.errors import CompressionError
from repro.fitting.families import LinearModel
from repro.fitting.fit import fit_model

__all__ = ["ColumnPlan", "SpartanCompressionResult", "compress_table"]


@dataclass(frozen=True)
class ColumnPlan:
    """How one column is stored: predicted (with corrections) or verbatim."""

    column: str
    predicted: bool
    predictor_columns: tuple[str, ...] = ()
    outlier_count: int = 0
    stored_bytes: int = 0


@dataclass
class SpartanCompressionResult:
    """Overall byte accounting of the SPARTAN-style compression."""

    raw_bytes: int
    stored_bytes: int
    error_tolerance: float
    plans: list[ColumnPlan] = field(default_factory=list)

    @property
    def ratio(self) -> float:
        return self.stored_bytes / self.raw_bytes if self.raw_bytes else 0.0

    @property
    def predicted_columns(self) -> list[str]:
        return [plan.column for plan in self.plans if plan.predicted]

    def summary(self) -> str:
        return (
            f"raw={self.raw_bytes}B, spartan={self.stored_bytes}B ({self.ratio:.1%}), "
            f"predicted columns: {self.predicted_columns or 'none'}"
        )


def compress_table(
    table: Table,
    error_tolerance: float = 0.05,
    max_outlier_fraction: float = 0.2,
) -> SpartanCompressionResult:
    """Compress ``table`` with the simplified SPARTAN scheme.

    ``error_tolerance`` is the *relative* per-value tolerance (fraction of the
    column's mean absolute value) within which a predicted value counts as
    good enough; rows outside it are stored as explicit corrections.
    """
    if error_tolerance < 0:
        raise CompressionError("error_tolerance must be non-negative")

    numeric = [c.name for c in table.schema if c.dtype.is_numeric]
    raw_bytes = table.byte_size()
    stored = 0
    plans: list[ColumnPlan] = []

    arrays = {name: table.column(name).to_numpy().astype(np.float64) for name in numeric}
    validity = {name: table.column(name).validity for name in numeric}

    for column in table.schema.names:
        width = table.schema.dtype_of(column).byte_width
        verbatim_bytes = table.num_rows * width
        if column not in numeric or len(numeric) < 2:
            stored += verbatim_bytes
            plans.append(ColumnPlan(column=column, predicted=False, stored_bytes=verbatim_bytes))
            continue

        predictors = tuple(name for name in numeric if name != column)
        mask = validity[column].copy()
        for name in predictors:
            mask &= validity[name]
        if mask.sum() < len(predictors) + 2:
            stored += verbatim_bytes
            plans.append(ColumnPlan(column=column, predicted=False, stored_bytes=verbatim_bytes))
            continue

        inputs = {name: arrays[name][mask] for name in predictors}
        y = arrays[column][mask]
        try:
            fit = fit_model(LinearModel(predictors), inputs, y, output_name=column)
        except Exception:  # rank-deficient or degenerate columns stay verbatim
            stored += verbatim_bytes
            plans.append(ColumnPlan(column=column, predicted=False, stored_bytes=verbatim_bytes))
            continue

        predictions = fit.predict(inputs)
        scale = float(np.mean(np.abs(y))) or 1.0
        absolute_tolerance = error_tolerance * scale
        outliers = int(np.sum(np.abs(y - predictions) > absolute_tolerance))
        outliers += int((~mask).sum())  # rows we could not predict at all

        if outliers / max(table.num_rows, 1) > max_outlier_fraction:
            stored += verbatim_bytes
            plans.append(ColumnPlan(column=column, predicted=False, stored_bytes=verbatim_bytes))
            continue

        # Stored: the model parameters + one (row id, exact value) pair per outlier.
        model_bytes = (fit.family.num_params + 2) * 8
        correction_bytes = outliers * (8 + width)
        column_bytes = model_bytes + correction_bytes
        stored += column_bytes
        plans.append(
            ColumnPlan(
                column=column,
                predicted=True,
                predictor_columns=predictors,
                outlier_count=outliers,
                stored_bytes=column_bytes,
            )
        )

    return SpartanCompressionResult(
        raw_bytes=raw_bytes,
        stored_bytes=stored,
        error_tolerance=error_tolerance,
        plans=plans,
    )
