"""Baselines from the related work the paper cites.

* :mod:`repro.baselines.sampling` — BlinkDB-style uniform / stratified sampling.
* :mod:`repro.baselines.histogram` — histogram synopses (Ioannidis & Poosala).
* :mod:`repro.baselines.gzip_baseline` — generic zlib compression.
* :mod:`repro.baselines.mauvedb` — MauveDB-style gridded model views.
* :mod:`repro.baselines.functiondb` — FunctionDB-style piecewise functions.
* :mod:`repro.baselines.spartan` — SPARTAN-style predictive compression.
"""

from repro.baselines import functiondb, gzip_baseline, histogram, mauvedb, sampling, spartan

__all__ = ["functiondb", "gzip_baseline", "histogram", "mauvedb", "sampling", "spartan"]
