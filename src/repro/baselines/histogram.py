"""Histogram synopses (Ioannidis & Poosala-style baseline).

The second established AQP approach the paper cites: synopses are
"compressed lossy approximations of the data".  Equi-width and equi-depth
one-dimensional histograms support approximate COUNT/SUM/AVG/MIN/MAX over a
column and selectivity estimates for range predicates, with the usual
uniform-within-bucket assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.column import Column
from repro.errors import ApproximationError

__all__ = ["HistogramBucket", "Histogram", "build_equi_width", "build_equi_depth"]


@dataclass(frozen=True)
class HistogramBucket:
    """One histogram bucket: [lower, upper), row count and value sum."""

    lower: float
    upper: float
    count: int
    value_sum: float

    @property
    def midpoint(self) -> float:
        return (self.lower + self.upper) / 2.0


@dataclass
class Histogram:
    """A one-dimensional histogram synopsis of a numeric column."""

    column_name: str
    buckets: list[HistogramBucket]
    total_count: int
    min_value: float
    max_value: float

    # -- storage accounting ------------------------------------------------------

    def byte_size(self) -> int:
        """Nominal storage: 4 doubles per bucket."""
        return len(self.buckets) * 4 * 8

    # -- estimators ----------------------------------------------------------------

    def estimate(self, function: str, low: float | None = None, high: float | None = None) -> float:
        """Estimate an aggregate over rows whose value lies in [low, high]."""
        function = function.lower()
        low = self.min_value if low is None else low
        high = self.max_value if high is None else high
        if function == "count":
            return self._range_count(low, high)
        if function == "sum":
            return self._range_sum(low, high)
        if function == "avg":
            count = self._range_count(low, high)
            return self._range_sum(low, high) / count if count > 0 else float("nan")
        if function == "min":
            for bucket in self.buckets:
                if bucket.count > 0 and bucket.upper >= low:
                    return max(bucket.lower, low)
            return float("nan")
        if function == "max":
            for bucket in reversed(self.buckets):
                if bucket.count > 0 and bucket.lower <= high:
                    return min(bucket.upper, high)
            return float("nan")
        raise ApproximationError(f"unsupported histogram estimator {function!r}")

    def selectivity(self, low: float, high: float) -> float:
        """Estimated fraction of rows with value in [low, high]."""
        if self.total_count == 0:
            return 0.0
        return self._range_count(low, high) / self.total_count

    def _overlap_fraction(self, bucket: HistogramBucket, low: float, high: float) -> float:
        width = bucket.upper - bucket.lower
        if width <= 0:
            return 1.0 if low <= bucket.lower <= high else 0.0
        overlap = max(0.0, min(high, bucket.upper) - max(low, bucket.lower))
        return overlap / width

    def _range_count(self, low: float, high: float) -> float:
        return sum(bucket.count * self._overlap_fraction(bucket, low, high) for bucket in self.buckets)

    def _range_sum(self, low: float, high: float) -> float:
        return sum(bucket.value_sum * self._overlap_fraction(bucket, low, high) for bucket in self.buckets)


def build_equi_width(column: Column, num_buckets: int = 32, name: str = "column") -> Histogram:
    """Equi-width histogram: buckets of equal value-range width."""
    values = column.nonnull_numpy().astype(np.float64)
    return _build(values, num_buckets, name, equi_depth=False)


def build_equi_depth(column: Column, num_buckets: int = 32, name: str = "column") -> Histogram:
    """Equi-depth histogram: buckets holding (roughly) equal row counts."""
    values = column.nonnull_numpy().astype(np.float64)
    return _build(values, num_buckets, name, equi_depth=True)


def _build(values: np.ndarray, num_buckets: int, name: str, equi_depth: bool) -> Histogram:
    if num_buckets < 1:
        raise ApproximationError("a histogram needs at least one bucket")
    if len(values) == 0:
        return Histogram(column_name=name, buckets=[], total_count=0, min_value=0.0, max_value=0.0)

    lo, hi = float(np.min(values)), float(np.max(values))
    if hi <= lo:
        # All values identical: one degenerate bucket holding everything.
        bucket = HistogramBucket(lower=lo, upper=lo, count=len(values), value_sum=float(values.sum()))
        return Histogram(column_name=name, buckets=[bucket], total_count=len(values), min_value=lo, max_value=lo)
    if equi_depth:
        quantiles = np.quantile(values, np.linspace(0.0, 1.0, num_buckets + 1))
        edges = np.unique(quantiles)
        if len(edges) < 2:
            edges = np.array([lo, hi])
    else:
        edges = np.linspace(lo, hi, num_buckets + 1)

    buckets: list[HistogramBucket] = []
    for i in range(len(edges) - 1):
        lower, upper = float(edges[i]), float(edges[i + 1])
        if i == len(edges) - 2:
            mask = (values >= lower) & (values <= upper)
        else:
            mask = (values >= lower) & (values < upper)
        buckets.append(
            HistogramBucket(
                lower=lower,
                upper=upper,
                count=int(mask.sum()),
                value_sum=float(values[mask].sum()),
            )
        )
    return Histogram(column_name=name, buckets=buckets, total_count=len(values), min_value=lo, max_value=hi)
