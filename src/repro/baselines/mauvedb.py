"""MauveDB-style model-based views (gridded regression baseline).

Deshpande & Madden's MauveDB exposes "model-based views": the raw data is
projected onto a *fixed grid* of the input domain through a user-chosen
(regression or interpolation) model, and queries run against the gridded
view.  The key differences from the paper's proposal — which this baseline
makes measurable — are that (1) the model must be explicitly declared per
view rather than harvested, and (2) the grid is fixed up front, so accuracy
is bounded by the grid resolution rather than by the model fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ApproximationError
from repro.fitting.families import Polynomial
from repro.fitting.fit import fit_model

__all__ = ["ModelBasedView", "build_regression_view"]


@dataclass
class ModelBasedView:
    """A gridded view materialised from per-group regression models."""

    name: str
    group_column: str | None
    input_column: str
    output_column: str
    grid: np.ndarray
    #: group key -> predicted outputs over the grid (single key None when ungrouped)
    gridded_values: dict

    def to_table(self) -> Table:
        """Materialise the view as a relational table (what MauveDB queries)."""
        defs = []
        data: dict[str, list] = {}
        if self.group_column is not None:
            defs.append(ColumnDef(self.group_column, DataType.infer(next(iter(self.gridded_values)))))
            data[self.group_column] = []
        defs.append(ColumnDef(self.input_column, DataType.FLOAT64))
        defs.append(ColumnDef(self.output_column, DataType.FLOAT64))
        data[self.input_column] = []
        data[self.output_column] = []

        for key, values in self.gridded_values.items():
            for x, y in zip(self.grid, values):
                if self.group_column is not None:
                    data[self.group_column].append(key)
                data[self.input_column].append(float(x))
                data[self.output_column].append(float(y))
        return Table.from_dict(self.name, data, Schema(defs))

    def lookup(self, x: float, group_key=None) -> float:
        """Point lookup with nearest-grid-point semantics (MauveDB's grid answer)."""
        values = self.gridded_values.get(group_key if self.group_column is not None else None)
        if values is None:
            raise ApproximationError(f"view {self.name!r} has no group {group_key!r}")
        index = int(np.argmin(np.abs(self.grid - x)))
        return float(values[index])

    def byte_size(self) -> int:
        """Storage cost of the materialised grid."""
        rows = len(self.gridded_values) * len(self.grid)
        width = 16 if self.group_column is None else 24
        return rows * width


def build_regression_view(
    table: Table,
    input_column: str,
    output_column: str,
    group_column: str | None = None,
    grid_points: int = 16,
    degree: int = 2,
    name: str = "model_view",
) -> ModelBasedView:
    """Build a MauveDB-style regression view over a fixed input grid."""
    x_all = table.column(input_column).to_numpy().astype(np.float64)
    finite = np.isfinite(x_all)
    if not finite.any():
        raise ApproximationError(f"column {input_column!r} has no finite values to grid")
    grid = np.linspace(float(np.min(x_all[finite])), float(np.max(x_all[finite])), grid_points)

    y_all = table.column(output_column).to_numpy().astype(np.float64)
    gridded: dict = {}

    if group_column is None:
        fit = fit_model(Polynomial(degree=degree), {"x": x_all}, y_all, output_name=output_column)
        gridded[None] = fit.predict({"x": grid})
    else:
        keys = table.column(group_column).to_pylist()
        by_group: dict = {}
        for index, key in enumerate(keys):
            if key is None:
                continue
            by_group.setdefault(key, []).append(index)
        for key, indices in by_group.items():
            rows = np.asarray(indices, dtype=np.int64)
            x, y = x_all[rows], y_all[rows]
            finite_rows = np.isfinite(x) & np.isfinite(y)
            if finite_rows.sum() <= degree + 1:
                continue
            fit = fit_model(Polynomial(degree=degree), {"x": x[finite_rows]}, y[finite_rows], output_name=output_column)
            gridded[key] = fit.predict({"x": grid})

    return ModelBasedView(
        name=name,
        group_column=group_column,
        input_column=input_column,
        output_column=output_column,
        grid=grid,
        gridded_values=gridded,
    )
