"""FunctionDB-style piecewise-polynomial function tables.

Thiagarajan & Madden's FunctionDB stores data as *piecewise polynomial
functions* and answers queries algebraically over them, gridding only when
unavoidable.  This baseline fits one piecewise polynomial per group and
answers point and aggregate queries from the functions, so the benchmarks
can compare it against the free-form harvested models the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.table import Table
from repro.errors import ApproximationError, InsufficientDataError
from repro.fitting.piecewise import fit_piecewise

__all__ = ["FunctionTable", "build_function_table"]


@dataclass
class FunctionTable:
    """A table represented as one piecewise polynomial per group."""

    name: str
    group_column: str | None
    input_column: str
    output_column: str
    #: group key (or None) -> FitResult with a PiecewisePolynomial family
    functions: dict

    # -- queries ----------------------------------------------------------------

    def evaluate(self, x: float | np.ndarray, group_key=None) -> np.ndarray:
        fit = self._function_for(group_key)
        return fit.predict({self.input_column: np.atleast_1d(np.asarray(x, dtype=np.float64))})

    def point(self, x: float, group_key=None) -> float:
        return float(self.evaluate(x, group_key)[0])

    def aggregate(self, function: str, x_values: np.ndarray, group_key=None) -> float:
        """Aggregate the function over a set of x values (gridded evaluation)."""
        values = self.evaluate(np.asarray(x_values, dtype=np.float64), group_key)
        function = function.lower()
        if function == "avg":
            return float(np.mean(values))
        if function == "sum":
            return float(np.sum(values))
        if function == "min":
            return float(np.min(values))
        if function == "max":
            return float(np.max(values))
        raise ApproximationError(f"unsupported FunctionDB aggregate {function!r}")

    def _function_for(self, group_key):
        key = group_key if self.group_column is not None else None
        if key not in self.functions:
            raise ApproximationError(f"function table {self.name!r} has no group {group_key!r}")
        return self.functions[key]

    # -- storage accounting ----------------------------------------------------------

    def byte_size(self) -> int:
        total = 0
        for fit in self.functions.values():
            total += fit.family.byte_size()
            if self.group_column is not None:
                total += 8  # the group key itself
        return total

    @property
    def num_groups(self) -> int:
        return len(self.functions)


def build_function_table(
    table: Table,
    input_column: str,
    output_column: str,
    group_column: str | None = None,
    num_segments: int = 4,
    degree: int = 1,
    name: str = "function_table",
) -> FunctionTable:
    """Fit piecewise polynomials (per group) and wrap them as a FunctionTable."""
    x_all = table.column(input_column).to_numpy().astype(np.float64)
    y_all = table.column(output_column).to_numpy().astype(np.float64)
    functions: dict = {}

    if group_column is None:
        functions[None] = fit_piecewise(
            x_all, y_all, num_segments=num_segments, degree=degree,
            output_name=output_column, input_name=input_column,
        )
    else:
        keys = table.column(group_column).to_pylist()
        by_group: dict = {}
        for index, key in enumerate(keys):
            if key is None:
                continue
            by_group.setdefault(key, []).append(index)
        for key, indices in by_group.items():
            rows = np.asarray(indices, dtype=np.int64)
            try:
                functions[key] = fit_piecewise(
                    x_all[rows], y_all[rows], num_segments=num_segments, degree=degree,
                    output_name=output_column, input_name=input_column,
                )
            except InsufficientDataError:
                continue  # groups too small for the requested segmentation are skipped

    if not functions:
        raise InsufficientDataError("no group had enough observations to fit a piecewise function")
    return FunctionTable(
        name=name,
        group_column=group_column,
        input_column=input_column,
        output_column=output_column,
        functions=functions,
    )
