"""Declarative SLOs with multi-window error-budget burn-rate alerting.

An :class:`SLO` declares an objective over a per-query good/bad signal:

* ``latency`` — a query is bad when its wall time exceeds
  ``threshold_seconds`` (p50/p99 percentiles are reported alongside);
* ``compliance`` — a *verified* query is bad when its observed relative
  error violated the contract's budget (the planner's sampled audit);
* ``degraded`` — a query is bad when it was served from surviving models
  while a needed component was failed/quarantined.

The error budget is ``1 - objective``.  Burn rate over a window is the
fraction of bad events in that window divided by the budget — burn 1.0
spends the budget exactly at the objective's rate; burn 14 exhausts a
30-day budget in ~2 days.  Each SLO is evaluated over two windows (the
SRE-style multiwindow alert): a *fast* window with a high threshold that
catches cliffs within minutes, and a *slow* window with a low threshold
that catches sustained simmer.  When either window's burn crosses its
threshold the SLO alerts: the breach is journaled (``slo-burn``) and the
component ``slo:<name>`` is degraded in the PR-8 health registry — which
bumps the model-store version, so cached plans are re-costed and the
degradation is visible to ``health_report()`` consumers.  Recovery marks
the component healthy again (``slo-recovered``).

The clock is injectable so burn windows are testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["SLO", "SLOEngine", "DEFAULT_SLOS"]


@dataclass(frozen=True)
class SLO:
    """One declarative service-level objective."""

    name: str
    #: "latency" | "compliance" | "degraded"
    kind: str
    #: Target good fraction (e.g. 0.99 → a 1% error budget).
    objective: float
    #: Latency SLOs only: wall time above this is a bad event.
    threshold_seconds: float | None = None
    fast_window_seconds: float = 300.0
    fast_burn_threshold: float = 14.0
    slow_window_seconds: float = 3600.0
    slow_burn_threshold: float = 6.0
    #: Minimum events in a window before its burn rate is meaningful.
    min_events: int = 24

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"SLO {self.name!r}: objective must be in (0, 1)")
        if self.kind not in ("latency", "compliance", "degraded"):
            raise ValueError(f"SLO {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "latency" and self.threshold_seconds is None:
            raise ValueError(f"SLO {self.name!r}: latency SLOs need threshold_seconds")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


#: The default objectives LawsDatabase wires in: p99-style latency under the
#: slow-query threshold, contract compliance of verified answers, and a cap
#: on disclosed-degraded serving.
DEFAULT_SLOS = (
    SLO(name="latency", kind="latency", objective=0.99, threshold_seconds=0.25),
    SLO(name="compliance", kind="compliance", objective=0.95),
    SLO(name="degraded-serving", kind="degraded", objective=0.99),
)


class _SLOState:
    """Mutable tracking state behind one declared SLO."""

    __slots__ = ("slo", "events", "alerting", "alert_window", "breaches")

    def __init__(self, slo: SLO, capacity: int) -> None:
        self.slo = slo
        #: (timestamp, bad) pairs, oldest first, bounded.
        self.events: deque[tuple[float, bool]] = deque(maxlen=capacity)
        self.alerting = False
        self.alert_window: str | None = None
        self.breaches = 0

    def window_stats(self, window_seconds: float, now: float) -> tuple[int, int]:
        cutoff = now - window_seconds
        total = bad = 0
        for timestamp, is_bad in reversed(self.events):
            if timestamp < cutoff:
                break
            total += 1
            if is_bad:
                bad += 1
        return total, bad


class SLOEngine:
    """Evaluates declared SLOs over the live query stream."""

    def __init__(
        self,
        health: Any = None,
        journal: Any = None,
        metrics: Any = None,
        slos: tuple[SLO, ...] | list[SLO] = DEFAULT_SLOS,
        clock: Callable[[], float] = time.time,
        capacity: int = 4096,
        evaluate_every: int = 8,
    ) -> None:
        self.health = health
        self.journal = journal
        self.metrics = metrics
        self.clock = clock
        self.enabled = True
        self.capacity = capacity
        self.evaluate_every = evaluate_every
        self._states: dict[str, _SLOState] = {}
        self._latencies: deque[float] = deque(maxlen=capacity)
        self._observed = 0
        self._lock = threading.Lock()
        for slo in slos:
            self.define(slo)

    def define(self, slo: SLO) -> None:
        """Declare (or replace) one SLO; tracking starts empty."""
        with self._lock:
            self._states[slo.name] = _SLOState(slo, self.capacity)

    def slos(self) -> list[SLO]:
        with self._lock:
            return [state.slo for state in self._states.values()]

    # -- observation ----------------------------------------------------------

    def observe_query(
        self,
        elapsed_seconds: float,
        degraded: bool = False,
        violated: bool | None = None,
    ) -> None:
        """Fold one served query into every SLO's event stream.

        ``violated`` is three-valued: None when the answer was not sampled
        for verification (compliance SLOs only count audited answers —
        unaudited ones are evidence of nothing).
        """
        if not self.enabled:
            return
        now = self.clock()
        with self._lock:
            self._observed += 1
            self._latencies.append(elapsed_seconds)
            for state in self._states.values():
                slo = state.slo
                if slo.kind == "latency":
                    state.events.append((now, elapsed_seconds > slo.threshold_seconds))
                elif slo.kind == "degraded":
                    state.events.append((now, degraded))
                elif violated is not None:  # compliance, audited answers only
                    state.events.append((now, violated))
            due = self._observed % self.evaluate_every == 0
        if due:
            self.evaluate()

    # -- evaluation -----------------------------------------------------------

    def evaluate(self) -> dict[str, Any]:
        """Re-evaluate every SLO's burn rates; fire/clear alerts; report."""
        now = self.clock()
        report: dict[str, Any] = {}
        transitions: list[tuple[SLO, bool, str | None, dict[str, Any]]] = []
        with self._lock:
            for name, state in self._states.items():
                slo = state.slo
                windows: dict[str, Any] = {}
                alerting_window: str | None = None
                for label, window_seconds, threshold in (
                    ("fast", slo.fast_window_seconds, slo.fast_burn_threshold),
                    ("slow", slo.slow_window_seconds, slo.slow_burn_threshold),
                ):
                    total, bad = state.window_stats(window_seconds, now)
                    bad_fraction = bad / total if total else 0.0
                    burn = bad_fraction / slo.error_budget if slo.error_budget > 0 else 0.0
                    breaching = total >= slo.min_events and burn >= threshold
                    windows[label] = {
                        "window_seconds": window_seconds,
                        "events": total,
                        "bad": bad,
                        "bad_fraction": bad_fraction,
                        "burn_rate": burn,
                        "burn_threshold": threshold,
                        "alerting": breaching,
                    }
                    if breaching and alerting_window is None:
                        alerting_window = label
                now_alerting = alerting_window is not None
                if now_alerting != state.alerting:
                    transitions.append((slo, now_alerting, alerting_window, windows))
                    state.alerting = now_alerting
                    state.alert_window = alerting_window
                    if now_alerting:
                        state.breaches += 1
                report[name] = {
                    "kind": slo.kind,
                    "objective": slo.objective,
                    "error_budget": slo.error_budget,
                    "alerting": now_alerting,
                    "alert_window": alerting_window,
                    "breaches": state.breaches,
                    "windows": windows,
                }
        # Side effects outside the lock: health/journal/metrics each take
        # their own locks, and holding ours across them invites ordering
        # deadlocks with concurrent observers.
        for slo, fired, window, windows in transitions:
            component = f"slo:{slo.name}"
            if fired:
                burn = windows[window]["burn_rate"]
                reason = (
                    f"error-budget burn {burn:.1f}x over the {window} window "
                    f"(objective {slo.objective:g})"
                )
                if self.metrics is not None:
                    self.metrics.inc("slo_breaches_total", slo=slo.name, window=window)
                if self.journal is not None:
                    self.journal.record(
                        "slo-burn",
                        slo=slo.name,
                        window=window,
                        burn_rate=burn,
                        objective=slo.objective,
                    )
                if self.health is not None:
                    self.health.mark_degraded(component, reason)
            else:
                if self.journal is not None:
                    self.journal.record("slo-recovered", slo=slo.name)
                if self.health is not None:
                    self.health.mark_healthy(component, "error-budget burn subsided")
        return report

    # -- reporting ------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Current burn-rate evaluation plus latency percentiles."""
        evaluation = self.evaluate()
        with self._lock:
            latencies = sorted(self._latencies)
            observed = self._observed
        return {
            "observed_queries": observed,
            "latency_percentiles": {
                "p50": _percentile(latencies, 0.50),
                "p99": _percentile(latencies, 0.99),
            },
            "objectives": evaluation,
        }


def _percentile(ordered: list[float], fraction: float) -> float | None:
    if not ordered:
        return None
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]
