"""The flight recorder: the system's own telemetry, dogfooded as data.

The paper's economics — models are a few KB and answer with zero raw IO —
apply to the system's *own* metrics series too.  Instead of exporting flat
snapshots, the flight recorder flushes per-query latency records, span-
derived per-operator timings and metrics-registry snapshots into reserved
``_telemetry_*`` tables **through the real streaming-ingest path**, so the
PR-1 machinery watches the system watch itself: a baseline model is fitted
over the query-latency series, the drift detector scores every flushed
batch, and a latency regression surfaces as the same journaled
``drift-detected`` event a drifting sensor table would produce.

Feedback-loop discipline: anything named ``_telemetry_*`` is excluded from
the harvester's auto-capture paths, from feedback verification sampling,
from the slow-query log and from the flight recorder itself (the planner
checks :func:`is_telemetry_table` via the plan's ``telemetry`` flag) — so
querying the telemetry warehouse can never generate more telemetry than it
reads, and a flush can never recursively observe itself.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

__all__ = ["TELEMETRY_PREFIX", "FlightRecorder", "is_telemetry_table"]

#: Reserved table-name prefix for the system's own telemetry.
TELEMETRY_PREFIX = "_telemetry_"

#: The reserved telemetry tables and their schemas (name -> columns).
QUERY_TABLE = TELEMETRY_PREFIX + "queries"
OPERATOR_TABLE = TELEMETRY_PREFIX + "operators"
METRIC_TABLE = TELEMETRY_PREFIX + "metrics"


def is_telemetry_table(name: str | None) -> bool:
    """Whether ``name`` is a reserved self-telemetry table."""
    return bool(name) and name.startswith(TELEMETRY_PREFIX)


def _baseline_policy():
    """Baseline acceptance for telemetry series: a *flat* latency series is
    the healthy case, and a flat series has R² ≈ 0 by construction — the
    default quality gate would reject exactly the models we want.  What
    matters for drift detection is the fit-time residual scale (RSE), not
    explained variance, so the baseline fit is judged leniently.  (Imported
    lazily: ``repro.obs`` must not pull in ``repro.core`` at import time.)
    """
    from repro.core.quality import QualityPolicy

    return QualityPolicy(min_r_squared=-1.0, min_observations=16)


class FlightRecorder:
    """Streams the system's own telemetry into ``_telemetry_*`` tables."""

    def __init__(
        self,
        system: Any,
        flush_every: int = 64,
        baseline_min_rows: int = 64,
        capacity: int = 8192,
    ) -> None:
        #: The owning :class:`~repro.core.system.LawsDatabase` façade — the
        #: recorder rides its real ingest/harvest/maintenance machinery.
        self.system = system
        self.enabled = True
        #: Pending query records auto-flush through the ingest path once
        #: this many accumulate (0 disables auto-flush; call flush()).
        self.flush_every = flush_every
        self.baseline_min_rows = baseline_min_rows
        self._pending: deque[tuple[int, str, float, float]] = deque(maxlen=capacity)
        self._operator_pending: deque[tuple[int, str, float, float]] = deque(
            maxlen=capacity
        )
        self._seq = 0
        self._recorded = 0
        self._flushes = 0
        self._flushed_rows = 0
        self._baseline_model_id: int | None = None
        self._baseline_fitted = False
        self._watching = False
        self._lock = threading.Lock()
        #: Re-entrancy latch: a flush runs ingest listeners (lifecycle,
        #: drift scoring) that must never trigger another flush.
        self._flushing = False

    # -- recording (the per-query hot path) -----------------------------------

    def on_query(self, answer: Any, root: Any, elapsed_seconds: float) -> None:
        """Record one served query (called from the planner's accounting)."""
        if not self.enabled:
            return
        io = answer.approx.io if answer.approx is not None else (
            answer.query_result.io if answer.query_result is not None else {}
        )
        operators = [
            (span.name[3:], float(span.attributes.get("rows_out", 0) or 0), span.self_seconds)
            for span in root.walk()
            if span.name.startswith("op:")
        ]
        with self._lock:
            self._seq += 1
            seq = self._seq
            self._recorded += 1
            self._pending.append(
                (seq, answer.route_taken, elapsed_seconds, float(io.get("pages_read", 0.0)))
            )
            for name, rows, seconds in operators:
                self._operator_pending.append((seq, name, rows, seconds))
            due = (
                self.flush_every > 0
                and len(self._pending) >= self.flush_every
                and not self._flushing
            )
        if due:
            self.flush()

    def record_query(
        self, route: str, elapsed_seconds: float, pages_read: float = 0.0
    ) -> None:
        """Record a synthetic query observation (test/ops seam)."""
        if not self.enabled:
            return
        with self._lock:
            self._seq += 1
            self._recorded += 1
            self._pending.append((self._seq, route, elapsed_seconds, pages_read))

    # -- flushing (the real streaming-ingest path) ----------------------------

    def flush(self) -> int:
        """Drain pending records into the ``_telemetry_*`` tables.

        Every row goes through :class:`~repro.streaming.ingest.StreamIngestor`
        — the same batched, WAL-framed, listener-notifying append path user
        data takes — so telemetry batches feed the registered drift monitor
        exactly like sensor batches would.  Returns the rows ingested.
        """
        if not self.enabled:
            return 0
        with self._lock:
            if self._flushing:
                return 0
            self._flushing = True
            queries = list(self._pending)
            self._pending.clear()
            operators = list(self._operator_pending)
            self._operator_pending.clear()
        try:
            rows = self._ingest(queries, operators)
            with self._lock:
                self._flushes += 1
                self._flushed_rows += rows
            self._ensure_baseline()
            return rows
        finally:
            with self._lock:
                self._flushing = False

    def _ingest(self, queries: list[tuple], operators: list[tuple]) -> int:
        if not queries and not operators:
            # A metrics snapshot alone is still worth flushing on an
            # explicit call, so fall through with empty query batches.
            pass
        system = self.system
        self._ensure_tables()
        ingested = 0
        if queries:
            system.ingestor.submit(
                QUERY_TABLE,
                [
                    (seq, route, elapsed * 1e6, pages)
                    for seq, route, elapsed, pages in queries
                ],
            )
            ingested += len(queries)
        if operators:
            system.ingestor.submit(
                OPERATOR_TABLE,
                [(seq, name, rows, seconds * 1e6) for seq, name, rows, seconds in operators],
            )
            ingested += len(operators)
        metric_rows = self._metric_rows()
        if metric_rows:
            system.ingestor.submit(METRIC_TABLE, metric_rows)
            ingested += len(metric_rows)
        # Telemetry must not sit invisible in the ingest buffer until
        # unrelated traffic tops up a batch: force the remainder out so the
        # drift monitor scores what was just recorded.
        for table in (QUERY_TABLE, OPERATOR_TABLE, METRIC_TABLE):
            system.ingestor.flush(table)
        return ingested

    def _metric_rows(self) -> list[tuple]:
        metrics = self.system.obs.metrics
        if not metrics.enabled:
            return []
        with self._lock:
            self._seq += 1
            seq = self._seq
        rows = []
        for name, series in metrics.snapshot()["counters"].items():
            for entry in series:
                label = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
                rows.append((seq, name, label, float(entry["value"])))
        return rows

    def _ensure_tables(self) -> None:
        from repro.db.schema import Schema
        from repro.db.types import DataType

        system = self.system
        for name, columns in (
            (
                QUERY_TABLE,
                [
                    ("seq", DataType.INT64),
                    ("route", DataType.STRING),
                    ("elapsed_us", DataType.FLOAT64),
                    ("pages_read", DataType.FLOAT64),
                ],
            ),
            (
                OPERATOR_TABLE,
                [
                    ("seq", DataType.INT64),
                    ("operator", DataType.STRING),
                    ("rows_out", DataType.FLOAT64),
                    ("elapsed_us", DataType.FLOAT64),
                ],
            ),
            (
                METRIC_TABLE,
                [
                    ("seq", DataType.INT64),
                    ("metric", DataType.STRING),
                    ("labels", DataType.STRING),
                    ("value", DataType.FLOAT64),
                ],
            ),
        ):
            if not system.database.has_table(name):
                system.create_table(name, Schema.from_pairs(columns))

    # -- the self-watching baseline -------------------------------------------

    def _ensure_baseline(self) -> None:
        """Fit the latency baseline and register the drift watch, once.

        The baseline models ``elapsed_us ~ linear(seq)`` over the query
        table: for a healthy steady state the law is flat noise around the
        typical latency, and its fit-time RSE anchors the residual drift
        detector — a latency regression inflates residuals past the
        multiplier and journals ``drift-detected`` like any drifting table.
        """
        with self._lock:
            if self._baseline_fitted:
                return
        system = self.system
        if not system.database.has_table(QUERY_TABLE):
            return
        if system.database.table(QUERY_TABLE).num_rows < self.baseline_min_rows:
            return
        report = system.harvester.fit_and_capture(
            QUERY_TABLE, "elapsed_us ~ linear(seq)", policy=_baseline_policy()
        )
        if not report.accepted:  # pragma: no cover - lenient policy accepts
            return
        report.model.metadata["telemetry_baseline"] = True
        try:
            system.maintenance.watch(QUERY_TABLE, "elapsed_us", order_column="seq")
            watching = True
        except Exception:
            # A perfectly flat series has RSE 0 and cannot anchor a residual
            # detector.  Keep the baseline (so we do not refit on every
            # flush); the watch is simply not armed.
            watching = False
        with self._lock:
            self._baseline_model_id = report.model.model_id
            self._watching = watching
            self._baseline_fitted = True

    # -- reporting ------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "recorded_queries": self._recorded,
                "pending_queries": len(self._pending),
                "pending_operator_rows": len(self._operator_pending),
                "flushes": self._flushes,
                "flushed_rows": self._flushed_rows,
                "baseline_model_id": self._baseline_model_id,
                "watching_latency_drift": self._watching,
            }
