"""The observability hub: one object owning tracer, metrics, journal & co.

``LawsDatabase`` builds one :class:`Observability` per instance and hands
its parts to the layers that need them — the tracer to the planner and the
SQL executor, the journal to the maintenance loop / harvester / model
store / durable store, the metrics registry and compliance ledger to the
planner's post-query accounting.  Disabling the hub flips every part's
``enabled`` flag so instrumented hot paths degrade to single attribute
checks.
"""

from __future__ import annotations

from typing import Any, Callable

from .events import ComplianceLedger, Event, EventJournal
from .metrics import MetricsRegistry
from .slowlog import SlowQueryLog
from .trace import Tracer

__all__ = ["Observability", "normalize_reason"]


def normalize_reason(reason: str | None) -> str:
    """Collapse a planner reason string to a stable, low-cardinality label.

    Planner reasons embed query-specific detail after the first ``;`` (and
    sometimes volatile numbers); metrics labels must stay bounded, so only
    the leading clause is kept, truncated to 80 characters.  The
    reconciliation test uses the same helper to tally fallback reasons.
    """
    if not reason:
        return "unspecified"
    head = reason.split(";", 1)[0].strip()
    return head[:80] if head else "unspecified"


class Observability:
    """Bundles the tracer, metrics registry, event journal, compliance
    ledger and slow-query log behind one enable/disable switch."""

    def __init__(
        self,
        io_snapshot: Callable[[], dict[str, float]] | None = None,
        enabled: bool = True,
        slow_query_seconds: float = 0.25,
        journal_capacity: int = 2048,
        keep_traces: int = 8,
        io_scope: Callable[[], Any] | None = None,
    ) -> None:
        self.metrics = MetricsRegistry(enabled=enabled)
        self.tracer = Tracer(
            io_snapshot=io_snapshot,
            enabled=enabled,
            keep_traces=keep_traces,
            io_scope=io_scope,
        )
        self.journal = EventJournal(capacity=journal_capacity)
        self.journal.enabled = enabled
        self.journal.on_record = self._on_event
        self.compliance = ComplianceLedger()
        self.slow_log = SlowQueryLog(threshold_seconds=slow_query_seconds)
        self.slow_log.enabled = enabled
        #: The self-observation trio, wired by ``LawsDatabase`` (they need
        #: the planner / health registry / façade, which outlive this hub's
        #: construction): :class:`repro.obs.calibration.CostCalibrator`,
        #: :class:`repro.obs.slo.SLOEngine`,
        #: :class:`repro.obs.flight.FlightRecorder`.  None means "not wired"
        #: — the planner's accounting checks before calling.
        self.calibration: Any = None
        self.slo: Any = None
        self.flight: Any = None
        self._enabled = enabled

    def _on_event(self, event: Event) -> None:
        self.metrics.inc("events_total", kind=event.kind)

    # -- switching -------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True
        self.metrics.enabled = True
        self.tracer.enabled = True
        self.journal.enabled = True
        self.slow_log.enabled = True
        for part in (self.calibration, self.slo, self.flight):
            if part is not None:
                part.enabled = True

    def disable(self) -> None:
        """Turn every collector off; recorded data is retained, not erased."""
        self._enabled = False
        self.metrics.enabled = False
        self.tracer.enabled = False
        self.journal.enabled = False
        self.slow_log.enabled = False
        for part in (self.calibration, self.slo, self.flight):
            if part is not None:
                part.enabled = False

    # -- convenience -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        return self.metrics.snapshot()
