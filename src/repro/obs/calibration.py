"""Adaptive cost calibration: the planner's cost model tracks live hardware.

The planner ships calibrated from the committed ``BENCH_hotpaths.json`` —
the machine the benchmarks ran on, frozen at commit time.  The calibrator
closes that gap online: every traced exact execution leaves per-operator
spans (``op:TableScan``, ``op:Aggregate``, ``op:HashJoin``) whose self time
and row counts yield observed seconds-per-row rates.  Those are folded into
bounded EWMA estimates, and when an operator's observed rate has shifted
materially away from what the planner is costing with, a fresh
:class:`~repro.core.planner.cost.CostModel` is installed through
:meth:`UnifiedPlanner.set_cost_model` — which bumps the cost version in the
plan-cache key, so every cached route decision costed against the stale
rates is invalidated at once.  Each recalibration is journaled
(``cost-recalibration``) and the new model carries ``adaptive:`` provenance
that ``explain()`` renders.

Bounding discipline: rates are only sampled from operators that processed
at least ``min_rows`` rows (tiny inputs measure fixed overhead, not
throughput), the EWMA needs ``min_samples`` observations before it may
recalibrate, and observed rates are clamped to a sane band so one absurd
span (a GC pause, a suspended laptop) cannot poison the planner.
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["CostCalibrator"]

#: Operator span-name fragments -> cost-model rate field.  A tuple of pairs
#: (not a dict) so the module stays free of mutable module-level state.
_OPERATOR_RATES = (
    ("Scan", "scan_seconds_per_row"),
    ("Aggregate", "group_by_seconds_per_row"),
    ("Join", "join_seconds_per_row"),
)

#: Clamp band for observed seconds-per-row: from "faster than any memory
#: bandwidth" to "one second per row" — anything outside is a measurement
#: artefact, not a throughput.
_MIN_RATE = 1e-10
_MAX_RATE = 1.0


class _RateEstimate:
    """Bounded EWMA of one operator's observed seconds-per-row."""

    __slots__ = ("value", "samples", "rows_seen")

    def __init__(self) -> None:
        self.value: float | None = None
        self.samples = 0
        self.rows_seen = 0.0

    def update(self, rate: float, rows: float, alpha: float) -> None:
        rate = min(max(rate, _MIN_RATE), _MAX_RATE)
        if self.value is None:
            self.value = rate
        else:
            self.value += alpha * (rate - self.value)
        self.samples += 1
        self.rows_seen += rows


class CostCalibrator:
    """Aggregates observed operator timings and recalibrates the planner."""

    def __init__(
        self,
        planner: Any,
        journal: Any = None,
        metrics: Any = None,
        alpha: float = 0.25,
        min_rows: int = 256,
        min_samples: int = 5,
        drift_threshold: float = 0.25,
    ) -> None:
        self.planner = planner
        self.journal = journal
        self.metrics = metrics
        self.enabled = True
        self.alpha = alpha
        self.min_rows = min_rows
        self.min_samples = min_samples
        #: Relative shift (|observed/planned - 1|) that triggers a
        #: recalibration.  Below it the planner keeps its current model —
        #: constant re-churn would invalidate the plan cache for noise.
        self.drift_threshold = drift_threshold
        self._estimates: dict[str, _RateEstimate] = {
            field: _RateEstimate() for _, field in _OPERATOR_RATES
        }
        self._recalibrations = 0
        self._observed_traces = 0
        self._lock = threading.Lock()

    # -- observation ----------------------------------------------------------

    def observe_trace(self, root: Any) -> None:
        """Harvest per-operator rates from one completed query trace.

        Row accounting: a scan's throughput is over the rows it produced;
        blocking operators (aggregate, join) are charged per *input* row —
        the sum of their operator children's output — matching how the cost
        model predicts them.  Self time (net of children) is used so a
        parent never pays for the scan nested inside it.
        """
        if not self.enabled:
            return
        updates: list[tuple[str, float, float]] = []
        for span in root.walk():
            if not span.name.startswith("op:"):
                continue
            field = self._rate_field(span.name[3:])
            if field is None:
                continue
            rows = self._span_rows(span, field)
            if rows < self.min_rows:
                continue
            seconds = span.self_seconds
            if seconds <= 0.0:
                continue
            updates.append((field, seconds / rows, rows))
        if not updates:
            return
        with self._lock:
            self._observed_traces += 1
            for field, rate, rows in updates:
                self._estimates[field].update(rate, rows, self.alpha)
        self.maybe_recalibrate()

    @staticmethod
    def _rate_field(operator_name: str) -> str | None:
        for fragment, field in _OPERATOR_RATES:
            if fragment in operator_name:
                return field
        return None

    @staticmethod
    def _span_rows(span: Any, field: str) -> float:
        if field == "scan_seconds_per_row":
            return float(span.attributes.get("rows_out", 0) or 0)
        input_rows = sum(
            float(child.attributes.get("rows_out", 0) or 0)
            for child in span.children
            if child.name.startswith("op:")
        )
        if input_rows > 0:
            return input_rows
        return float(span.attributes.get("rows_out", 0) or 0)

    # -- recalibration --------------------------------------------------------

    def maybe_recalibrate(self) -> bool:
        """Install a fresh cost model when observed rates shifted materially.

        Returns True when a recalibration happened.  Journals the event with
        the old and new rates, increments ``cost_recalibrations_total``, and
        — through ``set_cost_model`` — invalidates every cached plan costed
        against the superseded rates.
        """
        if not self.enabled:
            return False
        # Imported lazily: ``repro.obs`` must stay importable without
        # ``repro.core`` (the planner itself imports ``repro.obs.flight``,
        # and a module-level import here would close that cycle).
        from repro.core.planner.cost import CostModel, OperatorCosts

        with self._lock:
            current = self.planner.cost_model.costs
            shifted: dict[str, tuple[float, float]] = {}
            for field, estimate in self._estimates.items():
                if estimate.value is None or estimate.samples < self.min_samples:
                    continue
                planned = getattr(current, field)
                if planned <= 0:
                    continue
                shift = abs(estimate.value / planned - 1.0)
                if shift > self.drift_threshold:
                    shifted[field] = (planned, estimate.value)
            if not shifted:
                return False
            replacements = {field: observed for field, (_, observed) in shifted.items()}
            new_costs = OperatorCosts(
                **{
                    field: replacements.get(field, getattr(current, field))
                    for field in OperatorCosts.__dataclass_fields__
                }
            )
            self._recalibrations += 1
            generation = self._recalibrations
            traces = self._observed_traces
        source = f"adaptive:gen{generation} ({traces} traced queries)"
        self.planner.set_cost_model(CostModel(new_costs, source=source))
        if self.metrics is not None:
            self.metrics.inc("cost_recalibrations_total")
        if self.journal is not None:
            self.journal.record(
                "cost-recalibration",
                generation=generation,
                source=source,
                shifted={
                    field: {"planned": planned, "observed": observed}
                    for field, (planned, observed) in shifted.items()
                },
            )
        return True

    # -- reporting ------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """Calibration provenance and the current EWMA estimates."""
        with self._lock:
            return {
                "source": self.planner.cost_model.source,
                "recalibrations": self._recalibrations,
                "observed_traces": self._observed_traces,
                "estimates": {
                    field: {
                        "ewma_seconds_per_row": estimate.value,
                        "samples": estimate.samples,
                        "rows_seen": estimate.rows_seen,
                        "planned_seconds_per_row": getattr(
                            self.planner.cost_model.costs, field
                        ),
                    }
                    for field, estimate in self._estimates.items()
                },
            }
