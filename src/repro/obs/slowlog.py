"""A bounded slow-query log.

Queries whose wall time exceeds a configurable threshold leave behind a
structured record — the SQL, the route the planner took, the per-stage
trace summary — retrievable via ``db.slow_queries()``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

__all__ = ["SlowQuery", "SlowQueryLog"]


@dataclass(frozen=True)
class SlowQuery:
    """One query that exceeded the slow-query threshold."""

    sql: str
    route: str
    elapsed_seconds: float
    trace_summary: str
    contract: str
    timestamp: float

    def describe(self) -> str:
        return (
            f"{self.elapsed_seconds * 1000.0:.2f}ms [{self.route}] {self.sql}"
            f" — {self.trace_summary}"
        )


class SlowQueryLog:
    """Keeps the most recent queries slower than ``threshold_seconds``."""

    def __init__(self, threshold_seconds: float = 0.25, capacity: int = 128) -> None:
        self.threshold_seconds = threshold_seconds
        self.capacity = capacity
        self.enabled = True
        self._entries: deque[SlowQuery] = deque(maxlen=capacity)
        self._total = 0
        self._lock = threading.Lock()

    def observe(
        self,
        sql: str,
        route: str,
        elapsed_seconds: float,
        trace_summary: str = "",
        contract: Any = None,
    ) -> SlowQuery | None:
        if not self.enabled or elapsed_seconds < self.threshold_seconds:
            return None
        entry = SlowQuery(
            sql=sql,
            route=route,
            elapsed_seconds=elapsed_seconds,
            trace_summary=trace_summary,
            contract="" if contract is None else str(contract),
            timestamp=time.time(),
        )
        with self._lock:
            self._entries.append(entry)
            self._total += 1
        return entry

    def entries(self, limit: int | None = None) -> list[SlowQuery]:
        """Retained slow queries, oldest first."""
        with self._lock:
            selected = list(self._entries)
        if limit is not None:
            selected = selected[-limit:]
        return selected

    @property
    def total(self) -> int:
        """Slow queries ever observed (including evicted entries)."""
        return self._total

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
