"""Query-lifecycle tracing: a span tree per query.

A :class:`Span` is one timed stage of a query's life — parse, plan/probe,
the route decision, execution (with one child span per physical operator),
the verification sample — carrying its wall time, the simulated page IO it
charged (from :class:`repro.db.io_model.IOModel`), and free-form
attributes.  The :class:`Tracer` assembles spans into a tree per traced
query and keeps the last completed trace for ``db.last_trace()`` /
``EXPLAIN ANALYZE``.

Overhead discipline: a disabled tracer (or a span opened outside any active
trace) costs one attribute check and allocates nothing — the hot paths the
``BENCH_hotpaths`` suite gates stay untouched when tracing is off.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterator

__all__ = ["NULL_TRACER", "Span", "Tracer", "traced_operator_execute"]

#: IO counters copied onto spans (a subset of the accountant snapshot —
#: the two numbers the paper's zero-IO argument is about).
_IO_KEYS = ("pages_read", "virtual_io_seconds")


@dataclass
class Span:
    """One timed stage of a traced query (a node in the span tree)."""

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0
    #: Wall-clock time (``time.time()``) the span opened — the anchor the
    #: OTLP exporter needs, since ``elapsed_seconds`` is monotonic-relative.
    started_at: float = 0.0
    #: Simulated IO charged while this span (including children) was open.
    io: dict[str, float] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Elapsed time net of child spans (an operator's own work)."""
        return max(0.0, self.elapsed_seconds - sum(c.elapsed_seconds for c in self.children))

    @property
    def pages_read(self) -> float:
        return float(self.io.get("pages_read", 0.0))

    def annotate(self, **attributes: Any) -> None:
        self.attributes.update(attributes)

    # -- navigation -----------------------------------------------------------

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given span name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def span_names(self) -> list[str]:
        """Depth-first span names — the golden-trace shape tests key on this."""
        return [span.name for span in self.walk()]

    # -- rendering ------------------------------------------------------------

    def render(self, indent: int = 0) -> list[str]:
        pad = "  " * indent
        parts = [f"{pad}{self.name}  [{self.elapsed_seconds * 1000.0:.3f}ms"]
        pages = self.pages_read
        if pages:
            parts.append(f", io={pages:.0f} page(s)")
        parts.append("]")
        lines = ["".join(parts)]
        for key, value in self.attributes.items():
            if isinstance(value, (list, tuple)):
                for entry in value:
                    lines.append(f"{pad}  · {key}: {entry}")
            else:
                lines.append(f"{pad}  · {key}: {value}")
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines

    def summary(self) -> str:
        """One line per stage — what the slow-query log stores."""
        stages = ", ".join(
            f"{child.name}={child.elapsed_seconds * 1000.0:.2f}ms"
            for child in self.children
        )
        return f"{self.name} {self.elapsed_seconds * 1000.0:.2f}ms ({stages})"

    def to_text(self) -> str:
        return "\n".join(self.render())


class Tracer:
    """Builds one span tree per traced query.

    ``io_snapshot`` is a zero-argument callable returning the cumulative
    simulated-IO counters (:meth:`repro.db.database.Database.io_snapshot`);
    every span records the delta across its lifetime.  When ``io_scope`` is
    also provided (a context-manager factory like
    :meth:`repro.db.io_model.IOModel.scope`), spans attribute IO through
    per-thread scopes instead, so a concurrent query on another thread can
    never inflate this trace's page counts.

    Span stacks are thread-local: concurrent traced queries each build their
    own tree.  The completed-trace ring is shared (and lock-protected), so
    ``last_trace()`` reports whichever trace finished most recently.
    """

    def __init__(
        self,
        io_snapshot: Callable[[], dict[str, float]] | None = None,
        enabled: bool = True,
        keep_traces: int = 8,
        io_scope: Callable[[], Any] | None = None,
    ) -> None:
        self.enabled = enabled
        self.io_snapshot = io_snapshot
        self.io_scope = io_scope
        self.keep_traces = keep_traces
        #: Injectable monotonic clock.  Span timings come from here, so a
        #: test (or the calibration convergence harness) can skew observed
        #: operator durations without sleeping.
        self.clock: Callable[[], float] = perf_counter
        self._local = threading.local()
        self._traces: list[Span] = []
        self._traces_lock = threading.Lock()

    # -- state ----------------------------------------------------------------

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def active(self) -> bool:
        """True while a trace is open *on this thread* (spans get recorded)."""
        return self.enabled and bool(getattr(self._local, "stack", None))

    @property
    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def last_trace(self) -> Span | None:
        """The root span of the most recently completed trace."""
        with self._traces_lock:
            return self._traces[-1] if self._traces else None

    def traces(self) -> list[Span]:
        with self._traces_lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._traces_lock:
            self._traces.clear()

    # -- span management -------------------------------------------------------

    def _io(self) -> dict[str, float]:
        return self.io_snapshot() if self.io_snapshot is not None else {}

    @contextmanager
    def _span_io(self, span: Span) -> Iterator[None]:
        """Attribute the IO charged while the span is open onto ``span.io``."""
        if self.io_scope is not None:
            with self.io_scope() as scope:
                try:
                    yield
                finally:
                    span.io = {
                        key: value
                        for key, value in scope.snapshot().items()
                        if key in _IO_KEYS and value
                    }
        else:
            io_before = self._io()
            try:
                yield
            finally:
                span.io = _io_delta(io_before, self._io())

    @contextmanager
    def trace(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a root span (a no-op yielding a throwaway span when disabled)."""
        stack = self._stack
        if not self.enabled or stack:
            # Disabled, or a trace is already open on this thread (a nested
            # query() from the feedback verifier): record as a child span
            # instead of clobbering the open trace.
            with self.span(name, **attributes) as span:
                yield span
            return
        root = Span(name=name, attributes=dict(attributes), started_at=time.time())
        stack.append(root)
        started = self.clock()
        try:
            with self._span_io(root):
                yield root
        finally:
            root.elapsed_seconds = self.clock() - started
            stack.pop()
            with self._traces_lock:
                self._traces.append(root)
                if len(self._traces) > self.keep_traces:
                    del self._traces[: len(self._traces) - self.keep_traces]

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span under the current one (no-op outside a trace)."""
        stack = getattr(self._local, "stack", None)
        if not self.enabled or not stack:
            yield _DISCARDED
            return
        span = Span(name=name, attributes=dict(attributes), started_at=time.time())
        stack[-1].children.append(span)
        stack.append(span)
        started = self.clock()
        try:
            with self._span_io(span):
                yield span
        finally:
            span.elapsed_seconds = self.clock() - started
            stack.pop()


#: Shared throwaway span handed out when tracing is off: callers may
#: annotate it freely; nothing is retained.
_DISCARDED = Span(name="discarded")

#: Shared always-disabled tracer: components default to it so their span
#: calls degrade to a single attribute check when no hub is wired in.
NULL_TRACER = Tracer(enabled=False)


def _io_delta(before: dict[str, float], after: dict[str, float]) -> dict[str, float]:
    delta = {}
    for key in _IO_KEYS:
        if key in after:
            value = after[key] - before.get(key, 0.0)
            if value:
                delta[key] = value
    return delta


def traced_operator_execute(root: Any, tracer: Tracer):
    """Execute a physical operator tree with one span per operator.

    Works on any pull-based operator tree exposing ``execute()``,
    ``children()`` and ``describe()`` (:class:`repro.db.operators.base.
    Operator`).  Each node's bound ``execute`` is shadowed with a
    span-opening wrapper for the duration of this one call — plans are
    cached and reused, so the shadowing is always undone, even on error.
    Child operators execute inside their parent's ``execute()``, so the
    spans nest into the plan shape by construction.
    """
    wrapped: list[Any] = []

    def _wrap(node: Any) -> None:
        original = type(node).execute

        def _traced(_node=node, _original=original):
            with tracer.span(f"op:{type(_node).__name__}") as span:
                span.annotate(operator=_node.describe())
                result = _original(_node)
                if result is not None:
                    span.annotate(rows_out=result.num_rows)
                return result

        node.__dict__["execute"] = _traced
        wrapped.append(node)
        for child in node.children():
            _wrap(child)

    _wrap(root)
    try:
        return root.execute()
    finally:
        for node in wrapped:
            node.__dict__.pop("execute", None)
