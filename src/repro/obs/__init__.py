"""Observability: query-lifecycle tracing, metrics, and the event journal.

See the README's "Observability" section for the trace anatomy, the
metrics catalog, and exporter usage.
"""

from .calibration import CostCalibrator
from .events import ComplianceLedger, Event, EventJournal
from .flight import TELEMETRY_PREFIX, FlightRecorder, is_telemetry_table
from .hub import Observability, normalize_reason
from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry
from .otlp import spans_to_otlp
from .slo import DEFAULT_SLOS, SLO, SLOEngine
from .slowlog import SlowQuery, SlowQueryLog
from .trace import NULL_TRACER, Span, Tracer, traced_operator_execute

__all__ = [
    "ComplianceLedger",
    "CostCalibrator",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SLOS",
    "Event",
    "EventJournal",
    "FlightRecorder",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "Observability",
    "SLO",
    "SLOEngine",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "TELEMETRY_PREFIX",
    "Tracer",
    "is_telemetry_table",
    "normalize_reason",
    "spans_to_otlp",
    "traced_operator_execute",
]
