"""Observability: query-lifecycle tracing, metrics, and the event journal.

See the README's "Observability" section for the trace anatomy, the
metrics catalog, and exporter usage.
"""

from .events import ComplianceLedger, Event, EventJournal
from .hub import Observability, normalize_reason
from .metrics import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry
from .slowlog import SlowQuery, SlowQueryLog
from .trace import NULL_TRACER, Span, Tracer, traced_operator_execute

__all__ = [
    "ComplianceLedger",
    "NULL_TRACER",
    "DEFAULT_LATENCY_BUCKETS",
    "Event",
    "EventJournal",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "normalize_reason",
    "traced_operator_execute",
]
