"""Counters, gauges and latency histograms with a stable snapshot shape.

The registry is deliberately small: labelled counters (monotonic),
labelled gauges (set-to-value), and fixed-bucket histograms, with two
exporters — a JSON document and the Prometheus text exposition format.
When the registry is disabled every mutator returns after a single
attribute check, so instrumented hot paths stay within the overhead budget
``benchmarks/bench_observability.py`` gates.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Any

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS"]

#: Histogram bucket upper bounds (seconds) for query latency: 100µs .. 10s.
DEFAULT_LATENCY_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    10.0,
)

#: Label-key type: a sorted tuple of (label name, label value) pairs.
LabelKey = tuple

#: ``# HELP`` text for the well-known metric names (Prometheus exposition
#: conformance: scrapers and ``promtool check metrics`` expect HELP next to
#: TYPE).  Unknown metrics fall back to a generic line.  Read-only.
_METRIC_HELP = {
    "queries_total": "Queries served, by route taken.",
    "query_seconds": "End-to-end query latency.",
    "query_errors_total": "Queries that raised, by exception type.",
    "pages_read_total": "Simulated pages read from base tables, by route.",
    "fallbacks_total": "Model routes that fell back to exact execution.",
    "degraded_answers_total": "Answers served while a needed component was degraded.",
    "feedback_verifications_total": "Sampled answers audited against exact execution.",
    "feedback_demotions_total": "Models demoted by observed-error feedback.",
    "contract_violations_total": "Audited answers whose observed error broke the contract.",
    "verifier_failures_total": "Feedback audits that raised (behind the breaker).",
    "events_total": "Journal events recorded, by kind.",
    "ingest_rows_total": "Rows committed through streaming ingestion.",
    "cost_recalibrations_total": "Adaptive cost-model recalibrations installed.",
    "slo_breaches_total": "SLO error-budget burn alerts fired, by objective and window.",
    "recovery_total": "Crash/fault recovery outcomes.",
}
_GENERIC_HELP = "repro metric (no description registered)."


class Histogram:
    """A fixed-bucket histogram (cumulative counts, Prometheus-style)."""

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict[str, Any]:
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            cumulative.append([bound, running])
        cumulative.append(["+Inf", running + self.counts[-1]])
        return {"buckets": cumulative, "sum": self.sum, "count": self.count}


class MetricsRegistry:
    """Labelled counters/gauges/histograms with JSON + Prometheus export."""

    def __init__(self, enabled: bool = True, namespace: str = "repro") -> None:
        self.enabled = enabled
        self.namespace = namespace
        self._counters: dict[str, dict[LabelKey, float]] = {}
        self._gauges: dict[str, dict[LabelKey, float]] = {}
        self._histograms: dict[str, Histogram] = {}
        # One lock covers every series: concurrent queries all report into the
        # same registry, and unlocked `series[key] = series.get(key) + amount`
        # read-modify-writes would lose increments under interleaving.  The
        # disabled fast path stays a single attribute check before the lock.
        self._lock = threading.Lock()

    # -- mutators -------------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(self, name: str, value: float, buckets: tuple[float, ...] | None = None) -> None:
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(buckets or DEFAULT_LATENCY_BUCKETS)
            histogram.observe(value)

    def reset(self) -> None:
        """Zero every series (the registry stays enabled/disabled as it was)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- reads ----------------------------------------------------------------

    def counter_value(self, name: str, **labels: Any) -> float:
        """One labelled counter's value (0.0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, {}).get(_label_key(labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum over every label combination of a counter."""
        with self._lock:
            return sum(self._counters.get(name, {}).values())

    def counter_series(self, name: str) -> dict[LabelKey, float]:
        """Every labelled value of one counter (label-key tuple -> value).

        The chaos suite asserts on outcome distributions
        (``recovery_total{outcome=...}``) without enumerating labels upfront.
        """
        with self._lock:
            return dict(self._counters.get(name, {}))

    def gauge_value(self, name: str, **labels: Any) -> float | None:
        with self._lock:
            return self._gauges.get(name, {}).get(_label_key(labels))

    def snapshot(self) -> dict[str, Any]:
        """A stable plain-dict snapshot of every series."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, Any]:
        return {
            "counters": {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(self._counters.items())
            },
            "gauges": {
                name: [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(series.items())
                ]
                for name, series in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    # -- exporters ------------------------------------------------------------

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=False)

    def to_prometheus_text(self) -> str:
        """The Prometheus text exposition format (one scrape's worth)."""
        with self._lock:
            return self._to_prometheus_text_locked()

    def _to_prometheus_text_locked(self) -> str:
        lines: list[str] = []
        for name, series in sorted(self._counters.items()):
            metric = f"{self.namespace}_{name}"
            lines.append(f"# HELP {metric} {_help_text(name)}")
            lines.append(f"# TYPE {metric} counter")
            for key, value in sorted(series.items()):
                lines.append(f"{metric}{_format_labels(key)} {_format_value(value)}")
        for name, series in sorted(self._gauges.items()):
            metric = f"{self.namespace}_{name}"
            lines.append(f"# HELP {metric} {_help_text(name)}")
            lines.append(f"# TYPE {metric} gauge")
            for key, value in sorted(series.items()):
                lines.append(f"{metric}{_format_labels(key)} {_format_value(value)}")
        for name, histogram in sorted(self._histograms.items()):
            metric = f"{self.namespace}_{name}"
            lines.append(f"# HELP {metric} {_help_text(name)}")
            lines.append(f"# TYPE {metric} histogram")
            running = 0
            for bound, count in zip(histogram.buckets, histogram.counts):
                running += count
                lines.append(f'{metric}_bucket{{le="{bound:g}"}} {running}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{metric}_sum {_format_value(histogram.sum)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"


def _label_key(labels: dict[str, Any]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in key)
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _help_text(name: str) -> str:
    # HELP text escaping differs from label escaping: only backslash and
    # newline (quotes are legal in HELP).
    text = _METRIC_HELP.get(name, _GENERIC_HELP)
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
