"""OTLP-style JSON trace export: span trees in OpenTelemetry's wire shape.

The tracer's span trees are rendered into the OTLP/JSON ``resourceSpans``
layout (resource → scope → flat span list with parent links), so any
OTLP-ingesting backend — or just ``jq`` — can read the system's traces
without a bespoke parser.  Pure translation, no wire protocol: the export
is a plain ``dict`` the caller serialises.

Identifier discipline: OTLP wants 16-byte trace ids and 8-byte span ids as
lowercase hex.  The exporter derives them deterministically from each
trace's position and each span's depth-first index — stable across calls
over the same traces, no randomness (and thus no seeding concerns).
"""

from __future__ import annotations

from typing import Any

from repro.obs.trace import Span

__all__ = ["spans_to_otlp"]

_SERVICE_NAME = "repro-laws-db"
_SCOPE_NAME = "repro.obs.trace"

#: Attribute keys coerced to OTLP int values (everything else becomes a
#: string or double).
_NANOS_PER_SECOND = 1_000_000_000


def spans_to_otlp(traces: list[Span]) -> dict[str, Any]:
    """Render completed trace roots as one OTLP/JSON ``ExportTraceServiceRequest``."""
    all_spans: list[dict[str, Any]] = []
    for trace_index, root in enumerate(traces):
        trace_id = f"{trace_index + 1:032x}"
        counter = [0]
        _flatten(root, trace_id, parent_span_id="", counter=counter, out=all_spans)
    return {
        "resourceSpans": [
            {
                "resource": {
                    "attributes": [
                        {
                            "key": "service.name",
                            "value": {"stringValue": _SERVICE_NAME},
                        }
                    ]
                },
                "scopeSpans": [
                    {
                        "scope": {"name": _SCOPE_NAME},
                        "spans": all_spans,
                    }
                ],
            }
        ]
    }


def _flatten(
    span: Span,
    trace_id: str,
    parent_span_id: str,
    counter: list[int],
    out: list[dict[str, Any]],
) -> None:
    counter[0] += 1
    span_id = f"{counter[0]:016x}"
    start_nanos = int(span.started_at * _NANOS_PER_SECOND)
    end_nanos = start_nanos + int(span.elapsed_seconds * _NANOS_PER_SECOND)
    attributes = [
        {"key": key, "value": _attribute_value(value)}
        for key, value in span.attributes.items()
    ]
    for key, value in span.io.items():
        attributes.append({"key": f"io.{key}", "value": _attribute_value(value)})
    rendered: dict[str, Any] = {
        "traceId": trace_id,
        "spanId": span_id,
        "name": span.name,
        "kind": 1,  # SPAN_KIND_INTERNAL
        "startTimeUnixNano": str(start_nanos),
        "endTimeUnixNano": str(end_nanos),
        "attributes": attributes,
    }
    if parent_span_id:
        rendered["parentSpanId"] = parent_span_id
    out.append(rendered)
    for child in span.children:
        _flatten(child, trace_id, span_id, counter, out)


def _attribute_value(value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    if isinstance(value, (list, tuple)):
        return {
            "arrayValue": {"values": [_attribute_value(entry) for entry in value]}
        }
    return {"stringValue": str(value)}
