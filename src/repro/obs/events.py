"""The event journal and the contract-compliance ledger.

The journal is the system's flight recorder: drift detections, change
points, model captures/demotions/refits/supersedes, checkpoint and
WAL-replay operations, archive moves — everything that used to be computed
and thrown away becomes a queryable :class:`Event`.

The :class:`ComplianceLedger` is the accuracy-contract accounting the
paper's serving story needs: per route, how often answers were served,
what error the planner *predicted*, what the sampled verification
*observed*, and how often the observation violated the caller's error
budget — plus the same evidence per model, so "which models are lying and
how often" is a direct lookup.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["Event", "EventJournal", "ComplianceLedger"]


@dataclass(frozen=True)
class Event:
    """One recorded lifecycle event."""

    seq: int
    timestamp: float
    kind: str
    fields: Mapping[str, Any]

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.seq}] {self.kind}: {inner}"


class EventJournal:
    """A bounded in-memory journal of lifecycle events.

    Retention is a ring buffer (oldest events drop first) but the per-kind
    totals are monotonic, so counters survive eviction.  ``on_record`` is
    an optional hook the observability hub uses to mirror every event into
    a metrics counter.
    """

    def __init__(self, capacity: int = 2048) -> None:
        self.capacity = capacity
        self.enabled = True
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = 0
        self._totals: dict[str, int] = {}
        self.on_record: Callable[[Event], None] | None = None
        self._lock = threading.Lock()

    def record(self, kind: str, **fields: Any) -> Event | None:
        if not self.enabled:
            return None
        with self._lock:
            self._seq += 1
            event = Event(seq=self._seq, timestamp=time.time(), kind=kind, fields=fields)
            self._events.append(event)
            self._totals[kind] = self._totals.get(kind, 0) + 1
        # The hook runs outside the lock: it mirrors into the metrics registry,
        # which has its own lock, and holding both invites ordering deadlocks.
        if self.on_record is not None:
            self.on_record(event)
        return event

    def events(
        self, kind: str | None = None, limit: int | None = None, **field_filters: Any
    ) -> list[Event]:
        """Retained events, oldest first, optionally filtered by kind/fields."""
        with self._lock:
            retained = list(self._events)
        selected = [
            event
            for event in retained
            if (kind is None or event.kind == kind)
            and all(event.fields.get(k) == v for k, v in field_filters.items())
        ]
        if limit is not None:
            selected = selected[-limit:]
        return selected

    def totals(self) -> dict[str, int]:
        """Monotonic per-kind event counts (including evicted events)."""
        with self._lock:
            return dict(self._totals)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


# ---------------------------------------------------------------------------
# Contract-compliance accounting
# ---------------------------------------------------------------------------


@dataclass
class _RouteLedger:
    served: int = 0
    verified: int = 0
    #: Answers served while a needed component was failed/quarantined —
    #: the resilience layer's disclosed-degradation accounting.
    degraded_served: int = 0
    predicted_error_sum: float = 0.0
    observed_error_sum: float = 0.0
    budget_checks: int = 0
    budget_violations: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "served": self.served,
            "verified": self.verified,
            "degraded_served": self.degraded_served,
            "mean_predicted_relative_error": (
                self.predicted_error_sum / self.served if self.served else None
            ),
            "mean_observed_relative_error": (
                self.observed_error_sum / self.verified if self.verified else None
            ),
            "budget_checks": self.budget_checks,
            "budget_violations": self.budget_violations,
        }


@dataclass
class _ModelLedger:
    served: int = 0
    verified: int = 0
    observed_error_sum: float = 0.0
    budget_violations: int = 0
    demotions: int = 0
    last_observed_relative_error: float | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "served": self.served,
            "verified": self.verified,
            "mean_observed_relative_error": (
                self.observed_error_sum / self.verified if self.verified else None
            ),
            "budget_violations": self.budget_violations,
            "demotions": self.demotions,
            "last_observed_relative_error": self.last_observed_relative_error,
        }


class ComplianceLedger:
    """Predicted-vs-observed error accounting, per route and per model."""

    def __init__(self) -> None:
        self._routes: dict[str, _RouteLedger] = {}
        self._models: dict[int, _ModelLedger] = {}
        self._lock = threading.Lock()

    def _route(self, route: str) -> _RouteLedger:
        ledger = self._routes.get(route)
        if ledger is None:
            ledger = self._routes[route] = _RouteLedger()
        return ledger

    def _model(self, model_id: int) -> _ModelLedger:
        ledger = self._models.get(model_id)
        if ledger is None:
            ledger = self._models[model_id] = _ModelLedger()
        return ledger

    def record_served(
        self,
        route: str,
        predicted_relative_error: float | None,
        model_ids: tuple[int, ...] | list[int] = (),
        degraded: bool = False,
    ) -> None:
        with self._lock:
            ledger = self._route(route)
            ledger.served += 1
            if degraded:
                ledger.degraded_served += 1
            if predicted_relative_error is not None and math.isfinite(
                predicted_relative_error
            ):
                ledger.predicted_error_sum += predicted_relative_error
            for model_id in model_ids:
                self._model(model_id).served += 1

    def record_verified(
        self,
        route: str,
        observed_relative_error: float,
        error_budget: float,
        model_ids: tuple[int, ...] | list[int] = (),
        demoted_ids: tuple[int, ...] | list[int] = (),
    ) -> bool:
        """Record one verification pass; returns True on a budget violation."""
        with self._lock:
            ledger = self._route(route)
            ledger.verified += 1
            ledger.observed_error_sum += observed_relative_error
            violated = False
            if math.isfinite(error_budget):
                ledger.budget_checks += 1
                violated = observed_relative_error > error_budget
                if violated:
                    ledger.budget_violations += 1
            for model_id in model_ids:
                model = self._model(model_id)
                model.verified += 1
                model.observed_error_sum += observed_relative_error
                model.last_observed_relative_error = observed_relative_error
                if violated:
                    model.budget_violations += 1
            for model_id in demoted_ids:
                self._model(model_id).demotions += 1
            return violated

    def report(self) -> dict[str, Any]:
        """Per-route and per-model compliance accounting, ready to print."""
        with self._lock:
            return {
                "routes": {
                    route: ledger.to_dict() for route, ledger in sorted(self._routes.items())
                },
                "models": {
                    model_id: ledger.to_dict()
                    for model_id, ledger in sorted(self._models.items())
                },
            }

    def lying_models(self, min_verified: int = 1) -> list[dict[str, Any]]:
        """Models with budget violations or demotions, worst offenders first."""
        offenders = []
        with self._lock:
            models = list(self._models.items())
        for model_id, ledger in models:
            if ledger.verified < min_verified:
                continue
            if ledger.budget_violations == 0 and ledger.demotions == 0:
                continue
            entry = {"model_id": model_id}
            entry.update(ledger.to_dict())
            offenders.append(entry)
        offenders.sort(
            key=lambda e: (e["budget_violations"], e["demotions"]), reverse=True
        )
        return offenders
