"""Durable storage & model warehouse.

The persistence layer under :class:`repro.core.system.LawsDatabase`:
columnar table snapshots, an append-only checksummed WAL, the versioned
model warehouse (every captured model plus its evidence and the planner's
calibration), and the model-only archive tier.  Strictly opt-in — a
``LawsDatabase()`` constructed directly never touches disk; one opened via
``LawsDatabase.open(path)`` checkpoints, logs and cold-starts from there.
"""

from repro.persist.archive import ArchiveReport, ArchiveTier, ArchivedSegment
from repro.persist.snapshot import read_table_segments, write_table_segments
from repro.persist.store import CheckpointReport, DurableStore, RecoveryReport
from repro.persist.wal import WalReplay, WriteAheadLog
from repro.persist.warehouse import deserialize_model, serialize_model

__all__ = [
    "ArchiveReport",
    "ArchiveTier",
    "ArchivedSegment",
    "CheckpointReport",
    "DurableStore",
    "RecoveryReport",
    "WalReplay",
    "WriteAheadLog",
    "deserialize_model",
    "serialize_model",
    "read_table_segments",
    "write_table_segments",
]
