"""The model-only tier: cold raw segments archived behind warehouse models.

§4.1 of the paper argues that once a model captures the law of the data,
the raw pages are redundant.  :class:`ArchiveTier` makes that operational:
``archive(table, predicate)`` carves the matching rows out of the in-memory
table into durable archive segments and records them in an archive
manifest.  From then on

* catalog statistics are served through a *merged overlay* (live rows plus
  the archived segments' precomputed statistics), so model routes keep
  seeing the full logical table — counts, domains and value ranges include
  the archived rows;
* the unified planner consults :meth:`blocking_reason`: a query that may
  touch archived rows cannot run exactly (the raw rows are gone) — it is
  served purely from warehouse models when the accuracy contract admits
  it, and otherwise fails with an explicit archived-data reason instead of
  silently returning an answer computed over a partial table;
* :meth:`recall` loads the segments back from disk and dissolves the
  overlay, for when the cold data becomes hot again.

A query whose WHERE clause is *provably disjoint* from every archived
predicate (e.g. ``ts >= 5000`` against an archive of ``ts < 1000``) is not
blocked: it only needs live rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.approx.routes.constraints import (
    ColumnConstraint,
    extract_constraints,
)
from repro.db.database import Database
from repro.db.sql.ast import SelectStatement
from repro.db.sql.parser import parse_expression
from repro.db.stats import (
    ENUMERABLE_DISTINCT_LIMIT,
    ColumnStats,
    TableStats,
    compute_table_stats,
)
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ArchiveError
from repro.persist.snapshot import (
    read_table_segments,
    schema_from_payload,
    schema_to_payload,
    write_table_segments,
)

__all__ = ["ArchivedSegment", "ArchiveReport", "ArchiveTier"]


# ---------------------------------------------------------------------------
# Column-stats serialization (the archive manifest stores the statistics of
# rows that no longer exist in memory)
# ---------------------------------------------------------------------------


def _column_stats_payload(stats: ColumnStats) -> dict[str, Any]:
    return {
        "name": stats.name,
        "dtype": stats.dtype.value,
        "row_count": stats.row_count,
        "null_count": stats.null_count,
        "distinct_count": stats.distinct_count,
        "min_value": stats.min_value,
        "max_value": stats.max_value,
        "mean": stats.mean,
        "std": stats.std,
        "domain": stats.domain,
        "domain_counts": stats.domain_counts,
    }


def _column_stats_from_payload(payload: dict[str, Any]) -> ColumnStats:
    return ColumnStats(
        name=payload["name"],
        dtype=DataType(payload["dtype"]),
        row_count=int(payload["row_count"]),
        null_count=int(payload["null_count"]),
        distinct_count=int(payload["distinct_count"]),
        min_value=payload.get("min_value"),
        max_value=payload.get("max_value"),
        mean=payload.get("mean"),
        std=payload.get("std"),
        domain=payload.get("domain"),
        domain_counts=payload.get("domain_counts"),
    )


@dataclass
class ArchivedSegment:
    """One archived slice of a table: where its rows went and what they were."""

    table_name: str
    predicate_sql: str
    row_count: int
    byte_size: int
    schema_payload: list[list[Any]]
    segment_entries: list[dict[str, Any]]
    column_stats: dict[str, ColumnStats]
    #: Constraint analysis of ``predicate_sql``, computed once at archive or
    #: restore time (None when unanalysable) — the planner's disjointness
    #: guard runs on every cache-missing plan and must not re-parse.
    constraints: Any = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.constraints is None:
            self.constraints = _analyse_predicate(self.predicate_sql)

    def to_payload(self) -> dict[str, Any]:
        return {
            "table_name": self.table_name,
            "predicate_sql": self.predicate_sql,
            "row_count": self.row_count,
            "byte_size": self.byte_size,
            "schema": self.schema_payload,
            "segments": self.segment_entries,
            "column_stats": {
                name: _column_stats_payload(stats) for name, stats in self.column_stats.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "ArchivedSegment":
        return cls(
            table_name=payload["table_name"],
            predicate_sql=payload["predicate_sql"],
            row_count=int(payload["row_count"]),
            byte_size=int(payload["byte_size"]),
            schema_payload=payload["schema"],
            segment_entries=payload["segments"],
            column_stats={
                name: _column_stats_from_payload(entry)
                for name, entry in payload.get("column_stats", {}).items()
            },
        )


@dataclass
class ArchiveReport:
    """What one ``archive()`` call moved out of memory."""

    table_name: str
    predicate_sql: str
    rows_archived: int
    bytes_archived: int
    rows_remaining: int

    def describe(self) -> str:
        return (
            f"archived {self.rows_archived} row(s) ({self.bytes_archived} bytes) of "
            f"{self.table_name!r} under {self.predicate_sql!r}; "
            f"{self.rows_remaining} live row(s) remain"
        )


class ArchiveTier:
    """Manages archived segments and the merged-statistics overlay."""

    def __init__(self, database: Database, directory: Path) -> None:
        self.database = database
        self.directory = Path(directory)
        self._segments: dict[str, list[ArchivedSegment]] = {}
        self._sequence = 0
        #: Optional fault injector (persist.archive.write / persist.archive.read).
        self.faults: Any = None
        #: table -> (catalog version, merged TableStats): the approximate
        #: engine asks for stats many times per query, and re-merging the
        #: archived segments' statistics each time would put dictionary
        #: merges on the model-serving hot path.
        self._merged_cache: dict[str, tuple[int, TableStats]] = {}

    # -- queries ----------------------------------------------------------------

    def has_archived(self, table_name: str) -> bool:
        return bool(self._segments.get(table_name))

    def archived_tables(self) -> list[str]:
        return sorted(name for name, entries in self._segments.items() if entries)

    def segments_for(self, table_name: str) -> list[ArchivedSegment]:
        return list(self._segments.get(table_name, []))

    def archived_rows(self, table_name: str) -> int:
        return sum(s.row_count for s in self._segments.get(table_name, []))

    def archived_bytes(self, table_name: str) -> int:
        return sum(s.byte_size for s in self._segments.get(table_name, []))

    # -- archiving --------------------------------------------------------------

    def archive(self, table_name: str, predicate_sql: str) -> ArchiveReport:
        """Move the rows matching ``predicate_sql`` out of memory onto disk.

        Runs under the catalog commit lock from the moment the table is
        read until the remainder replaces it: a batch appended mid-archive
        would otherwise vanish when the (stale) remainder is swapped in.
        Holding the lock also makes the table swap and the archive-guard
        state (``_segments``) flip atomically with respect to snapshot
        acquisition — no reader can ever pin the shrunken remainder while
        the guard still reports the table as unarchived.
        """
        with self.database.catalog.commit_lock:
            # live_table: a pin on the archiving thread must not divert the
            # swap onto a frozen copy.
            table = self.database.catalog.live_table(table_name)
            mask = self._predicate_mask(table, predicate_sql)
            rows_archived = int(mask.sum())
            if rows_archived == 0:
                raise ArchiveError(
                    f"predicate {predicate_sql!r} selects no rows of {table_name!r}; nothing to archive"
                )
            archived = table.filter(mask)
            live = table.filter(~mask)

            self._sequence += 1
            prefix = f"{table_name}__arch{self._sequence:05d}"
            try:
                if self.faults is not None:
                    self.faults.hit("persist.archive.write", path=self.directory)
                entries = write_table_segments(self.directory, archived, file_prefix=prefix)
            except OSError as exc:
                raise ArchiveError(
                    f"archive segment write for {table_name!r} under {self.directory} "
                    f"failed: {exc.strerror or exc}"
                ) from exc
            stats = compute_table_stats(archived)

            segment = ArchivedSegment(
                table_name=table_name,
                predicate_sql=predicate_sql,
                row_count=rows_archived,
                byte_size=archived.byte_size(),
                schema_payload=schema_to_payload(archived.schema),
                segment_entries=entries,
                column_stats=dict(stats.columns),
            )
            # Replace the base table with the live remainder.  Deliberately NOT
            # a data-change notification to the model lifecycle: archiving does
            # not invalidate what the models learned — the rows still exist,
            # they just moved tiers.
            self.database.catalog.replace_table(live)
            self._segments.setdefault(table_name, []).append(segment)
            self._install_overlay(table_name)
        return ArchiveReport(
            table_name=table_name,
            predicate_sql=predicate_sql,
            rows_archived=rows_archived,
            bytes_archived=segment.byte_size,
            rows_remaining=live.num_rows,
        )

    def recall(self, table_name: str) -> int:
        """Load every archived segment of ``table_name`` back into memory.

        Same critical section as :meth:`archive`: the read-concat-replace
        must be atomic against concurrent appends, and the guard state must
        clear in the same commit the restored table lands in.
        """
        with self.database.catalog.commit_lock:
            segments = self._segments.get(table_name)
            if not segments:
                raise ArchiveError(f"table {table_name!r} has no archived segments to recall")
            table = self.database.catalog.live_table(table_name)
            restored_rows = 0
            for segment in segments:
                schema = schema_from_payload(segment.schema_payload)
                try:
                    if self.faults is not None:
                        self.faults.hit("persist.archive.read", path=self.directory)
                    piece = read_table_segments(
                        self.directory, table_name, schema, segment.segment_entries
                    )
                except OSError as exc:
                    raise ArchiveError(
                        f"archive segment read for {table_name!r} under {self.directory} "
                        f"failed: {exc.strerror or exc}"
                    ) from exc
                table = table.concat(piece)
                restored_rows += piece.num_rows
            self.database.catalog.replace_table(table)
            self._segments[table_name] = []
            self._merged_cache.pop(table_name, None)
            self.database.clear_stats_overlay(table_name)
            self.database.catalog.clear_table_meta(table_name, "archive_segments")
        # The segment files are NOT deleted here: until the next checkpoint
        # snapshots the recalled rows, they are the only durable copy — a
        # crash now must be able to restore the pre-recall manifest.  The
        # checkpoint that persists the recall purges them (see
        # :meth:`purge_unreferenced`).
        return restored_rows

    def drop(self, table_name: str) -> int:
        """Forget a dropped table's archived segments (rows go with the table).

        The segment files are left for :meth:`purge_unreferenced` at the
        next checkpoint — until then the last manifest still references
        them.  Returns how many archived rows were discarded."""
        segments = self._segments.pop(table_name, [])
        self._merged_cache.pop(table_name, None)
        self.database.clear_stats_overlay(table_name)
        self.database.catalog.clear_table_meta(table_name, "archive_segments")
        return sum(segment.row_count for segment in segments)

    def referenced_files(self) -> set[str]:
        return {
            entry["file"]
            for segments in self._segments.values()
            for segment in segments
            for entry in segment.segment_entries
        }

    def purge_unreferenced(self) -> int:
        """Delete archive segment files no entry references any more.

        Called by the durable store *after* a checkpoint's manifest rename:
        at that point recalled rows live in the new snapshot, so their old
        archive segments are garbage — leaving them would leak the archived
        bytes on every archive/recall cycle.  Crash-safe by construction:
        before the rename, the old manifest still references the files and
        this purge has not run."""
        if not self.directory.is_dir():
            return 0
        keep = self.referenced_files()
        removed = 0
        for path in self.directory.glob("*.npz"):
            if path.name not in keep:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def _predicate_mask(self, table: Table, predicate_sql: str) -> np.ndarray:
        try:
            expression = parse_expression(predicate_sql)
            result = expression.evaluate(table)
        except Exception as exc:
            raise ArchiveError(
                f"cannot evaluate archive predicate {predicate_sql!r} on "
                f"{table.name!r}: {exc}"
            ) from exc
        values = np.asarray(result.values, dtype=bool)
        return values & np.asarray(result.validity, dtype=bool)

    # -- merged statistics overlay ----------------------------------------------

    def _install_overlay(self, table_name: str) -> None:
        # Bind the segment list at install time: snapshots capture the
        # overlay closure and the segment metadata, and a pinned reader
        # must keep seeing the archive state of *its* commit even after a
        # later recall or re-archive rebinds the live overlay.
        segments = tuple(self._segments.get(table_name, ()))
        self.database.set_stats_overlay(
            table_name, lambda live: self.merged_stats(table_name, live, segments)
        )
        self.database.catalog.set_table_meta(table_name, "archive_segments", segments)

    def reinstall_overlays(self) -> None:
        """Re-register overlays after recovery restored the manifest."""
        for table_name, segments in self._segments.items():
            if segments:
                self._install_overlay(table_name)

    def merged_stats(
        self,
        table_name: str,
        live: TableStats,
        segments: tuple[ArchivedSegment, ...] | None = None,
    ) -> TableStats:
        """Live statistics widened to cover the archived rows as well.

        ``segments`` defaults to the live segment list; overlay closures
        pass the list frozen at install time instead, so a pinned overlay
        stays consistent with its commit.  Cached per catalog version —
        pin-aware, so pinned readers key the merge on *their* version: any
        change to the live table (appends, archive, recall) bumps the
        version via the catalog, invalidating the merge; everything else
        reuses it."""
        if segments is None:
            segments = tuple(self._segments.get(table_name, ()))
        if not segments:
            return live
        version = self.database.catalog.version
        cached = self._merged_cache.get(table_name)
        if cached is not None and cached[0] == version:
            return cached[1]
        merged = TableStats(
            table_name=live.table_name,
            row_count=live.row_count + sum(s.row_count for s in segments),
            byte_size=live.byte_size + sum(s.byte_size for s in segments),
        )
        for name, column in live.columns.items():
            parts = [column] + [
                s.column_stats[name] for s in segments if name in s.column_stats
            ]
            merged.columns[name] = _merge_column_stats(parts)
        self._merged_cache[table_name] = (version, merged)
        return merged

    # -- planner guard ------------------------------------------------------------

    def blocking_reason(self, statement: SelectStatement) -> str | None:
        """Why this statement cannot honestly run over the raw (live) rows.

        Returns None when no referenced table has archived segments, or when
        the WHERE clause is provably disjoint from every archived predicate.

        Segment state is resolved through the catalog's pin-aware metadata:
        a reader pinned to a post-archive commit stays blocked from exact
        execution even if a concurrent recall has already restored the live
        table — its pinned table is still the shrunken remainder.
        """
        names = []
        if statement.table is not None:
            names.append(statement.table.name)
        names.extend(join.table.name for join in statement.joins)
        segments_by_name = {
            name: self.database.catalog.table_meta(name, "archive_segments", ())
            for name in names
        }
        if not any(segments_by_name.values()):
            return None  # nothing archived: skip the constraint analysis
        # Disjointness proofs only apply to single-table statements: the
        # constraint analysis strips table qualifiers, so in a join a filter
        # on one table's ``ts`` would falsely "prove" disjointness from
        # another table's archived ``ts`` predicate.  With joins present,
        # any archived table blocks.
        query_constraints = (
            extract_constraints(statement.where) if not statement.joins else None
        )
        for name in names:
            segments = segments_by_name[name]
            if not segments:
                continue
            for segment in segments:
                if query_constraints is None or not self._provably_disjoint(
                    segment, query_constraints
                ):
                    rows = sum(s.row_count for s in segments)
                    return (
                        f"{rows} row(s) of table {name!r} are archived to the "
                        f"model-only tier (predicate {segment.predicate_sql!r}); "
                        f"exact execution over the remaining raw rows would be "
                        f"incomplete — serve from warehouse models or recall the archive"
                    )
        return None

    def _provably_disjoint(self, segment: ArchivedSegment, query) -> bool:
        """True when the query constraints exclude every archived row.

        Unanalysable residual conjuncts in the *query* are fine — they only
        narrow the selection, so a disjointness proof from the analysed
        conjuncts still stands.  An unanalysable *archive* predicate is
        fatal: we cannot characterise what was archived.
        """
        archived = segment.constraints
        if archived is None or archived.residual:
            return False
        for column, archived_constraint in archived.by_column.items():
            query_constraint = query.by_column.get(column)
            if query_constraint is None:
                continue
            if _constraints_disjoint(archived_constraint, query_constraint):
                return True
        return False

    # -- manifest round trip --------------------------------------------------------

    def to_payload(self) -> dict[str, Any]:
        return {
            "sequence": self._sequence,
            "tables": {
                name: [segment.to_payload() for segment in segments]
                for name, segments in self._segments.items()
                if segments
            },
        }

    def restore_from_payload(self, payload: dict[str, Any]) -> None:
        self._sequence = int(payload.get("sequence", 0))
        self._segments = {
            name: [ArchivedSegment.from_payload(entry) for entry in entries]
            for name, entries in payload.get("tables", {}).items()
        }
        self.reinstall_overlays()


# ---------------------------------------------------------------------------
# Constraint disjointness
# ---------------------------------------------------------------------------


def _analyse_predicate(predicate_sql: str):
    """Parse + constraint-analyse a predicate once (None when it resists)."""
    try:
        return extract_constraints(parse_expression(predicate_sql))
    except Exception:
        return None


def _constraints_disjoint(a: ColumnConstraint, b: ColumnConstraint) -> bool:
    """True when no value can satisfy both constraints."""
    if a.values is not None:
        return all(not b.admits(v) for v in a.values)
    if b.values is not None:
        return all(not a.admits(v) for v in b.values)
    # Interval vs interval: empty intersection?
    low, low_inclusive = _max_low(a, b)
    high, high_inclusive = _min_high(a, b)
    if low is None or high is None:
        return False
    if low > high:
        return True
    if low == high and not (low_inclusive and high_inclusive):
        return True
    return False


def _max_low(a: ColumnConstraint, b: ColumnConstraint) -> tuple[float | None, bool]:
    if a.low is None:
        return b.low, b.low_inclusive
    if b.low is None or a.low > b.low:
        return a.low, a.low_inclusive
    if b.low > a.low:
        return b.low, b.low_inclusive
    return a.low, a.low_inclusive and b.low_inclusive


def _min_high(a: ColumnConstraint, b: ColumnConstraint) -> tuple[float | None, bool]:
    if a.high is None:
        return b.high, b.high_inclusive
    if b.high is None or a.high < b.high:
        return a.high, a.high_inclusive
    if b.high < a.high:
        return b.high, b.high_inclusive
    return a.high, a.high_inclusive and b.high_inclusive


def _merge_column_stats(parts: list[ColumnStats]) -> ColumnStats:
    """Combine per-part column statistics into whole-logical-table stats."""
    first = parts[0]
    if len(parts) == 1:
        return first
    row_count = sum(p.row_count for p in parts)
    null_count = sum(p.null_count for p in parts)

    mins = [p.min_value for p in parts if p.min_value is not None]
    maxs = [p.max_value for p in parts if p.max_value is not None]
    min_value = min(mins) if mins else None
    max_value = max(maxs) if maxs else None

    # Weighted mean / pooled std over non-null values (E[x²] composition).
    mean = None
    std = None
    weighted = [
        (p.row_count - p.null_count, p.mean, p.std)
        for p in parts
        if p.mean is not None and (p.row_count - p.null_count) > 0
    ]
    if weighted:
        total = sum(n for n, _, _ in weighted)
        mean = sum(n * m for n, m, _ in weighted) / total
        if all(s is not None for _, _, s in weighted):
            second_moment = sum(n * (s * s + m * m) for n, m, s in weighted) / total
            std = float(np.sqrt(max(second_moment - mean * mean, 0.0)))
        mean = float(mean)

    domain = None
    domain_counts = None
    distinct_count = max(p.distinct_count for p in parts)
    if all(p.domain is not None for p in parts):
        counts: dict[Any, int] = {}
        for p in parts:
            part_counts = (
                p.domain_counts if p.domain_counts is not None else [0] * len(p.domain)
            )
            for value, count in zip(p.domain, part_counts):
                counts[value] = counts.get(value, 0) + int(count)
        if len(counts) <= ENUMERABLE_DISTINCT_LIMIT:
            try:
                ordered = sorted(counts)
            except TypeError:
                ordered = list(counts)
            domain = ordered
            domain_counts = [counts[v] for v in ordered]
            distinct_count = len(ordered)
        else:
            distinct_count = len(counts)

    return ColumnStats(
        name=first.name,
        dtype=first.dtype,
        row_count=row_count,
        null_count=null_count,
        distinct_count=distinct_count,
        min_value=min_value,
        max_value=max_value,
        mean=mean,
        std=std,
        domain=domain,
        domain_counts=domain_counts,
    )
