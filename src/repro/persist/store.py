"""The durable store: snapshots + WAL + warehouse behind one checkpoint.

On-disk layout (all under one root directory)::

    MANIFEST.json            checkpoint manifest (atomic tmp+rename)
    wal.log                  append-only checksummed WAL (epoch-stamped)
    segments/ckpt<N>/        columnar table snapshots of checkpoint N
    warehouse/models-<N>.json  the model warehouse of checkpoint N
    archive/                 model-only-tier segments (survive checkpoints)

Crash safety is manifest-pivoted: a checkpoint writes the new segment files
and warehouse first, then renames the manifest into place, then resets the
WAL with the new checkpoint's epoch.  A crash anywhere in that sequence
leaves either the old manifest (whose files are untouched) or the new one;
the WAL's epoch record tells a reopening process whether the log extends
the manifest it found or predates it (in which case it is discarded —
its records are already inside the snapshot).
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.db.table import Table
from repro.errors import FormatVersionError, PersistenceError
from repro.persist.archive import ArchiveTier
from repro.persist.snapshot import (
    DEFAULT_ROWS_PER_SEGMENT,
    read_table_segments,
    schema_from_payload,
    schema_to_payload,
    write_table_segments,
)
from repro.persist.warehouse import restore_store, serialize_store
from repro.persist.wal import WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.core.system import LawsDatabase

__all__ = ["CheckpointReport", "RecoveryReport", "DurableStore"]

#: On-disk format version; a major bump breaks compatibility.
FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"

#: Rows per WAL append frame.  Bulk loads are split so no single frame can
#: approach the WAL's frame-size cap (a bulk load framed as one giant record
#: would raise *after* the in-memory registration succeeded, leaving a WAL
#: that replays the table truncated).
WAL_APPEND_CHUNK_ROWS = 4096

#: Creates/loads at or above this row count are persisted as columnar npz
#: segments under ``walseg/`` referenced by one WAL ``load_table`` record
#: (see :meth:`DurableStore.log_load_table`) instead of row-wise JSON WAL
#: frames — the WAL stays for incremental appends, not bulk loads several
#: times the snapshot's size that would replay row-by-row on every reopen.
LARGE_CREATE_SNAPSHOT_ROWS = 65536


@dataclass
class CheckpointReport:
    """What one checkpoint wrote."""

    checkpoint_id: int
    tables: int = 0
    rows: int = 0
    segment_files: int = 0
    models: int = 0
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"checkpoint #{self.checkpoint_id}: {self.tables} table(s), {self.rows} row(s) "
            f"in {self.segment_files} segment file(s), {self.models} model(s)"
        )


@dataclass
class RecoveryReport:
    """What reopening a durable store recovered."""

    checkpoint_id: int = 0
    tables_loaded: int = 0
    rows_loaded: int = 0
    models_restored: int = 0
    watches_restored: int = 0
    wal_records_replayed: int = 0
    wal_rows_replayed: int = 0
    wal_truncated_bytes: int = 0
    wal_truncation_reason: str | None = None
    wal_discarded_epoch_mismatch: bool = False
    archived_tables: list[str] = field(default_factory=list)

    @property
    def cold_started(self) -> bool:
        return self.tables_loaded > 0 or self.models_restored > 0

    def describe(self) -> str:
        parts = [
            f"recovered checkpoint #{self.checkpoint_id}: {self.tables_loaded} table(s), "
            f"{self.rows_loaded} row(s), {self.models_restored} warehouse model(s), "
            f"{self.watches_restored} maintenance watch(es)",
            f"WAL: {self.wal_records_replayed} record(s) / {self.wal_rows_replayed} row(s) replayed",
        ]
        if self.wal_truncated_bytes:
            parts.append(
                f"WAL tail truncated: {self.wal_truncated_bytes} byte(s) "
                f"({self.wal_truncation_reason})"
            )
        if self.archived_tables:
            parts.append(f"model-only tier active for {self.archived_tables}")
        return "; ".join(parts)


class DurableStore:
    """Owns the on-disk state of one :class:`LawsDatabase`."""

    def __init__(
        self,
        root: Path | str,
        rows_per_segment: int = DEFAULT_ROWS_PER_SEGMENT,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        self.rows_per_segment = rows_per_segment
        self.fsync = fsync
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(self.root / WAL_NAME, fsync=fsync)
        self.checkpoint_id = 0
        #: False while recovery replays the WAL, so replayed appends are not
        #: re-logged; True once the store is live.
        self.accepting_writes = False
        #: Optional :class:`repro.obs.EventJournal` recording checkpoint and
        #: recovery operations.
        self.journal: Any = None
        self._closed = False
        #: Sequence for snapshot-backed WAL load records; resumes past any
        #: directories a previous incarnation left under walseg/.
        self._walseg_counter = self._max_walseg_index()

    # -- paths -------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _segments_dir(self, checkpoint_id: int) -> Path:
        return self.root / "segments" / f"ckpt{checkpoint_id:05d}"

    def _warehouse_path(self, checkpoint_id: int) -> Path:
        return self.root / "warehouse" / f"models-{checkpoint_id:05d}.json"

    @property
    def archive_dir(self) -> Path:
        return self.root / "archive"

    @property
    def walseg_dir(self) -> Path:
        """Columnar segments referenced by WAL ``load_table`` records.

        Obsolete the moment the WAL resets; purged wholesale at checkpoint."""
        return self.root / "walseg"

    def _max_walseg_index(self) -> int:
        if not self.walseg_dir.is_dir():
            return 0
        indices = [
            int(child.name) for child in self.walseg_dir.iterdir() if child.name.isdigit()
        ]
        return max(indices, default=0)

    def has_checkpoint(self) -> bool:
        return self.manifest_path.is_file()

    # -- WAL hooks (called by the LawsDatabase write paths) -----------------------

    def log_create_table(self, table: Table, replace: bool = False) -> None:
        if not self.accepting_writes:
            return
        self.wal.append(
            {
                "op": "create_table",
                "name": table.name,
                "schema": schema_to_payload(table.schema),
                "replace": bool(replace),
            }
        )
        if table.num_rows:
            self.log_append(table.name, table.to_rows())

    def log_append(self, table_name: str, rows: Any) -> None:
        if not self.accepting_writes:
            return
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)
        # Converted per chunk: one transient list-of-lists per frame instead
        # of a second whole-table materialization next to the caller's rows.
        for start in range(0, len(rows), WAL_APPEND_CHUNK_ROWS):
            chunk = [list(row) for row in rows[start : start + WAL_APPEND_CHUNK_ROWS]]
            self.wal.append({"op": "append", "table": table_name, "rows": chunk})

    def log_load_table(self, table: Table, replace: bool = False) -> None:
        """Persist a bulk load as columnar segments + one referencing record.

        The segments are on disk (and synced, when fsync is on) *before*
        the WAL record naming them is appended, so a replayed record never
        dangles."""
        if not self.accepting_writes:
            return
        self._walseg_counter += 1
        directory = self.walseg_dir / f"{self._walseg_counter:05d}"
        entries = write_table_segments(
            directory, table, rows_per_segment=self.rows_per_segment
        )
        if self.fsync:
            for segment_file in directory.iterdir():
                _fsync_file(segment_file)
            _fsync_dir(directory)
        self.wal.append(
            {
                "op": "load_table",
                "name": table.name,
                "schema": schema_to_payload(table.schema),
                "dir": str(directory.relative_to(self.root)),
                "segments": entries,
                "replace": bool(replace),
            }
        )

    def log_drop_table(self, table_name: str) -> None:
        if not self.accepting_writes:
            return
        self.wal.append({"op": "drop_table", "name": table_name})

    def log_archive(self, table_name: str, predicate_sql: str) -> None:
        if not self.accepting_writes:
            return
        self.wal.append({"op": "archive", "table": table_name, "predicate": predicate_sql})

    def log_recall(self, table_name: str) -> None:
        if not self.accepting_writes:
            return
        self.wal.append({"op": "recall", "table": table_name})

    def log_sql(self, sql: str) -> None:
        """Log a DDL/DML statement executed through the SQL front-end.

        Replay re-executes the statement text — deterministic for the
        supported subset (CREATE TABLE / INSERT ... VALUES)."""
        if not self.accepting_writes:
            return
        self.wal.append({"op": "sql", "sql": sql})

    # -- checkpoint ----------------------------------------------------------------

    def checkpoint(self, system: "LawsDatabase") -> CheckpointReport:
        """Snapshot every table, the warehouse and the planner calibration.

        The whole body runs under the catalog commit lock: writers commit
        batch + redo record as one critical section under the same lock, so
        the snapshot, the manifest and the WAL reset all describe the same
        committed state — a concurrent append can neither slip between the
        snapshot and the log reset (its rows would vanish from the log
        without being in the snapshot) nor land in both (double-applied on
        recovery).  Writers and snapshot-taking readers stall for the
        checkpoint's duration; queries already holding a snapshot proceed.
        """
        if self._closed:
            raise PersistenceError("durable store is closed")
        with system.database.catalog.commit_lock:
            return self._checkpoint_locked(system)

    def _checkpoint_locked(self, system: "LawsDatabase") -> CheckpointReport:
        from time import perf_counter

        started = perf_counter()
        new_id = self.checkpoint_id + 1
        report = CheckpointReport(checkpoint_id=new_id)

        segments_dir = self._segments_dir(new_id)
        if segments_dir.exists():
            shutil.rmtree(segments_dir)
        tables_payload: dict[str, Any] = {}
        database = system.database
        for name in database.table_names():
            table = database.table(name)
            entries = write_table_segments(
                segments_dir, table, rows_per_segment=self.rows_per_segment
            )
            tables_payload[name] = {
                "schema": schema_to_payload(table.schema),
                "row_count": table.num_rows,
                "segments": entries,
            }
            report.tables += 1
            report.rows += table.num_rows
            report.segment_files += len(entries)

        warehouse_payload = serialize_store(system.models)
        warehouse_payload["calibration"] = _calibration_payload(system)
        warehouse_payload["maintenance"] = system.maintenance.export_state()
        report.models = len(warehouse_payload["models"])
        warehouse_path = self._warehouse_path(new_id)
        warehouse_path.parent.mkdir(parents=True, exist_ok=True)
        _write_json_atomic(warehouse_path, warehouse_payload, fsync=self.fsync)

        if self.fsync:
            # The manifest rename must not become durable before the file
            # contents it references: flush every new segment (and its
            # directory entry) to stable storage first.
            if segments_dir.is_dir():
                for segment_file in segments_dir.iterdir():
                    _fsync_file(segment_file)
                _fsync_dir(segments_dir)
            _fsync_dir(warehouse_path.parent)

        manifest = {
            "format_version": FORMAT_VERSION,
            "checkpoint_id": new_id,
            "catalog_version": database.catalog.version,
            "tables": tables_payload,
            "warehouse_file": str(warehouse_path.relative_to(self.root)),
            "archive": system.archive_tier.to_payload() if system.archive_tier else {},
            "wal_file": WAL_NAME,
        }
        _write_json_atomic(self.manifest_path, manifest, fsync=self.fsync)
        # The manifest now names checkpoint N; reset the WAL under N's epoch
        # so a crash between these two steps leaves an epoch-mismatched (and
        # therefore ignored) log rather than a double-applied one.
        self.wal.reset(epoch=new_id)

        self.checkpoint_id = new_id
        self._cleanup_stale_artifacts(keep_id=new_id)
        if system.archive_tier is not None:
            # Recalled rows are inside the new snapshot now; their archive
            # segments are unreferenced garbage.
            system.archive_tier.purge_unreferenced()
        report.elapsed_seconds = perf_counter() - started
        if self.journal is not None:
            self.journal.record(
                "checkpoint",
                checkpoint_id=report.checkpoint_id,
                tables=report.tables,
                rows=report.rows,
                models=report.models,
                segment_files=report.segment_files,
            )
        return report

    def _cleanup_stale_artifacts(self, keep_id: int) -> None:
        """Drop every snapshot/warehouse/walseg artefact the manifest no
        longer references.

        A sweep (not just "delete N-1") so artefacts orphaned by a crash
        between a manifest rename and its cleanup are reclaimed by the next
        successful checkpoint instead of leaking forever."""
        segments_root = self.root / "segments"
        if segments_root.is_dir():
            keep_segments = self._segments_dir(keep_id).name
            for child in segments_root.iterdir():
                if child.name != keep_segments:
                    shutil.rmtree(child, ignore_errors=True)
        warehouse_root = self.root / "warehouse"
        if warehouse_root.is_dir():
            keep_warehouse = self._warehouse_path(keep_id).name
            for child in warehouse_root.iterdir():
                if child.name != keep_warehouse:
                    try:
                        child.unlink()
                    except OSError:
                        pass
        # The WAL was just reset: no record references walseg/ any more.
        shutil.rmtree(self.walseg_dir, ignore_errors=True)

    # -- recovery -------------------------------------------------------------------

    def recover(self, system: "LawsDatabase") -> RecoveryReport:
        """Load the last checkpoint into ``system`` and replay the WAL tail."""
        report = RecoveryReport()
        manifest: dict[str, Any] | None = None
        if self.manifest_path.is_file():
            manifest = json.loads(self.manifest_path.read_text())
            version = int(manifest.get("format_version", 0))
            if version > FORMAT_VERSION:
                raise FormatVersionError(
                    f"store at {self.root} uses format v{version}; this build "
                    f"supports up to v{FORMAT_VERSION}"
                )
            self.checkpoint_id = int(manifest.get("checkpoint_id", 0))
            report.checkpoint_id = self.checkpoint_id

        database = system.database
        if manifest is not None:
            segments_dir = self._segments_dir(self.checkpoint_id)
            for name, entry in manifest.get("tables", {}).items():
                schema = schema_from_payload(entry["schema"])
                table = read_table_segments(segments_dir, name, schema, entry["segments"])
                if table.num_rows != int(entry.get("row_count", table.num_rows)):
                    raise PersistenceError(
                        f"snapshot of {name!r} has {table.num_rows} row(s) but the "
                        f"manifest recorded {entry.get('row_count')}"
                    )
                database.register_table(table)
                report.tables_loaded += 1
                report.rows_loaded += table.num_rows
            database.catalog.restore_version(int(manifest.get("catalog_version", 0)))

        # The warehouse loads before the WAL replays: replayed appends mark
        # the touched tables' models stale, which only lands if the models
        # are already in the store.
        if manifest is not None:
            warehouse_file = manifest.get("warehouse_file")
            if warehouse_file:
                warehouse_path = self.root / warehouse_file
                if not warehouse_path.is_file():
                    raise PersistenceError(f"warehouse file missing: {warehouse_path}")
                payload = json.loads(warehouse_path.read_text())
                restored = restore_store(payload, system.models)
                report.models_restored = len(restored)
                if restored:
                    from repro.core.captured_model import ensure_model_id_floor

                    ensure_model_id_floor(max(m.model_id for m in restored))
                _restore_calibration(system, payload.get("calibration"))
                report.watches_restored = system.maintenance.restore_state(
                    payload.get("maintenance", [])
                )
            # The archive manifest restores BEFORE the WAL replays: replayed
            # archive/recall/drop records operate on the tier, and a drop of
            # an archived table must clear (not precede) its restored state.
            archive_payload = manifest.get("archive") or {}
            if archive_payload.get("tables"):
                if system.archive_tier is None:
                    # Reachable when recover() is driven directly (not via
                    # LawsDatabase.open): the planner guard must be wired
                    # here too, or archived tables would restore with exact
                    # execution silently running over the partial remainder.
                    system.archive_tier = ArchiveTier(database, self.archive_dir)
                    system.planner.archive_guard = system.archive_tier.blocking_reason
                system.archive_tier.restore_from_payload(archive_payload)

        # WAL replay: only a log stamped with this checkpoint's epoch extends
        # it; any other epoch predates the manifest rename and is discarded.
        replay = self.wal.replay(repair=True)
        report.wal_truncated_bytes = replay.truncated_bytes
        report.wal_truncation_reason = replay.truncation_reason
        if replay.epoch != self.checkpoint_id:
            # A stale-epoch log must be re-stamped even when it holds no
            # data records: appends accepted into an epoch-1 log under a
            # checkpoint-2 manifest would be silently discarded on the
            # *next* recovery.
            report.wal_discarded_epoch_mismatch = bool(replay.records)
            self.wal.reset(epoch=self.checkpoint_id)
        else:
            touched: set[str] = set()
            for record in replay.records:
                report.wal_records_replayed += 1
                report.wal_rows_replayed += _apply_wal_record(self, system, record, touched)
            for name in touched:
                system.models.mark_table_stale(name)
        if not self.wal.path.exists() or self.wal.size_bytes == 0:
            self.wal.reset(epoch=self.checkpoint_id)

        if system.archive_tier is not None:
            report.archived_tables = system.archive_tier.archived_tables()

        self.accepting_writes = True
        if self.journal is not None:
            self.journal.record(
                "recovery",
                checkpoint_id=report.checkpoint_id,
                tables_loaded=report.tables_loaded,
                rows_loaded=report.rows_loaded,
                models_restored=report.models_restored,
                watches_restored=report.watches_restored,
                wal_records_replayed=report.wal_records_replayed,
                wal_rows_replayed=report.wal_rows_replayed,
                wal_truncated_bytes=report.wal_truncated_bytes,
            )
        return report

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        self.accepting_writes = False
        self.wal.close()
        self._closed = True


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _write_json_atomic(path: Path, payload: dict[str, Any], fsync: bool = False) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=1))
    if fsync:
        _fsync_file(tmp)
    tmp.replace(path)
    if fsync:
        _fsync_dir(path.parent)


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


#: Directories fsync the same way on POSIX (O_RDONLY open + fsync).
_fsync_dir = _fsync_file


def _apply_wal_record(
    store: DurableStore, system: "LawsDatabase", record: dict[str, Any], touched: set[str]
) -> int:
    """Apply one replayed WAL record; returns the rows it appended."""
    database = system.database
    op = record.get("op")
    if op == "load_table":
        name = record["name"]
        schema = schema_from_payload(record["schema"])
        table = read_table_segments(
            store.root / record["dir"], name, schema, record["segments"]
        )
        if database.has_table(name):
            if not record.get("replace", False):
                raise PersistenceError(
                    f"WAL loads table {name!r} which already exists in the snapshot"
                )
            database.drop_table(name)
            if system.archive_tier is not None:
                system.archive_tier.drop(name)
        database.register_table(table)
        return table.num_rows
    if op == "create_table":
        name = record["name"]
        schema = schema_from_payload(record["schema"])
        if database.has_table(name):
            if not record.get("replace", False):
                raise PersistenceError(
                    f"WAL creates table {name!r} which already exists in the snapshot"
                )
            database.drop_table(name)
            if system.archive_tier is not None:
                # Mirror the live replace path: the old incarnation's
                # archived segments go with it.
                system.archive_tier.drop(name)
        database.create_table(name, schema)
        return 0
    if op == "append":
        name = record["table"]
        rows = [tuple(row) for row in record["rows"]]
        database.insert_rows(name, rows)
        touched.add(name)
        return len(rows)
    if op == "drop_table":
        name = record["name"]
        database.drop_table(name)
        # Mirror the live drop path: warehouse models of a dropped table
        # must not keep serving for a table that no longer exists, and its
        # archived segments (restored before replay) go with it.
        for model in system.models.models_for_table(name, include_unusable=True):
            if model.status != "retired":
                system.models.retire_model(model.model_id)
        if system.archive_tier is not None:
            system.archive_tier.drop(name)
        touched.discard(name)
        return 0
    if op == "sql":
        from repro.db.sql.ast import InsertStatement

        statement = database.parse_sql(record["sql"])
        database.sql(record["sql"])
        if isinstance(statement, InsertStatement):
            touched.add(statement.name)
            return len(statement.rows)
        return 0
    if op == "archive":
        if system.archive_tier is None:  # pragma: no cover - open() always sets it
            raise PersistenceError("WAL archives a segment but no archive tier is attached")
        # Re-archiving is deterministic: the predicate re-selects the same
        # rows out of the recovered table state at this point of the log.
        system.archive_tier.archive(record["table"], record["predicate"])
        return 0
    if op == "recall":
        if system.archive_tier is None:  # pragma: no cover - open() always sets it
            raise PersistenceError("WAL recalls a segment but no archive tier is attached")
        system.archive_tier.recall(record["table"])
        return 0
    raise PersistenceError(f"unknown WAL record op {op!r}")


def _calibration_payload(system: "LawsDatabase") -> dict[str, float]:
    from dataclasses import asdict

    return asdict(system.planner.cost_model.costs)


def _restore_calibration(system: "LawsDatabase", payload: dict[str, float] | None) -> None:
    if not payload:
        return
    from repro.core.planner.cost import CostModel, OperatorCosts

    valid = {k: float(v) for k, v in payload.items() if k in OperatorCosts.__dataclass_fields__}
    system.planner.cost_model = CostModel(OperatorCosts(**valid))
