"""The durable store: snapshots + WAL + warehouse behind one checkpoint.

On-disk layout (all under one root directory)::

    MANIFEST.json            checkpoint manifest (atomic tmp+rename)
    wal.log                  append-only checksummed WAL (epoch-stamped)
    segments/ckpt<N>/        columnar table snapshots of checkpoint N
    warehouse/models-<N>.json  the model warehouse of checkpoint N
    archive/                 model-only-tier segments (survive checkpoints)

Crash safety is manifest-pivoted: a checkpoint writes the new segment files
and warehouse first, then renames the manifest into place, then resets the
WAL with the new checkpoint's epoch.  A crash anywhere in that sequence
leaves either the old manifest (whose files are untouched) or the new one;
the WAL's epoch record tells a reopening process whether the log extends
the manifest it found or predates it (in which case it is discarded —
its records are already inside the snapshot).
"""

from __future__ import annotations

import errno as _errno_mod
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.db.table import Table
from repro.errors import (
    FormatVersionError,
    ManifestError,
    PersistenceError,
    ReproError,
    StorageIOError,
    WALError,
)
from repro.parallel.partition import PARTITION_META_KEY, partition_map_from_segments
from repro.persist.archive import ArchiveTier
from repro.persist.snapshot import (
    DEFAULT_ROWS_PER_SEGMENT,
    read_table_segments,
    schema_from_payload,
    schema_to_payload,
    write_table_segments,
)
from repro.persist.warehouse import deserialize_model, restore_store, serialize_store
from repro.persist.wal import WriteAheadLog
from repro.resilience.quarantine import QuarantineManager, minimal_failing_subset

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from repro.core.system import LawsDatabase
    from repro.resilience import FaultInjector, ResilienceRuntime

__all__ = ["CheckpointReport", "RecoveryReport", "DurableStore"]

#: On-disk format version; a major bump breaks compatibility.
FORMAT_VERSION = 1

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"

#: Rows per WAL append frame.  Bulk loads are split so no single frame can
#: approach the WAL's frame-size cap (a bulk load framed as one giant record
#: would raise *after* the in-memory registration succeeded, leaving a WAL
#: that replays the table truncated).
WAL_APPEND_CHUNK_ROWS = 4096

#: Creates/loads at or above this row count are persisted as columnar npz
#: segments under ``walseg/`` referenced by one WAL ``load_table`` record
#: (see :meth:`DurableStore.log_load_table`) instead of row-wise JSON WAL
#: frames — the WAL stays for incremental appends, not bulk loads several
#: times the snapshot's size that would replay row-by-row on every reopen.
LARGE_CREATE_SNAPSHOT_ROWS = 65536


@dataclass
class CheckpointReport:
    """What one checkpoint wrote."""

    checkpoint_id: int
    tables: int = 0
    rows: int = 0
    segment_files: int = 0
    models: int = 0
    elapsed_seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"checkpoint #{self.checkpoint_id}: {self.tables} table(s), {self.rows} row(s) "
            f"in {self.segment_files} segment file(s), {self.models} model(s)"
        )


@dataclass
class RecoveryReport:
    """What reopening a durable store recovered."""

    checkpoint_id: int = 0
    tables_loaded: int = 0
    rows_loaded: int = 0
    models_restored: int = 0
    watches_restored: int = 0
    wal_records_replayed: int = 0
    wal_rows_replayed: int = 0
    wal_truncated_bytes: int = 0
    wal_truncation_reason: str | None = None
    wal_discarded_epoch_mismatch: bool = False
    archived_tables: list[str] = field(default_factory=list)

    @property
    def cold_started(self) -> bool:
        return self.tables_loaded > 0 or self.models_restored > 0

    def describe(self) -> str:
        parts = [
            f"recovered checkpoint #{self.checkpoint_id}: {self.tables_loaded} table(s), "
            f"{self.rows_loaded} row(s), {self.models_restored} warehouse model(s), "
            f"{self.watches_restored} maintenance watch(es)",
            f"WAL: {self.wal_records_replayed} record(s) / {self.wal_rows_replayed} row(s) replayed",
        ]
        if self.wal_truncated_bytes:
            parts.append(
                f"WAL tail truncated: {self.wal_truncated_bytes} byte(s) "
                f"({self.wal_truncation_reason})"
            )
        if self.archived_tables:
            parts.append(f"model-only tier active for {self.archived_tables}")
        return "; ".join(parts)


class DurableStore:
    """Owns the on-disk state of one :class:`LawsDatabase`."""

    def __init__(
        self,
        root: Path | str,
        rows_per_segment: int = DEFAULT_ROWS_PER_SEGMENT,
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        self.rows_per_segment = rows_per_segment
        self.fsync = fsync
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal = WriteAheadLog(self.root / WAL_NAME, fsync=fsync)
        self.checkpoint_id = 0
        #: False while recovery replays the WAL, so replayed appends are not
        #: re-logged; True once the store is live.
        self.accepting_writes = False
        #: Optional :class:`repro.obs.EventJournal` recording checkpoint and
        #: recovery operations.
        self.journal: Any = None
        #: Optional :class:`repro.obs.MetricsRegistry` (``recovery_total`` etc.).
        self.metrics: Any = None
        #: Optional :class:`repro.resilience.ResilienceRuntime` — enables
        #: retry, health tracking and graceful quarantine during recovery.
        #: Without it the store keeps its strict fail-stop behaviour.
        self.resilience: "ResilienceRuntime | None" = None
        #: Always present: unreadable artefacts move aside instead of
        #: blocking ``open()`` (journal/metrics attach lazily).
        self.quarantine = QuarantineManager(self.root)
        self._closed = False
        #: Sequence for snapshot-backed WAL load records; resumes past any
        #: directories a previous incarnation left under walseg/.
        self._walseg_counter = self._max_walseg_index()

    # -- resilience --------------------------------------------------------------

    @property
    def faults(self) -> "FaultInjector | None":
        runtime = self.resilience
        return runtime.faults if runtime is not None else None

    def attach_resilience(self, runtime: "ResilienceRuntime") -> None:
        """Wire the shared resilience runtime through the WAL and quarantine."""
        self.resilience = runtime
        self.wal.faults = runtime.faults
        self.wal.retrier = runtime.retrier
        runtime.quarantine = self.quarantine
        self.quarantine.journal = runtime.journal
        self.quarantine.metrics = runtime.metrics

    # -- paths -------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def _segments_dir(self, checkpoint_id: int) -> Path:
        return self.root / "segments" / f"ckpt{checkpoint_id:05d}"

    def _warehouse_path(self, checkpoint_id: int) -> Path:
        return self.root / "warehouse" / f"models-{checkpoint_id:05d}.json"

    @property
    def archive_dir(self) -> Path:
        return self.root / "archive"

    @property
    def walseg_dir(self) -> Path:
        """Columnar segments referenced by WAL ``load_table`` records.

        Obsolete the moment the WAL resets; purged wholesale at checkpoint."""
        return self.root / "walseg"

    def _max_walseg_index(self) -> int:
        if not self.walseg_dir.is_dir():
            return 0
        indices = [
            int(child.name) for child in self.walseg_dir.iterdir() if child.name.isdigit()
        ]
        return max(indices, default=0)

    def has_checkpoint(self) -> bool:
        return self.manifest_path.is_file()

    # -- WAL hooks (called by the LawsDatabase write paths) -----------------------

    def log_create_table(self, table: Table, replace: bool = False) -> None:
        if not self.accepting_writes:
            return
        self.wal.append(
            {
                "op": "create_table",
                "name": table.name,
                "schema": schema_to_payload(table.schema),
                "replace": bool(replace),
            }
        )
        if table.num_rows:
            self.log_append(table.name, table.to_rows())

    def log_append(self, table_name: str, rows: Any) -> None:
        if not self.accepting_writes:
            return
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)
        # Converted per chunk: one transient list-of-lists per frame instead
        # of a second whole-table materialization next to the caller's rows.
        for start in range(0, len(rows), WAL_APPEND_CHUNK_ROWS):
            chunk = [list(row) for row in rows[start : start + WAL_APPEND_CHUNK_ROWS]]
            self.wal.append({"op": "append", "table": table_name, "rows": chunk})

    def log_load_table(self, table: Table, replace: bool = False) -> None:
        """Persist a bulk load as columnar segments + one referencing record.

        The segments are on disk (and synced, when fsync is on) *before*
        the WAL record naming them is appended, so a replayed record never
        dangles."""
        if not self.accepting_writes:
            return
        self._walseg_counter += 1
        directory = self.walseg_dir / f"{self._walseg_counter:05d}"
        entries = write_table_segments(
            directory, table, rows_per_segment=self.rows_per_segment, faults=self.faults
        )
        if self.fsync:
            for segment_file in directory.iterdir():
                _fsync_file(segment_file)
            _fsync_dir(directory)
        self.wal.append(
            {
                "op": "load_table",
                "name": table.name,
                "schema": schema_to_payload(table.schema),
                "dir": str(directory.relative_to(self.root)),
                "segments": entries,
                "replace": bool(replace),
            }
        )

    def log_drop_table(self, table_name: str) -> None:
        if not self.accepting_writes:
            return
        self.wal.append({"op": "drop_table", "name": table_name})

    def log_archive(self, table_name: str, predicate_sql: str) -> None:
        if not self.accepting_writes:
            return
        self.wal.append({"op": "archive", "table": table_name, "predicate": predicate_sql})

    def log_recall(self, table_name: str) -> None:
        if not self.accepting_writes:
            return
        self.wal.append({"op": "recall", "table": table_name})

    def log_sql(self, sql: str) -> None:
        """Log a DDL/DML statement executed through the SQL front-end.

        Replay re-executes the statement text — deterministic for the
        supported subset (CREATE TABLE / INSERT ... VALUES)."""
        if not self.accepting_writes:
            return
        self.wal.append({"op": "sql", "sql": sql})

    # -- checkpoint ----------------------------------------------------------------

    def checkpoint(self, system: "LawsDatabase") -> CheckpointReport:
        """Snapshot every table, the warehouse and the planner calibration.

        The whole body runs under the catalog commit lock: writers commit
        batch + redo record as one critical section under the same lock, so
        the snapshot, the manifest and the WAL reset all describe the same
        committed state — a concurrent append can neither slip between the
        snapshot and the log reset (its rows would vanish from the log
        without being in the snapshot) nor land in both (double-applied on
        recovery).  Writers and snapshot-taking readers stall for the
        checkpoint's duration; queries already holding a snapshot proceed.
        """
        if self._closed:
            raise PersistenceError("durable store is closed")
        with system.database.catalog.commit_lock:
            return self._checkpoint_locked(system)

    def _checkpoint_locked(self, system: "LawsDatabase") -> CheckpointReport:
        from time import perf_counter

        started = perf_counter()
        new_id = self.checkpoint_id + 1
        report = CheckpointReport(checkpoint_id=new_id)

        segments_dir = self._segments_dir(new_id)
        if segments_dir.exists():
            shutil.rmtree(segments_dir)
        tables_payload: dict[str, Any] = {}
        database = system.database
        for name in database.table_names():
            table = database.table(name)
            entries = write_table_segments(
                segments_dir, table, rows_per_segment=self.rows_per_segment, faults=self.faults
            )
            tables_payload[name] = {
                "schema": schema_to_payload(table.schema),
                "row_count": table.num_rows,
                "segments": entries,
            }
            report.tables += 1
            report.rows += table.num_rows
            report.segment_files += len(entries)
            # Freshly-written segments carry exact min/max stats; publish
            # them as the table's partition map unless the user already
            # committed one (a range/hash map must not be clobbered by the
            # storage layout).
            if len(entries) > 1 and database.catalog.table_meta(name, PARTITION_META_KEY) is None:
                database.catalog.set_table_meta(
                    name, PARTITION_META_KEY, partition_map_from_segments(table, entries)
                )

        warehouse_payload = serialize_store(system.models)
        warehouse_payload["calibration"] = _calibration_payload(system)
        warehouse_payload["maintenance"] = system.maintenance.export_state()
        report.models = len(warehouse_payload["models"])
        warehouse_path = self._warehouse_path(new_id)
        warehouse_path.parent.mkdir(parents=True, exist_ok=True)
        self._write_json_durable(
            warehouse_path, warehouse_payload, fault_point="persist.warehouse.store"
        )

        if self.fsync:
            # The manifest rename must not become durable before the file
            # contents it references: flush every new segment (and its
            # directory entry) to stable storage first.
            if segments_dir.is_dir():
                for segment_file in segments_dir.iterdir():
                    _fsync_file(segment_file)
                _fsync_dir(segments_dir)
            _fsync_dir(warehouse_path.parent)

        manifest = {
            "format_version": FORMAT_VERSION,
            "checkpoint_id": new_id,
            "catalog_version": database.catalog.version,
            "tables": tables_payload,
            "warehouse_file": str(warehouse_path.relative_to(self.root)),
            "archive": system.archive_tier.to_payload() if system.archive_tier else {},
            "wal_file": WAL_NAME,
        }
        self._write_json_durable(self.manifest_path, manifest, fault_point="persist.manifest.write")
        # The manifest rename is the commit point: checkpoint N exists from
        # here on regardless of what the WAL reset below does.
        self.checkpoint_id = new_id
        # Reset the WAL under N's epoch so a crash between the rename and
        # the reset leaves an epoch-mismatched (and therefore ignored) log
        # rather than a double-applied one.  A *failed* reset is survivable:
        # the epoch stays pending inside the WAL and is stamped (as a
        # replay-restart marker) by the next successful append, so no record
        # can land under a stale epoch — journal it and carry on.
        self._reset_wal_safe(new_id)
        self._cleanup_stale_artifacts(keep_id=new_id)
        if system.archive_tier is not None:
            # Recalled rows are inside the new snapshot now; their archive
            # segments are unreferenced garbage.
            system.archive_tier.purge_unreferenced()
        report.elapsed_seconds = perf_counter() - started
        if self.journal is not None:
            self.journal.record(
                "checkpoint",
                checkpoint_id=report.checkpoint_id,
                tables=report.tables,
                rows=report.rows,
                models=report.models,
                segment_files=report.segment_files,
            )
        return report

    def _cleanup_stale_artifacts(self, keep_id: int) -> None:
        """Drop every snapshot/warehouse/walseg artefact the manifest no
        longer references.

        A sweep (not just "delete N-1") so artefacts orphaned by a crash
        between a manifest rename and its cleanup are reclaimed by the next
        successful checkpoint instead of leaking forever."""
        segments_root = self.root / "segments"
        if segments_root.is_dir():
            keep_segments = self._segments_dir(keep_id).name
            for child in segments_root.iterdir():
                if child.name != keep_segments:
                    shutil.rmtree(child, ignore_errors=True)
        warehouse_root = self.root / "warehouse"
        if warehouse_root.is_dir():
            keep_warehouse = self._warehouse_path(keep_id).name
            for child in warehouse_root.iterdir():
                if child.name != keep_warehouse:
                    try:
                        child.unlink()
                    except OSError:
                        pass
        # The WAL was just reset: no record references walseg/ any more.
        shutil.rmtree(self.walseg_dir, ignore_errors=True)

    def _write_json_durable(self, path: Path, payload: dict[str, Any], fault_point: str) -> None:
        """Atomic JSON write + transient-error retry + typed wrapping."""

        def attempt() -> None:
            _write_json_atomic(
                path, payload, fsync=self.fsync, faults=self.faults, fault_point=fault_point
            )

        try:
            try:
                attempt()
            except OSError as exc:
                retrier = self.resilience.retrier if self.resilience is not None else None
                if retrier is None or not retrier.is_transient(exc):
                    raise
                retrier.retry(attempt, first_error=exc, operation=fault_point)
        except OSError as exc:
            raise StorageIOError(
                f"durable write of {path} failed: {exc.strerror or exc}",
                path=str(path),
                errno_code=exc.errno,
            ) from exc

    # -- recovery -------------------------------------------------------------------

    def recover(self, system: "LawsDatabase") -> RecoveryReport:
        """Load the last checkpoint into ``system`` and replay the WAL tail.

        With a resilience runtime attached, partial corruption degrades
        instead of aborting: unreadable snapshot segments / warehouse
        entries / WAL frames are quarantined (journaled, metered) and the
        surviving state serves.  Without one, the store keeps its strict
        fail-stop contract — every failure is still a typed error.
        """
        report = RecoveryReport()
        quarantined_before = len(self.quarantine.records())
        health = self.resilience.health if self.resilience is not None else None
        manifest = self._load_manifest()
        if manifest is not None:
            version = int(manifest.get("format_version", 0))
            if version > FORMAT_VERSION:
                raise FormatVersionError(
                    f"store at {self.root} uses format v{version}; this build "
                    f"supports up to v{FORMAT_VERSION}"
                )
            self.checkpoint_id = int(manifest.get("checkpoint_id", 0))
            report.checkpoint_id = self.checkpoint_id

        database = system.database
        if manifest is not None:
            segments_dir = self._segments_dir(self.checkpoint_id)
            for name, entry in manifest.get("tables", {}).items():
                schema = schema_from_payload(entry["schema"])
                self._recover_table(system, segments_dir, name, schema, entry, report, health)
            database.catalog.restore_version(int(manifest.get("catalog_version", 0)))

        # The warehouse loads before the WAL replays: replayed appends mark
        # the touched tables' models stale, which only lands if the models
        # are already in the store.
        if manifest is not None:
            warehouse_file = manifest.get("warehouse_file")
            if warehouse_file:
                warehouse_path = self.root / warehouse_file
                payload = self._load_warehouse_payload(warehouse_path, health)
                if payload is not None:
                    restored = self._restore_warehouse(payload, system, health)
                    report.models_restored = len(restored)
                    if restored:
                        from repro.core.captured_model import ensure_model_id_floor

                        ensure_model_id_floor(max(m.model_id for m in restored))
                    _restore_calibration(system, payload.get("calibration"))
                    report.watches_restored = system.maintenance.restore_state(
                        payload.get("maintenance", [])
                    )
            # The archive manifest restores BEFORE the WAL replays: replayed
            # archive/recall/drop records operate on the tier, and a drop of
            # an archived table must clear (not precede) its restored state.
            archive_payload = manifest.get("archive") or {}
            if archive_payload.get("tables"):
                if system.archive_tier is None:
                    # Reachable when recover() is driven directly (not via
                    # LawsDatabase.open): the planner guard must be wired
                    # here too, or archived tables would restore with exact
                    # execution silently running over the partial remainder.
                    system.archive_tier = ArchiveTier(database, self.archive_dir)
                    system.planner.archive_guard = system.archive_tier.blocking_reason
                system.archive_tier.restore_from_payload(archive_payload)

        # WAL replay: only a log stamped with this checkpoint's epoch extends
        # it; any other epoch predates the manifest rename and is discarded.
        epoch_discarded = self._replay_wal(system, report, health)

        if system.archive_tier is not None:
            report.archived_tables = system.archive_tier.archived_tables()

        self.accepting_writes = True
        quarantined_now = [
            record
            for record in self.quarantine.records()[quarantined_before:]
            if record.artefact != "wal-tail"
        ]
        if quarantined_now:
            outcome = "quarantined"
        elif report.wal_truncated_bytes:
            outcome = "wal-truncated"
        elif epoch_discarded:
            outcome = "epoch-discarded"
        else:
            outcome = "clean"
        if self.metrics is not None:
            self.metrics.inc("recovery_total", outcome=outcome)
        if self.journal is not None:
            self.journal.record(
                "recovery",
                checkpoint_id=report.checkpoint_id,
                outcome=outcome,
                tables_loaded=report.tables_loaded,
                rows_loaded=report.rows_loaded,
                models_restored=report.models_restored,
                watches_restored=report.watches_restored,
                wal_records_replayed=report.wal_records_replayed,
                wal_rows_replayed=report.wal_rows_replayed,
                wal_truncated_bytes=report.wal_truncated_bytes,
                wal_truncation_reason=report.wal_truncation_reason,
                quarantined=len(quarantined_now),
            )
        return report

    def _load_manifest(self) -> dict[str, Any] | None:
        """Read the checkpoint manifest; corruption is fail-stop and typed.

        The manifest is the recovery pivot — quarantining it would present
        the whole store as empty, which is worse than an explicit error."""
        if not self.manifest_path.is_file():
            return None
        try:
            return json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise ManifestError(
                f"checkpoint manifest {self.manifest_path} is unreadable: {exc}",
                path=str(self.manifest_path),
            ) from exc

    def _recover_table(
        self,
        system: "LawsDatabase",
        segments_dir: Path,
        name: str,
        schema: Any,
        entry: dict[str, Any],
        report: RecoveryReport,
        health: Any,
    ) -> None:
        lost_segments: list[str] = []
        handler = None
        if self.resilience is not None:

            def handler(seg_entry: dict[str, Any], path: Path, exc: Exception) -> bool:
                self.quarantine.quarantine_file(
                    path,
                    artefact="snapshot-segment",
                    reason=str(exc),
                    detail=f"table {name!r} segment {seg_entry.get('file')}",
                )
                lost_segments.append(str(seg_entry.get("file")))
                return True

        table = read_table_segments(
            segments_dir,
            name,
            schema,
            entry["segments"],
            faults=self.faults,
            on_segment_error=handler,
            retrier=self.resilience.retrier if self.resilience is not None else None,
        )
        expected = int(entry.get("row_count", table.num_rows))
        if lost_segments:
            reason = (
                f"{len(lost_segments)} snapshot segment(s) quarantined; "
                f"{table.num_rows}/{expected} row(s) recovered"
            )
            if health is not None:
                health.mark_failed(f"table:{name}", reason)
        elif table.num_rows != expected:
            raise PersistenceError(
                f"snapshot of {name!r} has {table.num_rows} row(s) but the "
                f"manifest recorded {entry.get('row_count')}"
            )
        system.database.register_table(table)
        if not lost_segments:
            # The snapshot's per-segment min/max stats double as a partition
            # map: serve them through the catalog so partition pruning (and
            # the fan-out path) works on a reopened store without a rescan.
            # A partially-quarantined table gets no map — its stats no
            # longer tile the recovered rows.
            try:
                payload = partition_map_from_segments(table, entry["segments"])
            except ReproError:
                pass
            else:
                if len(payload["partitions"]) > 1:
                    system.database.catalog.set_table_meta(name, PARTITION_META_KEY, payload)
        report.tables_loaded += 1
        report.rows_loaded += table.num_rows

    def _load_warehouse_payload(self, path: Path, health: Any) -> dict[str, Any] | None:
        if not path.is_file():
            if self.resilience is None:
                raise PersistenceError(f"warehouse file missing: {path}")
            health.mark_failed("warehouse", f"warehouse file missing: {path}")
            return None
        def read_payload() -> bytes:
            data = path.read_bytes()
            if self.faults is not None:
                data = self.faults.filter_bytes("persist.warehouse.load", data, path=path)
            return data

        try:
            try:
                data = read_payload()
            except OSError as exc:
                # Idempotent read: retry any OSError before condemning the
                # file — the bytes on disk may be perfectly good.
                if self.resilience is None:
                    raise
                data = self.resilience.retrier.retry(
                    read_payload,
                    first_error=exc,
                    operation="warehouse.load",
                    retry_all=True,
                )
            return json.loads(data.decode("utf-8"))
        except (OSError, ValueError, UnicodeDecodeError) as exc:
            if self.resilience is None:
                from repro.errors import WarehouseError

                raise WarehouseError(
                    f"warehouse file {path} is unreadable: {exc}", path=str(path)
                ) from exc
            self.quarantine.quarantine_file(
                path, artefact="warehouse-file", reason=str(exc)
            )
            health.mark_failed("warehouse", f"warehouse file quarantined: {exc}")
            return None

    def _restore_warehouse(
        self, payload: dict[str, Any], system: "LawsDatabase", health: Any
    ) -> list[Any]:
        if self.resilience is None:
            return restore_store(payload, system.models)
        version = int(payload.get("format_version", 0))
        from repro.persist.warehouse import WAREHOUSE_FORMAT_VERSION

        if version > WAREHOUSE_FORMAT_VERSION:
            # A newer format is a build mismatch, not corruption: upgrading
            # the binary fixes it, quarantining would discard good models.
            raise FormatVersionError(
                f"warehouse format v{version} is newer than this build supports "
                f"(v{WAREHOUSE_FORMAT_VERSION}); upgrade before opening it"
            )
        entries = payload.get("models", [])
        try:
            models = [deserialize_model(entry) for entry in entries]
        except Exception:
            # Isolate the minimal failing subset by binary-search shrinking
            # and quarantine exactly those entries; everything else serves.
            def probe(batch: Any) -> None:
                for candidate in batch:
                    deserialize_model(candidate)

            bad = minimal_failing_subset(entries, probe)
            bad_set = set(bad)
            for index in bad:
                entry = entries[index]
                model_id = entry.get("model_id", index) if isinstance(entry, dict) else index
                try:
                    deserialize_model(entry)
                    reason = "undecodable warehouse entry"
                except Exception as entry_exc:
                    reason = str(entry_exc)
                self.quarantine.quarantine_entry(
                    entry,
                    name=f"warehouse-entry-{model_id}.json",
                    artefact="warehouse-entry",
                    reason=reason,
                )
            models = [
                deserialize_model(entry)
                for index, entry in enumerate(entries)
                if index not in bad_set
            ]
            health.mark_degraded(
                "warehouse",
                f"{len(bad)} warehouse entr{'y' if len(bad) == 1 else 'ies'} quarantined; "
                f"{len(models)} model(s) restored",
            )
        return [system.models.add(model) for model in models]

    def _replay_wal(self, system: "LawsDatabase", report: RecoveryReport, health: Any) -> bool:
        """Replay the WAL tail; returns True when an epoch mismatch discarded it."""
        from repro.persist.wal import WalReplay

        try:
            replay = self.wal.replay(repair=True)
        except WALError as exc:
            if self.resilience is None:
                raise
            self.quarantine.quarantine_file(
                self.wal.path, artefact="wal-file", reason=str(exc)
            )
            health.mark_failed("wal", f"WAL quarantined: {exc}")
            replay = WalReplay()
        report.wal_truncated_bytes = replay.truncated_bytes
        report.wal_truncation_reason = replay.truncation_reason
        if replay.was_truncated:
            quarantined_path = None
            if replay.tail:
                tail_record = self.quarantine.quarantine_bytes(
                    replay.tail,
                    name=f"wal-tail-ckpt{self.checkpoint_id:05d}.bin",
                    artefact="wal-tail",
                    reason=replay.truncation_reason or "torn tail",
                )
                quarantined_path = tail_record.quarantined_path
            if self.journal is not None:
                self.journal.record(
                    "wal-truncation",
                    reason=replay.truncation_reason,
                    truncated_bytes=replay.truncated_bytes,
                    quarantined_path=quarantined_path,
                )
        epoch_discarded = False
        if replay.epoch != self.checkpoint_id:
            # A stale-epoch log must be re-stamped even when it holds no
            # data records: appends accepted into an epoch-1 log under a
            # checkpoint-2 manifest would be silently discarded on the
            # *next* recovery.
            epoch_discarded = bool(replay.records)
            report.wal_discarded_epoch_mismatch = epoch_discarded
            self._reset_wal_safe(self.checkpoint_id)
        else:
            touched: set[str] = set()
            for index, record in enumerate(replay.records):
                try:
                    rows = _apply_wal_record(self, system, record, touched)
                except ReproError as exc:
                    if self.resilience is None:
                        raise
                    # Records after a failed one may depend on it (create
                    # then append): stop applying, keep everything aside.
                    self.quarantine.quarantine_entry(
                        record,
                        name=f"wal-record-{index:05d}.json",
                        artefact="wal-record",
                        reason=str(exc),
                    )
                    remainder = replay.records[index + 1 :]
                    if remainder:
                        self.quarantine.quarantine_entry(
                            remainder,
                            name=f"wal-records-after-{index:05d}.json",
                            artefact="wal-record",
                            reason=f"records after failed record {index} not applied",
                        )
                    health.mark_degraded(
                        "wal", f"WAL record {index} failed to apply: {exc}"
                    )
                    break
                report.wal_records_replayed += 1
                report.wal_rows_replayed += rows
            for name in touched:
                system.models.mark_table_stale(name)
        if not self.wal.path.exists() or self.wal.size_bytes == 0:
            self._reset_wal_safe(self.checkpoint_id)
        return epoch_discarded

    def _reset_wal_safe(self, epoch: int) -> None:
        """Reset the WAL; a failure defers the epoch stamp instead of aborting."""
        try:
            self.wal.reset(epoch=epoch)
        except WALError as exc:
            if self.journal is not None:
                self.journal.record("wal-reset-deferred", checkpoint_id=epoch, error=str(exc))

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        self.accepting_writes = False
        self.wal.close()
        self._closed = True


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _write_json_atomic(
    path: Path,
    payload: dict[str, Any],
    fsync: bool = False,
    faults: "FaultInjector | None" = None,
    fault_point: str | None = None,
) -> None:
    """Write-to-temp + (fsync) + rename: the target is never half-written.

    A failure at any step — including an injected torn write — leaves the
    previous file at ``path`` untouched; only the ``.tmp`` sibling can be
    partial, and the next successful write overwrites it.
    """
    tmp = path.with_suffix(path.suffix + ".tmp")
    data = json.dumps(payload, indent=1).encode("utf-8")
    action = None
    if faults is not None and fault_point is not None:
        action = faults.hit(fault_point, path=path)
    if action is not None:
        data = faults.apply(action, data)
    tmp.write_bytes(data)
    if action is not None and action.kind == "torn_write":
        # The torn prefix sits in the .tmp file; the rename never happens.
        raise OSError(_errno_mod.EIO, "injected torn write", str(tmp))
    if fsync:
        _fsync_file(tmp)
    tmp.replace(path)
    if fsync:
        _fsync_dir(path.parent)


def _fsync_file(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


#: Directories fsync the same way on POSIX (O_RDONLY open + fsync).
_fsync_dir = _fsync_file


def _apply_wal_record(
    store: DurableStore, system: "LawsDatabase", record: dict[str, Any], touched: set[str]
) -> int:
    """Apply one replayed WAL record; returns the rows it appended."""
    database = system.database
    op = record.get("op")
    if op == "load_table":
        name = record["name"]
        schema = schema_from_payload(record["schema"])
        table = read_table_segments(
            store.root / record["dir"],
            name,
            schema,
            record["segments"],
            faults=store.faults,
            retrier=store.resilience.retrier if store.resilience is not None else None,
        )
        if database.has_table(name):
            if not record.get("replace", False):
                raise PersistenceError(
                    f"WAL loads table {name!r} which already exists in the snapshot"
                )
            database.drop_table(name)
            if system.archive_tier is not None:
                system.archive_tier.drop(name)
        database.register_table(table)
        return table.num_rows
    if op == "create_table":
        name = record["name"]
        schema = schema_from_payload(record["schema"])
        if database.has_table(name):
            if not record.get("replace", False):
                raise PersistenceError(
                    f"WAL creates table {name!r} which already exists in the snapshot"
                )
            database.drop_table(name)
            if system.archive_tier is not None:
                # Mirror the live replace path: the old incarnation's
                # archived segments go with it.
                system.archive_tier.drop(name)
        database.create_table(name, schema)
        return 0
    if op == "append":
        name = record["table"]
        rows = [tuple(row) for row in record["rows"]]
        database.insert_rows(name, rows)
        touched.add(name)
        return len(rows)
    if op == "drop_table":
        name = record["name"]
        database.drop_table(name)
        # Mirror the live drop path: warehouse models of a dropped table
        # must not keep serving for a table that no longer exists, and its
        # archived segments (restored before replay) go with it.
        for model in system.models.models_for_table(name, include_unusable=True):
            if model.status != "retired":
                system.models.retire_model(model.model_id)
        if system.archive_tier is not None:
            system.archive_tier.drop(name)
        touched.discard(name)
        return 0
    if op == "sql":
        from repro.db.sql.ast import InsertStatement

        statement = database.parse_sql(record["sql"])
        database.sql(record["sql"])
        if isinstance(statement, InsertStatement):
            touched.add(statement.name)
            return len(statement.rows)
        return 0
    if op == "archive":
        if system.archive_tier is None:  # pragma: no cover - open() always sets it
            raise PersistenceError("WAL archives a segment but no archive tier is attached")
        # Re-archiving is deterministic: the predicate re-selects the same
        # rows out of the recovered table state at this point of the log.
        system.archive_tier.archive(record["table"], record["predicate"])
        return 0
    if op == "recall":
        if system.archive_tier is None:  # pragma: no cover - open() always sets it
            raise PersistenceError("WAL recalls a segment but no archive tier is attached")
        system.archive_tier.recall(record["table"])
        return 0
    raise PersistenceError(f"unknown WAL record op {op!r}")


def _calibration_payload(system: "LawsDatabase") -> dict[str, float]:
    from dataclasses import asdict

    return asdict(system.planner.cost_model.costs)


def _restore_calibration(system: "LawsDatabase", payload: dict[str, float] | None) -> None:
    if not payload:
        return
    from repro.core.planner.cost import CostModel, OperatorCosts

    valid = {k: float(v) for k, v in payload.items() if k in OperatorCosts.__dataclass_fields__}
    system.planner.cost_model = CostModel(OperatorCosts(**valid))
