"""The versioned model warehouse: captured models as durable artefacts.

The paper's economics only work if the captured models — not the raw pages
— are the durable asset: a reopened database must cold-start straight into
model serving.  This module serializes every :class:`CapturedModel` (all
registered families, grouped and piecewise included) together with its
lifecycle state, the observed-error evidence the planner's feedback loop
accumulated, and the planner's cost calibration, into a plain-JSON payload
the :class:`~repro.persist.store.DurableStore` writes at every checkpoint.

JSON (not pickle) on purpose: the warehouse is a *format*, inspectable and
versioned, not a dump of Python internals — deserialization reconstructs
families through their public constructors, so a warehouse written by one
process version loads in another as long as the format version matches.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.core.captured_model import CapturedModel, ModelCoverage
from repro.core.model_store import ModelStore
from repro.core.quality import ModelQuality
from repro.errors import FormatVersionError, PersistenceError, WarehouseError
from repro.fitting.families import LinearModel, Polynomial, family_by_name
from repro.fitting.grouped import GroupFitRecord, GroupedFitResult
from repro.fitting.metrics import FTestResult
from repro.fitting.model import FitResult, ModelFamily
from repro.fitting.piecewise import PiecewisePolynomial, Segment
from repro.persist.wal import coerce_json_scalar

__all__ = [
    "WAREHOUSE_FORMAT_VERSION",
    "serialize_model",
    "deserialize_model",
    "serialize_store",
    "restore_store",
]

WAREHOUSE_FORMAT_VERSION = 1


# ---------------------------------------------------------------------------
# JSON sanitation
# ---------------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Coerce a value into something JSON round-trips losslessly.

    NumPy scalars/arrays become Python scalars/lists; mappings and sequences
    recurse; anything exotic falls back to ``repr`` (metadata is free-form —
    losing an unserializable note beats refusing to checkpoint)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (np.bool_, np.integer, np.floating)):
        return coerce_json_scalar(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_jsonable(v) for v in value]
    return repr(value)


# ---------------------------------------------------------------------------
# Model families
# ---------------------------------------------------------------------------


def _family_payload(family: ModelFamily) -> dict[str, Any]:
    """A family as ``{"name", "kwargs"}`` reconstructable via its constructor."""
    if isinstance(family, PiecewisePolynomial):
        return {
            "name": "piecewise",
            "kwargs": {
                "degree": family.degree,
                "segments": [
                    [segment.lower, segment.upper, list(segment.coefficients)]
                    for segment in family.segments
                ],
            },
        }
    if isinstance(family, LinearModel):
        return {
            "name": "linear",
            "kwargs": {
                "input_names": list(family.input_names),
                "intercept": bool(family.intercept),
            },
        }
    if isinstance(family, Polynomial):
        return {"name": "polynomial", "kwargs": {"degree": family.degree}}
    return {"name": family.name, "kwargs": {}}


def _family_from_payload(payload: dict[str, Any]) -> ModelFamily:
    name = payload["name"]
    kwargs = dict(payload.get("kwargs", {}))
    if name == "piecewise":
        segments = [
            Segment(lower=float(lo), upper=float(hi), coefficients=tuple(float(c) for c in coeffs))
            for lo, hi, coeffs in kwargs["segments"]
        ]
        return PiecewisePolynomial(segments, int(kwargs["degree"]))
    if name == "linear":
        kwargs["input_names"] = tuple(kwargs.get("input_names", ("x",)))
    return family_by_name(name, **kwargs)


# ---------------------------------------------------------------------------
# Fit results
# ---------------------------------------------------------------------------


def _fit_result_payload(fit: FitResult) -> dict[str, Any]:
    return {
        "family": _family_payload(fit.family),
        "params": [float(p) for p in np.asarray(fit.params, dtype=np.float64)],
        "input_names": list(fit.input_names),
        "output_name": fit.output_name,
        "n_observations": int(fit.n_observations),
        "residual_standard_error": float(fit.residual_standard_error),
        "r_squared": float(fit.r_squared),
        "adjusted_r_squared": float(fit.adjusted_r_squared),
        "sum_squared_residuals": float(fit.sum_squared_residuals),
        "covariance": None if fit.covariance is None else _jsonable(fit.covariance),
        "iterations": int(fit.iterations),
        "converged": bool(fit.converged),
        "extra": _jsonable(fit.extra),
    }


def _fit_result_from_payload(payload: dict[str, Any]) -> FitResult:
    covariance = payload.get("covariance")
    family = _family_from_payload(payload["family"])
    params = np.asarray(payload["params"], dtype=np.float64)
    input_names = tuple(payload["input_names"])
    # Backward-tolerant decoding (missing fields default) means a silently
    # corrupted key can decode into an *internally inconsistent* fit — e.g.
    # a linear family defaulting to input "x" while the fit was over "t" —
    # which would only explode (untyped) at serve time.  Cross-check here so
    # corruption surfaces as a typed error and quarantines the entry.  Only
    # LinearModel carries its own input names (and looks inputs up by them);
    # every other family uses a fixed "x" placeholder, so the fit's recorded
    # column names legitimately differ there.
    if isinstance(family, LinearModel) and tuple(family.input_names) != input_names:
        raise PersistenceError(
            f"warehouse fit payload is inconsistent: family expects inputs "
            f"{tuple(family.input_names)!r} but the fit recorded {input_names!r}"
        )
    param_names = getattr(family, "param_names", None)
    if param_names is not None and len(params) != len(param_names):
        raise PersistenceError(
            f"warehouse fit payload is inconsistent: family {family.name!r} "
            f"takes {len(param_names)} parameter(s) but {len(params)} stored"
        )
    return FitResult(
        family=family,
        params=params,
        input_names=input_names,
        output_name=payload["output_name"],
        n_observations=int(payload["n_observations"]),
        residual_standard_error=float(payload["residual_standard_error"]),
        r_squared=float(payload["r_squared"]),
        adjusted_r_squared=float(payload["adjusted_r_squared"]),
        sum_squared_residuals=float(payload["sum_squared_residuals"]),
        covariance=None if covariance is None else np.asarray(covariance, dtype=np.float64),
        iterations=int(payload.get("iterations", 0)),
        converged=bool(payload.get("converged", True)),
        extra=dict(payload.get("extra", {})),
    )


def _grouped_payload(fit: GroupedFitResult) -> dict[str, Any]:
    records = []
    for record in fit.records:
        records.append(
            {
                "key": [_jsonable(part) for part in record.key],
                "n_observations": int(record.n_observations),
                "error": record.error,
                "result": None if record.result is None else _fit_result_payload(record.result),
            }
        )
    return {
        "family": _family_payload(fit.family),
        "group_columns": list(fit.group_columns),
        "input_columns": list(fit.input_columns),
        "output_column": fit.output_column,
        "records": records,
    }


def _grouped_from_payload(payload: dict[str, Any]) -> GroupedFitResult:
    result = GroupedFitResult(
        family=_family_from_payload(payload["family"]),
        group_columns=tuple(payload["group_columns"]),
        input_columns=tuple(payload["input_columns"]),
        output_column=payload["output_column"],
    )
    for record in payload["records"]:
        result.records.append(
            GroupFitRecord(
                key=tuple(record["key"]),
                result=None if record["result"] is None else _fit_result_from_payload(record["result"]),
                error=record.get("error"),
                n_observations=int(record.get("n_observations", 0)),
            )
        )
    return result


# ---------------------------------------------------------------------------
# Quality
# ---------------------------------------------------------------------------


def _quality_payload(quality: ModelQuality) -> dict[str, Any]:
    f_test = None
    if quality.f_test is not None:
        f_test = {
            "f_statistic": float(quality.f_test.f_statistic),
            "p_value": float(quality.f_test.p_value),
            "df_numerator": int(quality.f_test.df_numerator),
            "df_denominator": int(quality.f_test.df_denominator),
        }
    return {
        "r_squared": float(quality.r_squared),
        "adjusted_r_squared": float(quality.adjusted_r_squared),
        "residual_standard_error": float(quality.residual_standard_error),
        "n_observations": int(quality.n_observations),
        "f_test": f_test,
        "relative_rse": None if quality.relative_rse is None else float(quality.relative_rse),
    }


def _quality_from_payload(payload: dict[str, Any]) -> ModelQuality:
    f_test = payload.get("f_test")
    return ModelQuality(
        r_squared=float(payload["r_squared"]),
        adjusted_r_squared=float(payload["adjusted_r_squared"]),
        residual_standard_error=float(payload["residual_standard_error"]),
        n_observations=int(payload["n_observations"]),
        f_test=None if f_test is None else FTestResult(**f_test),
        relative_rse=(
            None if payload.get("relative_rse") is None else float(payload["relative_rse"])
        ),
    )


# ---------------------------------------------------------------------------
# Captured models
# ---------------------------------------------------------------------------


def serialize_model(model: CapturedModel) -> dict[str, Any]:
    """One captured model as a JSON-friendly payload (lossless round trip)."""
    if isinstance(model.fit, GroupedFitResult):
        fit_payload: dict[str, Any] = {"kind": "grouped", **_grouped_payload(model.fit)}
    else:
        fit_payload = {"kind": "single", **_fit_result_payload(model.fit)}
    return {
        "model_id": int(model.model_id),
        "coverage": {
            "table_name": model.coverage.table_name,
            "input_columns": list(model.coverage.input_columns),
            "output_column": model.coverage.output_column,
            "group_columns": list(model.coverage.group_columns),
            "predicate_sql": model.coverage.predicate_sql,
            "row_range": (
                None if model.coverage.row_range is None else list(model.coverage.row_range)
            ),
        },
        "formula": model.formula,
        "fit": fit_payload,
        "quality": _quality_payload(model.quality),
        "accepted": bool(model.accepted),
        "group_fit_fraction": float(model.group_fit_fraction),
        "fitted_row_count": int(model.fitted_row_count),
        "metadata": _jsonable(model.metadata),
        "status": model.status,
        "observed_errors": [float(e) for e in model.observed_errors],
    }


def deserialize_model(payload: dict[str, Any]) -> CapturedModel:
    """Decode one warehouse entry; corruption surfaces as typed errors.

    A structurally-broken entry (missing keys, wrong types, garbage where a
    number should be) raises :class:`~repro.errors.WarehouseError` naming
    the model, never a bare ``KeyError``/``ValueError`` — recovery relies on
    this to isolate and quarantine exactly the bad entries.
    """
    try:
        return _deserialize_model(payload)
    except PersistenceError:
        raise
    except (KeyError, ValueError, TypeError, IndexError, AttributeError) as exc:
        model_id = payload.get("model_id", "?") if isinstance(payload, dict) else "?"
        raise WarehouseError(
            f"warehouse entry for model {model_id!r} cannot be decoded: {exc!r}"
        ) from exc


def _deserialize_model(payload: dict[str, Any]) -> CapturedModel:
    fit_payload = payload["fit"]
    if fit_payload["kind"] == "grouped":
        fit: FitResult | GroupedFitResult = _grouped_from_payload(fit_payload)
    elif fit_payload["kind"] == "single":
        fit = _fit_result_from_payload(fit_payload)
    else:
        raise PersistenceError(f"unknown fit kind {fit_payload['kind']!r} in warehouse")
    coverage = payload["coverage"]
    return CapturedModel(
        coverage=ModelCoverage(
            table_name=coverage["table_name"],
            input_columns=tuple(coverage["input_columns"]),
            output_column=coverage["output_column"],
            group_columns=tuple(coverage["group_columns"]),
            predicate_sql=coverage.get("predicate_sql"),
            row_range=(
                None
                if coverage.get("row_range") is None
                else (int(coverage["row_range"][0]), int(coverage["row_range"][1]))
            ),
        ),
        formula=payload["formula"],
        fit=fit,
        quality=_quality_from_payload(payload["quality"]),
        accepted=bool(payload["accepted"]),
        group_fit_fraction=float(payload.get("group_fit_fraction", 1.0)),
        model_id=int(payload["model_id"]),
        fitted_row_count=int(payload.get("fitted_row_count", 0)),
        metadata=dict(payload.get("metadata", {})),
        status=payload.get("status", "active"),
        observed_errors=[float(e) for e in payload.get("observed_errors", [])],
    )


# ---------------------------------------------------------------------------
# Whole-store payloads
# ---------------------------------------------------------------------------


def serialize_store(store: ModelStore) -> dict[str, Any]:
    """Every captured model (all lifecycle states — provenance included)."""
    models = sorted(store.all_models(), key=lambda m: m.model_id)
    return {
        "format_version": WAREHOUSE_FORMAT_VERSION,
        "models": [serialize_model(model) for model in models],
    }


def restore_store(payload: dict[str, Any], store: ModelStore) -> list[CapturedModel]:
    """Load a warehouse payload into ``store``; returns the restored models."""
    version = int(payload.get("format_version", 0))
    if version > WAREHOUSE_FORMAT_VERSION:
        raise FormatVersionError(
            f"warehouse format v{version} is newer than this build supports "
            f"(v{WAREHOUSE_FORMAT_VERSION}); upgrade before opening it"
        )
    restored = []
    for entry in payload.get("models", []):
        restored.append(store.add(deserialize_model(entry)))
    return restored
