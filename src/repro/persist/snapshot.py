"""Columnar table snapshots: one ``.npz`` segment per column batch.

A checkpoint writes every base table as a sequence of segments, each holding
a contiguous row range of all columns (packed value array + validity bitmap
per column).  The manifest entry for a segment records its row count and
lightweight per-column statistics (null count, min, max) so tooling can
reason about a snapshot without decompressing it.

Strings are stored as fixed-width unicode arrays (``object`` arrays cannot
be saved without pickling, and pickled snapshots would tie the on-disk
format to Python internals); NULL positions are carried solely by the
validity bitmap and restored as ``None`` on read.
"""

from __future__ import annotations

import errno as _errno
import io
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.db.column import Column
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import PersistenceError, SnapshotReadError, SnapshotWriteError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience import FaultInjector
    from repro.resilience.retry import Retrier

__all__ = [
    "schema_to_payload",
    "schema_from_payload",
    "write_table_segments",
    "read_table_segments",
]

#: Default rows per snapshot segment.
DEFAULT_ROWS_PER_SEGMENT = 65536


def schema_to_payload(schema: Schema) -> list[list[Any]]:
    """Schema -> JSON-friendly ``[[name, dtype, nullable], ...]``."""
    return [[c.name, c.dtype.value, bool(c.nullable)] for c in schema]


def schema_from_payload(payload: list[list[Any]]) -> Schema:
    return Schema(
        ColumnDef(name, DataType(dtype), bool(nullable)) for name, dtype, nullable in payload
    )


#: Appended to every stored string: NumPy's fixed-width unicode dtype strips
#: *trailing NUL characters* on read, so "a\x00" would silently come back as
#: "a".  One guaranteed non-NUL final character protects any trailing NULs;
#: decode strips exactly this one character back off.
_STRING_PAD = "\x01"


def _encode_column(column: Column) -> tuple[np.ndarray, np.ndarray]:
    """A column as two npz-safe arrays: packed values and validity."""
    validity = np.asarray(column.validity, dtype=bool).copy()
    if column.dtype is DataType.STRING:
        # Replace None (the STRING null sentinel) before the unicode cast.
        cleaned = [("" if v is None else str(v)) + _STRING_PAD for v in column.values]
        values = np.asarray(cleaned, dtype=np.str_)
        if values.ndim == 0:  # np.asarray([]) of strings
            values = values.reshape(0)
    else:
        values = np.asarray(column.values, dtype=column.dtype.numpy_dtype).copy()
    return values, validity


def _decode_column(dtype: DataType, values: np.ndarray, validity: np.ndarray) -> Column:
    validity = np.asarray(validity, dtype=bool)
    if dtype is DataType.STRING:
        boxed = np.empty(len(values), dtype=object)
        boxed[:] = [str(v)[:-1] for v in values]
        if len(boxed):
            boxed[~validity] = None
        return Column(dtype, boxed, validity)
    return Column(dtype, np.asarray(values, dtype=dtype.numpy_dtype), validity)


def _segment_column_stats(table: Table) -> dict[str, dict[str, Any]]:
    stats: dict[str, dict[str, Any]] = {}
    for name in table.schema.names:
        column = table.column(name)
        stats[name] = {
            "null_count": int(column.null_count),
            "min": column.min(),
            "max": column.max(),
        }
    return stats


def write_table_segments(
    directory: Path,
    table: Table,
    rows_per_segment: int = DEFAULT_ROWS_PER_SEGMENT,
    file_prefix: str | None = None,
    faults: "FaultInjector | None" = None,
) -> list[dict[str, Any]]:
    """Write ``table`` as npz segments under ``directory``.

    Returns one manifest entry per segment: relative file name, row range
    and per-column stats.  An empty table writes no segment files (schema
    alone reconstructs it).  OS failures surface as typed
    :class:`SnapshotWriteError` carrying the segment path.
    """
    if rows_per_segment < 1:
        raise PersistenceError(f"rows_per_segment must be positive, got {rows_per_segment}")
    directory.mkdir(parents=True, exist_ok=True)
    prefix = file_prefix if file_prefix is not None else table.name
    entries: list[dict[str, Any]] = []
    for index, start in enumerate(range(0, table.num_rows, rows_per_segment)):
        stop = min(start + rows_per_segment, table.num_rows)
        piece = table.slice(start, stop)
        arrays: dict[str, np.ndarray] = {}
        for name in piece.schema.names:
            values, validity = _encode_column(piece.column(name))
            arrays[f"v__{name}"] = values
            arrays[f"m__{name}"] = validity
        file_name = f"{prefix}__{index:05d}.npz"
        path = directory / file_name
        try:
            _write_segment(path, arrays, faults)
        except OSError as exc:
            raise SnapshotWriteError(
                f"snapshot segment {path} could not be written: {exc.strerror or exc}",
                path=str(path),
                errno_code=exc.errno,
            ) from exc
        entries.append(
            {
                "file": file_name,
                "start_row": start,
                "rows": stop - start,
                "columns": _segment_column_stats(piece),
            }
        )
    return entries


def _write_segment(path: Path, arrays: dict[str, np.ndarray], faults: "FaultInjector | None") -> None:
    action = None
    if faults is not None:
        action = faults.hit("persist.snapshot.write", path=path)
    if action is None:
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **arrays)
        return
    # Cooperative faults need the full payload in hand: torn_write persists
    # only a prefix then fails the call, bit_flip persists silently-corrupt
    # bytes (caught later by the read path, never here).
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    data = faults.apply(action, buffer.getvalue())
    path.write_bytes(data)
    if action.kind == "torn_write":
        raise OSError(_errno.EIO, "injected torn write", str(path))


def read_table_segments(
    directory: Path,
    name: str,
    schema: Schema,
    entries: list[dict[str, Any]],
    faults: "FaultInjector | None" = None,
    on_segment_error: Callable[[dict[str, Any], Path, Exception], bool] | None = None,
    retrier: "Retrier | None" = None,
) -> Table:
    """Rebuild a table from its snapshot segments (in manifest order).

    An unreadable segment raises a typed :class:`SnapshotReadError` — unless
    ``on_segment_error`` is given and returns True for it, in which case the
    segment is skipped (the caller quarantines it) and the surviving
    segments are concatenated into a partial table.
    """
    per_column: dict[str, list[np.ndarray]] = {n: [] for n in schema.names}
    per_validity: dict[str, list[np.ndarray]] = {n: [] for n in schema.names}
    for entry in entries:
        path = directory / entry["file"]
        try:
            loaded_values, loaded_masks = _load_segment(path, schema, faults, retrier)
        except SnapshotReadError as exc:
            if on_segment_error is not None and on_segment_error(entry, path, exc):
                continue
            raise
        for col_name in schema.names:
            per_column[col_name].append(loaded_values[col_name])
            per_validity[col_name].append(loaded_masks[col_name])
    columns: dict[str, Column] = {}
    for col_def in schema:
        if per_column[col_def.name]:
            values = np.concatenate(per_column[col_def.name])
            validity = np.concatenate(per_validity[col_def.name])
        else:
            values = np.empty(0, dtype=col_def.dtype.numpy_dtype)
            validity = np.empty(0, dtype=bool)
        columns[col_def.name] = _decode_column(col_def.dtype, values, validity)
    return Table(name, schema, columns)


def _read_segment_bytes(path: Path, faults: "FaultInjector | None") -> bytes:
    data = path.read_bytes()
    if faults is not None:
        data = faults.filter_bytes("persist.snapshot.read", data, path=path)
    return data


def _load_segment(
    path: Path,
    schema: Schema,
    faults: "FaultInjector | None",
    retrier: "Retrier | None" = None,
) -> tuple[dict[str, np.ndarray], dict[str, np.ndarray]]:
    try:
        if not path.is_file():
            raise SnapshotReadError(f"snapshot segment missing: {path}", path=str(path))
        try:
            data = _read_segment_bytes(path, faults)
        except OSError as exc:
            # Segment reads are idempotent, so any OSError — not just the
            # transient set — is retried before the caller quarantines bytes
            # that may be perfectly intact on disk.
            if retrier is None:
                raise
            data = retrier.retry(
                lambda: _read_segment_bytes(path, faults),
                first_error=exc,
                operation="snapshot.read",
                retry_all=True,
            )
        values: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        with np.load(io.BytesIO(data), allow_pickle=False) as payload:
            for col_name in schema.names:
                value_key, mask_key = f"v__{col_name}", f"m__{col_name}"
                if value_key not in payload or mask_key not in payload:
                    raise SnapshotReadError(
                        f"segment {path} lacks column {col_name!r} "
                        f"(snapshot and schema disagree)",
                        path=str(path),
                    )
                values[col_name] = payload[value_key]
                masks[col_name] = payload[mask_key]
        return values, masks
    except SnapshotReadError:
        raise
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile, zlib.error) as exc:
        raise SnapshotReadError(
            f"snapshot segment {path} unreadable: {exc}",
            path=str(path),
            errno_code=getattr(exc, "errno", None),
        ) from exc
