"""Append-only, checksummed write-ahead log.

Between checkpoints every acknowledged append (streaming ingest batches and
direct row inserts) is framed into the WAL so a crashed process can replay
it on top of the last snapshot.  The format is deliberately simple:

``[length:u32][crc32:u32][payload bytes]``

where the payload is a UTF-8 JSON record.  Replay walks the frames from the
start and stops at the first torn or corrupted frame — a crash mid-write
leaves a torn tail, and a bit flip breaks the CRC; either way everything
*before* the bad frame is intact and everything after it is untrusted, so
the tail is truncated (standard redo-log semantics).

Every log begins with an ``epoch`` record naming the checkpoint it extends.
A manifest rename and the log reset that follows it are two separate
filesystem operations; the epoch lets a reopening process detect a WAL that
predates (or outlives) the manifest it found and discard it instead of
double-applying records.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, BinaryIO

import numpy as np

from repro.errors import PersistenceError

__all__ = ["WalReplay", "WriteAheadLog"]

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


def coerce_json_scalar(value: Any) -> Any:
    """NumPy scalar -> plain Python (the one coercion table for persist/).

    Used both as the WAL's ``json.dumps`` default (producers hand rows
    straight from NumPy) and by the warehouse's metadata sanitizer.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"persist payloads must be JSON-serializable; got {type(value).__name__}")

#: Sanity bound on a single frame: a "length" beyond this is corruption, not
#: a real record (protects replay from allocating garbage-sized buffers).
_MAX_FRAME_BYTES = 256 * 1024 * 1024


@dataclass
class WalReplay:
    """What one replay pass recovered (and what it had to discard)."""

    #: The checkpoint epoch this log extends (0 when no epoch record found).
    epoch: int = 0
    records: list[dict[str, Any]] = field(default_factory=list)
    valid_bytes: int = 0
    truncated_bytes: int = 0
    truncation_reason: str | None = None

    @property
    def was_truncated(self) -> bool:
        return self.truncated_bytes > 0


class WriteAheadLog:
    """A single append-only log file with CRC-framed JSON records."""

    def __init__(self, path: Path | str, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle: BinaryIO | None = None
        # Frames must hit the file whole: two concurrent appends
        # interleaving header and payload writes would corrupt the log.
        # Re-entrant because reset() appends the epoch record itself.
        self._lock = threading.RLock()

    # -- writing ---------------------------------------------------------------

    def _open_handle(self) -> BinaryIO:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record: dict[str, Any]) -> int:
        """Frame and append one record; returns the log size afterwards."""
        payload = json.dumps(
            record, separators=(",", ":"), default=coerce_json_scalar
        ).encode("utf-8")
        if len(payload) > _MAX_FRAME_BYTES:
            raise PersistenceError(
                f"WAL record of {len(payload)} bytes exceeds the frame limit "
                f"({_MAX_FRAME_BYTES} bytes); checkpoint instead of logging it"
            )
        with self._lock:
            handle = self._open_handle()
            handle.write(_FRAME.pack(len(payload), zlib.crc32(payload)))
            handle.write(payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            return handle.tell()

    def reset(self, epoch: int) -> None:
        """Truncate the log and stamp it with the checkpoint epoch it extends."""
        with self._lock:
            self.close()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "wb"):
                pass  # truncate
            self.append({"op": "epoch", "id": int(epoch)})

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    @property
    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # -- replay ----------------------------------------------------------------

    def replay(self, repair: bool = True) -> WalReplay:
        """Read every intact record; truncate (or just skip) a bad tail.

        ``repair=True`` (the default during recovery) physically truncates
        the file at the first bad frame so subsequent appends extend a
        clean log.
        """
        replay = WalReplay()
        if not self.path.exists():
            return replay
        self.close()  # never replay through a buffered write handle
        data = self.path.read_bytes()
        offset = 0
        total = len(data)
        while offset < total:
            if offset + _FRAME.size > total:
                replay.truncation_reason = "torn frame header"
                break
            length, crc = _FRAME.unpack_from(data, offset)
            if length > _MAX_FRAME_BYTES:
                replay.truncation_reason = f"implausible frame length {length}"
                break
            start = offset + _FRAME.size
            end = start + length
            if end > total:
                replay.truncation_reason = "torn frame payload"
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                replay.truncation_reason = "frame checksum mismatch"
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                replay.truncation_reason = "frame payload is not valid JSON"
                break
            if isinstance(record, dict) and record.get("op") == "epoch":
                replay.epoch = int(record.get("id", 0))
            else:
                replay.records.append(record)
            offset = end
        replay.valid_bytes = offset
        replay.truncated_bytes = total - offset
        if replay.was_truncated and repair:
            with open(self.path, "r+b") as handle:
                handle.truncate(offset)
        return replay
