"""Append-only, checksummed write-ahead log.

Between checkpoints every acknowledged append (streaming ingest batches and
direct row inserts) is framed into the WAL so a crashed process can replay
it on top of the last snapshot.  The format is deliberately simple:

``[length:u32][crc32:u32][payload bytes]``

where the payload is a UTF-8 JSON record.  Replay walks the frames from the
start and stops at the first torn or corrupted frame — a crash mid-write
leaves a torn tail, and a bit flip breaks the CRC; either way everything
*before* the bad frame is intact and everything after it is untrusted, so
the tail is truncated (standard redo-log semantics).

Every log begins with an ``epoch`` record naming the checkpoint it extends.
A manifest rename and the log reset that follows it are two separate
filesystem operations; the epoch lets a reopening process detect a WAL that
predates (or outlives) the manifest it found and discard it instead of
double-applying records.  An epoch record is a *log restart marker*: replay
discards everything accumulated before it, so a reset that failed to
truncate the file (ENOSPC, flaky disk) is still safe — the next successful
append stamps the new epoch first and the stale prefix is dropped on
replay.

Failure handling: a torn in-process write is rolled back by truncating the
file to its pre-append size, transient OS errors (EIO/EAGAIN) are retried
through the attached :class:`~repro.resilience.Retrier`, and every OS-level
failure that escapes surfaces as a typed :class:`~repro.errors.WALError`
carrying the log path.  Fault injection (``persist.wal.append``,
``persist.wal.reset``, ``persist.wal.replay``) is strictly opt-in via the
``faults`` attribute.
"""

from __future__ import annotations

import errno as _errno
import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, BinaryIO

import numpy as np

from repro.errors import PersistenceError, WALError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.resilience import FaultInjector, Retrier

__all__ = ["WalReplay", "WriteAheadLog"]

_FRAME = struct.Struct("<II")  # payload length, crc32(payload)


def coerce_json_scalar(value: Any) -> Any:
    """NumPy scalar -> plain Python (the one coercion table for persist/).

    Used both as the WAL's ``json.dumps`` default (producers hand rows
    straight from NumPy) and by the warehouse's metadata sanitizer.
    """
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    raise TypeError(f"persist payloads must be JSON-serializable; got {type(value).__name__}")

#: Sanity bound on a single frame: a "length" beyond this is corruption, not
#: a real record (protects replay from allocating garbage-sized buffers).
_MAX_FRAME_BYTES = 256 * 1024 * 1024


@dataclass
class WalReplay:
    """What one replay pass recovered (and what it had to discard)."""

    #: The checkpoint epoch this log extends (0 when no epoch record found).
    epoch: int = 0
    records: list[dict[str, Any]] = field(default_factory=list)
    valid_bytes: int = 0
    truncated_bytes: int = 0
    truncation_reason: str | None = None
    #: The discarded tail bytes, captured before repair so recovery can
    #: quarantine them instead of silently dropping evidence.
    tail: bytes = b""

    @property
    def was_truncated(self) -> bool:
        return self.truncated_bytes > 0


class WriteAheadLog:
    """A single append-only log file with CRC-framed JSON records."""

    def __init__(self, path: Path | str, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle: BinaryIO | None = None
        # Frames must hit the file whole: two concurrent appends
        # interleaving header and payload writes would corrupt the log.
        # Re-entrant because reset() appends the epoch record itself.
        self._lock = threading.RLock()
        #: Epoch waiting to be stamped: set by reset(); if stamping fails
        #: (full disk mid-checkpoint) the next successful append writes the
        #: epoch frame first, so records can never land under a stale epoch.
        self._pending_epoch: int | None = None
        #: Optional resilience hooks (attached by DurableStore).
        self.faults: FaultInjector | None = None
        self.retrier: Retrier | None = None

    # -- writing ---------------------------------------------------------------

    def _open_handle(self) -> BinaryIO:
        if self._handle is None or self._handle.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record: dict[str, Any]) -> int:
        """Frame and append one record; returns the log size afterwards."""
        payload = json.dumps(
            record, separators=(",", ":"), default=coerce_json_scalar
        ).encode("utf-8")
        if len(payload) > _MAX_FRAME_BYTES:
            raise PersistenceError(
                f"WAL record of {len(payload)} bytes exceeds the frame limit "
                f"({_MAX_FRAME_BYTES} bytes); checkpoint instead of logging it"
            )
        with self._lock:
            try:
                return self._append_payload(payload)
            except OSError as exc:
                if self.retrier is not None and self.retrier.is_transient(exc):
                    try:
                        return self.retrier.retry(
                            lambda: self._append_payload(payload),
                            first_error=exc,
                            operation="wal.append",
                        )
                    except OSError as final:
                        exc = final
                raise WALError(
                    f"WAL append to {self.path} failed: {exc.strerror or exc}",
                    path=str(self.path),
                    errno_code=exc.errno,
                ) from exc

    def _append_payload(self, payload: bytes) -> int:
        handle = self._open_handle()
        if self._pending_epoch is not None:
            epoch_payload = json.dumps(
                {"op": "epoch", "id": int(self._pending_epoch)}, separators=(",", ":")
            ).encode("utf-8")
            self._write_frame(handle, epoch_payload)
            self._pending_epoch = None
            handle = self._open_handle()
        return self._write_frame(handle, payload)

    def _write_frame(self, handle: BinaryIO, payload: bytes) -> int:
        start = handle.tell()
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        try:
            action = None
            if self.faults is not None:
                action = self.faults.hit("persist.wal.append", path=self.path)
            if action is not None and action.kind == "torn_write":
                cut = max(1, int(len(frame) * action.fraction))
                handle.write(frame[:cut])
                handle.flush()
                raise OSError(
                    _errno.EIO,
                    f"injected torn write ({cut}/{len(frame)} bytes)",
                    str(self.path),
                )
            if action is not None and action.kind == "bit_flip":
                frame = self.faults.apply(action, frame)
            handle.write(frame)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        except OSError:
            self._rollback(start)
            raise
        return handle.tell()

    def _rollback(self, size: int) -> None:
        """Truncate a torn frame back off the log so a retry starts clean."""
        try:
            self.close()
            with open(self.path, "r+b") as handle:
                handle.truncate(size)
        except OSError:
            # Rollback is best-effort: if even the truncate fails, the CRC
            # framing makes the torn tail detectable (and truncatable) at
            # the next replay.
            pass

    def reset(self, epoch: int) -> None:
        """Truncate the log and stamp it with the checkpoint epoch it extends.

        If truncation or stamping fails the epoch stays *pending*: the next
        successful append writes the epoch frame first, and since an epoch
        frame is a restart marker on replay, any stale prefix left by the
        failed truncate is discarded rather than double-applied.
        """
        with self._lock:
            self._pending_epoch = int(epoch)
            try:
                if self.faults is not None:
                    self.faults.hit("persist.wal.reset", path=self.path)
                self.close()
                self.path.parent.mkdir(parents=True, exist_ok=True)
                with open(self.path, "wb"):
                    pass  # truncate
                handle = self._open_handle()
                epoch_payload = json.dumps(
                    {"op": "epoch", "id": int(epoch)}, separators=(",", ":")
                ).encode("utf-8")
                self._write_frame(handle, epoch_payload)
                self._pending_epoch = None
            except OSError as exc:
                raise WALError(
                    f"WAL reset of {self.path} failed: {exc.strerror or exc}",
                    path=str(self.path),
                    errno_code=exc.errno,
                ) from exc

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.close()
            self._handle = None

    @property
    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # -- replay ----------------------------------------------------------------

    def _read_log_bytes(self) -> bytes:
        data = self.path.read_bytes()
        if self.faults is not None:
            data = self.faults.filter_bytes("persist.wal.replay", data, path=self.path)
        return data

    def replay(self, repair: bool = True) -> WalReplay:
        """Read every intact record; truncate (or just skip) a bad tail.

        ``repair=True`` (the default during recovery) physically truncates
        the file at the first bad frame so subsequent appends extend a
        clean log.  An epoch record mid-log restarts accumulation: records
        before it belong to an older checkpoint that already contains them.
        """
        replay = WalReplay()
        if not self.path.exists():
            return replay
        self.close()  # never replay through a buffered write handle
        try:
            try:
                data = self._read_log_bytes()
            except OSError as exc:
                # Replay is an idempotent read: retrying cannot double-apply
                # anything, and a failed read says nothing about the bytes on
                # disk — so *any* OSError is worth retrying before the caller
                # escalates to quarantining a perfectly good log.
                if self.retrier is None:
                    raise
                data = self.retrier.retry(
                    self._read_log_bytes,
                    first_error=exc,
                    operation="wal.replay",
                    retry_all=True,
                )
        except OSError as exc:
            raise WALError(
                f"WAL replay of {self.path} failed: {exc.strerror or exc}",
                path=str(self.path),
                errno_code=exc.errno,
            ) from exc
        offset = 0
        total = len(data)
        while offset < total:
            if offset + _FRAME.size > total:
                replay.truncation_reason = "torn frame header"
                break
            length, crc = _FRAME.unpack_from(data, offset)
            if length > _MAX_FRAME_BYTES:
                replay.truncation_reason = f"implausible frame length {length}"
                break
            start = offset + _FRAME.size
            end = start + length
            if end > total:
                replay.truncation_reason = "torn frame payload"
                break
            payload = data[start:end]
            if zlib.crc32(payload) != crc:
                replay.truncation_reason = "frame checksum mismatch"
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                replay.truncation_reason = "frame payload is not valid JSON"
                break
            if isinstance(record, dict) and record.get("op") == "epoch":
                replay.epoch = int(record.get("id", 0))
                replay.records.clear()  # restart marker: prior records are pre-checkpoint
            else:
                replay.records.append(record)
            offset = end
        replay.valid_bytes = offset
        replay.truncated_bytes = total - offset
        if replay.was_truncated:
            replay.tail = bytes(data[offset:])
            if repair:
                try:
                    with open(self.path, "r+b") as handle:
                        handle.truncate(offset)
                except OSError:
                    # Leave the tail in place; the next replay will hit the
                    # same clean truncation point.
                    pass
        return replay
