"""Robust fitting via iteratively re-weighted least squares (IRLS).

Radio-astronomy observations are "subject to a large amount of interference"
(§2); ordinary least squares is sensitive to the resulting outliers.  The
harvester can optionally fit with Huber or Tukey bisquare weights so that a
handful of interference spikes does not ruin an otherwise excellent model —
one of the extension points the paper leaves open.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.errors import FittingError
from repro.fitting.fit import fit_model
from repro.fitting.metrics import adjusted_r_squared, r_squared, residual_standard_error
from repro.fitting.model import FitResult, ModelFamily

__all__ = ["huber_weights", "bisquare_weights", "fit_robust"]


def huber_weights(residuals: np.ndarray, k: float = 1.345) -> np.ndarray:
    """Huber weight function: 1 inside the threshold, k/|r| outside."""
    scaled = np.abs(residuals)
    scale = _mad_scale(residuals)
    if scale == 0.0:
        return np.ones_like(scaled)
    scaled = scaled / scale
    weights = np.ones_like(scaled)
    outside = scaled > k
    weights[outside] = k / scaled[outside]
    return weights


def bisquare_weights(residuals: np.ndarray, c: float = 4.685) -> np.ndarray:
    """Tukey bisquare weights: smooth decay to zero beyond the threshold."""
    scale = _mad_scale(residuals)
    if scale == 0.0:
        return np.ones_like(residuals, dtype=np.float64)
    scaled = np.abs(residuals) / scale / c
    weights = np.zeros_like(scaled)
    inside = scaled < 1.0
    weights[inside] = (1.0 - scaled[inside] ** 2) ** 2
    return weights


def _mad_scale(residuals: np.ndarray) -> float:
    """Robust residual scale: median absolute deviation / 0.6745."""
    residuals = np.asarray(residuals, dtype=np.float64)
    if len(residuals) == 0:
        return 0.0
    mad = float(np.median(np.abs(residuals - np.median(residuals))))
    return mad / 0.6745 if mad > 0 else float(np.std(residuals))


_WEIGHT_FUNCTIONS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "huber": huber_weights,
    "bisquare": bisquare_weights,
}


def fit_robust(
    family: ModelFamily,
    inputs: Mapping[str, np.ndarray] | np.ndarray,
    y: np.ndarray,
    output_name: str = "y",
    weight_function: str = "huber",
    max_iterations: int = 20,
    tolerance: float = 1e-8,
) -> FitResult:
    """Fit a linear-in-parameters family robustly via IRLS.

    Non-linear families fall back to a two-stage scheme: an initial
    unweighted fit, outlier down-weighting by residual, and one re-fit on the
    surviving observations.
    """
    weight_fn = _WEIGHT_FUNCTIONS.get(weight_function)
    if weight_fn is None:
        raise FittingError(
            f"unknown robust weight function {weight_function!r}; known: {sorted(_WEIGHT_FUNCTIONS)}"
        )

    y = np.asarray(y, dtype=np.float64)

    if not family.is_linear:
        return _fit_robust_nonlinear(family, inputs, y, output_name, weight_fn)

    fit = fit_model(family, inputs, y, output_name=output_name)
    params = fit.params
    for iteration in range(max_iterations):
        residuals = y - fit.predict(inputs)
        weights = weight_fn(residuals)
        new_fit = fit_model(family, inputs, y, output_name=output_name, weights=weights)
        delta = float(np.max(np.abs(new_fit.params - params))) if len(params) else 0.0
        fit = new_fit
        params = fit.params
        if delta <= tolerance:
            break

    predictions = fit.predict(inputs)
    fit.extra["robust"] = weight_function
    fit.extra["irls_iterations"] = iteration + 1
    # Quality metrics are reported against the *unweighted* data so they are
    # comparable with ordinary fits.
    fit.r_squared = r_squared(y, predictions)
    fit.adjusted_r_squared = adjusted_r_squared(y, predictions, family.num_params)
    fit.residual_standard_error = residual_standard_error(y - predictions, family.num_params)
    return fit


def _fit_robust_nonlinear(
    family: ModelFamily,
    inputs: Mapping[str, np.ndarray] | np.ndarray,
    y: np.ndarray,
    output_name: str,
    weight_fn: Callable[[np.ndarray], np.ndarray],
) -> FitResult:
    first = fit_model(family, inputs, y, output_name=output_name)
    residuals = y - first.predict(inputs)
    weights = weight_fn(residuals)
    keep = weights > 0.25  # drop observations the weight function strongly rejects

    if keep.sum() <= family.num_params or keep.all():
        first.extra["robust"] = "none (no usable outlier mask)"
        return first

    if isinstance(inputs, np.ndarray):
        trimmed_inputs: Mapping[str, np.ndarray] | np.ndarray = np.asarray(inputs, dtype=np.float64)[keep]
    else:
        trimmed_inputs = {name: np.asarray(values, dtype=np.float64)[keep] for name, values in inputs.items()}

    refit = fit_model(family, trimmed_inputs, y[keep], output_name=output_name, initial_params=first.params)
    refit.extra["robust"] = "trimmed"
    refit.extra["trimmed_observations"] = int((~keep).sum())
    return refit
