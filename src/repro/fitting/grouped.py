"""Grouped (per-key) model fitting.

The LOFAR example fits one power law *per source*: the result is a parameter
table with one row per group (source, p, alpha, residual SE) — the paper's
Table 1.  :class:`GroupedFitter` produces exactly that, including the cases
the paper warns about (groups with too few observations, groups where the
optimiser fails), which are recorded rather than silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import FittingError, InsufficientDataError
from repro.fitting.fit import fit_model
from repro.fitting.model import FitResult, ModelFamily

__all__ = ["GroupFitRecord", "GroupedFitResult", "GroupedFitter", "fit_grouped"]


@dataclass
class GroupFitRecord:
    """One group's fit outcome (or failure)."""

    key: tuple[Any, ...]
    result: FitResult | None
    error: str | None = None
    n_observations: int = 0

    @property
    def succeeded(self) -> bool:
        return self.result is not None


@dataclass
class GroupedFitResult:
    """All per-group fits plus the derived parameter table."""

    family: ModelFamily
    group_columns: tuple[str, ...]
    input_columns: tuple[str, ...]
    output_column: str
    records: list[GroupFitRecord] = field(default_factory=list)

    # -- access --------------------------------------------------------------

    @property
    def fitted(self) -> list[GroupFitRecord]:
        return [record for record in self.records if record.succeeded]

    @property
    def failed(self) -> list[GroupFitRecord]:
        return [record for record in self.records if not record.succeeded]

    @property
    def num_groups(self) -> int:
        return len(self.records)

    def result_for(self, key: tuple[Any, ...] | Any) -> FitResult | None:
        """The FitResult for one group key (scalar keys are auto-wrapped)."""
        if not isinstance(key, tuple):
            key = (key,)
        for record in self.records:
            if record.key == key:
                return record.result
        return None

    def params_by_key(self) -> dict[tuple[Any, ...], dict[str, float]]:
        return {record.key: record.result.param_dict for record in self.records if record.result is not None}

    # -- the paper's parameter table ------------------------------------------

    def to_parameter_table(self, name: str = "model_parameters") -> Table:
        """Build the Table 1 style parameter table.

        Columns: the group key columns, one column per model parameter, and
        the per-group quality measures (residual SE, R², #observations).
        """
        defs: list[ColumnDef] = []
        data: dict[str, list[Any]] = {}

        sample_key = self.records[0].key if self.records else tuple()
        for index, column in enumerate(self.group_columns):
            key_value = sample_key[index] if index < len(sample_key) else None
            dtype = DataType.infer(key_value) if key_value is not None else DataType.INT64
            defs.append(ColumnDef(column, dtype))
            data[column] = []

        for param in self.family.param_names:
            defs.append(ColumnDef(param, DataType.FLOAT64))
            data[param] = []
        for metric in ("residual_se", "r_squared", "n_obs"):
            dtype = DataType.INT64 if metric == "n_obs" else DataType.FLOAT64
            defs.append(ColumnDef(metric, dtype))
            data[metric] = []

        for record in self.records:
            if record.result is None:
                continue
            for index, column in enumerate(self.group_columns):
                data[column].append(record.key[index])
            for param, value in zip(self.family.param_names, record.result.params):
                data[param].append(float(value))
            data["residual_se"].append(record.result.residual_standard_error)
            data["r_squared"].append(record.result.r_squared)
            data["n_obs"].append(record.result.n_observations)

        return Table(name, Schema(defs), {
            col_def.name: _column_from(col_def.dtype, data[col_def.name]) for col_def in defs
        })

    def byte_size(self) -> int:
        """Nominal size of the parameter table (for the compression ratio)."""
        return self.to_parameter_table().byte_size()

    def anomaly_ranking(self) -> list[tuple[tuple[Any, ...], float]]:
        """Groups ranked by residual standard error, worst fit first.

        §4.2: "observations that do not fit the model are of supreme
        interest ... showing large residual errors".
        """
        ranked = [
            (record.key, record.result.residual_standard_error)
            for record in self.records
            if record.result is not None
        ]
        return sorted(ranked, key=lambda pair: pair[1], reverse=True)


def _column_from(dtype: DataType, values: list[Any]):
    from repro.db.column import Column

    return Column.from_values(dtype, values)


class GroupedFitter:
    """Fits one model per group of a table."""

    def __init__(
        self,
        family: ModelFamily,
        input_columns: Iterable[str],
        output_column: str,
        group_columns: Iterable[str],
        min_observations: int | None = None,
        method: str = "lm",
    ) -> None:
        self.family = family
        self.input_columns = tuple(input_columns)
        self.output_column = output_column
        self.group_columns = tuple(group_columns)
        if not self.group_columns:
            raise FittingError("grouped fitting requires at least one group column")
        # The paper: "we need more observed input/output pairs than model parameters".
        self.min_observations = (
            min_observations if min_observations is not None else family.num_params + 1
        )
        self.method = method

    def fit(self, table: Table) -> GroupedFitResult:
        """Fit the model for every group of ``table``."""
        result = GroupedFitResult(
            family=self.family,
            group_columns=self.group_columns,
            input_columns=self.input_columns,
            output_column=self.output_column,
        )

        group_indices = self._group_rows(table)
        input_arrays = {
            name: table.column(name).to_numpy().astype(np.float64) for name in self.input_columns
        }
        input_validity = {name: table.column(name).validity for name in self.input_columns}
        output_array = table.column(self.output_column).to_numpy().astype(np.float64)
        output_validity = table.column(self.output_column).validity

        for key, indices in group_indices.items():
            rows = np.asarray(indices, dtype=np.int64)
            valid = output_validity[rows].copy()
            for name in self.input_columns:
                valid &= input_validity[name][rows]
            rows = rows[valid]

            if len(rows) < self.min_observations:
                result.records.append(
                    GroupFitRecord(
                        key=key,
                        result=None,
                        error=f"only {len(rows)} usable observations (< {self.min_observations})",
                        n_observations=len(rows),
                    )
                )
                continue

            inputs = {name: input_arrays[name][rows] for name in self.input_columns}
            y = output_array[rows]
            try:
                fit = fit_model(
                    self.family,
                    inputs,
                    y,
                    output_name=self.output_column,
                    method=self.method,
                )
                result.records.append(GroupFitRecord(key=key, result=fit, n_observations=len(rows)))
            except (FittingError, InsufficientDataError, np.linalg.LinAlgError) as exc:
                result.records.append(
                    GroupFitRecord(key=key, result=None, error=str(exc), n_observations=len(rows))
                )
        return result

    def _group_rows(self, table: Table) -> dict[tuple[Any, ...], list[int]]:
        key_lists = [table.column(name).to_pylist() for name in self.group_columns]
        groups: dict[tuple[Any, ...], list[int]] = {}
        for row_index in range(table.num_rows):
            key = tuple(key_list[row_index] for key_list in key_lists)
            if any(part is None for part in key):
                continue
            groups.setdefault(key, []).append(row_index)
        return groups


def fit_grouped(
    table: Table,
    family: ModelFamily,
    input_columns: Iterable[str],
    output_column: str,
    group_columns: Iterable[str],
    **kwargs: Any,
) -> GroupedFitResult:
    """Functional convenience wrapper around :class:`GroupedFitter`."""
    fitter = GroupedFitter(family, input_columns, output_column, group_columns, **kwargs)
    return fitter.fit(table)
