"""Prediction helpers: point predictions with uncertainty intervals.

Approximate answers must come "with error bounds" (Figure 2, step 5).  For a
fitted model, the simplest honest bound is the residual standard error; for
linear models we can do better and propagate the parameter covariance into a
per-point prediction interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np
from scipy import stats as scipy_stats

from repro.fitting.model import FitResult

__all__ = ["PredictionInterval", "predict_interval"]


@dataclass(frozen=True)
class PredictionInterval:
    """A point prediction with a symmetric uncertainty interval."""

    value: float
    standard_error: float
    lower: float
    upper: float
    confidence: float

    def contains(self, observed: float) -> bool:
        return self.lower <= observed <= self.upper

    def __str__(self) -> str:
        return f"{self.value:.6g} ± {self.upper - self.value:.3g} ({self.confidence:.0%})"


def predict_interval(
    fit: FitResult,
    inputs: Mapping[str, float] | Mapping[str, np.ndarray],
    confidence: float = 0.95,
) -> list[PredictionInterval]:
    """Predict outputs with prediction intervals for each input point.

    Scalar inputs are treated as single points.  For families with a known
    design matrix and covariance, the interval accounts for both parameter
    uncertainty and residual noise; otherwise the residual standard error
    alone is used (a conservative, model-agnostic bound).
    """
    arrays = {
        name: np.atleast_1d(np.asarray(value, dtype=np.float64)) for name, value in inputs.items()
    }
    n_points = len(next(iter(arrays.values())))
    predictions = fit.predict(arrays)

    dof = max(fit.degrees_of_freedom, 1)
    t_value = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))

    standard_errors = np.full(n_points, fit.residual_standard_error, dtype=np.float64)
    if fit.family.is_linear and fit.covariance is not None and np.all(np.isfinite(fit.covariance)):
        design = fit.family.design_matrix(arrays)
        param_variance = np.einsum("ij,jk,ik->i", design, fit.covariance, design)
        param_variance = np.clip(param_variance, 0.0, None)
        standard_errors = np.sqrt(fit.residual_standard_error**2 + param_variance)

    intervals = []
    for value, se in zip(predictions, standard_errors):
        margin = t_value * float(se)
        intervals.append(
            PredictionInterval(
                value=float(value),
                standard_error=float(se),
                lower=float(value) - margin,
                upper=float(value) + margin,
                confidence=confidence,
            )
        )
    return intervals
