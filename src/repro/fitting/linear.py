"""Ordinary least squares for families that are linear in their parameters.

§3 of the paper: "In the simpler case of linear models (y = Xβ + ε), we can
use the ordinary least squares method to find an analytical solution for the
unknown parameters β ... by solving the linear equation system
β̂ = (XᵀX)⁻¹Xᵀy."  This module solves that system (via QR-based ``lstsq``
for numerical robustness, which is algebraically equivalent) and packages
the result with the quality metrics the paper stores alongside captured
models.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FittingError, InsufficientDataError
from repro.fitting.metrics import adjusted_r_squared, r_squared, residual_standard_error
from repro.fitting.model import FitResult, ModelFamily

__all__ = ["fit_ols", "solve_normal_equations", "fit_linear_family"]


def solve_normal_equations(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Solve β̂ = (XᵀX)⁻¹Xᵀy directly (textbook form, used by tests as an oracle)."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    gram = X.T @ X
    try:
        return np.linalg.solve(gram, X.T @ y)
    except np.linalg.LinAlgError as exc:
        raise FittingError("normal equations are singular; the design matrix is rank-deficient") from exc


def fit_ols(X: np.ndarray, y: np.ndarray, weights: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Least-squares fit of ``y = X @ beta``.

    Returns ``(beta, covariance, residuals)``.  When ``weights`` is given the
    problem is solved in the whitened space (weighted least squares).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2:
        raise FittingError(f"design matrix must be 2-D, got shape {X.shape}")
    n, k = X.shape
    if len(y) != n:
        raise FittingError(f"y has {len(y)} observations but X has {n} rows")
    if n < k:
        raise InsufficientDataError(f"need at least {k} observations to fit {k} parameters, got {n}")

    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if len(weights) != n:
            raise FittingError("weights must have one entry per observation")
        if np.any(weights < 0):
            raise FittingError("weights must be non-negative")
        sqrt_w = np.sqrt(weights)
        Xw = X * sqrt_w[:, None]
        yw = y * sqrt_w
    else:
        Xw, yw = X, y

    beta, _, rank, _ = np.linalg.lstsq(Xw, yw, rcond=None)
    if rank < k:
        # Rank deficiency: lstsq already returned the minimum-norm solution;
        # flag it through a large covariance rather than failing, because
        # grouped fits over degenerate groups (e.g. a single frequency) are
        # expected in the LOFAR workload.
        covariance = np.full((k, k), np.inf)
        residuals = y - X @ beta
        return beta, covariance, residuals

    residuals = y - X @ beta
    dof = n - k
    if dof > 0:
        if weights is not None:
            sigma2 = float(np.sum(weights * residuals**2) / dof)
        else:
            sigma2 = float(np.sum(residuals**2) / dof)
        try:
            covariance = sigma2 * np.linalg.inv(Xw.T @ Xw)
        except np.linalg.LinAlgError:
            covariance = np.full((k, k), np.inf)
    else:
        covariance = np.zeros((k, k))
    return beta, covariance, residuals


def fit_linear_family(
    family: ModelFamily,
    inputs: Mapping[str, np.ndarray] | np.ndarray,
    y: np.ndarray,
    output_name: str = "y",
    weights: np.ndarray | None = None,
) -> FitResult:
    """Fit a linear-in-parameters family analytically and package a FitResult."""
    if not family.is_linear:
        raise FittingError(f"family {family.name!r} is not linear; use the non-linear fitter")
    y = np.asarray(y, dtype=np.float64)
    X = family.design_matrix(inputs)
    beta, covariance, residuals = fit_ols(X, y, weights=weights)
    predictions = X @ beta

    input_names = _input_names(family, inputs)
    return FitResult(
        family=family,
        params=beta,
        input_names=input_names,
        output_name=output_name,
        n_observations=len(y),
        residual_standard_error=residual_standard_error(residuals, family.num_params),
        r_squared=r_squared(y, predictions),
        adjusted_r_squared=adjusted_r_squared(y, predictions, family.num_params),
        sum_squared_residuals=float(np.sum(residuals**2)),
        covariance=covariance,
        iterations=0,
        converged=True,
    )


def _input_names(family: ModelFamily, inputs: Mapping[str, np.ndarray] | np.ndarray) -> tuple[str, ...]:
    if isinstance(inputs, np.ndarray):
        return tuple(family.input_names)
    names = tuple(family.input_names)
    if all(name in inputs for name in names):
        return names
    return tuple(inputs)
