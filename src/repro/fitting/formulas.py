"""Model formula language.

Users of statistical environments express models as formulas; the strawman
frame keeps that experience.  The supported grammar is intentionally small:

``<output> ~ <family>(<input>[, <input>...][, key=value...])``

Examples::

    intensity ~ powerlaw(frequency)
    sales ~ linear(price, advertising)
    y ~ poly(x, degree=3)
    value ~ exponential(t)

The right-hand side names a registered model family; keyword arguments are
forwarded to the family constructor (e.g. the polynomial degree).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import FormulaError
from repro.fitting.families import FAMILY_REGISTRY, LinearModel, family_by_name
from repro.fitting.model import ModelFamily

__all__ = ["ParsedFormula", "parse_formula"]

_FORMULA_RE = re.compile(
    r"^\s*(?P<output>[A-Za-z_][A-Za-z0-9_.]*)\s*~\s*(?P<family>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<args>.*)\)\s*$"
)
_SIMPLE_RE = re.compile(
    r"^\s*(?P<output>[A-Za-z_][A-Za-z0-9_.]*)\s*~\s*(?P<inputs>[A-Za-z_][A-Za-z0-9_.]*(\s*\+\s*[A-Za-z_][A-Za-z0-9_.]*)*)\s*$"
)
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


@dataclass(frozen=True)
class ParsedFormula:
    """The result of parsing a model formula."""

    output: str
    inputs: tuple[str, ...]
    family_name: str
    family_kwargs: dict[str, object]
    text: str

    def build_family(self) -> ModelFamily:
        """Instantiate the model family this formula names."""
        kwargs = dict(self.family_kwargs)
        if self.family_name == "linear":
            kwargs.setdefault("input_names", self.inputs)
        return family_by_name(self.family_name, **kwargs)


def parse_formula(text: str) -> ParsedFormula:
    """Parse a formula string into output, inputs and a model family."""
    if not isinstance(text, str) or "~" not in text:
        raise FormulaError(f"a model formula must look like 'y ~ family(x)', got {text!r}")

    match = _FORMULA_RE.match(text)
    if match is not None:
        family_name = match.group("family").lower()
        if family_name not in FAMILY_REGISTRY:
            raise FormulaError(
                f"unknown model family {family_name!r}; known families: {sorted(FAMILY_REGISTRY)}"
            )
        inputs, kwargs = _parse_arguments(match.group("args"))
        if not inputs:
            raise FormulaError(f"formula {text!r} names no input columns")
        return ParsedFormula(
            output=match.group("output"),
            inputs=tuple(inputs),
            family_name=family_name,
            family_kwargs=kwargs,
            text=text,
        )

    # R-style shorthand for additive linear models: "y ~ x1 + x2".
    simple = _SIMPLE_RE.match(text)
    if simple is not None:
        inputs = tuple(part.strip() for part in simple.group("inputs").split("+"))
        return ParsedFormula(
            output=simple.group("output"),
            inputs=inputs,
            family_name="linear",
            family_kwargs={},
            text=text,
        )

    raise FormulaError(f"could not parse model formula {text!r}")


def _parse_arguments(args_text: str) -> tuple[list[str], dict[str, object]]:
    inputs: list[str] = []
    kwargs: dict[str, object] = {}
    for raw in _split_arguments(args_text):
        part = raw.strip()
        if not part:
            continue
        if "=" in part:
            key, _, value = part.partition("=")
            key = key.strip()
            if not _IDENT_RE.match(key):
                raise FormulaError(f"bad keyword argument name {key!r} in formula")
            kwargs[key] = _parse_literal(value.strip())
        else:
            if not _IDENT_RE.match(part):
                raise FormulaError(f"bad input column name {part!r} in formula")
            inputs.append(part)
    return inputs, kwargs


def _split_arguments(text: str) -> list[str]:
    return [piece for piece in text.split(",")] if text.strip() else []


def _parse_literal(text: str) -> object:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text.strip("'\"")


def linear_family_for(inputs: tuple[str, ...], intercept: bool = True) -> LinearModel:
    """Convenience constructor used by callers that bypass the formula text."""
    return LinearModel(input_names=inputs, intercept=intercept)
