"""Goodness-of-fit metrics.

The paper names two quality judgements explicitly: the residual standard
error stored next to the model parameters (Table 1) and "the R² coefficient
of determination or the results of an F-test against a model with fewer
parameters" (§3).  This module implements those, plus AIC/BIC which the
model-switching policy uses to pick between competing captured models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

__all__ = [
    "residual_standard_error",
    "r_squared",
    "adjusted_r_squared",
    "aic",
    "bic",
    "FTestResult",
    "f_test_against_constant",
    "f_test_nested",
]


def residual_standard_error(residuals: np.ndarray, num_params: int) -> float:
    """Residual standard error: sqrt(SSR / (n - k))."""
    residuals = np.asarray(residuals, dtype=np.float64)
    n = len(residuals)
    dof = n - num_params
    if dof <= 0:
        return 0.0
    return float(np.sqrt(np.sum(residuals**2) / dof))


def r_squared(y: np.ndarray, predictions: np.ndarray) -> float:
    """Coefficient of determination (1 - SSR/SST).

    Returns 1.0 for a perfect fit to constant data and can be negative when
    the model is worse than predicting the mean.
    """
    y = np.asarray(y, dtype=np.float64)
    predictions = np.asarray(predictions, dtype=np.float64)
    ssr = float(np.sum((y - predictions) ** 2))
    sst = float(np.sum((y - np.mean(y)) ** 2)) if len(y) else 0.0
    if sst == 0.0:
        return 1.0 if ssr == 0.0 else 0.0
    return 1.0 - ssr / sst


def adjusted_r_squared(y: np.ndarray, predictions: np.ndarray, num_params: int) -> float:
    """R² adjusted for the number of fitted parameters."""
    n = len(np.asarray(y))
    r2 = r_squared(y, predictions)
    dof = n - num_params
    if dof <= 0 or n <= 1:
        return r2
    return 1.0 - (1.0 - r2) * (n - 1) / dof


def aic(y: np.ndarray, predictions: np.ndarray, num_params: int) -> float:
    """Akaike information criterion under a Gaussian error model."""
    y = np.asarray(y, dtype=np.float64)
    n = len(y)
    if n == 0:
        return math.inf
    ssr = float(np.sum((y - np.asarray(predictions, dtype=np.float64)) ** 2))
    ssr = max(ssr, 1e-300)
    return n * math.log(ssr / n) + 2 * num_params


def bic(y: np.ndarray, predictions: np.ndarray, num_params: int) -> float:
    """Bayesian information criterion under a Gaussian error model."""
    y = np.asarray(y, dtype=np.float64)
    n = len(y)
    if n == 0:
        return math.inf
    ssr = float(np.sum((y - np.asarray(predictions, dtype=np.float64)) ** 2))
    ssr = max(ssr, 1e-300)
    return n * math.log(ssr / n) + num_params * math.log(max(n, 1))


@dataclass(frozen=True)
class FTestResult:
    """Outcome of an F-test between a full model and a reduced (nested) model."""

    f_statistic: float
    p_value: float
    df_numerator: int
    df_denominator: int

    def significant(self, alpha: float = 0.05) -> bool:
        """True when the extra parameters of the full model are justified."""
        return self.p_value < alpha


def f_test_nested(
    y: np.ndarray,
    reduced_predictions: np.ndarray,
    full_predictions: np.ndarray,
    reduced_params: int,
    full_params: int,
) -> FTestResult:
    """F-test of a full model against a nested reduced model."""
    y = np.asarray(y, dtype=np.float64)
    n = len(y)
    ssr_reduced = float(np.sum((y - np.asarray(reduced_predictions, dtype=np.float64)) ** 2))
    ssr_full = float(np.sum((y - np.asarray(full_predictions, dtype=np.float64)) ** 2))
    df_num = full_params - reduced_params
    df_den = n - full_params
    if df_num <= 0 or df_den <= 0:
        return FTestResult(f_statistic=0.0, p_value=1.0, df_numerator=max(df_num, 0), df_denominator=max(df_den, 0))
    if ssr_full <= 0.0:
        return FTestResult(f_statistic=math.inf, p_value=0.0, df_numerator=df_num, df_denominator=df_den)
    f_stat = ((ssr_reduced - ssr_full) / df_num) / (ssr_full / df_den)
    f_stat = max(f_stat, 0.0)
    p_value = float(scipy_stats.f.sf(f_stat, df_num, df_den))
    return FTestResult(f_statistic=float(f_stat), p_value=p_value, df_numerator=df_num, df_denominator=df_den)


def f_test_against_constant(y: np.ndarray, predictions: np.ndarray, num_params: int) -> FTestResult:
    """F-test of a fitted model against the constant (mean-only) model.

    This is the "F-test against a model with fewer parameters" the paper
    proposes as a quality judgement for captured models.
    """
    y = np.asarray(y, dtype=np.float64)
    constant_predictions = np.full(len(y), float(np.mean(y)) if len(y) else 0.0)
    return f_test_nested(y, constant_predictions, predictions, reduced_params=1, full_params=num_params)
