"""Iterative least-squares optimisers for non-linear model families.

§3 of the paper describes the Gauss-Newton iteration
``β(s+1) = β(s) − (JᵀJ)⁻¹ Jᵀ r(β(s))`` and notes that convergence depends on
the starting parameters and may hit local extrema.  This module implements
plain Gauss-Newton as described, plus Levenberg-Marquardt (a damped variant
that is far more robust on noisy astronomical data) which is the default
used by the harvester.  Jacobians come from the family when available and
fall back to forward finite differences otherwise.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.errors import ConvergenceError, FittingError, InsufficientDataError
from repro.fitting.metrics import adjusted_r_squared, r_squared, residual_standard_error
from repro.fitting.model import FitResult, ModelFamily

__all__ = ["gauss_newton", "levenberg_marquardt", "fit_nonlinear_family", "numeric_jacobian"]


def numeric_jacobian(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    params: np.ndarray,
    epsilon: float = 1e-7,
) -> np.ndarray:
    """Forward-difference Jacobian of a residual function."""
    params = np.asarray(params, dtype=np.float64)
    base = residual_fn(params)
    jacobian = np.zeros((len(base), len(params)))
    for j in range(len(params)):
        step = epsilon * max(abs(params[j]), 1.0)
        perturbed = params.copy()
        perturbed[j] += step
        jacobian[:, j] = (residual_fn(perturbed) - base) / step
    return jacobian


def gauss_newton(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    initial_params: np.ndarray,
    jacobian_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    max_iterations: int = 100,
    tolerance: float = 1e-10,
) -> tuple[np.ndarray, int, bool]:
    """Plain Gauss-Newton iteration as written in the paper.

    Returns ``(params, iterations, converged)``.  Raises
    :class:`ConvergenceError` when the normal equations become singular and
    no progress can be made.
    """
    params = np.asarray(initial_params, dtype=np.float64).copy()
    if jacobian_fn is None:
        jacobian_fn = lambda p: numeric_jacobian(residual_fn, p)  # noqa: E731

    previous_cost = float(np.sum(residual_fn(params) ** 2))
    for iteration in range(1, max_iterations + 1):
        residuals = residual_fn(params)
        jacobian = jacobian_fn(params)
        if not np.all(np.isfinite(jacobian)) or not np.all(np.isfinite(residuals)):
            raise ConvergenceError("Gauss-Newton produced non-finite residuals or Jacobian", iteration)
        gram = jacobian.T @ jacobian
        gradient = jacobian.T @ residuals
        try:
            step = np.linalg.solve(gram, gradient)
        except np.linalg.LinAlgError:
            step, *_ = np.linalg.lstsq(gram, gradient, rcond=None)
        params = params - step
        cost = float(np.sum(residual_fn(params) ** 2))
        if not np.isfinite(cost):
            raise ConvergenceError("Gauss-Newton diverged to a non-finite cost", iteration)
        if abs(previous_cost - cost) <= tolerance * max(previous_cost, 1e-30):
            return params, iteration, True
        previous_cost = cost
    return params, max_iterations, False


def levenberg_marquardt(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    initial_params: np.ndarray,
    jacobian_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-12,
    initial_damping: float = 1e-3,
) -> tuple[np.ndarray, int, bool]:
    """Levenberg-Marquardt: damped Gauss-Newton with adaptive damping.

    Returns ``(params, iterations, converged)``.
    """
    params = np.asarray(initial_params, dtype=np.float64).copy()
    if jacobian_fn is None:
        jacobian_fn = lambda p: numeric_jacobian(residual_fn, p)  # noqa: E731

    damping = initial_damping
    residuals = residual_fn(params)
    if not np.all(np.isfinite(residuals)):
        raise ConvergenceError("initial parameters give non-finite residuals", 0)
    cost = float(np.sum(residuals**2))

    for iteration in range(1, max_iterations + 1):
        jacobian = jacobian_fn(params)
        if not np.all(np.isfinite(jacobian)):
            raise ConvergenceError("Levenberg-Marquardt produced a non-finite Jacobian", iteration)
        gram = jacobian.T @ jacobian
        gradient = jacobian.T @ residuals

        improved = False
        for _ in range(50):  # inner damping adjustment loop
            damped = gram + damping * np.diag(np.clip(np.diag(gram), 1e-12, None))
            try:
                step = np.linalg.solve(damped, gradient)
            except np.linalg.LinAlgError:
                damping *= 10.0
                continue
            candidate = params - step
            candidate_residuals = residual_fn(candidate)
            if not np.all(np.isfinite(candidate_residuals)):
                damping *= 10.0
                continue
            candidate_cost = float(np.sum(candidate_residuals**2))
            if candidate_cost < cost:
                improvement = cost - candidate_cost
                params = candidate
                residuals = candidate_residuals
                cost = candidate_cost
                damping = max(damping / 10.0, 1e-12)
                improved = True
                if improvement <= tolerance * max(cost, 1e-30):
                    return params, iteration, True
                break
            damping *= 10.0
        if not improved:
            # Damping exhausted without improvement: treat as converged to a
            # (possibly local) minimum, per the paper's observation that the
            # user owns convergence concerns.
            return params, iteration, True
    return params, max_iterations, False


def fit_nonlinear_family(
    family: ModelFamily,
    inputs: Mapping[str, np.ndarray] | np.ndarray,
    y: np.ndarray,
    output_name: str = "y",
    initial_params: np.ndarray | None = None,
    method: str = "lm",
    max_iterations: int = 200,
) -> FitResult:
    """Fit any model family by iterative least squares.

    ``method`` is ``"lm"`` (Levenberg-Marquardt, default) or ``"gn"``
    (plain Gauss-Newton, as written in the paper).
    """
    y = np.asarray(y, dtype=np.float64)
    if len(y) <= family.num_params:
        raise InsufficientDataError(
            f"need more than {family.num_params} observations to fit {family.name!r}, got {len(y)}"
        )

    def residual_fn(params: np.ndarray) -> np.ndarray:
        return family.predict(inputs, params) - y

    jacobian_fn = None
    if family.jacobian(inputs, family.initial_guess(inputs, y)) is not None:
        jacobian_fn = lambda params: family.jacobian(inputs, params)  # noqa: E731

    start = np.asarray(initial_params, dtype=np.float64) if initial_params is not None else family.initial_guess(inputs, y)
    if len(start) != family.num_params:
        raise FittingError(
            f"initial parameter vector has {len(start)} entries, family {family.name!r} needs {family.num_params}"
        )

    if method == "gn":
        params, iterations, converged = gauss_newton(
            residual_fn, start, jacobian_fn, max_iterations=max_iterations
        )
    elif method == "lm":
        params, iterations, converged = levenberg_marquardt(
            residual_fn, start, jacobian_fn, max_iterations=max_iterations
        )
    else:
        raise FittingError(f"unknown optimisation method {method!r}; use 'lm' or 'gn'")

    predictions = family.predict(inputs, params)
    residuals = y - predictions
    covariance = _covariance_from_jacobian(family, inputs, params, residuals)

    input_names = tuple(family.input_names) if isinstance(inputs, np.ndarray) else tuple(inputs)
    return FitResult(
        family=family,
        params=params,
        input_names=input_names,
        output_name=output_name,
        n_observations=len(y),
        residual_standard_error=residual_standard_error(residuals, family.num_params),
        r_squared=r_squared(y, predictions),
        adjusted_r_squared=adjusted_r_squared(y, predictions, family.num_params),
        sum_squared_residuals=float(np.sum(residuals**2)),
        covariance=covariance,
        iterations=iterations,
        converged=converged,
        extra={"method": method},
    )


def _covariance_from_jacobian(
    family: ModelFamily,
    inputs: Mapping[str, np.ndarray] | np.ndarray,
    params: np.ndarray,
    residuals: np.ndarray,
) -> np.ndarray | None:
    """Estimate the parameter covariance as sigma^2 (JᵀJ)⁻¹ at the optimum."""
    jacobian = family.jacobian(inputs, params)
    if jacobian is None:
        def residual_fn(p: np.ndarray) -> np.ndarray:
            return family.predict(inputs, p)

        jacobian = numeric_jacobian(residual_fn, params)
    dof = len(residuals) - family.num_params
    if dof <= 0:
        return None
    sigma2 = float(np.sum(residuals**2) / dof)
    try:
        return sigma2 * np.linalg.inv(jacobian.T @ jacobian)
    except np.linalg.LinAlgError:
        return None
