"""Piecewise polynomial fitting.

FunctionDB (Thiagarajan & Madden, SIGMOD'08), one of the systems the paper
compares itself against, represents data as *piecewise polynomial functions*.
This module provides that representation both as a baseline
(:mod:`repro.baselines.functiondb`) and as an extra model family available
to the harvester for data with regime changes (e.g. sources with spectral
turn-overs).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import FittingError, InsufficientDataError
from repro.fitting.metrics import adjusted_r_squared, r_squared, residual_standard_error
from repro.fitting.model import FitResult, ModelFamily

__all__ = ["Segment", "PiecewisePolynomial", "fit_piecewise"]


@dataclass(frozen=True)
class Segment:
    """One polynomial piece over ``[lower, upper)`` of the input domain."""

    lower: float
    upper: float
    coefficients: tuple[float, ...]  # c0 + c1*x + c2*x^2 + ...

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        result = np.zeros_like(x)
        for power, coefficient in enumerate(self.coefficients):
            result += coefficient * x**power
        return result

    def contains(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return (x >= self.lower) & (x < self.upper)


class PiecewisePolynomial(ModelFamily):
    """A fitted piecewise polynomial over one input variable.

    Unlike the other families this one carries its fitted segments directly
    (the parameter vector is the concatenation of all segment coefficients);
    it is produced by :func:`fit_piecewise` rather than the generic fitters.
    """

    name = "piecewise"

    def __init__(self, segments: list[Segment], degree: int) -> None:
        if not segments:
            raise FittingError("a piecewise model needs at least one segment")
        self.segments = sorted(segments, key=lambda s: s.lower)
        self.degree = degree
        self.param_names = tuple(
            f"seg{i}_c{j}" for i in range(len(self.segments)) for j in range(degree + 1)
        )

    def predict(self, inputs, params=None):  # params ignored: segments hold the coefficients
        x = _input_array(inputs)
        result = np.full(len(x), np.nan)
        for segment in self.segments:
            mask = segment.contains(x)
            result[mask] = segment.evaluate(x[mask])
        # Points beyond the last boundary use the nearest segment (constant extrapolation).
        below = x < self.segments[0].lower
        above = x >= self.segments[-1].upper
        result[below] = self.segments[0].evaluate(x[below])
        result[above] = self.segments[-1].evaluate(x[above])
        return result

    @property
    def flat_params(self) -> np.ndarray:
        return np.array(
            [coefficient for segment in self.segments for coefficient in segment.coefficients]
        )

    def describe(self) -> str:
        return f"piecewise degree-{self.degree} polynomial with {len(self.segments)} segments"

    def byte_size(self) -> int:
        """Nominal storage cost: boundaries + coefficients, 8 bytes each."""
        return len(self.segments) * (2 + self.degree + 1) * 8


def _input_array(inputs: Mapping[str, np.ndarray] | np.ndarray) -> np.ndarray:
    if isinstance(inputs, np.ndarray):
        array = np.asarray(inputs, dtype=np.float64)
        return array[:, 0] if array.ndim > 1 else array
    return np.asarray(next(iter(inputs.values())), dtype=np.float64)


def fit_piecewise(
    x: np.ndarray,
    y: np.ndarray,
    num_segments: int = 4,
    degree: int = 1,
    output_name: str = "y",
    input_name: str = "x",
) -> FitResult:
    """Fit a piecewise polynomial with equi-width segments over the x-range."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    mask = np.isfinite(x) & np.isfinite(y)
    x, y = x[mask], y[mask]
    if len(x) < (degree + 1) * num_segments:
        raise InsufficientDataError(
            f"need at least {(degree + 1) * num_segments} observations for "
            f"{num_segments} degree-{degree} segments, got {len(x)}"
        )
    if num_segments < 1:
        raise FittingError("num_segments must be at least 1")

    lo, hi = float(np.min(x)), float(np.max(x))
    if hi <= lo:
        hi = lo + 1.0
    boundaries = np.linspace(lo, hi, num_segments + 1)
    boundaries[-1] = np.nextafter(boundaries[-1], np.inf)  # make the last segment right-inclusive

    segments: list[Segment] = []
    for i in range(num_segments):
        lower, upper = float(boundaries[i]), float(boundaries[i + 1])
        in_segment = (x >= lower) & (x < upper)
        xs, ys = x[in_segment], y[in_segment]
        if len(np.unique(xs)) >= degree + 1:
            with warnings.catch_warnings():
                # Segments with few distinct x values are expected (e.g. the
                # four LOFAR frequency bands); polyfit handles them but warns.
                warnings.simplefilter("ignore")
                coefficients = np.polyfit(xs, ys, degree)[::-1]  # ascending powers
        elif len(xs) > 0:
            coefficients = np.zeros(degree + 1)
            coefficients[0] = float(np.mean(ys))
        else:
            coefficients = np.zeros(degree + 1)
            coefficients[0] = float(np.mean(y))
        segments.append(Segment(lower=lower, upper=upper, coefficients=tuple(float(c) for c in coefficients)))

    family = PiecewisePolynomial(segments, degree)
    predictions = family.predict(x)
    residuals = y - predictions
    num_params = family.num_params

    return FitResult(
        family=family,
        params=family.flat_params,
        input_names=(input_name,),
        output_name=output_name,
        n_observations=len(y),
        residual_standard_error=residual_standard_error(residuals, num_params),
        r_squared=r_squared(y, predictions),
        adjusted_r_squared=adjusted_r_squared(y, predictions, num_params),
        sum_squared_residuals=float(np.sum(residuals**2)),
        covariance=None,
        iterations=0,
        converged=True,
        extra={"num_segments": num_segments, "degree": degree},
    )
