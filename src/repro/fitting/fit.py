"""Unified fitting entry point.

:func:`fit_model` dispatches to the analytic OLS solver for linear-in-
parameters families and to Levenberg-Marquardt / Gauss-Newton otherwise,
so callers (the harvester, the grouped fitter, the baselines) never need to
care which algorithm applies.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import InsufficientDataError
from repro.fitting.linear import fit_linear_family
from repro.fitting.model import FitResult, ModelFamily
from repro.fitting.nonlinear import fit_nonlinear_family

__all__ = ["fit_model", "clean_observations"]


def clean_observations(
    inputs: Mapping[str, np.ndarray], y: np.ndarray
) -> tuple[dict[str, np.ndarray], np.ndarray]:
    """Drop observations where any input or the output is NaN / non-finite.

    Real measurement tables (and our synthetic LOFAR data) contain NULLs and
    interference spikes encoded as NaN; the fitting process simply ignores
    those rows, matching what every statistical environment does by default.
    """
    y = np.asarray(y, dtype=np.float64)
    mask = np.isfinite(y)
    arrays = {name: np.asarray(values, dtype=np.float64) for name, values in inputs.items()}
    for values in arrays.values():
        mask &= np.isfinite(values)
    return {name: values[mask] for name, values in arrays.items()}, y[mask]


def fit_model(
    family: ModelFamily,
    inputs: Mapping[str, np.ndarray] | np.ndarray,
    y: np.ndarray,
    output_name: str = "y",
    weights: np.ndarray | None = None,
    method: str = "lm",
    initial_params: np.ndarray | None = None,
    drop_nonfinite: bool = True,
) -> FitResult:
    """Fit ``family`` to the observations, choosing the right algorithm.

    Parameters
    ----------
    family:
        The model family to fit.
    inputs:
        Mapping of input-column name to 1-D array (or a bare array for
        single-input families).
    y:
        Observed outputs.
    output_name:
        Name of the output column (recorded in the FitResult).
    weights:
        Optional per-observation weights (linear families only).
    method:
        ``"lm"`` or ``"gn"`` for non-linear families.
    initial_params:
        Optional starting point for non-linear optimisation.
    drop_nonfinite:
        Silently drop rows with NaN/inf values before fitting.
    """
    if isinstance(inputs, np.ndarray):
        array = np.asarray(inputs, dtype=np.float64)
        if array.ndim == 1:
            inputs = {family.input_names[0]: array}
        else:
            inputs = {name: array[:, i] for i, name in enumerate(family.input_names)}

    if drop_nonfinite:
        cleaned_inputs, cleaned_y = clean_observations(inputs, y)
        if weights is not None:
            # Recompute the mask to subset the weights consistently.
            y_arr = np.asarray(y, dtype=np.float64)
            mask = np.isfinite(y_arr)
            for values in inputs.values():
                mask &= np.isfinite(np.asarray(values, dtype=np.float64))
            weights = np.asarray(weights, dtype=np.float64)[mask]
        inputs, y = cleaned_inputs, cleaned_y

    if len(np.asarray(y)) == 0:
        raise InsufficientDataError("no finite observations left to fit")

    if family.is_linear:
        return fit_linear_family(family, inputs, y, output_name=output_name, weights=weights)
    return fit_nonlinear_family(
        family,
        inputs,
        y,
        output_name=output_name,
        initial_params=initial_params,
        method=method,
    )
