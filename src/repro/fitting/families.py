"""Built-in model families.

The paper's motivating model is the radio-astronomy power law
``I = p * nu**alpha``; the other families cover the regularities the
TPC-DS-lite generator plants (linear relationships, polynomial trends,
seasonal/sinusoidal curves, exponential decay) and the piecewise functions
the FunctionDB baseline needs.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import FittingError, InsufficientDataError
from repro.fitting.model import ModelFamily

__all__ = [
    "PowerLaw",
    "Exponential",
    "LinearModel",
    "Polynomial",
    "Constant",
    "Logistic",
    "Sinusoid",
    "family_by_name",
    "FAMILY_REGISTRY",
]


def _single_input(inputs: Mapping[str, np.ndarray] | np.ndarray, name: str = "x") -> np.ndarray:
    """Extract a single input array regardless of how the inputs were passed."""
    if isinstance(inputs, np.ndarray):
        array = np.asarray(inputs, dtype=np.float64)
        return array[:, 0] if array.ndim > 1 else array
    if name in inputs:
        return np.asarray(inputs[name], dtype=np.float64)
    if len(inputs) == 1:
        return np.asarray(next(iter(inputs.values())), dtype=np.float64)
    raise FittingError(f"expected a single input column named {name!r}, got {sorted(inputs)}")


class PowerLaw(ModelFamily):
    """``y = p * x**alpha`` — the paper's spectral-index model (§2).

    The family is non-linear in (p, alpha) but linearises under log-log
    transformation, which is how :meth:`initial_guess` seeds the optimiser
    (and how the closed-form fallback fit works for strictly positive data).
    """

    name = "powerlaw"
    param_names = ("p", "alpha")

    def predict(self, inputs, params):
        x = _single_input(inputs)
        p, alpha = params
        with np.errstate(all="ignore"):
            return p * np.power(x, alpha)

    def initial_guess(self, inputs, y):
        x = _single_input(inputs)
        y = np.asarray(y, dtype=np.float64)
        mask = (x > 0) & (y > 0)
        if mask.sum() < 2:
            return np.array([1.0, 1.0])
        log_x = np.log(x[mask])
        log_y = np.log(y[mask])
        slope, intercept = np.polyfit(log_x, log_y, 1)
        return np.array([float(np.exp(intercept)), float(slope)])

    def jacobian(self, inputs, params):
        x = _single_input(inputs)
        p, alpha = params
        with np.errstate(all="ignore"):
            x_alpha = np.power(x, alpha)
            d_p = x_alpha
            d_alpha = np.where(x > 0, p * x_alpha * np.log(np.where(x > 0, x, 1.0)), 0.0)
        return np.column_stack([d_p, d_alpha])

    def describe(self) -> str:
        return "p * x**alpha"


class Exponential(ModelFamily):
    """``y = a * exp(b * x)`` — exponential growth/decay."""

    name = "exponential"
    param_names = ("a", "b")

    def predict(self, inputs, params):
        x = _single_input(inputs)
        a, b = params
        with np.errstate(all="ignore"):
            return a * np.exp(b * x)

    def initial_guess(self, inputs, y):
        x = _single_input(inputs)
        y = np.asarray(y, dtype=np.float64)
        mask = y > 0
        if mask.sum() < 2:
            return np.array([1.0, 0.0])
        slope, intercept = np.polyfit(x[mask], np.log(y[mask]), 1)
        return np.array([float(np.exp(intercept)), float(slope)])

    def jacobian(self, inputs, params):
        x = _single_input(inputs)
        a, b = params
        with np.errstate(all="ignore"):
            exp_bx = np.exp(b * x)
        return np.column_stack([exp_bx, a * x * exp_bx])

    def describe(self) -> str:
        return "a * exp(b * x)"


class LinearModel(ModelFamily):
    """Multiple linear regression ``y = b0 + b1*x1 + ... + bk*xk``."""

    name = "linear"
    is_linear = True

    def __init__(self, input_names: tuple[str, ...] = ("x",), intercept: bool = True) -> None:
        self._input_names = tuple(input_names)
        self.intercept = intercept
        names = []
        if intercept:
            names.append("intercept")
        names.extend(f"beta_{name}" for name in self._input_names)
        self.param_names = tuple(names)

    @property
    def input_names(self) -> tuple[str, ...]:
        return self._input_names

    def design_matrix(self, inputs):
        if isinstance(inputs, np.ndarray):
            array = np.asarray(inputs, dtype=np.float64)
            columns = array.reshape(-1, 1) if array.ndim == 1 else array
        else:
            columns = np.column_stack(
                [np.asarray(inputs[name], dtype=np.float64) for name in self._input_names]
            )
        if self.intercept:
            return np.column_stack([np.ones(len(columns)), columns])
        return columns

    def predict(self, inputs, params):
        return self.design_matrix(inputs) @ np.asarray(params, dtype=np.float64)

    def initial_guess(self, inputs, y):
        return np.zeros(self.num_params)

    def describe(self) -> str:
        terms = []
        if self.intercept:
            terms.append("b0")
        terms.extend(f"b{i+1}*{name}" for i, name in enumerate(self._input_names))
        return " + ".join(terms)


class Polynomial(ModelFamily):
    """Polynomial of a fixed degree in one variable (linear in parameters)."""

    name = "polynomial"
    is_linear = True

    def __init__(self, degree: int = 2) -> None:
        if degree < 0:
            raise FittingError("polynomial degree must be non-negative")
        self.degree = degree
        self.param_names = tuple(f"c{i}" for i in range(degree + 1))

    def design_matrix(self, inputs):
        x = _single_input(inputs)
        return np.column_stack([x**i for i in range(self.degree + 1)])

    def predict(self, inputs, params):
        return self.design_matrix(inputs) @ np.asarray(params, dtype=np.float64)

    def initial_guess(self, inputs, y):
        return np.zeros(self.num_params)

    def describe(self) -> str:
        return " + ".join(f"c{i}*x^{i}" if i else "c0" for i in range(self.degree + 1))


class Constant(ModelFamily):
    """``y = c`` — the trivial one-parameter model, used by the F-test baseline."""

    name = "constant"
    is_linear = True
    param_names = ("c",)

    def design_matrix(self, inputs):
        x = _single_input(inputs)
        return np.ones((len(x), 1))

    def predict(self, inputs, params):
        x = _single_input(inputs)
        return np.full(len(x), float(params[0]))

    def initial_guess(self, inputs, y):
        y = np.asarray(y, dtype=np.float64)
        if len(y) == 0:
            raise InsufficientDataError("cannot fit a constant to zero observations")
        return np.array([float(np.mean(y))])

    def describe(self) -> str:
        return "c"


class Logistic(ModelFamily):
    """``y = L / (1 + exp(-k * (x - x0)))`` — saturating growth."""

    name = "logistic"
    param_names = ("L", "k", "x0")

    def predict(self, inputs, params):
        x = _single_input(inputs)
        L, k, x0 = params
        with np.errstate(all="ignore"):
            return L / (1.0 + np.exp(-k * (x - x0)))

    def initial_guess(self, inputs, y):
        x = _single_input(inputs)
        y = np.asarray(y, dtype=np.float64)
        L = float(np.max(y)) * 1.05 if len(y) else 1.0
        if L <= 0:
            L = 1.0
        x0 = float(np.median(x)) if len(x) else 0.0
        return np.array([L, 1.0, x0])

    def jacobian(self, inputs, params):
        x = _single_input(inputs)
        L, k, x0 = params
        with np.errstate(all="ignore"):
            z = np.exp(-k * (x - x0))
            denom = (1.0 + z) ** 2
            d_L = 1.0 / (1.0 + z)
            d_k = L * (x - x0) * z / denom
            d_x0 = -L * k * z / denom
        return np.column_stack([d_L, d_k, d_x0])

    def describe(self) -> str:
        return "L / (1 + exp(-k*(x - x0)))"


class Sinusoid(ModelFamily):
    """``y = a * sin(omega * x + phi) + c`` — seasonal / periodic signals."""

    name = "sinusoid"
    param_names = ("a", "omega", "phi", "c")

    def predict(self, inputs, params):
        x = _single_input(inputs)
        a, omega, phi, c = params
        return a * np.sin(omega * x + phi) + c

    def initial_guess(self, inputs, y):
        x = _single_input(inputs)
        y = np.asarray(y, dtype=np.float64)
        if len(y) < 4:
            return np.array([1.0, 1.0, 0.0, 0.0])
        amplitude = float((np.max(y) - np.min(y)) / 2.0) or 1.0
        offset = float(np.mean(y))
        omega = self._dominant_omega(x, y, offset)
        return np.array([amplitude, omega, 0.0, offset])

    @staticmethod
    def _dominant_omega(x: np.ndarray, y: np.ndarray, offset: float) -> float:
        """Estimate the angular frequency from the periodogram.

        Sinusoid fitting is multi-modal in omega, so a good starting
        frequency matters far more than the other parameters.  Observations
        are sorted and treated as (approximately) uniformly sampled; the FFT
        bin with the largest magnitude gives the dominant frequency.
        """
        order = np.argsort(x)
        xs, ys = x[order], y[order] - offset
        span = float(xs[-1] - xs[0])
        if span <= 0 or len(xs) < 8:
            return 1.0
        spectrum = np.abs(np.fft.rfft(ys))
        if len(spectrum) < 2:
            return 2.0 * np.pi / span
        dominant_bin = int(np.argmax(spectrum[1:]) + 1)
        frequency = dominant_bin / span
        return float(2.0 * np.pi * frequency)

    def jacobian(self, inputs, params):
        x = _single_input(inputs)
        a, omega, phi, c = params
        inner = omega * x + phi
        return np.column_stack([np.sin(inner), a * x * np.cos(inner), a * np.cos(inner), np.ones(len(x))])

    def describe(self) -> str:
        return "a * sin(omega*x + phi) + c"


#: Registry used by the formula parser: family name -> constructor.
FAMILY_REGISTRY = {
    "powerlaw": PowerLaw,
    "exponential": Exponential,
    "linear": LinearModel,
    "polynomial": Polynomial,
    "poly": Polynomial,
    "constant": Constant,
    "logistic": Logistic,
    "sinusoid": Sinusoid,
}


def family_by_name(name: str, **kwargs) -> ModelFamily:
    """Instantiate a registered model family by name."""
    key = name.lower()
    if key not in FAMILY_REGISTRY:
        raise FittingError(f"unknown model family {name!r}; known: {sorted(FAMILY_REGISTRY)}")
    return FAMILY_REGISTRY[key](**kwargs)
