"""Statistical model-fitting substrate.

Implements the two fitting regimes §3 of the paper describes — analytic
ordinary least squares for linear models and Gauss-Newton / Levenberg-
Marquardt for the general non-linear case — plus model families, formulas,
grouped (per-key) fitting, robust fitting, piecewise polynomials and the
goodness-of-fit metrics used to judge captured models.
"""

from repro.fitting.families import (
    Constant,
    Exponential,
    LinearModel,
    Logistic,
    Polynomial,
    PowerLaw,
    Sinusoid,
    family_by_name,
)
from repro.fitting.fit import fit_model
from repro.fitting.formulas import ParsedFormula, parse_formula
from repro.fitting.grouped import GroupedFitResult, GroupedFitter, fit_grouped
from repro.fitting.linear import fit_ols, fit_linear_family, solve_normal_equations
from repro.fitting.metrics import (
    FTestResult,
    adjusted_r_squared,
    aic,
    bic,
    f_test_against_constant,
    f_test_nested,
    r_squared,
    residual_standard_error,
)
from repro.fitting.model import FitResult, ModelFamily
from repro.fitting.nonlinear import fit_nonlinear_family, gauss_newton, levenberg_marquardt
from repro.fitting.piecewise import PiecewisePolynomial, Segment, fit_piecewise
from repro.fitting.predict import PredictionInterval, predict_interval
from repro.fitting.robust import fit_robust

__all__ = [
    "Constant",
    "Exponential",
    "FTestResult",
    "FitResult",
    "GroupedFitResult",
    "GroupedFitter",
    "LinearModel",
    "Logistic",
    "ModelFamily",
    "ParsedFormula",
    "PiecewisePolynomial",
    "Polynomial",
    "PowerLaw",
    "PredictionInterval",
    "Segment",
    "Sinusoid",
    "adjusted_r_squared",
    "aic",
    "bic",
    "f_test_against_constant",
    "f_test_nested",
    "family_by_name",
    "fit_grouped",
    "fit_linear_family",
    "fit_model",
    "fit_nonlinear_family",
    "fit_ols",
    "fit_piecewise",
    "fit_robust",
    "gauss_newton",
    "levenberg_marquardt",
    "parse_formula",
    "predict_interval",
    "r_squared",
    "residual_standard_error",
    "solve_normal_equations",
]
