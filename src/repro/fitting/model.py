"""Core fitting abstractions: model families and fit results.

A *model family* is the "arbitrary function of the input variables"
(§3 of the paper) together with its "constant but unknown parameters".  A
*fit result* pairs a family with estimated parameter values and the
goodness-of-fit measures the paper requires (residual standard error, R²),
and knows how to predict new outputs — which is everything the approximate
query engine needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.errors import FittingError, InsufficientDataError

__all__ = ["ModelFamily", "FitResult", "design_matrix"]


class ModelFamily:
    """Base class for model families (power law, linear, polynomial, ...).

    Subclasses must define :attr:`param_names` and implement
    :meth:`predict`.  Families that admit an analytic least-squares solution
    set :attr:`is_linear` to True and implement :meth:`design_matrix`;
    non-linear families provide :meth:`initial_guess` (and, optionally,
    :meth:`jacobian`) for the iterative optimisers.
    """

    #: Short machine name, e.g. ``"powerlaw"``.
    name: str = "abstract"
    #: Ordered parameter names, e.g. ``("p", "alpha")``.
    param_names: tuple[str, ...] = ()
    #: True when the family is linear in its parameters.
    is_linear: bool = False

    @property
    def num_params(self) -> int:
        return len(self.param_names)

    # -- prediction -----------------------------------------------------------

    def predict(self, inputs: Mapping[str, np.ndarray] | np.ndarray, params: np.ndarray) -> np.ndarray:
        """Evaluate the model function for the given inputs and parameters."""
        raise NotImplementedError

    # -- linear families --------------------------------------------------------

    def design_matrix(self, inputs: Mapping[str, np.ndarray] | np.ndarray) -> np.ndarray:
        """Return the design matrix X such that ``predict = X @ params``."""
        raise FittingError(f"model family {self.name!r} is not linear in its parameters")

    # -- non-linear families ------------------------------------------------------

    def initial_guess(self, inputs: Mapping[str, np.ndarray] | np.ndarray, y: np.ndarray) -> np.ndarray:
        """A starting parameter vector for iterative optimisation."""
        return np.ones(self.num_params, dtype=np.float64)

    def jacobian(self, inputs: Mapping[str, np.ndarray] | np.ndarray, params: np.ndarray) -> np.ndarray | None:
        """Analytic Jacobian of the prediction w.r.t. the parameters, or None."""
        return None

    # -- bookkeeping -----------------------------------------------------------------

    @property
    def input_names(self) -> tuple[str, ...]:
        """Names of the model's input variables, when the family fixes them."""
        return ("x",)

    def param_dict(self, params: np.ndarray) -> dict[str, float]:
        return {name: float(value) for name, value in zip(self.param_names, params)}

    def describe(self) -> str:
        """Human-readable description of the model equation."""
        return f"{self.name}({', '.join(self.param_names)})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ModelFamily {self.name} params={self.param_names}>"


def design_matrix(inputs: Mapping[str, np.ndarray] | np.ndarray, columns: Sequence[str] | None = None) -> np.ndarray:
    """Stack named input arrays into a 2-D matrix (column per input)."""
    if isinstance(inputs, np.ndarray):
        array = np.asarray(inputs, dtype=np.float64)
        return array.reshape(-1, 1) if array.ndim == 1 else array
    names = list(columns) if columns is not None else list(inputs)
    if not names:
        raise InsufficientDataError("no input columns supplied")
    return np.column_stack([np.asarray(inputs[name], dtype=np.float64) for name in names])


@dataclass
class FitResult:
    """A fitted model: family, parameter estimates and quality metrics."""

    family: ModelFamily
    params: np.ndarray
    #: Names of the input columns, in the order the family expects them.
    input_names: tuple[str, ...]
    output_name: str
    n_observations: int
    residual_standard_error: float
    r_squared: float
    adjusted_r_squared: float
    sum_squared_residuals: float
    #: Covariance matrix of the parameter estimates, when available.
    covariance: np.ndarray | None = None
    #: Number of optimiser iterations (0 for analytic solutions).
    iterations: int = 0
    converged: bool = True
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def param_dict(self) -> dict[str, float]:
        return self.family.param_dict(self.params)

    @property
    def degrees_of_freedom(self) -> int:
        return max(self.n_observations - self.family.num_params, 0)

    def predict(self, inputs: Mapping[str, np.ndarray] | np.ndarray) -> np.ndarray:
        """Predict outputs for new inputs using the fitted parameters."""
        named = self._as_named(inputs)
        return self.family.predict(named, self.params)

    def predict_with_error(
        self, inputs: Mapping[str, np.ndarray] | np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict outputs together with a per-point error estimate.

        The error estimate is the residual standard error of the fit — the
        quantity the paper proposes to attach to approximate answers ("the
        value is calculated using the model ... and returned with error
        bounds").
        """
        predictions = self.predict(inputs)
        errors = np.full_like(predictions, self.residual_standard_error, dtype=np.float64)
        return predictions, errors

    def param_standard_errors(self) -> dict[str, float] | None:
        """Standard errors of the parameter estimates, when covariance is known."""
        if self.covariance is None:
            return None
        variances = np.clip(np.diag(self.covariance), 0.0, None)
        return {
            name: float(np.sqrt(var)) for name, var in zip(self.family.param_names, variances)
        }

    def _as_named(self, inputs: Mapping[str, np.ndarray] | np.ndarray) -> dict[str, np.ndarray]:
        if isinstance(inputs, np.ndarray):
            array = np.asarray(inputs, dtype=np.float64)
            if array.ndim == 1:
                if len(self.input_names) != 1:
                    raise FittingError(
                        f"model expects {len(self.input_names)} inputs {self.input_names}, got a 1-D array"
                    )
                return {self.input_names[0]: array}
            if array.shape[1] != len(self.input_names):
                raise FittingError(
                    f"model expects {len(self.input_names)} input columns, got {array.shape[1]}"
                )
            return {name: array[:, i] for i, name in enumerate(self.input_names)}
        missing = [name for name in self.input_names if name not in inputs]
        if missing:
            raise FittingError(f"missing input columns {missing}; expected {list(self.input_names)}")
        return {name: np.asarray(inputs[name], dtype=np.float64) for name in self.input_names}

    def summary(self) -> str:
        """A short, human-readable fit summary."""
        params = ", ".join(f"{k}={v:.6g}" for k, v in self.param_dict.items())
        return (
            f"{self.output_name} ~ {self.family.describe()} on {list(self.input_names)}: "
            f"{params}; n={self.n_observations}, R2={self.r_squared:.4f}, "
            f"RSE={self.residual_standard_error:.6g}"
        )
