"""Partitioned parallel execution.

Tables are sharded into contiguous row-range partitions (the PR-5 ``.npz``
segment manifest doubles as the partition map), scan/filter/group-by/join
kernels run per partition on a worker pool, and the per-partition partials
merge associatively — ``bincount``/``reduceat`` aggregate states via the
parallel (Chan) update, joins and plain row streams by concatenation in
partition order, which reproduces the single-partition operator semantics
exactly (group first-occurrence order, left-row-major join order).

Range predicates prune non-overlapping partitions against per-partition
min/max statistics *before* any worker is dispatched, so a selective query
never pays simulated IO for shards it provably cannot touch.
"""

from repro.parallel.engine import ParallelQueryEngine
from repro.parallel.partition import (
    PARTITION_META_KEY,
    build_partition_map,
    partition_map_from_segments,
    partition_entries,
)
from repro.parallel.pool import WorkerPool
from repro.parallel.pruning import prune_partitions

__all__ = [
    "PARTITION_META_KEY",
    "ParallelQueryEngine",
    "WorkerPool",
    "build_partition_map",
    "partition_map_from_segments",
    "partition_entries",
    "prune_partitions",
]
