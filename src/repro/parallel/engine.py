"""The partitioned-execution coordinator.

:class:`ParallelQueryEngine` sits in front of the SQL executor's normal
root execution.  Given a planned SELECT it decides, per query, whether the
partitioned path applies and pays:

1. **Decompose** the fixed planner pipeline into *uppers* (Limit / Sort /
   Distinct / Project / HAVING-Filter and the Aggregate) and the *lower*
   scan→join→WHERE pipeline that is partition-local.
2. **Pin** the base table (the scan's pin-aware binding) and validate the
   committed partition map against the pinned row count — MVCC snapshots
   see the map of their commit, so the partition list is consistent with
   the data for the whole query.
3. **Prune** partitions whose per-shard min/max statistics provably cannot
   satisfy the WHERE constraints, then charge simulated IO for the *kept*
   shards only (on the coordinator thread: IO scopes are thread-local, so
   worker-thread charges would never reach the query's scope).
4. **Fan out** the partition-local pipeline to the worker pool when the
   planner cost model says the dispatch overhead is paid for, serially
   otherwise (pruning alone can justify the partitioned path).
5. **Merge** partials associatively and run the uppers once on the merged
   table — upper operators are reused verbatim on a rebound shallow copy.

Anything the decomposition does not recognise — no partition map, a stale
map, subqueries of unexpected shape — returns ``None`` and the executor
falls through to the standard path, so the engine can never change
semantics, only execution strategy.
"""

from __future__ import annotations

import copy
from typing import Any, Callable

from repro.core.approx.routes.constraints import extract_constraints
from repro.core.planner.cost import CostModel
from repro.db.operators.aggregate import Aggregate
from repro.db.operators.filter import Filter
from repro.db.operators.join import HashJoin
from repro.db.operators.limit import Limit
from repro.db.operators.project import Project
from repro.db.operators.scan import MaterializedInput, TableScan
from repro.db.operators.sort import Sort
from repro.db.sql.planner import PlannedQuery, _Distinct
from repro.db.table import Table
from repro.parallel.kernels import GroupedPartial, partial_aggregate
from repro.parallel.merge import merge_global, merge_grouped, merge_tables
from repro.parallel.partition import PARTITION_META_KEY, partition_entries
from repro.parallel.pool import WorkerPool
from repro.parallel.pruning import prune_partitions

__all__ = ["ParallelQueryEngine"]

_UPPER_OPS = (Limit, Sort, _Distinct, Project)


class _Decomposed:
    """A planned query split at the partition boundary."""

    __slots__ = ("uppers", "aggregate", "where", "joins", "scan")

    def __init__(self) -> None:
        self.uppers: list[Any] = []
        self.aggregate: Aggregate | None = None
        self.where: Filter | None = None
        self.joins: list[HashJoin] = []
        self.scan: TableScan | None = None


def _decompose(planned: PlannedQuery) -> _Decomposed | None:
    """Split the fixed pipeline; None if the tree has an unexpected shape."""
    out = _Decomposed()
    op = planned.root
    while isinstance(op, _UPPER_OPS):
        out.uppers.append(op)
        op = op.child
    if isinstance(op, Filter) and isinstance(op.child, Aggregate):
        out.uppers.append(op)  # HAVING runs on the merged aggregate
        op = op.child
    if isinstance(op, Aggregate):
        out.aggregate = op
        op = op.child
    if isinstance(op, Filter):
        out.where = op
        op = op.child
    while isinstance(op, HashJoin):
        if not isinstance(op.right, (TableScan, MaterializedInput)):
            return None
        out.joins.append(op)
        op = op.left
    if not isinstance(op, TableScan):
        return None
    out.scan = op
    return out


class ParallelQueryEngine:
    """Partition-parallel execution strategy for planned SELECTs."""

    def __init__(
        self,
        catalog,
        io_model=None,
        cost_model: CostModel | None = None,
        pool: WorkerPool | None = None,
    ) -> None:
        self.catalog = catalog
        self.io_model = io_model
        self.cost_model = cost_model or CostModel()
        self.pool = pool or WorkerPool()
        self.enabled = True
        # Injected by the owning system (all optional).
        self.tracer = None
        self.metrics = None
        self.journal = None

    # -- helpers ------------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount, **labels)

    def _prunable_columns(self, base: Table, parts: _Decomposed) -> set[str]:
        """Base columns whose bare names the WHERE can only mean the base table.

        A bare column name that also exists in a join right table refers to
        the *right* side in the join output (name collisions get prefixed,
        non-collisions keep the right's bare name), so constraints on it
        must not prune base partitions.
        """
        names = set(base.schema.names)
        for join in parts.joins:
            names -= set(join.right.table.schema.names)
        return names

    # -- execution ----------------------------------------------------------

    def try_execute(self, planned: PlannedQuery) -> Table | None:
        """Execute ``planned`` partition-parallel, or None to fall through."""
        if not self.enabled:
            return None
        parts = _decompose(planned)
        if parts is None:
            return None
        scan = parts.scan
        catalog = scan.catalog if scan.catalog is not None else self.catalog
        payload = catalog.table_meta(scan.table.name, PARTITION_META_KEY)
        if not payload:
            return None
        base = scan._bind_table()
        entries = partition_entries(payload, base.num_rows)
        if entries is None or len(entries) < 2:
            return None

        constraints = extract_constraints(
            parts.where.predicate if parts.where is not None else None
        )
        kept, pruned_count = prune_partitions(
            entries, constraints.by_column, self._prunable_columns(base, parts)
        )
        kept_rows = sum(int(e["rows"]) for e in kept)
        fanout = self.cost_model.parallel_fanout(kept_rows, len(kept))
        if pruned_count == 0 and fanout is None:
            return None  # nothing saved, nothing sped up
        workers, backend = fanout if fanout is not None else (1, "thread")

        self._count("partitions_pruned_total", float(pruned_count))
        self._count("partition_tasks_total", float(len(kept)))

        # Simulated IO for the kept shards, charged on the coordinator
        # thread so the query's thread-local IO scope sees it.  Pruned
        # shards are never charged — that is the pruning win.
        if self.io_model is not None:
            for entry in kept:
                piece = base.slice(int(entry["start"]), int(entry["start"]) + int(entry["rows"]))
                self.io_model.charge_scan(piece, scan.projected_columns)

        # Join build sides materialise once, on the coordinator (charging
        # their scan IO once, exactly like the serial plan).
        rights = [join.right.execute() for join in parts.joins]

        if not kept:
            # All shards pruned: one empty partial keeps aggregate semantics
            # (COUNT(*) -> 0, SUM -> NULL) without special cases.
            kept = [{"id": -1, "start": 0, "rows": 0}]

        tasks = [self._make_task(parts, base, rights, entry) for entry in kept]
        tracer = self.tracer
        if tracer is not None and tracer.active:
            # Diagnostic mode: spans are thread-local, so traced queries run
            # their partitions serially under per-partition spans.
            partials = []
            for entry, task in zip(kept, tasks):
                with tracer.span(
                    "parallel.partition",
                    partition=int(entry["id"]),
                    start=int(entry["start"]),
                    rows=int(entry["rows"]),
                ):
                    partials.append(task())
        else:
            partials = self.pool.run_tasks(tasks, workers=workers, backend=backend)

        if parts.aggregate is not None:
            if parts.aggregate.group_by:
                merged = merge_grouped(parts.aggregate, partials)
            else:
                merged = merge_global(parts.aggregate, partials)
        else:
            merged = merge_tables(partials)

        node: Any = MaterializedInput(merged)
        for op in reversed(parts.uppers):
            rebound = copy.copy(op)
            rebound.child = node
            node = rebound
        return node.execute()

    def _make_task(
        self,
        parts: _Decomposed,
        base: Table,
        rights: list[Table],
        entry: dict[str, Any],
    ) -> Callable[[], GroupedPartial | Table]:
        """Build one partition's task: slice -> joins -> WHERE -> partial."""
        start = int(entry["start"])
        stop = start + int(entry["rows"])
        scan = parts.scan
        aggregate = parts.aggregate
        where = parts.where
        joins = parts.joins

        def task():
            piece = base.slice(start, stop)
            if scan.projected_columns is not None:
                piece = piece.select(scan.projected_columns)
            current = piece
            for join, right_table in zip(reversed(joins), reversed(rights)):
                current = HashJoin(
                    MaterializedInput(current),
                    MaterializedInput(right_table),
                    join.left_keys,
                    join.right_keys,
                ).execute()
            if where is not None:
                current = Filter(MaterializedInput(current), where.predicate).execute()
            if aggregate is not None:
                return partial_aggregate(aggregate, current)
            return current

        return task
