"""Per-partition worker kernels.

Everything in this module runs *inside* worker threads/processes.  It must
stay free of observability imports at module scope (enforced by
``tools/check_module_state.py``): workers report nothing themselves — spans,
metrics and journal entries are the coordinator's job — and a forked worker
importing the obs hub would drag mutable singletons across the fork.

The only numerics here are the *partial* aggregate states.  Everything else
(filters, joins, projections, expression evaluation) reuses the existing
operator implementations verbatim on a partition slice, so the per-shard
semantics are the single-partition semantics by construction.

A grouped partial carries, per group of its shard: the representative key
values, ``COUNT(*)``, and per input column the non-NULL count, sum, sum of
squared deviations (M2, for the parallel variance merge), min and max.
These states merge associatively (``merge.py``), which is what makes
partitioned GROUP BY exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.db.column import Column
from repro.db.operators.aggregate import Aggregate, _GroupContext, _InputState
from repro.db.operators.base import Operator
from repro.db.operators.codes import factorize_keys
from repro.db.table import Table
from repro.errors import ExecutionError

__all__ = ["GroupedPartial", "GlobalPartial", "InputPartial", "partial_aggregate", "run_subtree"]


def run_subtree(op: Operator) -> Table:
    """Execute a per-partition operator subtree (scan/filter/join pipeline)."""
    return op.execute()


@dataclass
class InputPartial:
    """Mergeable per-group reductions of one aggregate input column.

    ``m2`` is the within-shard sum of squared deviations about the shard's
    per-group mean — the quantity Chan's parallel update combines without
    the catastrophic cancellation a sum-of-squares merge would suffer.
    ``mins``/``maxs`` use ±inf as the identity for empty groups.
    """

    counts: np.ndarray
    sums: np.ndarray | None = None
    m2: np.ndarray | None = None
    mins: np.ndarray | None = None
    maxs: np.ndarray | None = None


@dataclass
class GroupedPartial:
    """Partial GROUP BY state of one partition."""

    key_columns: list[Column]
    counts_star: np.ndarray
    inputs: dict[int, InputPartial] = field(default_factory=dict)

    @property
    def num_groups(self) -> int:
        return int(len(self.counts_star))


@dataclass
class GlobalPartial:
    """Partial no-GROUP-BY aggregate state of one partition.

    ``stats`` holds per aggregate position either ``None`` (COUNT — derived
    from the counts) or ``(count, total, m2, min, max)`` over non-NULL values.
    """

    num_rows: int
    counts: list[int]
    stats: list[tuple[int, float, float, float, float] | None]


def _input_needs(aggregate: Aggregate) -> dict[int, set[str]]:
    """Which reductions each aggregate-input position requires.

    Positions sharing an identical input expression object are deduplicated
    onto the first position, mirroring the oracle's by-identity reuse.
    """
    needs: dict[int, set[str]] = {}
    canonical: dict[int, int] = {}
    for index, spec in enumerate(aggregate.aggregates):
        if spec.expression is None:
            continue
        slot = canonical.setdefault(id(spec.expression), index)
        bucket = needs.setdefault(slot, set())
        function = spec.function.lower()
        if function in ("sum", "avg"):
            bucket.add("sum")
        elif function in ("stddev", "var"):
            bucket.update(("sum", "m2"))
        elif function in ("min", "max"):
            bucket.add(function)
    return needs


def input_slot(aggregate: Aggregate, index: int) -> int:
    """The canonical input position ``index``'s reductions are stored under."""
    canonical: dict[int, int] = {}
    for position, spec in enumerate(aggregate.aggregates):
        if spec.expression is not None:
            canonical.setdefault(id(spec.expression), position)
    spec = aggregate.aggregates[index]
    assert spec.expression is not None
    return canonical[id(spec.expression)]


def partial_aggregate(aggregate: Aggregate, table: Table) -> GroupedPartial | GlobalPartial:
    """Reduce one partition slice to a mergeable partial aggregate state."""
    agg_inputs: list[Column | None] = [
        None if spec.expression is None else spec.expression.evaluate(table)
        for spec in aggregate.aggregates
    ]
    for spec, column in zip(aggregate.aggregates, agg_inputs):
        function = spec.function.lower()
        if column is None:
            if function != "count":
                raise ExecutionError(f"aggregate {function!r} requires an argument")
        elif function != "count" and not column.dtype.is_numeric:
            raise ExecutionError(f"aggregate {function!r} requires a numeric argument")

    if not aggregate.group_by:
        return _global_partial(aggregate, table, agg_inputs)
    return _grouped_partial(aggregate, table, agg_inputs)


def _global_partial(
    aggregate: Aggregate, table: Table, agg_inputs: list[Column | None]
) -> GlobalPartial:
    counts: list[int] = []
    stats: list[tuple[int, float, float, float, float] | None] = []
    for spec, column in zip(aggregate.aggregates, agg_inputs):
        if column is None:
            counts.append(table.num_rows)
            stats.append(None)
            continue
        counts.append(table.num_rows - column.null_count)
        if spec.function.lower() == "count":
            stats.append(None)
            continue
        values = column.nonnull_numpy().astype(np.float64)
        n = int(len(values))
        if n == 0:
            stats.append((0, 0.0, 0.0, np.inf, -np.inf))
            continue
        total = float(np.sum(values))
        mean = total / n
        deviations = values - mean
        stats.append(
            (n, total, float(np.dot(deviations, deviations)), float(np.min(values)), float(np.max(values)))
        )
    return GlobalPartial(num_rows=table.num_rows, counts=counts, stats=stats)


def _grouped_partial(
    aggregate: Aggregate, table: Table, agg_inputs: list[Column | None]
) -> GroupedPartial:
    key_columns = [expr.evaluate(table) for expr in aggregate.group_by]
    group_ids, first_rows, num_groups = factorize_keys(key_columns, table.num_rows)
    partial = GroupedPartial(
        key_columns=[key.take(first_rows) for key in key_columns],
        counts_star=np.bincount(group_ids, minlength=num_groups).astype(np.int64),
    )
    context = _GroupContext(group_ids, num_groups)
    for slot, needed in _input_needs(aggregate).items():
        column = agg_inputs[slot]
        assert column is not None
        state = _InputState(column, context)
        entry = InputPartial(counts=state.counts)
        if "sum" in needed:
            entry.sums = state.sums
        if "m2" in needed:
            counts = state.counts
            nonempty = counts > 0
            means = np.zeros(num_groups, dtype=np.float64)
            means[nonempty] = state.sums[nonempty] / counts[nonempty]
            deviations = state.vals - means[state.ids]
            entry.m2 = np.bincount(state.ids, weights=deviations * deviations, minlength=num_groups)
        if "min" in needed or "max" in needed:
            counts = state.counts
            nonempty = counts > 0
            starts = np.zeros(num_groups, dtype=np.int64)
            starts[1:] = np.cumsum(counts)[:-1]
            if "min" in needed:
                mins = np.full(num_groups, np.inf, dtype=np.float64)
                if nonempty.any():
                    mins[nonempty] = np.minimum.reduceat(state.sorted_vals, starts[nonempty])
                entry.mins = mins
            if "max" in needed:
                maxs = np.full(num_groups, -np.inf, dtype=np.float64)
                if nonempty.any():
                    maxs[nonempty] = np.maximum.reduceat(state.sorted_vals, starts[nonempty])
                entry.maxs = maxs
        partial.inputs[slot] = entry
    return partial
