"""Associative merges of per-partition partials.

Partials arrive in partition order (partitions are contiguous, ordered row
ranges), so:

* plain row streams merge by concatenation, which reproduces base-table row
  order — and, for joins partitioned on the probe side, the oracle's
  left-row-major output order;
* grouped aggregates merge by re-factorising the concatenated per-partial
  key rows — first-occurrence numbering over partition-major rows is
  exactly the oracle's first-occurrence numbering over the original rows;
* count/sum/min/max states combine by ``bincount``-style scatter reductions,
  and variance states via Chan's parallel update on (count, mean, M2).

Finalisation replicates ``Aggregate._grouped_one`` / ``compute_aggregate``
branch for branch (empty-group NULLs, ``ddof=1``, single-row variance 0.0),
so the merged table is schema- and semantics-identical to the oracle's.
Floating-point sums may round differently than a single-pass reduction —
the differential suite compares float aggregates with a tolerance.
"""

from __future__ import annotations

from functools import reduce
from typing import Sequence

import numpy as np

from repro.db.column import Column
from repro.db.expressions import ColumnRef
from repro.db.operators.aggregate import Aggregate
from repro.db.operators.codes import factorize_keys
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ExecutionError
from repro.parallel.kernels import GlobalPartial, GroupedPartial, input_slot

__all__ = ["merge_tables", "merge_grouped", "merge_global"]


def merge_tables(partials: Sequence[Table]) -> Table:
    """Concatenate per-partition row streams in partition order."""
    if not partials:
        raise ExecutionError("no partition results to merge")
    return reduce(lambda acc, piece: acc.concat(piece), partials)


def _key_names(aggregate: Aggregate) -> list[str]:
    return [
        expr.name if isinstance(expr, ColumnRef) else expr.output_name()
        for expr in aggregate.group_by
    ]


def merge_grouped(aggregate: Aggregate, partials: Sequence[GroupedPartial]) -> Table:
    """Merge grouped partials into the final GROUP BY result table."""
    if not partials:
        raise ExecutionError("no partition results to merge")
    num_keys = len(aggregate.group_by)
    # One "row" per (partition, group): concatenating the representative key
    # rows and re-factorising assigns merged group ids in first-occurrence
    # order, which is the oracle's group order.
    combined_keys = [
        reduce(lambda a, b: a.concat(b), (p.key_columns[k] for p in partials))
        for k in range(num_keys)
    ]
    total_partial_groups = sum(p.num_groups for p in partials)
    group_ids, first_rows, num_groups = factorize_keys(combined_keys, total_partial_groups)

    defs: list[ColumnDef] = []
    columns: dict[str, Column] = {}
    for name, key_column in zip(_key_names(aggregate), combined_keys):
        columns[name] = key_column.take(first_rows)
        defs.append(ColumnDef(name, key_column.dtype))

    counts_star = np.zeros(num_groups, dtype=np.int64)
    offsets: list[int] = []
    offset = 0
    for partial in partials:
        offsets.append(offset)
        span = partial.num_groups
        ids = group_ids[offset : offset + span]
        np.add.at(counts_star, ids, partial.counts_star)
        offset += span

    merged_inputs: dict[int, dict[str, np.ndarray]] = {}
    for index, spec in enumerate(aggregate.aggregates):
        if spec.expression is None:
            continue
        slot = input_slot(aggregate, index)
        if slot not in merged_inputs:
            merged_inputs[slot] = _merge_input(slot, partials, group_ids, offsets, num_groups)

    for spec_index, spec in enumerate(aggregate.aggregates):
        columns[spec.name] = _finalize_grouped(
            spec.function.lower(),
            None if spec.expression is None else merged_inputs[input_slot(aggregate, spec_index)],
            counts_star,
            num_groups,
            spec.output_dtype,
        )
        defs.append(ColumnDef(spec.name, spec.output_dtype))
    return Table("aggregate", Schema(defs), columns)


def _merge_input(
    slot: int,
    partials: Sequence[GroupedPartial],
    group_ids: np.ndarray,
    offsets: Sequence[int],
    num_groups: int,
) -> dict[str, np.ndarray]:
    """Scatter-merge one input column's per-partition reductions.

    Within one partial, distinct groups map to distinct merged ids, so the
    fancy-indexed updates are duplicate-free; only variance state needs the
    sequential Chan update across partials.
    """
    first = partials[0].inputs[slot]
    counts = np.zeros(num_groups, dtype=np.int64)
    sums = np.zeros(num_groups, dtype=np.float64) if first.sums is not None else None
    mins = np.full(num_groups, np.inf) if first.mins is not None else None
    maxs = np.full(num_groups, -np.inf) if first.maxs is not None else None
    has_m2 = first.m2 is not None
    mean = np.zeros(num_groups, dtype=np.float64) if has_m2 else None
    m2 = np.zeros(num_groups, dtype=np.float64) if has_m2 else None
    chan_count = np.zeros(num_groups, dtype=np.float64) if has_m2 else None

    for partial, offset in zip(partials, offsets):
        entry = partial.inputs[slot]
        span = partial.num_groups
        ids = group_ids[offset : offset + span]
        if has_m2:
            # Chan's parallel variance update, vectorised over this
            # partial's non-empty groups.
            mask = entry.counts > 0
            if mask.any():
                idx = ids[mask]
                nb = entry.counts[mask].astype(np.float64)
                mb = entry.sums[mask] / nb
                na = chan_count[idx]
                delta = mb - mean[idx]
                total = na + nb
                m2[idx] += entry.m2[mask] + delta * delta * na * nb / total
                mean[idx] += delta * nb / total
                chan_count[idx] = total
        counts[ids] += entry.counts
        if sums is not None:
            sums[ids] += entry.sums
        if mins is not None:
            np.minimum.at(mins, ids, entry.mins)
        if maxs is not None:
            np.maximum.at(maxs, ids, entry.maxs)

    merged: dict[str, np.ndarray] = {"counts": counts}
    if sums is not None:
        merged["sums"] = sums
    if has_m2:
        merged["m2"] = m2
    if mins is not None:
        merged["mins"] = mins
    if maxs is not None:
        merged["maxs"] = maxs
    return merged


def _finalize_grouped(
    function: str,
    state: dict[str, np.ndarray] | None,
    counts_star: np.ndarray,
    num_groups: int,
    output_dtype: DataType,
) -> Column:
    """Finalise one merged aggregate; branches mirror ``Aggregate._grouped_one``."""
    if state is None:
        return Column(DataType.INT64, counts_star.copy())
    if num_groups == 0:
        return Column.empty(output_dtype)
    counts = state["counts"]
    if function == "count":
        return Column(DataType.INT64, counts.copy())

    nonempty = counts > 0
    out = np.full(num_groups, np.nan, dtype=np.float64)
    if function == "sum":
        out[nonempty] = state["sums"][nonempty]
    elif function == "avg":
        out[nonempty] = state["sums"][nonempty] / counts[nonempty]
    elif function in ("stddev", "var"):
        multi = counts > 1
        out[multi] = state["m2"][multi] / (counts[multi] - 1)
        out[counts == 1] = 0.0
        if function == "stddev":
            out[multi] = np.sqrt(out[multi])
    elif function == "min":
        out[nonempty] = state["mins"][nonempty]
    elif function == "max":
        out[nonempty] = state["maxs"][nonempty]
    else:  # pragma: no cover - SUPPORTED_AGGREGATES guards this
        raise ExecutionError(f"unsupported aggregate function {function!r}")
    out[~nonempty] = np.nan
    return Column(DataType.FLOAT64, out, nonempty.copy())


def merge_global(aggregate: Aggregate, partials: Sequence[GlobalPartial]) -> Table:
    """Merge global (no GROUP BY) partials; mirrors ``compute_aggregate``."""
    if not partials:
        raise ExecutionError("no partition results to merge")
    defs: list[ColumnDef] = []
    columns: dict[str, Column] = {}
    for index, spec in enumerate(aggregate.aggregates):
        function = spec.function.lower()
        if function == "count":
            result: object = int(sum(p.counts[index] for p in partials))
        else:
            n, total, m2, mean = 0, 0.0, 0.0, 0.0
            mn, mx = np.inf, -np.inf
            for partial in partials:
                stats = partial.stats[index]
                assert stats is not None
                nb, tb, m2b, mnb, mxb = stats
                if nb == 0:
                    continue
                mb = tb / nb
                delta = mb - mean
                combined = n + nb
                m2 += m2b + delta * delta * n * nb / combined
                mean += delta * nb / combined
                n = combined
                total += tb
                mn, mx = min(mn, mnb), max(mx, mxb)
            if n == 0:
                result = None
            elif function == "sum":
                result = float(total)
            elif function == "avg":
                result = float(total / n)
            elif function == "min":
                result = float(mn)
            elif function == "max":
                result = float(mx)
            elif function in ("stddev", "var"):
                variance = m2 / (n - 1) if n > 1 else 0.0
                result = float(np.sqrt(variance)) if function == "stddev" else float(variance)
            else:  # pragma: no cover - SUPPORTED_AGGREGATES guards this
                raise ExecutionError(f"unsupported aggregate function {function!r}")
        columns[spec.name] = Column.from_values(spec.output_dtype, [result])
        defs.append(ColumnDef(spec.name, spec.output_dtype))
    return Table("aggregate", Schema(defs), columns)
