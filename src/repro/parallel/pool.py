"""Worker pool for per-partition tasks.

Thread backend by default: partition kernels are NumPy-bound and release
the GIL inside vectorised ops, and thread workers share the base table's
column buffers zero-copy (partition slices are views).  A fork-based
process backend exists for CPython builds where the GIL dominates: tasks
are parked in a module-level registry *before* the pool forks, so children
inherit the closures (and the shared NumPy buffers) copy-on-write and the
parent only ships an integer token per task.  ``_TASK_REGISTRY`` is the one
sanctioned piece of module state — allowlisted in
``tools/check_module_state.py`` and always emptied in a ``finally``.

Resilience contract (fault point ``parallel.worker.task``): a worker that
raises or hangs past ``deadline_seconds`` is retried once through the pool;
if the retry also fails, the pool *degrades* — the affected tasks run
serially on the coordinator without fault instrumentation, a
``parallel-degraded`` event is journaled and ``parallel_degraded_total``
is incremented.  A query is thus slowed by a sick worker, never failed.

Like ``kernels``, this module must not import the obs hub at module scope
(workers stay observability-free); the coordinator injects ``journal`` /
``metrics`` / ``faults`` as instance attributes.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence

__all__ = ["WorkerPool", "FAULT_POINT"]

FAULT_POINT = "parallel.worker.task"

#: Fork-inherited task closures, keyed by token; see module docstring.
_TASK_REGISTRY: dict[int, Callable[[], Any]] = {}
_registry_lock = threading.Lock()
_registry_tokens = itertools.count()


def _run_registered(token: int) -> Any:
    """Process-backend entry point: run a fork-inherited task by token."""
    return _TASK_REGISTRY[token]()


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """Runs per-partition tasks with retry-then-degrade semantics."""

    def __init__(
        self,
        max_workers: int = 4,
        backend: str = "thread",
        deadline_seconds: float = 30.0,
    ) -> None:
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown worker-pool backend {backend!r}")
        self.max_workers = max(1, int(max_workers))
        self.backend = backend
        self.deadline_seconds = deadline_seconds
        # Injected by the owning system; None keeps workers dependency-free.
        self.faults = None  # FaultInjector | None
        self.journal = None  # EventJournal | None
        self.metrics = None  # MetricsRegistry | None

    # -- internals ----------------------------------------------------------

    def _wrap(self, task: Callable[[], Any]) -> Callable[[], Any]:
        faults = self.faults
        if faults is None:
            return task

        def call() -> Any:
            faults.hit(FAULT_POINT)
            return task()

        return call

    def _count(self, name: str, amount: float = 1.0, **labels: str) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount, **labels)

    # -- execution ----------------------------------------------------------

    def run_tasks(
        self,
        tasks: Sequence[Callable[[], Any]],
        *,
        workers: int | None = None,
        backend: str | None = None,
    ) -> list[Any]:
        """Run ``tasks`` and return their results in task order."""
        tasks = list(tasks)
        if not tasks:
            return []
        backend = backend or self.backend
        workers = max(1, min(workers or self.max_workers, len(tasks)))
        if len(tasks) == 1 and self.faults is None:
            return [tasks[0]()]
        if backend == "process" and not _fork_available():
            backend = "thread"
        wrapped = [self._wrap(task) for task in tasks]

        tokens: list[int] = []
        if backend == "process":
            with _registry_lock:
                tokens = [next(_registry_tokens) for _ in wrapped]
                for token, call in zip(tokens, wrapped):
                    _TASK_REGISTRY[token] = call
            executor: ThreadPoolExecutor | ProcessPoolExecutor = ProcessPoolExecutor(
                max_workers=workers, mp_context=multiprocessing.get_context("fork")
            )

            def submit(index: int) -> Future:
                return executor.submit(_run_registered, tokens[index])

        else:
            executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-parallel"
            )

            def submit(index: int) -> Future:
                return executor.submit(wrapped[index])

        results: list[Any] = [None] * len(tasks)
        try:
            futures = [submit(index) for index in range(len(tasks))]
            failed: list[tuple[int, BaseException]] = []
            for index, future in enumerate(futures):
                try:
                    results[index] = future.result(timeout=self.deadline_seconds)
                except BaseException as exc:  # noqa: BLE001 - timeout or task error
                    failed.append((index, exc))
            if failed:
                self._count("parallel_retries_total", float(len(failed)))
                still_failed: list[tuple[int, BaseException]] = []
                for index, _exc in failed:
                    try:
                        results[index] = submit(index).result(timeout=self.deadline_seconds)
                    except BaseException as exc:  # noqa: BLE001
                        still_failed.append((index, exc))
                if still_failed:
                    self._degrade(still_failed, tasks, results, backend=backend)
        finally:
            executor.shutdown(wait=False)
            if tokens:
                with _registry_lock:
                    for token in tokens:
                        _TASK_REGISTRY.pop(token, None)
        return results

    def _degrade(
        self,
        still_failed: list[tuple[int, BaseException]],
        tasks: list[Callable[[], Any]],
        results: list[Any],
        *,
        backend: str,
    ) -> None:
        """Run repeat offenders serially, uninstrumented, and disclose it."""
        self._count("parallel_degraded_total")
        if self.journal is not None:
            first_index, first_exc = still_failed[0]
            self.journal.record(
                "parallel-degraded",
                backend=backend,
                tasks=len(still_failed),
                first_task=first_index,
                error=f"{type(first_exc).__name__}: {first_exc}",
            )
        for index, _exc in still_failed:
            results[index] = tasks[index]()
