"""Partition pruning against per-partition min/max statistics.

The WHERE clause is decomposed by :func:`extract_constraints` into
per-column interval/pinned-value constraints, each a *necessary* top-level
conjunct — so a partition whose value range provably cannot satisfy any one
of them cannot contribute a row, regardless of the residual predicate.
Pruning happens on the coordinator before a single worker is dispatched or
a single simulated page is charged.

Rules, per constrained column with partition stats ``{min, max, null_count}``:

* ``min``/``max`` both ``None`` means the partition is all-NULL in that
  column; every extracted constraint form (comparison, BETWEEN, IN) rejects
  NULL, so the partition is prunable.
* Interval constraints prune when
  :meth:`ColumnConstraint.clip_interval` of ``[min, max]`` is empty.
* Pinned-value (IN / =) constraints prune when no pinned value lies inside
  ``[min, max]`` — cross-type comparisons that raise ``TypeError`` make the
  column inconclusive and the partition is kept.
* A column missing from the stats dict (tail partition, unknown schema) is
  inconclusive: the partition is kept.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.core.approx.routes.constraints import ColumnConstraint

__all__ = ["prune_partitions", "partition_admits"]


def _column_admits(constraint: ColumnConstraint, stats: Mapping[str, Any]) -> bool:
    """Could any row of a partition with ``stats`` satisfy ``constraint``?"""
    part_min = stats.get("min")
    part_max = stats.get("max")
    if part_min is None or part_max is None:
        # All-NULL (or unknown-extremum) partition: no NULL satisfies an
        # extracted constraint, so only an all-NULL column is prunable.
        return not (part_min is None and part_max is None)
    if constraint.values is not None:
        try:
            return any(part_min <= value <= part_max for value in constraint.values)
        except TypeError:
            return True  # cross-type comparison: inconclusive, keep
    try:
        return constraint.clip_interval(part_min, part_max) is not None
    except TypeError:
        return True


def partition_admits(
    entry: Mapping[str, Any],
    constraints: Mapping[str, ColumnConstraint],
    prunable_columns: Iterable[str],
) -> bool:
    """True unless some constraint proves ``entry`` contributes no rows."""
    columns: Mapping[str, Any] = entry.get("columns") or {}
    for name in prunable_columns:
        constraint = constraints.get(name)
        stats = columns.get(name)
        if constraint is None or stats is None:
            continue
        if not _column_admits(constraint, stats):
            return False
    return True


def prune_partitions(
    entries: list[dict[str, Any]],
    constraints: Mapping[str, ColumnConstraint],
    prunable_columns: Iterable[str],
) -> tuple[list[dict[str, Any]], int]:
    """Split ``entries`` into (kept, pruned_count) under ``constraints``.

    ``prunable_columns`` restricts which constraint columns may prune: the
    caller passes base-table columns whose bare names are unambiguous in
    the query (not shadowed by a join right table), because
    :func:`extract_constraints` works on unqualified names.
    """
    names = set(prunable_columns)
    if not constraints or not names:
        return list(entries), 0
    kept = [e for e in entries if partition_admits(e, constraints, names)]
    return kept, len(entries) - len(kept)
