"""Partition maps: contiguous row-range shards of a base table.

A partition map is a JSON-friendly payload stored in the catalog's
per-table metadata (key :data:`PARTITION_META_KEY`), so it commits with the
table state and pinned snapshots see the map that matches their data:

.. code-block:: python

    {
        "version": 1,
        "built_rows": 200000,          # table length when the map was built
        "scheme": {"kind": "rows", "partitions": 4},
        "partitions": [
            {"id": 0, "start": 0, "rows": 50000,
             "columns": {"x": {"min": 0.0, "max": 12.5, "null_count": 3}}},
            ...
        ],
    }

Partitions are contiguous, disjoint and ordered, which is what makes the
merge side trivially order-preserving.  Tables are append-only, so a map
stays valid as the table grows: rows past ``built_rows`` form an implicit
*tail partition* with no statistics (it is never pruned).

The per-partition ``columns`` statistics carry exactly the shape of the
PR-5 snapshot segment statistics (``min`` / ``max`` / ``null_count``), so a
segment manifest converts into a partition map without rescanning anything
(:func:`partition_map_from_segments`).
"""

from __future__ import annotations

import zlib
from typing import Any

import numpy as np

from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import ReproError

__all__ = [
    "PARTITION_META_KEY",
    "PARTITION_MAP_VERSION",
    "build_partition_map",
    "partition_map_from_segments",
    "partition_entries",
    "partition_column_stats",
    "range_partition_order",
    "hash_partition_order",
]

#: Catalog table-meta key under which partition maps are committed.
PARTITION_META_KEY = "partitions"

PARTITION_MAP_VERSION = 1


def partition_column_stats(piece: Table) -> dict[str, dict[str, Any]]:
    """Per-column ``min`` / ``max`` / ``null_count`` of one partition slice.

    Same payload shape as the snapshot segment statistics, so segment
    manifests and partition maps are interchangeable.
    """
    stats: dict[str, dict[str, Any]] = {}
    for name in piece.schema.names:
        column = piece.column(name)
        stats[name] = {
            "null_count": int(column.null_count),
            "min": column.min(),
            "max": column.max(),
        }
    return stats


def build_partition_map(
    table: Table,
    num_partitions: int,
    scheme: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Shard ``table`` into ``num_partitions`` contiguous row ranges.

    Row counts differ by at most one across partitions.  Empty shards are
    dropped (a 10-row table asked for 16 partitions gets 10).
    """
    if num_partitions < 1:
        raise ReproError(f"num_partitions must be positive, got {num_partitions}")
    num_rows = table.num_rows
    bounds = np.linspace(0, num_rows, num_partitions + 1).astype(np.int64)
    entries: list[dict[str, Any]] = []
    for index in range(num_partitions):
        start, stop = int(bounds[index]), int(bounds[index + 1])
        if stop <= start:
            continue
        piece = table.slice(start, stop)
        entries.append(
            {
                "id": len(entries),
                "start": start,
                "rows": stop - start,
                "columns": partition_column_stats(piece),
            }
        )
    return {
        "version": PARTITION_MAP_VERSION,
        "built_rows": num_rows,
        "scheme": scheme or {"kind": "rows", "partitions": num_partitions},
        "partitions": entries,
    }


def partition_map_from_segments(
    table: Table, segment_entries: list[dict[str, Any]]
) -> dict[str, Any]:
    """Convert a PR-5 snapshot segment manifest into a partition map.

    Segment entries carry ``start_row`` / ``rows`` / ``columns`` with the
    same statistics shape a partition needs, so a reopened store serves
    partition pruning without rescanning a single byte.  Entries must tile
    a prefix of the table contiguously from row 0 (manifest order); rows
    appended since the checkpoint become the implicit tail partition.
    """
    entries: list[dict[str, Any]] = []
    expected_start = 0
    for entry in segment_entries:
        start = int(entry["start_row"])
        rows = int(entry["rows"])
        if start != expected_start:
            raise ReproError(
                f"segment manifest is not contiguous: expected start row "
                f"{expected_start}, got {start}"
            )
        entries.append(
            {
                "id": len(entries),
                "start": start,
                "rows": rows,
                "columns": dict(entry.get("columns", {})),
            }
        )
        expected_start = start + rows
    if expected_start > table.num_rows:
        raise ReproError(
            f"segment manifest covers {expected_start} rows but table "
            f"{table.name!r} has only {table.num_rows}"
        )
    return {
        "version": PARTITION_MAP_VERSION,
        "built_rows": expected_start,
        "scheme": {"kind": "segments", "segments": len(entries)},
        "partitions": entries,
    }


def partition_entries(payload: dict[str, Any], num_rows: int) -> list[dict[str, Any]] | None:
    """The payload's partitions plus the implicit tail, validated for ``num_rows``.

    Returns None when the map cannot describe the table (fewer rows than
    when it was built — the table was replaced, not appended to).  The tail
    partition (rows appended since the map was built) has no statistics and
    is therefore never pruned.
    """
    built_rows = int(payload.get("built_rows", -1))
    entries = list(payload.get("partitions", ()))
    if built_rows < 0 or built_rows > num_rows:
        return None
    total = sum(int(e["rows"]) for e in entries)
    if total != built_rows:
        return None
    if num_rows > built_rows:
        entries.append(
            {
                "id": len(entries),
                "start": built_rows,
                "rows": num_rows - built_rows,
                "columns": {},
            }
        )
    return entries


# -- physical repartitioning orders ---------------------------------------------


def range_partition_order(table: Table, column: str) -> np.ndarray:
    """Stable row permutation sorting the table by ``column`` (NULLs last).

    Clustering rows by key value makes contiguous row-range partitions
    coincide with key ranges, which is what gives range predicates their
    pruning power.
    """
    col = table.column(column)
    validity = np.asarray(col.validity, dtype=bool)
    if col.dtype is DataType.STRING:
        keys = np.asarray(["" if v is None else str(v) for v in col.values], dtype=object)
        order = np.argsort(keys, kind="stable")
    else:
        order = np.argsort(np.asarray(col.values), kind="stable")
    # Stable two-pass: valid rows in key order first, NULL rows after.
    return np.concatenate([order[validity[order]], order[~validity[order]]])


def hash_partition_order(
    table: Table, column: str, num_partitions: int
) -> tuple[np.ndarray, np.ndarray]:
    """Stable permutation clustering rows by a deterministic hash bucket.

    Returns ``(order, bucket_ids_sorted)``.  The hash is seed-independent
    (crc32 for strings, value-derived for numerics) so forked workers and
    restarted processes agree on the bucketing.
    """
    if num_partitions < 1:
        raise ReproError(f"num_partitions must be positive, got {num_partitions}")
    col = table.column(column)
    validity = np.asarray(col.validity, dtype=bool)
    if col.dtype is DataType.STRING:
        buckets = np.fromiter(
            (
                zlib.crc32(str(v).encode("utf-8")) % num_partitions if ok else 0
                for v, ok in zip(col.values, validity)
            ),
            dtype=np.int64,
            count=len(col),
        )
    else:
        values = np.asarray(col.values)
        as_int = np.nan_to_num(values.astype(np.float64), nan=0.0).view(np.uint64)
        # Fibonacci-style multiplicative mix keeps adjacent values apart.
        mixed = as_int * np.uint64(11400714819323198485)
        buckets = (mixed >> np.uint64(33)).astype(np.int64) % num_partitions
    buckets[~validity] = 0  # NULLs all land in bucket 0
    order = np.argsort(buckets, kind="stable")
    return order, buckets[order]
