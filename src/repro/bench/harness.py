"""Experiment harness: build datasets, run experiment steps, collect rows.

The benchmark scripts under ``benchmarks/`` use this harness so every
experiment reports its results the same way: a list of dict rows rendered as
an aligned text table (printed to stdout, so the pytest-benchmark output
contains the paper-shaped tables alongside the timing numbers) and kept
around for assertions on the expected *shape* of the result.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

__all__ = ["ExperimentResult", "Experiment", "repro_scale"]


def repro_scale(default: float = 0.02) -> float:
    """The dataset scale factor used by the benchmark suite.

    ``REPRO_SCALE=1.0`` reproduces the paper's full dataset sizes; the
    default keeps the suite laptop-fast while preserving every result shape.
    """
    try:
        value = float(os.environ.get("REPRO_SCALE", str(default)))
    except ValueError:
        return default
    return min(max(value, 1e-4), 1.0)


@dataclass
class ExperimentResult:
    """Rows collected by one experiment, with rendering helpers."""

    name: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, key: str) -> list[Any]:
        return [row.get(key) for row in self.rows]

    def row_for(self, **match: Any) -> dict[str, Any]:
        for row in self.rows:
            if all(row.get(key) == value for key, value in match.items()):
                return row
        raise KeyError(f"no row matching {match!r} in experiment {self.name!r}")

    def to_text(self) -> str:
        if not self.rows:
            return f"== {self.name} ==\n(no rows)"
        keys: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        rendered = [[_format(row.get(key)) for key in keys] for row in self.rows]
        widths = [max(len(key), *(len(r[i]) for r in rendered)) for i, key in enumerate(keys)]
        header = " | ".join(key.ljust(widths[i]) for i, key in enumerate(keys))
        rule = "-+-".join("-" * w for w in widths)
        body = "\n".join(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)) for cells in rendered)
        meta = "" if not self.metadata else "\n" + "\n".join(f"  {k}: {v}" for k, v in self.metadata.items())
        return f"== {self.name} =={meta}\n{header}\n{rule}\n{body}"

    def print(self) -> None:  # noqa: A003 - deliberate, mirrors logging style of bench scripts
        print()
        print(self.to_text())


def _format(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


@dataclass
class Experiment:
    """A named experiment: a setup callable plus a run callable."""

    name: str
    run: Callable[[], ExperimentResult]

    def execute(self) -> ExperimentResult:
        started = perf_counter()
        result = self.run()
        result.elapsed_seconds = perf_counter() - started
        return result
