"""Benchmark harness utilities shared by the scripts under ``benchmarks/``."""

from repro.bench.harness import Experiment, ExperimentResult, repro_scale
from repro.bench.reporting import format_bytes, ratio, relative_error

__all__ = ["Experiment", "ExperimentResult", "format_bytes", "ratio", "relative_error", "repro_scale"]
