"""Shared reporting helpers for the benchmark suite."""

from __future__ import annotations

import math
from typing import Any

__all__ = ["relative_error", "format_bytes", "ratio"]


def relative_error(approximate: float, exact: float) -> float:
    """|approx - exact| / |exact| with a guard for zero denominators."""
    if exact == 0:
        return abs(approximate) if approximate != 0 else 0.0
    if not (math.isfinite(approximate) and math.isfinite(exact)):
        return math.inf
    return abs(approximate - exact) / abs(exact)


def format_bytes(num_bytes: float) -> str:
    """Human-readable byte counts (binary units)."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}"
        value /= 1024
    return f"{value:.1f} GiB"


def ratio(numerator: Any, denominator: Any) -> float:
    """A safe ratio for report tables (0 when the denominator is 0)."""
    denominator = float(denominator)
    if denominator == 0:
        return 0.0
    return float(numerator) / denominator
