"""repro — reproduction of "Capturing the Laws of (Data) Nature" (CIDR 2015).

The package is organised as:

* :mod:`repro.db` — the relational substrate (columnar storage, SQL subset,
  simulated IO, in-database UDFs).
* :mod:`repro.fitting` — the statistical model-fitting substrate (OLS,
  Gauss-Newton / Levenberg-Marquardt, model families, grouped fits, metrics).
* :mod:`repro.core` — the paper's contribution: model harvesting, the model
  store, approximate query answering and model-based physical storage.
* :mod:`repro.baselines` — comparators from the related work the paper cites
  (sampling, histogram synopses, gzip, MauveDB, FunctionDB, SPARTAN).
* :mod:`repro.streaming` — streaming ingestion and online model maintenance
  (drift detection, multiscale change-point segmentation, refit/supersede).
* :mod:`repro.persist` — durable storage: columnar snapshots, checksummed
  WAL, the versioned model warehouse and the model-only archive tier
  (opt-in via ``LawsDatabase.open(path)``).
* :mod:`repro.obs` — observability: query-lifecycle tracing (span trees,
  ``EXPLAIN ANALYZE``), the metrics registry (JSON + Prometheus exporters),
  the lifecycle event journal and contract-compliance accounting.
* :mod:`repro.datasets` — synthetic data generators (LOFAR transients,
  TPC-DS-lite, sensor networks, generic time series).
* :mod:`repro.bench` — the experiment harness used by the benchmark suite.

Quickstart::

    from repro import LawsDatabase
    from repro.datasets import lofar

    db = LawsDatabase()
    db.register_table(lofar.generate(num_sources=500, seed=1).to_table("measurements"))
    frame = db.strawman("measurements")
    fit = frame.fit("intensity ~ powerlaw(frequency)", group_by="source")
    answer = db.query(
        "SELECT intensity FROM measurements WHERE source = 42 AND frequency = 0.15",
        AccuracyContract(max_relative_error=0.05),
    )
    print(db.explain("SELECT intensity FROM measurements WHERE source = 42 AND frequency = 0.15"))
"""

from repro._version import __version__
from repro.core.planner import AccuracyContract
from repro.core.system import LawsDatabase
from repro.db import Database
from repro.obs import MetricsRegistry, Observability, Span, Tracer

__all__ = [
    "AccuracyContract",
    "Database",
    "LawsDatabase",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "__version__",
]
