"""Model-based ("true") semantic compression.

§4.1: "If we use the user-supplied model as a compression model, we can
expect high compression rates ... A straightforward compression method would
be to store only the differences between the predicted and observed values.
Using the model and trained parameters, we can then recompute the original
dataset without loss of information."

:class:`ModelCompressor` implements exactly that scheme for a table with a
captured (possibly grouped) model:

* the model's parameter table is stored once (the paper's Table 1),
* the non-modelled columns (group keys and inputs) are kept as-is — they are
  needed to re-evaluate the model,
* the modelled output column is replaced by residuals, which are optionally
  quantised to a caller-chosen absolute tolerance (lossless when the
  tolerance is zero — residuals stored at full precision).

The compression *ratio the paper reports* (parameters ≈ 5% of the data) is
the **lossy** variant where residuals are dropped entirely and answers come
from the model; :meth:`CompressedTable.stats` reports both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.captured_model import CapturedModel
from repro.db.column import Column
from repro.db.schema import ColumnDef, Schema
from repro.db.table import Table
from repro.db.types import DataType
from repro.errors import CompressionError

__all__ = ["CompressionStats", "CompressedTable", "ModelCompressor"]


@dataclass(frozen=True)
class CompressionStats:
    """Byte accounting for one compressed table."""

    raw_bytes: int
    parameter_bytes: int
    residual_bytes: int
    carried_column_bytes: int
    quantisation_step: float

    @property
    def lossless_bytes(self) -> int:
        """Total bytes for exact reconstruction (parameters + residuals + carried columns)."""
        return self.parameter_bytes + self.residual_bytes + self.carried_column_bytes

    @property
    def model_only_bytes(self) -> int:
        """Bytes if only the model parameters are kept (the paper's 5% figure)."""
        return self.parameter_bytes

    @property
    def lossless_ratio(self) -> float:
        return self.lossless_bytes / self.raw_bytes if self.raw_bytes else 0.0

    @property
    def model_only_ratio(self) -> float:
        return self.model_only_bytes / self.raw_bytes if self.raw_bytes else 0.0

    def summary(self) -> str:
        return (
            f"raw={self.raw_bytes}B, lossless={self.lossless_bytes}B "
            f"({self.lossless_ratio:.1%}), model-only={self.model_only_bytes}B "
            f"({self.model_only_ratio:.2%})"
        )


@dataclass
class CompressedTable:
    """A table stored as (carried columns, residuals, model parameters)."""

    name: str
    model: CapturedModel
    #: The original table minus the modelled output column.
    carried: Table
    #: Quantised residuals for the modelled output (int64 steps), or raw floats.
    residual_steps: np.ndarray
    quantisation_step: float
    #: Validity of the output column (NULLs survive compression).
    output_validity: np.ndarray
    original_schema: Schema
    stats: CompressionStats = field(init=False)

    def __post_init__(self) -> None:
        raw_bytes = self.original_schema.row_byte_width() * self.carried.num_rows
        if self.quantisation_step > 0:
            # Quantised residual steps are small integers; account them at the
            # byte width a simple varint/bit-packing scheme would achieve.
            max_step = int(np.max(np.abs(self.residual_steps))) if len(self.residual_steps) else 0
            bits = max(1, int(np.ceil(np.log2(max_step + 1))) + 1)
            residual_bytes = (bits * len(self.residual_steps) + 7) // 8
        else:
            residual_bytes = len(self.residual_steps) * 8
        self.stats = CompressionStats(
            raw_bytes=raw_bytes,
            parameter_bytes=self.model.stored_byte_size(),
            residual_bytes=residual_bytes,
            carried_column_bytes=self.carried.byte_size(),
            quantisation_step=self.quantisation_step,
        )

    # -- reconstruction ----------------------------------------------------------

    def decompress(self) -> Table:
        """Rebuild the original table (exactly, when quantisation_step == 0)."""
        predictions = self._predictions()
        if self.quantisation_step > 0:
            residuals = self.residual_steps.astype(np.float64) * self.quantisation_step
        else:
            residuals = self.residual_steps.astype(np.float64)
        values = predictions + residuals
        output_column = Column(DataType.FLOAT64, values, self.output_validity.copy())

        columns = self.carried.columns()
        columns[self.model.output_column] = output_column
        return Table(self.name, self.original_schema, columns)

    def reconstruct_lossy(self) -> Table:
        """Rebuild the table from the model alone (residuals discarded)."""
        predictions = self._predictions()
        output_column = Column(DataType.FLOAT64, predictions, self.output_validity.copy())
        columns = self.carried.columns()
        columns[self.model.output_column] = output_column
        return Table(self.name, self.original_schema, columns)

    def _predictions(self) -> np.ndarray:
        model = self.model
        inputs = {
            name: self.carried.column(name).to_numpy().astype(np.float64) for name in model.input_columns
        }
        if not model.is_grouped:
            return np.asarray(model.fit.predict(inputs), dtype=np.float64)

        predictions = np.zeros(self.carried.num_rows, dtype=np.float64)
        key_lists = [self.carried.column(name).to_pylist() for name in model.group_columns]
        group_rows: dict[tuple[Any, ...], list[int]] = {}
        for row_index in range(self.carried.num_rows):
            key = tuple(key_list[row_index] for key_list in key_lists)
            group_rows.setdefault(key, []).append(row_index)
        for key, rows in group_rows.items():
            indices = np.asarray(rows, dtype=np.int64)
            fit = model.fit.result_for(key)  # type: ignore[union-attr]
            if fit is None:
                # Groups the model could not fit keep their residuals relative
                # to a zero prediction, so reconstruction is still exact.
                continue
            group_inputs = {name: values[indices] for name, values in inputs.items()}
            predictions[indices] = fit.predict(group_inputs)
        return predictions


class ModelCompressor:
    """Compresses and reconstructs tables using a captured model."""

    def __init__(self, quantisation_step: float = 0.0) -> None:
        if quantisation_step < 0:
            raise CompressionError("quantisation_step must be >= 0")
        self.quantisation_step = quantisation_step

    def compress(self, table: Table, model: CapturedModel) -> CompressedTable:
        """Compress ``table`` by replacing the modelled column with residuals."""
        if model.table_name != table.name:
            raise CompressionError(
                f"model {model.model_id} was captured for table {model.table_name!r}, not {table.name!r}"
            )
        if model.output_column not in table.schema:
            raise CompressionError(
                f"table {table.name!r} has no column {model.output_column!r} to compress"
            )
        for column in (*model.group_columns, *model.input_columns):
            if column not in table.schema:
                raise CompressionError(f"table {table.name!r} is missing model column {column!r}")

        carried_names = [name for name in table.schema.names if name != model.output_column]
        carried = table.select(carried_names)

        output = table.column(model.output_column)
        observed = output.to_numpy().astype(np.float64)
        validity = output.validity.copy()

        compressed = CompressedTable(
            name=table.name,
            model=model,
            carried=carried,
            residual_steps=np.zeros(len(observed)),
            quantisation_step=self.quantisation_step,
            output_validity=validity,
            original_schema=table.schema,
        )
        predictions = compressed._predictions()
        residuals = np.where(validity, observed - predictions, 0.0)
        if self.quantisation_step > 0:
            steps = np.round(residuals / self.quantisation_step).astype(np.int64)
        else:
            steps = residuals
        compressed.residual_steps = steps
        compressed.__post_init__()  # refresh stats with the real residuals
        return compressed

    def verify_roundtrip(self, table: Table, compressed: CompressedTable, tolerance: float | None = None) -> bool:
        """Check that decompression reproduces the original output column.

        Exact (bit-for-bit up to float noise) when the step is 0; within
        ``quantisation_step / 2`` otherwise.
        """
        if tolerance is None:
            tolerance = (self.quantisation_step / 2.0) + 1e-9
        original = table.column(compressed.model.output_column).to_numpy().astype(np.float64)
        rebuilt_table = compressed.decompress()
        rebuilt = rebuilt_table.column(compressed.model.output_column).to_numpy().astype(np.float64)
        validity = compressed.output_validity
        return bool(np.all(np.abs(original[validity] - rebuilt[validity]) <= tolerance))
