"""Model lifecycle management: data changes, re-fits and model switching.

§4.1, "Data or model changes": appended observations "can change fit of the
model dramatically.  This could also make a model with a previously poor fit
relevant again.  A possible solution could be to check these measures for
all previous models and switch when appropriate."

:class:`ModelLifecycleManager` implements that policy:

* when a table grows (or changes) its captured models are marked *stale*;
* :meth:`revalidate` re-computes the quality of every candidate model
  (accepted or previously rejected) against the current data — without
  re-fitting — and re-activates / retires models accordingly;
* :meth:`refit_if_needed` re-fits the active model when its re-validated
  quality has degraded past a configurable tolerance;
* the best model is chosen by information criterion (AIC by default), which
  is how "switch when appropriate" is made concrete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.core.captured_model import CapturedModel
from repro.core.harvester import ModelHarvester
from repro.core.model_store import ModelStore
from repro.core.quality import judge_fit
from repro.db.database import Database
from repro.errors import ModelNotFoundError
from repro.fitting.metrics import aic, bic, r_squared

__all__ = ["RevalidationResult", "ModelLifecycleManager"]


@dataclass
class RevalidationResult:
    """Outcome of re-checking one captured model against current data."""

    model_id: int
    previous_r_squared: float
    current_r_squared: float
    information_criterion: float
    still_acceptable: bool
    #: Rows in the model's covered subset at re-validation time.
    covered_rows: int = 0

    @property
    def degraded(self) -> bool:
        return self.current_r_squared < self.previous_r_squared - 1e-9


@dataclass
class ModelLifecycleManager:
    """Watches captured models as the underlying tables change."""

    database: Database
    store: ModelStore
    harvester: ModelHarvester
    #: Re-fit when the re-validated R² drops by more than this much.
    refit_degradation: float = 0.05
    #: Information criterion used to pick among competing models ("aic" or "bic").
    criterion: str = "aic"
    history: list[RevalidationResult] = field(default_factory=list)

    # -- change notification -------------------------------------------------------

    def on_data_changed(
        self, table_name: str, appended_from: int | None = None
    ) -> list[CapturedModel]:
        """Mark models of ``table_name`` stale after an insert/update.

        ``appended_from`` (the start row of an append) exempts
        partition-scoped models wholly below the append boundary — those
        shards did not change.

        Statistics that are still clean here were already updated by the
        mutator itself (the ingest flush folds exact per-batch statistics
        into the cached table statistics); re-marking them dirty would
        discard that merge and force a whole-table rescan for nothing.
        """
        if not self.database.catalog.stats_clean(table_name):
            self.database.catalog.mark_dirty(table_name)
        return self.store.mark_table_stale(table_name, appended_from=appended_from)

    # -- re-validation -----------------------------------------------------------------

    def revalidate(
        self, table_name: str, output_column: str | None = None
    ) -> list[RevalidationResult]:
        """Re-score every captured model of a table against the current data.

        Models that still meet the harvest policy become active again;
        models that no longer do are left stale.  Previously *rejected*
        models that now fit well are re-activated — the paper's "a model with
        a previously poor fit relevant again".  Retired and superseded
        models are out of the rotation for good and are never re-scored.

        ``output_column`` restricts re-validation to one target (the
        streaming maintenance loop re-validates only the column whose drift
        monitor fired, not every model of the table).
        """
        results: list[RevalidationResult] = []
        models = self.store.models_for_table(table_name, include_unusable=True)
        for model in models:
            if model.status in ("retired", "superseded"):
                continue
            if output_column is not None and model.output_column != output_column:
                continue
            result = self._revalidate_model(model)
            results.append(result)
            if result.still_acceptable:
                # A capture-time rejection stands until *new* data arrives:
                # this pooled re-score is weaker than the harvest policy
                # (no per-group pass fraction, no F-test), so without fresh
                # evidence it must not overturn the harvester's verdict —
                # e.g. a refit rejected seconds ago on this very data.
                if not model.accepted and result.covered_rows <= model.fitted_row_count:
                    continue
                model.accepted = True
                self.store.reactivate(model.model_id)
                model.fitted_row_count = result.covered_rows
            else:
                model.mark_stale()
        self.history.extend(results)
        return results

    def _revalidate_model(self, model: CapturedModel) -> RevalidationResult:
        table = self.covered_data(model)
        y = table.column(model.output_column).to_numpy().astype(np.float64)
        inputs = {
            name: table.column(name).to_numpy().astype(np.float64) for name in model.input_columns
        }

        if model.is_grouped:
            key_lists = [table.column(name).to_pylist() for name in model.group_columns]
            predictions = model.predict_rows(inputs, key_lists)
        else:
            predictions = model.predict_rows(inputs)

        finite = np.isfinite(y) & np.isfinite(predictions)
        current_r2 = r_squared(y[finite], predictions[finite]) if finite.any() else 0.0
        num_params = self._effective_num_params(model)
        criterion_fn = aic if self.criterion == "aic" else bic
        criterion_value = criterion_fn(y[finite], predictions[finite], num_params) if finite.any() else float("inf")

        acceptable = current_r2 >= self.harvester.policy.min_r_squared
        return RevalidationResult(
            model_id=model.model_id,
            previous_r_squared=model.quality.r_squared,
            current_r_squared=float(current_r2),
            information_criterion=float(criterion_value),
            still_acceptable=acceptable,
            covered_rows=table.num_rows,
        )

    def covered_data(self, model: CapturedModel, extra_columns: list[str] | None = None):
        """The model's table restricted to the subset its coverage describes.

        Partial models (a WHERE-restricted fit, e.g. one regime segment of a
        streamed table) must be judged on their own subset — scoring them
        against the whole table would condemn every segment model as soon as
        a second regime exists.  ``extra_columns`` requests additional
        columns in the projection (the maintenance loop needs the arrival-
        order column alongside the modelled ones).
        """
        table = self.database.table(model.table_name)
        row_range = model.coverage.row_range
        if row_range is not None:
            # Partition-scoped coverage: exactly the shard's rows, clamped
            # to the current table length (a shrink mid-repartition).
            start = min(int(row_range[0]), table.num_rows)
            stop = min(int(row_range[1]), table.num_rows)
            return table.slice(start, stop)
        predicate = model.coverage.predicate_sql
        if predicate is None:
            return table
        needed = list(
            dict.fromkeys(
                [
                    *model.group_columns,
                    *model.input_columns,
                    model.output_column,
                    *(extra_columns or []),
                ]
            )
        )
        projected = ", ".join(needed)
        return self.database.query(
            f"SELECT {projected} FROM {model.table_name} WHERE {predicate}"
        )

    @staticmethod
    def _effective_num_params(model: CapturedModel) -> int:
        if model.is_grouped:
            fitted_groups = len([r for r in model.fit.records if r.result is not None])  # type: ignore[union-attr]
            return max(fitted_groups, 1) * model.fit.family.num_params  # type: ignore[union-attr]
        return model.fit.family.num_params

    # -- switching / re-fitting --------------------------------------------------------------

    def best_model_by_criterion(self, table_name: str, output_column: str) -> CapturedModel:
        """Among all candidate models of a target, pick the one with the best
        (lowest) information criterion against the *current* data."""
        candidates = self.store.candidates(table_name, output_column)
        if not candidates:
            raise ModelNotFoundError(
                f"no usable captured model predicts {output_column!r} of {table_name!r}"
            )
        scored = [(self._revalidate_model(model).information_criterion, model) for model in candidates]
        scored.sort(key=lambda pair: pair[0])
        return scored[0][1]

    def refit_if_needed(self, table_name: str, output_column: str) -> CapturedModel:
        """Re-fit the current best model when its quality has degraded.

        Returns the model that should be used afterwards (the re-fitted one,
        or the existing one when it is still good).
        """
        model = self._current_model(table_name, output_column)
        result = self._revalidate_model(model)
        if not result.degraded or (model.quality.r_squared - result.current_r_squared) < self.refit_degradation:
            # Still fine: refresh its bookkeeping and keep it.
            model.fitted_row_count = self.database.table(table_name).num_rows
            self.store.reactivate(model.model_id)
            return model

        return self._refit(model, table_name)

    def _current_model(self, table_name: str, output_column: str) -> CapturedModel:
        """The model to re-validate: the best usable one, or the best stale one.

        Appends mark models stale, so ``refit_if_needed`` right after an
        insert must still find the previously-active model to judge it.
        """
        try:
            return self.store.best_model(table_name, output_column)
        except ModelNotFoundError:
            candidates = [
                model
                for model in self.store.models_for_table(table_name, include_unusable=True)
                if model.output_column == output_column
                and model.status not in ("retired", "superseded")
                and model.accepted
            ]
            if not candidates:
                raise
            return max(candidates, key=lambda m: (m.quality.adjusted_r_squared, m.model_id))

    def _refit(self, model: CapturedModel, table_name: str) -> CapturedModel:
        group_by = list(model.group_columns) or None
        report = self.harvester.fit_and_capture(
            table_name,
            model.formula,
            group_by=group_by,
            predicate_sql=model.coverage.predicate_sql,
        )
        model.retire()
        return report.model
