"""Model-based physical storage (§4.1 of the paper)."""

from repro.core.storage.model_switching import ModelLifecycleManager, RevalidationResult
from repro.core.storage.semantic_compression import CompressedTable, CompressionStats, ModelCompressor
from repro.core.storage.zero_io import ScanComparison, ZeroIOScanner

__all__ = [
    "CompressedTable",
    "CompressionStats",
    "ModelCompressor",
    "ModelLifecycleManager",
    "RevalidationResult",
    "ScanComparison",
    "ZeroIOScanner",
]
