"""Zero-IO scans: answering scan-shaped work from the model alone.

§4.1: "In the case of approximate queries, we do not even need to access the
stored data at all, since we can use the model instead of the stored data to
provide values.  This allows us to transform an IO-bound problem (scanning a
large table on disk) into a CPU-bound problem (recalculating all the values
from the model)."

:class:`ZeroIOScanner` makes that trade measurable: it runs the same logical
scan twice — once against the base table (charging the simulated IO model)
and once against the model-generated virtual table (charging nothing) — and
reports pages read, virtual IO time and wall-clock time for both.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Mapping, Sequence

from repro.core.approx.enumeration import build_enumeration_plan, generate_virtual_table
from repro.core.captured_model import CapturedModel
from repro.db.database import Database
from repro.db.table import Table

__all__ = ["ScanComparison", "ZeroIOScanner"]


@dataclass(frozen=True)
class ScanComparison:
    """Side-by-side cost of a raw scan vs. a model-backed (zero-IO) scan."""

    raw_rows: int
    raw_pages_read: int
    raw_virtual_io_seconds: float
    raw_wall_seconds: float
    model_rows: int
    model_pages_read: int
    model_virtual_io_seconds: float
    model_wall_seconds: float

    @property
    def pages_saved(self) -> int:
        return self.raw_pages_read - self.model_pages_read

    @property
    def io_time_saved(self) -> float:
        return self.raw_virtual_io_seconds - self.model_virtual_io_seconds

    def summary(self) -> str:
        return (
            f"raw scan: {self.raw_rows} rows, {self.raw_pages_read} pages, "
            f"{self.raw_virtual_io_seconds * 1e3:.2f} ms simulated IO; "
            f"model scan: {self.model_rows} rows, {self.model_pages_read} pages, "
            f"{self.model_virtual_io_seconds * 1e3:.2f} ms simulated IO"
        )


class ZeroIOScanner:
    """Produces model-generated scans and compares them with raw scans."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def model_scan(
        self,
        model: CapturedModel,
        pinned_values: Mapping[str, Sequence[Any]] | None = None,
    ) -> Table:
        """Generate the model's virtual table without touching the base table."""
        stats = self.database.stats(model.table_name)
        plan = build_enumeration_plan(model, stats, pinned_values=pinned_values)
        return generate_virtual_table(model, plan)

    def raw_scan(self, table_name: str, columns: Sequence[str] | None = None) -> Table:
        """Scan the base table, charging the IO model for the bytes read."""
        table = self.database.table(table_name)
        column_list = list(columns) if columns is not None else None
        self.database.io_model.charge_scan(table, column_list)
        return table.select(column_list) if column_list is not None else table

    def compare(
        self,
        model: CapturedModel,
        pinned_values: Mapping[str, Sequence[Any]] | None = None,
    ) -> ScanComparison:
        """Run both scans and report their costs."""
        columns = list(model.group_columns) + list(model.input_columns) + [model.output_column]

        self.database.reset_io()
        started = perf_counter()
        raw = self.raw_scan(model.table_name, columns)
        raw_wall = perf_counter() - started
        raw_io = self.database.io_snapshot()

        self.database.reset_io()
        started = perf_counter()
        virtual = self.model_scan(model, pinned_values=pinned_values)
        model_wall = perf_counter() - started
        model_io = self.database.io_snapshot()

        return ScanComparison(
            raw_rows=raw.num_rows,
            raw_pages_read=int(raw_io["pages_read"]),
            raw_virtual_io_seconds=float(raw_io["virtual_io_seconds"]),
            raw_wall_seconds=raw_wall,
            model_rows=virtual.num_rows,
            model_pages_read=int(model_io["pages_read"]),
            model_virtual_io_seconds=float(model_io["virtual_io_seconds"]),
            model_wall_seconds=model_wall,
        )
