"""The model harvester: in-database fitting with interception.

This is Figure 2 of the paper in code.  When a strawman frame (or the user
directly) asks the engine to fit a model formula against a stored table, the
harvester

1. runs the fitting *inside* the database (using :mod:`repro.fitting`),
2. judges the quality of the fit (:mod:`repro.core.quality`),
3. stores the model source (formula), the trained parameters and the quality
   in the model store, and
4. returns the goodness of fit to the user — who never needs to know the
   model was captured.

The harvester also listens to the UDF registry's fit log, so fits executed
through the in-database UDF path are captured identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.captured_model import CapturedModel, ModelCoverage
from repro.core.model_store import ModelStore
from repro.core.quality import ModelQuality, QualityPolicy, judge_fit, judge_grouped
from repro.db.database import Database
from repro.db.table import Table
from repro.db.udf import FitInvocation
from repro.errors import ConvergenceError, HarvestError, ReproError
from repro.fitting.fit import fit_model
from repro.fitting.formulas import ParsedFormula, parse_formula
from repro.fitting.grouped import GroupedFitter
from repro.fitting.model import FitResult
from repro.fitting.robust import fit_robust
from repro.obs.flight import is_telemetry_table

__all__ = ["HarvestReport", "ModelHarvester"]


@dataclass
class HarvestReport:
    """What the user gets back from a (captured) fit: the goodness of fit.

    This mirrors step (3) of Figure 2 — "the database dutifully fits the
    model and returns the goodness of fit" — plus a handle on the captured
    model for tests and power users.
    """

    model: CapturedModel
    quality: ModelQuality
    accepted: bool

    @property
    def r_squared(self) -> float:
        return self.quality.r_squared

    @property
    def residual_standard_error(self) -> float:
        return self.quality.residual_standard_error

    def parameter_table(self) -> Table:
        return self.model.parameter_table()

    def summary(self) -> str:
        verdict = "accepted" if self.accepted else "rejected"
        return f"{self.model.describe()} -> {verdict}"


class ModelHarvester:
    """Fits user models inside the database and captures the results."""

    def __init__(
        self,
        database: Database,
        store: ModelStore,
        policy: QualityPolicy | None = None,
    ) -> None:
        self.database = database
        self.store = store
        self.policy = policy or QualityPolicy()
        #: Optional callable ``(table_name) -> str | None`` naming why a
        #: capture over the table is unsound right now.  The archive tier
        #: sets this: with cold rows in the model-only tier, a fit would see
        #: only the predicate-biased live remainder yet be served as
        #: describing the full logical table.  Gated here — the chokepoint
        #: every capture path (fit(), strawman, UDF interception, grouped
        #: on-demand harvest, maintenance refits) runs through.
        self.fit_guard: Any = None
        #: Optional :class:`repro.obs.EventJournal` recording every capture.
        self.journal: Any = None
        #: Optional fault injector (``fitting.fit``): exception storms,
        #: latency spikes, and the cooperative ``nan`` kind that replaces
        #: fitted coefficients with NaNs (a silently diverged solver).
        self.faults: Any = None
        # Capture fits that go through the in-database UDF path as well.
        self.database.udfs.add_fit_listener(self._on_udf_fit)

    # -- the main entry point ----------------------------------------------------

    def fit_and_capture(
        self,
        table_name: str,
        formula: str,
        group_by: str | list[str] | None = None,
        predicate_sql: str | None = None,
        robust: bool = False,
        method: str = "lm",
        min_observations: int | None = None,
        row_range: tuple[int, int] | None = None,
        partition_id: int | None = None,
        policy: "QualityPolicy | None" = None,
    ) -> HarvestReport:
        """Fit ``formula`` against a stored table and capture the model.

        Parameters
        ----------
        table_name:
            Base table to fit against.
        formula:
            Model formula, e.g. ``"intensity ~ powerlaw(frequency)"``.
        group_by:
            Optional column (or columns) to fit one model per group — the
            LOFAR per-source case.
        predicate_sql:
            Optional SQL WHERE clause restricting the fitted subset (the
            "partial models" case); recorded in the coverage metadata.
        robust:
            Use IRLS / trimmed robust fitting instead of plain least squares.
        method:
            ``"lm"`` (Levenberg-Marquardt) or ``"gn"`` (Gauss-Newton) for
            non-linear families.
        row_range:
            Optional half-open row interval restricting the fit to a table
            partition; recorded in the coverage so serving, drift detection
            and refits stay scoped to that shard.  Mutually exclusive with
            ``predicate_sql``.
        partition_id:
            Partition the ``row_range`` belongs to, recorded in the model
            metadata so a re-partition can find and refresh shard models.
        policy:
            Per-capture override of the acceptance gate.  The flight
            recorder uses this for its telemetry baselines: a flat latency
            series is the healthy case, yet its R² ≈ 0 would fail the
            default gate tuned for user data.
        """
        if self.fit_guard is not None:
            blocked = self.fit_guard(table_name)
            if blocked is not None:
                raise HarvestError(f"cannot capture a model of {table_name!r}: {blocked}")
        if row_range is not None and predicate_sql is not None:
            raise HarvestError(
                "row_range and predicate_sql cannot be combined: a partition model "
                "covers its row interval unconditionally"
            )
        parsed = parse_formula(formula)
        group_columns = self._normalise_group_by(group_by)
        table = self._fitting_input(table_name, parsed, group_columns, predicate_sql, row_range)

        gate = policy if policy is not None else self.policy
        if group_columns:
            fit_result, quality, fraction = self._fit_grouped(table, parsed, group_columns, method, min_observations)
            accepted = gate.accepts(quality) and fraction >= gate.min_group_pass_fraction
        else:
            fit_result, quality = self._fit_single(table, parsed, robust, method)
            fraction = 1.0
            accepted = gate.accepts(quality)

        coverage = ModelCoverage(
            table_name=table_name,
            input_columns=parsed.inputs,
            output_column=parsed.output,
            group_columns=tuple(group_columns),
            predicate_sql=predicate_sql,
            row_range=row_range,
        )
        metadata: dict[str, Any] = {"robust": robust, "method": method}
        if partition_id is not None:
            metadata["partition_id"] = int(partition_id)
        model = CapturedModel(
            coverage=coverage,
            formula=formula,
            fit=fit_result,
            quality=quality,
            accepted=accepted,
            group_fit_fraction=fraction,
            fitted_row_count=table.num_rows,
            metadata=metadata,
        )
        self.store.add(model)
        if self.journal is not None:
            self.journal.record(
                "model-capture",
                model_id=model.model_id,
                table=table_name,
                column=parsed.output,
                formula=formula,
                accepted=accepted,
                grouped=bool(group_columns),
            )
        return HarvestReport(model=model, quality=quality, accepted=accepted)

    def fit_partitioned(
        self,
        table_name: str,
        formula: str,
        group_by: str | list[str] | None = None,
        robust: bool = False,
        method: str = "lm",
        min_observations: int | None = None,
    ) -> list[HarvestReport]:
        """Fit one model per partition of ``table_name`` (partition map in
        the catalog metadata) and capture each with partition-scoped coverage.

        Drift detection, demotion and refit then run per shard: a batch
        appended past a partition's row range never stales that partition's
        model, and maintenance refits only the shards that moved.  Grouped
        per-partition models are merged per group by the grouped route, the
        same way archive-segment models are.
        """
        payload = self.database.catalog.table_meta(table_name, "partitions")
        if not payload or not payload.get("partitions"):
            raise HarvestError(
                f"table {table_name!r} has no partition map; call partition_table() first"
            )
        reports: list[HarvestReport] = []
        for entry in payload["partitions"]:
            start = int(entry["start"])
            stop = start + int(entry["rows"])
            reports.append(
                self.fit_and_capture(
                    table_name,
                    formula,
                    group_by=group_by,
                    robust=robust,
                    method=method,
                    min_observations=min_observations,
                    row_range=(start, stop),
                    partition_id=int(entry["id"]),
                )
            )
        return reports

    def ensure_grouped(
        self,
        table_name: str,
        output_column: str,
        group_columns: tuple[str, ...] | list[str],
        formula: str | None = None,
    ) -> CapturedModel | None:
        """Make sure a grouped model exists for ``output_column`` per the keys.

        The approximate engine calls this when a ``GROUP BY`` query arrives
        for a column whose captured models are all ungrouped: the same
        formula (and estimator settings) the best existing capture used is
        refitted per group, so group-by columns get grouped models harvested
        on demand.  Returns the servable grouped model, or None when there is
        nothing to derive a formula from or the grouped refit is rejected.
        """
        group_columns = tuple(group_columns)
        existing = self.store.grouped_candidates(table_name, output_column, group_columns)
        if existing:
            return existing[-1]

        # Negative cache: if a grouped refit over this very data was already
        # rejected, don't re-scan and refit on every query — wait for growth.
        prior = [
            m
            for m in self.store.models_for_table(table_name, include_unusable=True)
            if m.output_column == output_column
            and m.is_grouped
            and set(m.group_columns) == set(group_columns)
        ]
        current_rows = self.database.table(table_name).num_rows
        if any(not m.accepted and m.fitted_row_count >= current_rows for m in prior):
            return None

        robust, method = False, "lm"
        if formula is None:
            # Any capture of the target column works as a formula template —
            # including *rejected* ones: a global fit the quality gate turned
            # down (per-group structure it cannot express) is exactly the
            # formula worth refitting per group (the LOFAR per-source case).
            templates = [
                m
                for m in self.store.models_for_table(table_name, include_unusable=True)
                if m.output_column == output_column and not m.is_grouped
            ]
            if not templates:
                return None
            template = max(
                templates, key=lambda m: (m.quality.adjusted_r_squared, m.model_id)
            )
            formula = template.formula
            robust = bool(template.metadata.get("robust", False))
            method = str(template.metadata.get("method", "lm"))
        try:
            report = self.fit_and_capture(
                table_name,
                formula,
                group_by=list(group_columns),
                robust=robust,
                method=method,
            )
        except ReproError:
            return None
        return report.model if report.accepted else None

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _normalise_group_by(group_by: str | list[str] | None) -> list[str]:
        if group_by is None:
            return []
        if isinstance(group_by, str):
            return [group_by]
        return list(group_by)

    def _fitting_input(
        self,
        table_name: str,
        parsed: ParsedFormula,
        group_columns: list[str],
        predicate_sql: str | None,
        row_range: tuple[int, int] | None = None,
    ) -> Table:
        """Materialise exactly the columns (and rows) the fit needs."""
        table = self.database.table(table_name)
        needed = list(dict.fromkeys([*group_columns, *parsed.inputs, parsed.output]))
        missing = [name for name in needed if name not in table.schema]
        if missing:
            raise HarvestError(
                f"formula {parsed.text!r} references columns {missing} not present in table {table_name!r}"
            )
        if predicate_sql:
            projected = ", ".join(needed)
            result = self.database.query(f"SELECT {projected} FROM {table_name} WHERE {predicate_sql}")
            return result
        if row_range is not None:
            start, stop = row_range
            if not (0 <= start <= stop <= table.num_rows):
                raise HarvestError(
                    f"row range {row_range!r} is outside table {table_name!r} "
                    f"({table.num_rows} rows)"
                )
            return table.slice(start, stop).select(needed)
        return table.select(needed)

    def _fit_single(
        self, table: Table, parsed: ParsedFormula, robust: bool, method: str
    ) -> tuple[FitResult, ModelQuality]:
        family = parsed.build_family()
        inputs = {name: table.column(name).to_numpy().astype(np.float64) for name in parsed.inputs}
        y = table.column(parsed.output).to_numpy().astype(np.float64)
        action = self.faults.hit("fitting.fit") if self.faults is not None else None
        if robust:
            fit = fit_robust(family, inputs, y, output_name=parsed.output)
        else:
            fit = fit_model(family, inputs, y, output_name=parsed.output, method=method)
        if action is not None and action.kind == "nan":
            fit.params = np.full_like(np.asarray(fit.params, dtype=np.float64), np.nan)
            fit.converged = False
        if not np.all(np.isfinite(fit.params)):
            # A solver that "succeeds" with NaN/inf coefficients has
            # diverged; capturing it would poison every downstream answer
            # with NaNs that no error bound discloses.
            raise ConvergenceError(
                f"fit of {parsed.text!r} produced non-finite coefficients "
                f"{np.asarray(fit.params).tolist()!r}; refusing to capture"
            )
        quality = judge_fit(fit, y=y, inputs=inputs)
        return fit, quality

    def _fit_grouped(
        self,
        table: Table,
        parsed: ParsedFormula,
        group_columns: list[str],
        method: str,
        min_observations: int | None,
    ):
        family = parsed.build_family()
        fitter = GroupedFitter(
            family,
            input_columns=parsed.inputs,
            output_column=parsed.output,
            group_columns=group_columns,
            method=method,
            min_observations=min_observations,
        )
        grouped = fitter.fit(table)
        quality, fraction = judge_grouped(grouped.records)
        return grouped, quality, fraction

    # -- UDF interception path ------------------------------------------------------------

    def _on_udf_fit(self, invocation: FitInvocation) -> None:
        """Capture a fit that was executed through the in-database UDF layer."""
        if is_telemetry_table(invocation.table_name):
            # The flight recorder owns its baselines; an ad-hoc UDF fit over
            # a `_telemetry_*` table must not auto-register watcher models.
            return
        inputs = ", ".join(invocation.input_columns)
        formula = f"{invocation.output_column} ~ {invocation.model_name}({inputs})"
        try:
            self.fit_and_capture(
                invocation.table_name,
                formula,
                group_by=invocation.group_by or None,
            )
        except ReproError:
            # A malformed UDF fit must not break the user's query; the model
            # is simply not captured.
            pass

    # -- provenance -----------------------------------------------------------------------------

    def capture_invocation(self, invocation: FitInvocation) -> HarvestReport:
        """Explicitly capture a previously logged UDF fit invocation."""
        inputs = ", ".join(invocation.input_columns)
        formula = f"{invocation.output_column} ~ {invocation.model_name}({inputs})"
        return self.fit_and_capture(invocation.table_name, formula, group_by=invocation.group_by or None)
