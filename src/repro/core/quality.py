"""Judging the quality of captured models.

§3 of the paper: "Since the entire process runs inside the database, we can
intercept fitting, determine the accessed data, and judge the quality of the
fitted model.  For example, we could use the R² coefficient of determination
or the results of an F-test against a model with fewer parameters."

A :class:`QualityPolicy` encodes when a captured model is good enough to be
used for approximate query answering and storage optimisation.  The
benchmark ``bench_ablation_quality_gate`` sweeps the R² threshold to show
why the gate matters.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.fitting.metrics import FTestResult, f_test_against_constant
from repro.fitting.model import FitResult

__all__ = ["ModelQuality", "QualityPolicy", "judge_fit", "judge_grouped"]


@dataclass(frozen=True)
class ModelQuality:
    """Quality judgement for one fitted model (or one group's fit)."""

    r_squared: float
    adjusted_r_squared: float
    residual_standard_error: float
    n_observations: int
    f_test: FTestResult | None = None
    relative_rse: float | None = None

    def summary(self) -> str:
        parts = [
            f"R2={self.r_squared:.4f}",
            f"RSE={self.residual_standard_error:.6g}",
            f"n={self.n_observations}",
        ]
        if self.f_test is not None:
            parts.append(f"F p-value={self.f_test.p_value:.3g}")
        return ", ".join(parts)


@dataclass(frozen=True)
class QualityPolicy:
    """Acceptance thresholds for captured models.

    A model is *accepted* when its R² is at least ``min_r_squared``, it was
    fitted on at least ``min_observations`` points and (when an F-test is
    available) the F-test against the constant model is significant at
    ``f_test_alpha``.
    """

    min_r_squared: float = 0.8
    min_observations: int = 5
    f_test_alpha: float = 0.05
    require_f_test: bool = False
    #: For grouped models: minimum fraction of groups that must individually
    #: pass for the grouped model as a whole to be accepted.
    min_group_pass_fraction: float = 0.5
    #: Observed-error feedback (the planner's closed loop): once at least
    #: ``observed_error_min_samples`` sampled answers have a median
    #: |relative error| above ``max_observed_relative_error``, the model is
    #: demoted and queued for a maintenance refit.
    max_observed_relative_error: float = 0.2
    observed_error_min_samples: int = 3

    def flags_observed_errors(self, observed_errors: "list[float] | tuple[float, ...]") -> bool:
        """True when sampled execution errors show the model is lying.

        The median (not the mean) is judged so a single adversarial query —
        one unlucky group, a near-zero denominator — cannot demote an
        otherwise healthy model.
        """
        if len(observed_errors) < self.observed_error_min_samples:
            return False
        finite = [e for e in observed_errors if np.isfinite(e)]
        if len(finite) < self.observed_error_min_samples:
            return False
        return float(np.median(finite)) > self.max_observed_relative_error

    def accepts(self, quality: ModelQuality) -> bool:
        if quality.n_observations < self.min_observations:
            return False
        if quality.r_squared < self.min_r_squared:
            return False
        if self.require_f_test:
            if quality.f_test is None:
                return False
            if not quality.f_test.significant(self.f_test_alpha):
                return False
        return True

    def with_threshold(self, min_r_squared: float) -> "QualityPolicy":
        """A copy of this policy with a different R² gate (ablation helper)."""
        return replace(self, min_r_squared=min_r_squared)


def judge_fit(
    fit: FitResult,
    y: np.ndarray | None = None,
    inputs: dict[str, np.ndarray] | None = None,
) -> ModelQuality:
    """Build a :class:`ModelQuality` for a single fit.

    When the original observations are provided the judgement includes the
    F-test against the constant model and the RSE relative to the output
    scale; otherwise the metrics already stored on the fit are used.
    """
    f_test = None
    relative_rse = None
    if y is not None and inputs is not None and len(np.asarray(y)) > fit.family.num_params:
        y_arr = np.asarray(y, dtype=np.float64)
        predictions = fit.predict(inputs)
        f_test = f_test_against_constant(y_arr, predictions, fit.family.num_params)
        scale = float(np.mean(np.abs(y_arr))) if len(y_arr) else 0.0
        if scale > 0:
            relative_rse = fit.residual_standard_error / scale
    return ModelQuality(
        r_squared=fit.r_squared,
        adjusted_r_squared=fit.adjusted_r_squared,
        residual_standard_error=fit.residual_standard_error,
        n_observations=fit.n_observations,
        f_test=f_test,
        relative_rse=relative_rse,
    )


def judge_grouped(records: list) -> tuple[ModelQuality, float]:
    """Aggregate quality over a grouped fit.

    Returns ``(overall_quality, pass_fraction_weightable)`` where the overall
    quality uses observation-weighted means of the per-group metrics, and the
    second element is the fraction of groups that fitted successfully (the
    policy separately checks the per-group pass fraction).
    """
    fitted = [record for record in records if record.result is not None]
    if not fitted:
        return ModelQuality(
            r_squared=0.0,
            adjusted_r_squared=0.0,
            residual_standard_error=float("inf"),
            n_observations=0,
        ), 0.0

    weights = np.array([record.result.n_observations for record in fitted], dtype=np.float64)
    weights = weights / weights.sum()
    r2 = float(np.sum(weights * np.array([record.result.r_squared for record in fitted])))
    adj = float(np.sum(weights * np.array([record.result.adjusted_r_squared for record in fitted])))
    rse = float(np.sum(weights * np.array([record.result.residual_standard_error for record in fitted])))
    n_total = int(sum(record.result.n_observations for record in fitted))
    fitted_fraction = len(fitted) / len(records)
    return (
        ModelQuality(
            r_squared=r2,
            adjusted_r_squared=adj,
            residual_standard_error=rse,
            n_observations=n_total,
        ),
        fitted_fraction,
    )
