"""The model store: the database's catalog of captured models.

Harvested models are "transparently stored, re-executed, and generally
employed for approximate query answering and data storage optimization"
(§1).  The store indexes captured models by table and output column, handles
the "multiple, partial or grouped models" challenge of §4.1 by ranking
candidates, and tracks staleness when the underlying table changes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator

from repro.core.captured_model import CapturedModel
from repro.db.snapshot import PinStack
from repro.errors import HarvestError, ModelNotFoundError

__all__ = ["ModelStore", "ModelStorePin"]


def _default_ranking(model: CapturedModel) -> tuple:
    """Serving priority: active before stale, then fit quality, then recency."""
    return (model.status == "active", model.quality.adjusted_r_squared, model.model_id)


#: Observed-error samples kept per model (oldest dropped first).
OBSERVED_ERROR_WINDOW = 32


class ModelStorePin:
    """A frozen membership view of the model store at one version.

    Pins the *population* — which models exist and their per-target index —
    not the models themselves: :class:`CapturedModel` objects stay shared,
    so lifecycle flips (``mark_stale``, demotion metadata) remain visible
    through a pin.  That is intentional — a model the planner just caught
    lying must stop being preferred immediately, even by queries that
    pinned before the demotion.  What a pin guarantees is that concurrent
    harvests and retirements cannot add or remove *entries* mid-query.
    """

    __slots__ = ("_models", "_by_target", "_version", "_mirrored")

    def __init__(
        self,
        models: dict[int, CapturedModel],
        by_target: dict[tuple[str, str], list[int]],
        version: int,
    ) -> None:
        self._models = models
        self._by_target = by_target
        self._version = version
        #: True once an own-thread write was mirrored in.  A mirrored pin
        #: may carry the live version number while missing another thread's
        #: concurrent registration, so snapshot memoization must never
        #: reuse it for a fresh query.
        self._mirrored = False


class ModelStore:
    """In-database registry of captured models.

    Concurrency model: every mutation is serialized under one re-entrant
    lock, and readers either see live state or — inside a :meth:`reading`
    context — a :class:`ModelStorePin` taken at a version boundary.  A
    mutation made *by a pinned thread itself* (the approximate engine's
    on-demand harvest registers a model mid-query and immediately re-queries
    for it) is mirrored into that thread's pin, so a query always sees its
    own writes while staying isolated from other threads'.
    """

    def __init__(self) -> None:
        self._models: dict[int, CapturedModel] = {}
        #: (table_name, output_column) -> model ids, in capture order
        self._by_target: dict[tuple[str, str], list[int]] = {}
        #: Bumped on any registration or lifecycle change; the unified
        #: planner keys its plan cache on this so routing decisions are
        #: invalidated when the serving model population changes.
        self._version = 0
        #: Optional :class:`repro.obs.EventJournal` recording demotions,
        #: supersedes and retirements.
        self.journal = None
        self._lock = threading.RLock()
        self._local = PinStack()

    # -- snapshot pinning ------------------------------------------------------

    def _pin(self) -> ModelStorePin | None:
        pins = self._local.pins
        return pins[-1] if pins else None

    def _state(self):
        """The object whose ``_models``/``_by_target``/``_version`` reads see:
        the calling thread's innermost pin, or the live store."""
        pins = self._local.pins
        return pins[-1] if pins else self

    def pin(self) -> ModelStorePin:
        """Freeze the current membership (shallow copies, taken under lock)."""
        with self._lock:
            return ModelStorePin(
                dict(self._models),
                {key: list(ids) for key, ids in self._by_target.items()},
                self._version,
            )

    @contextmanager
    def reading(self, pin: ModelStorePin) -> Iterator[ModelStorePin]:
        """Resolve every store read on this thread through ``pin``."""
        pins = self._local.pins
        pins.append(pin)
        try:
            yield pin
        finally:
            pins.pop()

    @property
    def version(self) -> int:
        return self._state()._version

    @property
    def live_version(self) -> int:
        """The live store version, ignoring any pin on the calling thread."""
        return self._version

    def _bump(self) -> None:
        with self._lock:
            self._version += 1

    # -- registration ----------------------------------------------------------

    def add(self, model: CapturedModel) -> CapturedModel:
        """Register a captured model (accepted or not — rejected models are
        kept for provenance and for the model-switching policy)."""
        key = (model.table_name, model.output_column)
        with self._lock:
            self._models[model.model_id] = model
            self._by_target.setdefault(key, []).append(model.model_id)
            self._version += 1
            version = self._version
        pin = self._pin()
        if pin is not None:
            # Own-thread write visibility: the pinning query must see the
            # model it just harvested.  The pin adopts the post-add version
            # so caches keyed on it cannot serve the pre-add routing.
            pin._models[model.model_id] = model
            pin._by_target.setdefault(key, []).append(model.model_id)
            pin._version = version
            pin._mirrored = True
        return model

    def remove(self, model_id: int) -> None:
        with self._lock:
            model = self._models.pop(model_id, None)
            if model is None:
                raise ModelNotFoundError(f"no captured model with id {model_id}")
            key = (model.table_name, model.output_column)
            if key in self._by_target and model_id in self._by_target[key]:
                self._by_target[key].remove(model_id)
            self._version += 1
            version = self._version
        pin = self._pin()
        if pin is not None and model_id in pin._models:
            del pin._models[model_id]
            if key in pin._by_target and model_id in pin._by_target[key]:
                pin._by_target[key].remove(model_id)
            pin._version = version
            pin._mirrored = True

    # -- lookup -------------------------------------------------------------------

    def get(self, model_id: int) -> CapturedModel:
        try:
            return self._state()._models[model_id]
        except KeyError:
            raise ModelNotFoundError(f"no captured model with id {model_id}") from None

    def __len__(self) -> int:
        return len(self._state()._models)

    def __iter__(self):
        return iter(list(self._state()._models.values()))

    def all_models(self) -> list[CapturedModel]:
        return list(self._state()._models.values())

    def models_for_table(self, table_name: str, include_unusable: bool = False) -> list[CapturedModel]:
        models = [m for m in self._state()._models.values() if m.table_name == table_name]
        if not include_unusable:
            models = [m for m in models if m.is_usable]
        return sorted(models, key=lambda m: m.model_id)

    def candidates(
        self,
        table_name: str,
        output_column: str,
        required_inputs: Iterable[str] | None = None,
        require_whole_table: bool = True,
        include_stale: bool = False,
    ) -> list[CapturedModel]:
        """Usable models that predict ``output_column`` of ``table_name``.

        ``required_inputs`` restricts to models whose input (plus group)
        columns are a subset of the columns the query can bind — the
        "parameter space enumeration" precondition of §4.2.

        ``include_stale`` additionally admits accepted-but-stale models —
        during continuous ingestion a stale model is still the best
        available answer until the maintenance loop re-validates it; the
        default ranking in :meth:`best_model` deprioritizes them behind any
        active model.
        """
        key = (table_name, output_column)
        state = self._state()
        models = [state._models[model_id] for model_id in list(state._by_target.get(key, []))]
        models = [m for m in models if (m.is_servable if include_stale else m.is_usable)]
        if require_whole_table:
            models = [m for m in models if m.coverage.covers_whole_table]
        if required_inputs is not None:
            available = set(required_inputs)
            models = [
                m
                for m in models
                if set(m.input_columns) | set(m.group_columns) <= available
            ]
        return sorted(models, key=lambda m: m.model_id)

    def best_model(
        self,
        table_name: str,
        output_column: str,
        required_inputs: Iterable[str] | None = None,
        ranking: Callable[[CapturedModel], float] | None = None,
        include_stale: bool = False,
    ) -> CapturedModel:
        """The best usable model for a target column.

        §4.1 ("Multiple, partial or grouped models ... it is not obvious how
        to select the best model"): the default policy ranks active models
        first (stale ones are deprioritized, never preferred over a fresh
        fit), then by adjusted R², breaking ties with the newer capture.  A
        custom ``ranking`` callable can override this.
        """
        candidates = self.candidates(
            table_name, output_column, required_inputs, include_stale=include_stale
        )
        if not candidates:
            raise ModelNotFoundError(
                f"no usable captured model predicts {output_column!r} of table {table_name!r}"
            )
        if ranking is None:
            ranking = _default_ranking
        return max(candidates, key=ranking)

    def best_model_for_table(
        self, table_name: str, include_stale: bool = False
    ) -> CapturedModel:
        """The best serving model of a table across all output columns.

        Whole-table models outrank partial (predicate-restricted) ones
        regardless of fit quality: callers of this table-level pick
        (compression, zero-IO scans, anomaly detection without a target
        column) operate on all rows, which a single-regime segment model
        does not describe.
        """
        models = [
            m
            for m in self._state()._models.values()
            if m.table_name == table_name
            and (m.is_servable if include_stale else m.is_usable)
        ]
        if not models:
            raise ModelNotFoundError(f"no usable captured model for table {table_name!r}")
        return max(models, key=lambda m: (m.coverage.covers_whole_table, *_default_ranking(m)))

    def has_model_for(
        self, table_name: str, output_column: str, include_stale: bool = False
    ) -> bool:
        return bool(self.candidates(table_name, output_column, include_stale=include_stale))

    # -- group-level lookup --------------------------------------------------------

    def grouped_candidates(
        self,
        table_name: str,
        output_column: str,
        group_columns: Iterable[str],
        include_stale: bool = True,
    ) -> list[CapturedModel]:
        """Servable grouped models keyed by exactly the given group columns.

        Partial (predicate-restricted) models are admitted: a stale or
        segment model harvested by the maintenance lane still holds valid
        per-group parameters for the groups it covers.  Per-group selection
        among these candidates — which model serves which key — lives in
        :func:`repro.core.approx.routes.router.plan_group_routing`.
        """
        wanted = set(group_columns)
        models = self.candidates(
            table_name,
            output_column,
            require_whole_table=False,
            include_stale=include_stale,
        )
        return [m for m in models if m.is_grouped and set(m.group_columns) == wanted]


    # -- observed-error feedback ---------------------------------------------------

    def record_observed_error(self, model_id: int, relative_error: float) -> list[float]:
        """Record one sampled |relative error| observed for a served answer.

        The unified planner samples executed plans against exact execution
        and deposits what it measured here; the quality policy judges the
        accumulated evidence (:meth:`QualityPolicy.flags_observed_errors`)
        and the maintenance loop refits demoted models.  Returns the model's
        current observation window.
        """
        model = self.get(model_id)
        with self._lock:
            model.observed_errors.append(float(relative_error))
            if len(model.observed_errors) > OBSERVED_ERROR_WINDOW:
                del model.observed_errors[: len(model.observed_errors) - OBSERVED_ERROR_WINDOW]
            return model.observed_errors

    def demote(self, model_id: int, reason: str) -> CapturedModel:
        """Take a model the planner caught lying out of preferred serving.

        The model is marked stale (deprioritized behind any active model,
        still servable as a last resort) and flagged so the maintenance
        policy refits it on the next tick instead of quietly re-validating.
        """
        model = self.get(model_id)
        with self._lock:
            if model.status == "active":
                model.mark_stale()
            model.metadata["planner_demoted"] = reason
            self._version += 1
        if self.journal is not None:
            self.journal.record(
                "model-demotion",
                model_id=model_id,
                table=model.table_name,
                column=model.output_column,
                reason=reason,
            )
        return model

    # -- lifecycle ----------------------------------------------------------------------

    def mark_table_stale(
        self, table_name: str, appended_from: int | None = None
    ) -> list[CapturedModel]:
        """Mark every model of ``table_name`` stale (called when data changes).

        When the change was an *append* starting at row ``appended_from``,
        partition-scoped models whose row range lies entirely below the
        append boundary are exempt — their rows did not change, so per-shard
        drift detection leaves them active and maintenance refits only the
        shards the batch actually landed in.
        """
        stale = []
        with self._lock:
            for model in self._models.values():
                if model.table_name != table_name or model.status != "active":
                    continue
                row_range = model.coverage.row_range
                if (
                    appended_from is not None
                    and row_range is not None
                    and row_range[1] <= appended_from
                ):
                    continue
                model.mark_stale()
                stale.append(model)
            if stale:
                self._version += 1
        return stale

    def retire_model(self, model_id: int) -> None:
        self.get(model_id).retire()
        self._bump()
        if self.journal is not None:
            self.journal.record("model-retire", model_id=model_id)

    def reactivate(self, model_id: int) -> None:
        """Reactivate a stale model (e.g. after re-validation against new data)."""
        self.get(model_id).status = "active"
        self._bump()

    def supersede(self, model_id: int, successor_id: int) -> CapturedModel:
        """Replace ``model_id`` with ``successor_id`` in the serving rotation.

        The maintenance loop calls this after refitting: the old model is
        taken out of service permanently (unlike ``stale`` it cannot be
        re-validated back) but kept for provenance, with metadata linking the
        two so lineage across regime changes stays queryable.
        """
        old = self.get(model_id)
        successor = self.get(successor_id)
        if old.model_id == successor.model_id:
            # Typed outward (errors-audit): callers above the store catch
            # ReproError, and a bare ValueError would escape that net.
            raise HarvestError(f"model {model_id} cannot supersede itself")
        with self._lock:
            old.status = "superseded"
            old.metadata["superseded_by"] = successor.model_id
            successor.metadata.setdefault("supersedes", []).append(old.model_id)
            self._version += 1
        if self.journal is not None:
            self.journal.record(
                "model-supersede",
                model_id=model_id,
                successor_id=successor_id,
                table=old.table_name,
                column=old.output_column,
            )
        return old

    # -- accounting --------------------------------------------------------------------------

    def total_stored_bytes(self) -> int:
        """Nominal storage cost of all usable captured models."""
        return sum(model.stored_byte_size() for model in self._state()._models.values() if model.is_usable)

    def describe(self) -> str:
        models = self._state()._models
        if not models:
            return "(no captured models)"
        return "\n".join(model.describe() for model in sorted(models.values(), key=lambda m: m.model_id))
