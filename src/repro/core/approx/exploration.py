"""Model exploration: finding interesting regions of the model's domain.

§4.2, "Model exploration": "we can find interesting subsets of the data by
analyzing the first derivative of the model function for regions in the
parameter space with high gradients."  This module evaluates the captured
model over a grid of its input domain, computes numerical gradients, and
returns the regions (grid cells) ranked by gradient magnitude — plus a
parameter-space ranking for grouped models (which groups have extreme
fitted parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.captured_model import CapturedModel
from repro.errors import ApproximationError

__all__ = ["InterestingRegion", "explore_gradients", "extreme_parameter_groups"]


@dataclass(frozen=True)
class InterestingRegion:
    """A sub-interval of one input with the model's gradient over it."""

    input_column: str
    lower: float
    upper: float
    mean_gradient: float
    max_gradient: float

    def __str__(self) -> str:
        return (
            f"{self.input_column} in [{self.lower:.4g}, {self.upper:.4g}]: "
            f"|dy/dx| mean={self.mean_gradient:.4g}, max={self.max_gradient:.4g}"
        )


def explore_gradients(
    model: CapturedModel,
    input_ranges: Mapping[str, tuple[float, float]],
    group_key: tuple[Any, ...] | Any | None = None,
    num_points: int = 256,
    num_regions: int = 8,
) -> dict[str, list[InterestingRegion]]:
    """Rank sub-intervals of each input by the model's gradient magnitude.

    Each input column is scanned independently (other inputs held at their
    range midpoint); the scan is split into ``num_regions`` equal-width
    regions which are returned sorted by mean |gradient|, steepest first.
    """
    missing = [name for name in model.input_columns if name not in input_ranges]
    if missing:
        raise ApproximationError(f"exploration needs ranges for inputs {missing}")

    fit = model.result_for_group(group_key) if model.is_grouped else model.fit

    results: dict[str, list[InterestingRegion]] = {}
    for column in model.input_columns:
        low, high = input_ranges[column]
        if high <= low:
            high = low + 1.0
        xs = np.linspace(low, high, num_points)
        inputs = {
            other: np.full(num_points, (input_ranges[other][0] + input_ranges[other][1]) / 2.0)
            for other in model.input_columns
            if other != column
        }
        inputs[column] = xs
        values = fit.predict(inputs)
        gradient = np.gradient(values, xs)

        boundaries = np.linspace(low, high, num_regions + 1)
        regions: list[InterestingRegion] = []
        for i in range(num_regions):
            mask = (xs >= boundaries[i]) & (xs <= boundaries[i + 1])
            if not mask.any():
                continue
            magnitude = np.abs(gradient[mask])
            regions.append(
                InterestingRegion(
                    input_column=column,
                    lower=float(boundaries[i]),
                    upper=float(boundaries[i + 1]),
                    mean_gradient=float(np.mean(magnitude)),
                    max_gradient=float(np.max(magnitude)),
                )
            )
        results[column] = sorted(regions, key=lambda region: region.mean_gradient, reverse=True)
    return results


def extreme_parameter_groups(
    model: CapturedModel,
    parameter: str,
    k: int = 10,
    largest: bool = True,
) -> list[tuple[tuple[Any, ...], float]]:
    """Groups with the most extreme fitted value of one model parameter.

    For the LOFAR model this answers questions such as "which sources have
    the steepest spectral index" directly from the parameter table.
    """
    if not model.is_grouped:
        raise ApproximationError("parameter ranking requires a grouped model")
    if parameter not in model.fit.family.param_names:  # type: ignore[union-attr]
        raise ApproximationError(
            f"model family {model.family_name!r} has no parameter {parameter!r}; "
            f"parameters: {list(model.fit.family.param_names)}"  # type: ignore[union-attr]
        )
    values: list[tuple[tuple[Any, ...], float]] = []
    for record in model.fit.records:  # type: ignore[union-attr]
        if record.result is None:
            continue
        values.append((record.key, float(record.result.param_dict[parameter])))
    values.sort(key=lambda pair: pair[1], reverse=largest)
    return values[:k]
