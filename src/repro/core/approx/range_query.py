"""Selection (range) queries answered from model-generated tuples.

The paper's second example query::

    SELECT source, intensity FROM measurements
    WHERE wavelength = 0.14 AND intensity > 3.0;

is answered "by calculating all intensity values with the stored set of
parameters for all sources and the given wavelength" and then filtering on
the predicted value.  :func:`answer_selection` is the direct programmatic
API for that pattern; the SQL-level engine uses the same building blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.approx.enumeration import build_enumeration_plan, generate_virtual_table
from repro.core.approx.legal import LegalCombinationFilter
from repro.core.captured_model import CapturedModel
from repro.db.expressions import Expression, truthy_mask
from repro.db.stats import TableStats
from repro.db.table import Table

__all__ = ["SelectionAnswer", "answer_selection"]


@dataclass
class SelectionAnswer:
    """Model-generated rows satisfying a selection predicate."""

    table: Table
    per_row_standard_error: float
    virtual_rows_generated: int
    rows_after_filter: int
    model_id: int

    def rows(self) -> list[tuple]:
        return self.table.to_rows()


def answer_selection(
    model: CapturedModel,
    table_stats: TableStats,
    predicate: Expression | None = None,
    pinned_values: Mapping[str, Sequence[Any]] | None = None,
    output_columns: Sequence[str] | None = None,
    legal_filter: LegalCombinationFilter | None = None,
    include_error_column: bool = False,
) -> SelectionAnswer:
    """Answer a selection query purely from the captured model.

    Parameters
    ----------
    model:
        The captured model for the queried table.
    table_stats:
        Catalog statistics of the base table (for enumerable input domains).
    predicate:
        Optional boolean expression evaluated over the model-generated table
        (it may reference the predicted output column — the paper's
        ``intensity > 3.0``).
    pinned_values:
        Values fixed by equality predicates (e.g. ``{"frequency": [0.14]}``).
    output_columns:
        Columns to keep in the answer (default: group + input + output).
    legal_filter:
        Optional legality filter removing combinations absent from the data.
    """
    plan = build_enumeration_plan(model, table_stats, pinned_values=pinned_values)
    virtual = generate_virtual_table(model, plan, include_error_column=include_error_column)
    generated = virtual.num_rows

    if legal_filter is not None:
        virtual = legal_filter.filter_table(virtual)

    if predicate is not None:
        mask = truthy_mask(predicate.evaluate(virtual))
        virtual = virtual.filter(mask)

    if output_columns is not None:
        keep = [name for name in output_columns if name in virtual.schema]
        virtual = virtual.select(keep)

    return SelectionAnswer(
        table=virtual,
        per_row_standard_error=model.quality.residual_standard_error,
        virtual_rows_generated=generated,
        rows_after_filter=virtual.num_rows,
        model_id=model.model_id,
    )
