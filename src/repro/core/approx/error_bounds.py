"""Error-bound propagation for approximate answers.

Every approximate answer must carry "an indication of the error that is to
be expected" (§2).  For per-row answers that indication is the residual
standard error of the model that produced the value; for aggregates the
per-row errors combine according to standard error-propagation rules under
the (paper-consistent) assumption of independent, zero-mean residuals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ErrorEstimate", "aggregate_error", "combine_independent", "extreme_value_error"]


@dataclass(frozen=True)
class ErrorEstimate:
    """A symmetric error estimate attached to an approximate value."""

    value: float
    standard_error: float

    @property
    def lower(self) -> float:
        return self.value - 1.96 * self.standard_error

    @property
    def upper(self) -> float:
        return self.value + 1.96 * self.standard_error

    @property
    def relative_error(self) -> float:
        if self.value == 0:
            return math.inf if self.standard_error > 0 else 0.0
        return abs(self.standard_error / self.value)

    def __str__(self) -> str:
        return f"{self.value:.6g} ± {1.96 * self.standard_error:.3g}"


def combine_independent(errors: list[float]) -> float:
    """Standard error of a sum of independent errors (root-sum-square)."""
    return math.sqrt(sum(e * e for e in errors))


def extreme_value_error(per_row_error: float, n_rows: float) -> float:
    """Standard error for MIN/MAX of a model over ``n_rows`` noisy raw rows.

    The model predicts the *noise-free* extreme; the observed extreme of
    ``n`` rows with residual sd ``per_row_error`` concentrates around
    ``per_row_error * sqrt(2 ln n)`` beyond it (the Gaussian extreme-value
    rate), so that is the honest band to attach — the plain per-row error
    undercovers for any non-trivial group size.
    """
    n = max(float(n_rows), 2.0)
    return per_row_error * math.sqrt(2.0 * math.log(n))


def aggregate_error(function: str, per_row_error: float, n_rows: int) -> float:
    """Standard error of an aggregate computed over model-generated rows.

    Assuming independent per-row residuals with standard deviation
    ``per_row_error``:

    * ``sum`` — errors add in quadrature: ``per_row_error * sqrt(n)``;
    * ``avg`` — the error of the mean: ``per_row_error / sqrt(n)``;
    * ``min`` / ``max`` — bounded by the per-row error of the extreme row;
    * ``count`` — counting model-generated rows is exact given the
      enumeration, so 0 (legality false-positives are reported separately);
    * ``stddev`` / ``var`` — conservatively the per-row error itself.
    """
    function = function.lower()
    if n_rows <= 0:
        return 0.0
    if function == "sum":
        return per_row_error * math.sqrt(n_rows)
    if function == "avg":
        return per_row_error / math.sqrt(n_rows)
    if function in ("min", "max"):
        return per_row_error
    if function == "count":
        return 0.0
    if function in ("stddev", "var"):
        return per_row_error
    return per_row_error
