"""Data anomaly detection from model residuals.

§4.2, "Data anomalies": "Often, the observations that do not fit the model
are of supreme interest.  These will stand out in the fitting process by for
example showing large residual errors."  For grouped models (the LOFAR
per-source fit) the natural unit of anomaly is the group: sources whose
power-law fit is poor are exactly the pulsars/transients the astronomers are
hunting.  This module ranks groups by fit quality and flags anomalies with a
robust (median absolute deviation) threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.captured_model import CapturedModel
from repro.errors import ApproximationError

__all__ = ["AnomalyReport", "GroupAnomaly", "detect_anomalies", "rank_groups_by_misfit"]


@dataclass(frozen=True)
class GroupAnomaly:
    """One group flagged as poorly described by the captured model."""

    key: tuple[Any, ...]
    score: float
    residual_standard_error: float
    r_squared: float

    def __str__(self) -> str:
        return f"group {self.key}: score={self.score:.2f}, RSE={self.residual_standard_error:.4g}, R2={self.r_squared:.3f}"


@dataclass
class AnomalyReport:
    """All groups ranked by misfit, plus the flagged anomalies."""

    metric: str
    threshold: float
    ranked: list[GroupAnomaly]
    anomalies: list[GroupAnomaly]

    @property
    def anomalous_keys(self) -> set[tuple[Any, ...]]:
        return {anomaly.key for anomaly in self.anomalies}

    def top(self, k: int) -> list[GroupAnomaly]:
        return self.ranked[:k]


def rank_groups_by_misfit(model: CapturedModel, metric: str = "relative_rse") -> list[GroupAnomaly]:
    """Rank every fitted group by how poorly the model describes it.

    ``metric`` is one of:

    * ``"rse"`` — raw residual standard error (the paper's example measure);
    * ``"relative_rse"`` — RSE divided by the group's mean |output|, which
      makes bright and faint sources comparable (default);
    * ``"r_squared"`` — 1 - R², i.e. unexplained variance fraction.
    """
    if not model.is_grouped:
        raise ApproximationError("anomaly ranking requires a grouped model (one fit per group)")

    anomalies: list[GroupAnomaly] = []
    for record in model.fit.records:  # type: ignore[union-attr]
        if record.result is None:
            continue
        fit = record.result
        if metric == "rse":
            score = fit.residual_standard_error
        elif metric == "relative_rse":
            scale = _group_output_scale(fit)
            score = fit.residual_standard_error / scale if scale > 0 else fit.residual_standard_error
        elif metric == "r_squared":
            score = 1.0 - fit.r_squared
        else:
            raise ApproximationError(f"unknown anomaly metric {metric!r}")
        anomalies.append(
            GroupAnomaly(
                key=record.key,
                score=float(score),
                residual_standard_error=fit.residual_standard_error,
                r_squared=fit.r_squared,
            )
        )
    return sorted(anomalies, key=lambda a: a.score, reverse=True)


def _group_output_scale(fit) -> float:
    """Approximate the group's output magnitude from the fit itself.

    RSE + R² imply the output variance; combined with the fitted mean level
    this gives a scale without re-reading the raw data.  When that is not
    recoverable the RSE itself is used (score 1.0).
    """
    ssr = fit.sum_squared_residuals
    n = max(fit.n_observations, 1)
    if fit.r_squared < 1.0 and ssr > 0:
        total_variance = ssr / max(1e-12, (1.0 - fit.r_squared)) / n
        return float(np.sqrt(total_variance))
    return max(fit.residual_standard_error, 1e-12)


def detect_anomalies(
    model: CapturedModel,
    metric: str = "relative_rse",
    mad_multiplier: float = 4.0,
    min_anomalies: int = 0,
) -> AnomalyReport:
    """Flag groups whose misfit score is an outlier among all groups.

    The threshold is median + ``mad_multiplier`` * MAD of the scores — a
    robust rule that adapts to the overall noise level, so it works both on
    the clean synthetic data and on noisier configurations.
    """
    ranked = rank_groups_by_misfit(model, metric=metric)
    if not ranked:
        return AnomalyReport(metric=metric, threshold=float("inf"), ranked=[], anomalies=[])

    scores = np.array([anomaly.score for anomaly in ranked])
    median = float(np.median(scores))
    mad = float(np.median(np.abs(scores - median)))
    threshold = median + mad_multiplier * (mad if mad > 0 else float(np.std(scores)) or 1e-12)

    anomalies = [anomaly for anomaly in ranked if anomaly.score > threshold]
    if len(anomalies) < min_anomalies:
        anomalies = ranked[:min_anomalies]
    return AnomalyReport(metric=metric, threshold=threshold, ranked=ranked, anomalies=anomalies)
