"""Legal parameter combinations via Bloom filters.

§4.2, "Legal parameter combinations": enumerating the model's input space
can generate tuples for input combinations that never occurred in the
original data, violating relational semantics.  The paper's second proposed
solution is "a compressed lookup structure (e.g. Bloom filters) to encode
all legal parameter combinations" — implemented here from scratch, together
with a small helper that builds the filter from a base table and prunes
model-generated tuples.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Iterable, Sequence

import numpy as np

from repro.db.table import Table

__all__ = ["BloomFilter", "LegalCombinationFilter"]


class BloomFilter:
    """A classic Bloom filter over hashable items.

    Sized from the expected item count and target false-positive rate using
    the standard formulas ``m = -n ln(p) / (ln 2)^2`` and ``k = m/n ln 2``.
    """

    def __init__(self, expected_items: int, false_positive_rate: float = 0.01) -> None:
        if expected_items <= 0:
            expected_items = 1
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        self.expected_items = expected_items
        self.false_positive_rate = false_positive_rate
        # A floor of 256 bits keeps tiny filters (a handful of combinations)
        # well below their nominal false-positive rate despite double hashing.
        self.num_bits = max(256, int(math.ceil(-expected_items * math.log(false_positive_rate) / (math.log(2) ** 2))))
        self.num_hashes = max(1, int(round(self.num_bits / expected_items * math.log(2))))
        self._bits = np.zeros(self.num_bits, dtype=bool)
        self._count = 0

    # -- core operations ----------------------------------------------------------

    def add(self, item: Any) -> None:
        for position in self._positions(item):
            self._bits[position] = True
        self._count += 1

    def __contains__(self, item: Any) -> bool:
        return all(self._bits[position] for position in self._positions(item))

    def add_many(self, items: Iterable[Any]) -> None:
        for item in items:
            self.add(item)

    # -- accounting ------------------------------------------------------------------

    @property
    def num_items_added(self) -> int:
        return self._count

    def byte_size(self) -> int:
        """Nominal storage footprint of the filter (one bit per slot)."""
        return (self.num_bits + 7) // 8

    @property
    def fill_fraction(self) -> float:
        return float(self._bits.mean())

    def estimated_false_positive_rate(self) -> float:
        """FPR estimate from the current fill level: (fill)^k."""
        return float(self.fill_fraction**self.num_hashes)

    # -- hashing ----------------------------------------------------------------------

    def _positions(self, item: Any) -> list[int]:
        digest = hashlib.blake2b(repr(item).encode("utf-8"), digest_size=16).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little") | 1  # force odd so strides cover the table
        return [((h1 + i * h2) % self.num_bits) for i in range(self.num_hashes)]


class LegalCombinationFilter:
    """Tracks which (group key, input value) combinations exist in the raw data."""

    def __init__(
        self,
        key_columns: Sequence[str],
        false_positive_rate: float = 0.01,
        round_decimals: int | None = 6,
    ) -> None:
        if not key_columns:
            raise ValueError("LegalCombinationFilter needs at least one key column")
        self.key_columns = tuple(key_columns)
        self.false_positive_rate = false_positive_rate
        self.round_decimals = round_decimals
        self._bloom: BloomFilter | None = None
        self._exact_count = 0

    # -- construction -----------------------------------------------------------------

    @classmethod
    def from_table(
        cls,
        table: Table,
        key_columns: Sequence[str],
        false_positive_rate: float = 0.01,
        round_decimals: int | None = 6,
    ) -> "LegalCombinationFilter":
        """Build the filter from the distinct key combinations of ``table``."""
        instance = cls(key_columns, false_positive_rate, round_decimals)
        combos = instance._distinct_combinations(table)
        instance._bloom = BloomFilter(len(combos), false_positive_rate)
        instance._bloom.add_many(combos)
        instance._exact_count = len(combos)
        return instance

    def _distinct_combinations(self, table: Table) -> set[tuple[Any, ...]]:
        columns = [table.column(name).to_pylist() for name in self.key_columns]
        combos: set[tuple[Any, ...]] = set()
        for row_index in range(table.num_rows):
            combo = tuple(column[row_index] for column in columns)
            if any(value is None for value in combo):
                continue
            combos.add(self._normalise(combo))
        return combos

    def _normalise(self, combo: tuple[Any, ...]) -> tuple[Any, ...]:
        if self.round_decimals is None:
            return combo
        return tuple(
            round(value, self.round_decimals) if isinstance(value, float) else value for value in combo
        )

    # -- querying --------------------------------------------------------------------------

    def is_legal(self, combo: tuple[Any, ...]) -> bool:
        if self._bloom is None:
            return True
        return self._normalise(combo) in self._bloom

    def filter_table(self, table: Table) -> Table:
        """Keep only the rows of a model-generated table whose key combination
        (probably) occurred in the original data."""
        if self._bloom is None or table.num_rows == 0:
            return table
        columns = [table.column(name).to_pylist() for name in self.key_columns]
        mask = np.zeros(table.num_rows, dtype=bool)
        for row_index in range(table.num_rows):
            combo = tuple(column[row_index] for column in columns)
            mask[row_index] = self.is_legal(combo)
        return table.filter(mask)

    # -- accounting -------------------------------------------------------------------------

    def byte_size(self) -> int:
        return self._bloom.byte_size() if self._bloom is not None else 0

    @property
    def num_legal_combinations(self) -> int:
        return self._exact_count
