"""Approximate query answering from captured models (§4.2 of the paper)."""

from repro.core.approx.aggregates import AnalyticAggregate, analytic_aggregate, supports_analytic
from repro.core.approx.anomalies import AnomalyReport, GroupAnomaly, detect_anomalies, rank_groups_by_misfit
from repro.core.approx.engine import ApproximateAnswer, ApproximateQueryEngine
from repro.core.approx.enumeration import EnumerationPlan, build_enumeration_plan, generate_virtual_table
from repro.core.approx.error_bounds import (
    ErrorEstimate,
    aggregate_error,
    combine_independent,
    extreme_value_error,
)
from repro.core.approx.exploration import InterestingRegion, explore_gradients, extreme_parameter_groups
from repro.core.approx.legal import BloomFilter, LegalCombinationFilter
from repro.core.approx.point import PointAnswer, answer_point_query
from repro.core.approx.range_query import SelectionAnswer, answer_selection
from repro.core.approx.routes import (
    GroupedAnswer,
    RangeAnswer,
    RoutingPolicy,
    answer_grouped,
    answer_range,
    extract_constraints,
    plan_group_routing,
)

__all__ = [
    "AnalyticAggregate",
    "AnomalyReport",
    "ApproximateAnswer",
    "ApproximateQueryEngine",
    "BloomFilter",
    "EnumerationPlan",
    "ErrorEstimate",
    "GroupAnomaly",
    "GroupedAnswer",
    "InterestingRegion",
    "LegalCombinationFilter",
    "PointAnswer",
    "RangeAnswer",
    "RoutingPolicy",
    "SelectionAnswer",
    "aggregate_error",
    "analytic_aggregate",
    "answer_grouped",
    "answer_point_query",
    "answer_range",
    "answer_selection",
    "build_enumeration_plan",
    "combine_independent",
    "detect_anomalies",
    "extract_constraints",
    "extreme_value_error",
    "plan_group_routing",
    "explore_gradients",
    "extreme_parameter_groups",
    "generate_virtual_table",
    "rank_groups_by_misfit",
    "supports_analytic",
]
